#!/usr/bin/env python3
"""Diff two BENCH_*.json sidecars (DESIGN.md section 8).

Loads a baseline and a current sidecar (the `{"bench": ..., "rows": [...]}`
shape every bench binary and the kIntrospect /metrics.json endpoint emit),
matches rows by their identifying string fields, and prints every numeric
field's drift. With --threshold, any drift beyond the given percentage is
reported as a REGRESSION and the exit code flags it for CI. Standard
library only.

Usage:
    metrics_diff.py BASELINE.json CURRENT.json
    metrics_diff.py --threshold 10 BASELINE.json CURRENT.json
    metrics_diff.py --expect expected.txt BASELINE.json CURRENT.json

Rows are keyed by their string-valued fields (e.g. kind + metric for the
histogram rows emit_metrics appends), so reordering rows between runs does
not show up as drift; rows present on only one side are listed as added or
removed but never breach the threshold (a new metric is not a regression).

Exit codes: 0 ok, 1 malformed input, 2 threshold breach or golden mismatch.
"""

import json
import os
import sys


class MalformedBench(Exception):
    pass


def _require(cond, path, message):
    if not cond:
        raise MalformedBench("%s: %s" % (os.path.basename(path), message))


def load_rows(path):
    """Returns {row_key: {field: number}} for one sidecar."""
    try:
        with open(path, "r") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        raise MalformedBench("%s: %s" % (os.path.basename(path), err))
    _require(isinstance(doc, dict), path, "top level must be an object")
    _require(isinstance(doc.get("bench"), str), path, "missing bench name")
    _require(isinstance(doc.get("rows"), list), path, "missing rows list")

    rows = {}
    for i, row in enumerate(doc["rows"]):
        where = "row %d" % i
        _require(isinstance(row, dict), path, where + " must be an object")
        ident = []
        numbers = {}
        for key, value in row.items():
            if isinstance(value, str):
                ident.append("%s=%s" % (key, value))
            elif isinstance(value, bool):
                numbers[key] = int(value)
            elif isinstance(value, (int, float)):
                numbers[key] = value
            else:
                raise MalformedBench(
                    "%s: %s field %r has unsupported type" % (
                        os.path.basename(path), where, key))
        key = "[" + " ".join(sorted(ident)) + "]" if ident else "[row %d]" % i
        _require(key not in rows, path, "duplicate row key " + key)
        rows[key] = numbers
    return rows


def drift_percent(base, cur):
    """Relative change in percent; a vanished/appeared value counts as 100."""
    if base == cur:
        return 0.0
    if base == 0:
        return 100.0
    return abs(cur - base) / abs(base) * 100.0


def fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return "%.4f" % value
    return "%d" % value


def diff(base_path, cur_path, threshold):
    """Returns (lines, regression_count)."""
    base = load_rows(base_path)
    cur = load_rows(cur_path)
    lines = [
        "metrics diff: %s -> %s" % (
            os.path.basename(base_path), os.path.basename(cur_path))
    ]
    regressions = 0
    worst = (0.0, None)  # (percent, description)

    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            lines.append("  removed %s" % key)
            continue
        if key not in base:
            lines.append("  added   %s" % key)
            continue
        for field in sorted(set(base[key]) | set(cur[key])):
            b = base[key].get(field)
            c = cur[key].get(field)
            if b is None or c is None:
                lines.append("  %s %s: only in %s" % (
                    key, field, "current" if b is None else "baseline"))
                continue
            pct = drift_percent(b, c)
            if pct > worst[0]:
                worst = (pct, "%s %s" % (key, field))
            if pct == 0.0:
                continue
            sign = "+" if c >= b else "-"
            line = "  %s %s: %s -> %s (%s%.1f%%)" % (
                key, field, fmt(b), fmt(c), sign, pct)
            if threshold is not None and pct > threshold:
                line += "  REGRESSION: drift exceeds %.1f%%" % threshold
                regressions += 1
            lines.append(line)

    if worst[1] is not None:
        lines.append("worst drift: %.1f%% (%s)" % worst)
    else:
        lines.append("no rows compared")
    if threshold is not None:
        lines.append("regressions over %.1f%%: %d" % (threshold, regressions))
    return lines, regressions


def main(argv):
    args = argv[1:]
    threshold = None
    expect = None
    usage = "usage: metrics_diff.py [--threshold PCT] [--expect FILE] BASELINE.json CURRENT.json"
    while args and args[0].startswith("--"):
        if args[0] == "--threshold":
            if len(args) < 2:
                print(usage, file=sys.stderr)
                return 1
            try:
                threshold = float(args[1])
            except ValueError:
                print("error: --threshold takes a number", file=sys.stderr)
                return 1
            args = args[2:]
        elif args[0] == "--expect":
            if len(args) < 2:
                print(usage, file=sys.stderr)
                return 1
            expect = args[1]
            args = args[2:]
        else:
            print(usage, file=sys.stderr)
            return 1
    if len(args) != 2:
        print(usage, file=sys.stderr)
        return 1

    try:
        lines, regressions = diff(args[0], args[1], threshold)
    except MalformedBench as err:
        print("error: %s" % err, file=sys.stderr)
        return 1

    output = "\n".join(lines) + "\n"
    sys.stdout.write(output)

    if expect is not None:
        with open(expect, "r") as f:
            expected = f.read()
        if output != expected:
            print("golden mismatch against %s" % os.path.basename(expect),
                  file=sys.stderr)
            return 2
        print("golden match: %s" % os.path.basename(expect))
    if regressions > 0:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
