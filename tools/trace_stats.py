#!/usr/bin/env python3
"""Summarize and validate TRACE_*.json sidecars (DESIGN.md section 8).

Loads one or more Chrome-trace-event files (the format Perfetto and
chrome://tracing consume), validates that they are well-formed, and prints
per-node span counts, overload-shedding counts (server.shed instants with
a per-node refusal rate, DESIGN.md section 13) and the top-10 longest
spans. Standard library only.

Usage:
    trace_stats.py TRACE_foo.json [TRACE_bar.json ...]
    trace_stats.py --by-shard TRACE_foo.json              # sharded deployments
    trace_stats.py --expect expected.txt TRACE_foo.json   # golden-file mode

--by-shard additionally groups span counts per shard using the sharded
node-id layout (DESIGN.md section 11): servers of shard g occupy node ids
g*100 .. g*100+n-1, client endpoints live at 10000 and above.

Exit codes: 0 ok, 1 malformed input, 2 golden mismatch.
"""

import json
import os
import sys

TOP_N = 10


class MalformedTrace(Exception):
    pass


def _require(cond, path, message):
    if not cond:
        raise MalformedTrace("%s: %s" % (os.path.basename(path), message))


def validate(path, doc):
    """Checks the Chrome trace event JSON shape we emit (and Perfetto loads)."""
    _require(isinstance(doc, dict), path, "top level must be an object")
    _require("traceEvents" in doc, path, "missing traceEvents")
    events = doc["traceEvents"]
    _require(isinstance(events, list), path, "traceEvents must be a list")
    for i, event in enumerate(events):
        where = "event %d" % i
        _require(isinstance(event, dict), path, where + " must be an object")
        phase = event.get("ph")
        _require(isinstance(phase, str), path, where + " missing ph")
        _require(phase in ("X", "i", "M"), path,
                 "%s has unknown phase %r" % (where, phase))
        _require(isinstance(event.get("name"), str), path, where + " missing name")
        _require(isinstance(event.get("pid"), int), path, where + " missing pid")
        if phase == "X":
            _require(isinstance(event.get("ts"), (int, float)), path,
                     where + " span missing ts")
            _require(isinstance(event.get("dur"), (int, float)), path,
                     where + " span missing dur")
        elif phase == "i":
            _require(isinstance(event.get("ts"), (int, float)), path,
                     where + " instant missing ts")
            _require(event.get("s") in ("g", "p", "t"), path,
                     where + " instant missing scope")
    return events


def shard_of(pid):
    """Maps a node id onto its shard under the DESIGN.md section 11 layout."""
    if pid >= 10000:
        return "clients"
    return "shard %d" % (pid // 100)


def summarize_shards(spans, out):
    counts = {}
    for span in spans:
        key = shard_of(span["pid"])
        counts[key] = counts.get(key, 0) + 1
    out.append("per-shard span counts:")
    # Shards numerically, the client bucket last.
    for key in sorted(counts, key=lambda k: (k == "clients", k)):
        out.append("  %s: %d" % (key, counts[key]))


def summarize_shedding(events, out):
    """Counts server.shed instants (DESIGN.md section 13) and, per shedding
    node, the refusal rate over the trace window."""
    sheds = [e for e in events if e["ph"] == "i" and e["name"] == "server.shed"]
    out.append("server.shed instants: %d" % len(sheds))
    if not sheds:
        return
    starts = [e["ts"] for e in events if "ts" in e]
    ends = [e["ts"] + e["dur"] for e in events if e["ph"] == "X"]
    window = max(starts + ends) - min(starts)
    counts = {}
    for event in sheds:
        counts[event["pid"]] = counts.get(event["pid"], 0) + 1
    for node in sorted(counts):
        rate = counts[node] * 1e6 / window if window > 0 else 0.0
        out.append("  node %d: %d sheds (%.1f/s over %d us)"
                   % (node, counts[node], rate, window))


def summarize(path, events, out, by_shard=False):
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    out.append("%s: %d events (%d spans, %d instants, %d metadata)"
               % (os.path.basename(path), len(events), len(spans), len(instants),
                  len(metadata)))

    out.append("per-node span counts:")
    counts = {}
    for span in spans:
        counts[span["pid"]] = counts.get(span["pid"], 0) + 1
    for node in sorted(counts):
        out.append("  node %d: %d" % (node, counts[node]))

    if by_shard:
        summarize_shards(spans, out)

    summarize_shedding(events, out)

    out.append("top %d longest spans:" % TOP_N)
    longest = sorted(spans, key=lambda e: (-e["dur"], e["name"], e["ts"]))[:TOP_N]
    for span in longest:
        out.append("  %d us  %s  node %d  ts %d"
                   % (span["dur"], span["name"], span["pid"], span["ts"]))


def main(argv):
    args = argv[1:]
    expect = None
    by_shard = False
    usage = "usage: trace_stats.py [--by-shard] [--expect FILE] TRACE.json ..."
    while args and args[0].startswith("--"):
        if args[0] == "--by-shard":
            by_shard = True
            args = args[1:]
        elif args[0] == "--expect":
            if len(args) < 2:
                print(usage, file=sys.stderr)
                return 1
            expect = args[1]
            args = args[2:]
        else:
            print(usage, file=sys.stderr)
            return 1
    if not args:
        print(usage, file=sys.stderr)
        return 1

    out = []
    for path in args:
        try:
            with open(path, "r") as f:
                doc = json.load(f)
            events = validate(path, doc)
        except (OSError, ValueError, MalformedTrace) as err:
            print("error: %s" % err, file=sys.stderr)
            return 1
        summarize(path, events, out, by_shard)
    text = "\n".join(out) + "\n"

    if expect is not None:
        with open(expect, "r") as f:
            wanted = f.read()
        if text != wanted:
            sys.stderr.write("golden mismatch; got:\n%s\nwanted:\n%s" % (text, wanted))
            return 2
        print("golden match: %s" % os.path.basename(expect))
        return 0

    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
