#!/usr/bin/env python3
"""Summarize and validate an LSM engine directory (DESIGN.md section 12).

Parses the MANIFEST and every SSTable of a `LsmStore` data directory (or
individual .sst files), verifies their checksums out-of-process, and prints
per-level file counts plus entry counts by kind (records, equivocation
flags, tombstones). Standard library only.

Usage:
    sst_stats.py <lsm-dir>                      # a store's data directory
    sst_stats.py file1.sst [file2.sst ...]      # individual SSTables
    sst_stats.py --expect expected.txt <dir>    # golden-file mode

Exit codes: 0 ok, 1 malformed input, 2 golden mismatch.
"""

import os
import struct
import sys
import zlib

SST_MAGIC = b"SECURESTORE-SST"
SST_VERSION = 1
SST_FOOTER_MAGIC = 0x31444E4546545353  # "SSTFEND1" little-endian
SST_FOOTER_SIZE = 28
MANIFEST_MAGIC = b"SECURESTORE-LSM-MANIFEST"
MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST"

KIND_NAMES = {1: "records", 2: "flags", 3: "tombstones"}


class Malformed(Exception):
    pass


class Cursor:
    """Little-endian length-prefixed decoding (util/serial.h's Reader)."""

    def __init__(self, data, path):
        self.data = data
        self.pos = 0
        self.path = path

    def _take(self, n):
        if self.pos + n > len(self.data):
            raise Malformed("%s: truncated" % os.path.basename(self.path))
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self._take(1)[0]

    def u32(self):
        return struct.unpack("<I", self._take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self._take(8))[0]

    def bytes(self):
        return self._take(self.u32())


def parse_sst(path):
    """Validates one SSTable end to end; returns its stats dict."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < SST_FOOTER_SIZE:
        raise Malformed("%s: shorter than the footer" % os.path.basename(path))

    index_offset, covered_lsn, expected_crc, magic = struct.unpack(
        "<QQIQ", blob[-SST_FOOTER_SIZE:])
    if magic != SST_FOOTER_MAGIC:
        raise Malformed("%s: bad footer magic" % os.path.basename(path))
    if index_offset >= len(blob) - SST_FOOTER_SIZE:
        raise Malformed("%s: index offset out of bounds" % os.path.basename(path))
    # The file CRC covers everything before the CRC field itself.
    if zlib.crc32(blob[:-12]) & 0xFFFFFFFF != expected_crc:
        raise Malformed("%s: file CRC mismatch" % os.path.basename(path))

    header = Cursor(blob, path)
    if header.bytes() != SST_MAGIC:
        raise Malformed("%s: bad header magic" % os.path.basename(path))
    if header.u32() != SST_VERSION:
        raise Malformed("%s: unknown version" % os.path.basename(path))

    index = Cursor(blob[index_offset:len(blob) - 20], path)
    count = index.u32()
    kinds = {1: 0, 2: 0, 3: 0}
    items = set()
    for _ in range(count):
        kind = index.u8()
        if kind not in kinds:
            raise Malformed("%s: unknown entry kind %d" % (os.path.basename(path), kind))
        kinds[kind] += 1
        items.add(index.u64())  # item
        index.u64()             # group
        index.u64()             # time
        index.u32()             # ts writer
        index.bytes()           # digest
        index.u32()             # record writer
        index.u8()              # record flags
        offset = index.u64()
        frame_len = index.u32()
        if offset + frame_len > index_offset:
            raise Malformed("%s: frame overlaps the index" % os.path.basename(path))
        # Per-frame CRC: the last line of defense for point reads.
        body_len, body_crc = struct.unpack("<II", blob[offset:offset + 8])
        if body_len != frame_len - 8:
            raise Malformed("%s: frame length mismatch" % os.path.basename(path))
        body = blob[offset + 8:offset + 8 + body_len]
        if zlib.crc32(body) & 0xFFFFFFFF != body_crc:
            raise Malformed("%s: frame CRC mismatch" % os.path.basename(path))
    return {
        "entries": count,
        "kinds": kinds,
        "items": len(items),
        "bytes": len(blob),
        "covered_lsn": covered_lsn,
    }


def parse_manifest(path):
    """Returns (durable_lsn, [(level, file_no), ...])."""
    with open(path, "rb") as f:
        cursor = Cursor(f.read(), path)
    if cursor.bytes() != MANIFEST_MAGIC:
        raise Malformed("MANIFEST: bad magic")
    if cursor.u32() != MANIFEST_VERSION:
        raise Malformed("MANIFEST: unknown version")
    checksum = cursor.bytes()
    body = cursor.bytes()
    try:
        import hashlib
        if hashlib.sha256(body).digest() != checksum:
            raise Malformed("MANIFEST: checksum mismatch")
    except ImportError:  # pragma: no cover - hashlib is stdlib
        pass
    inner = Cursor(body, path)
    inner.u64()  # next_file_no
    durable_lsn = inner.u64()
    files = []
    for _ in range(inner.u32()):
        level = inner.u8()
        file_no = inner.u32()
        files.append((level, file_no))
    return durable_lsn, files


def summarize(target):
    """Returns the report lines for a directory or list of .sst files."""
    lines = []
    if len(target) == 1 and os.path.isdir(target[0]):
        root = target[0]
        manifest_path = os.path.join(root, MANIFEST_NAME)
        levels = {}
        if os.path.exists(manifest_path):
            durable_lsn, files = parse_manifest(manifest_path)
            lines.append("manifest: %d files, durable_lsn %d" % (len(files), durable_lsn))
            for level, file_no in files:
                levels.setdefault(level, []).append(
                    os.path.join(root, "sst-%016x.sst" % file_no))
        else:
            lines.append("manifest: missing")
            for name in sorted(os.listdir(root)):
                if name.endswith(".sst"):
                    levels.setdefault(0, []).append(os.path.join(root, name))
        quarantined = sorted(
            name for name in os.listdir(root) if name.endswith(".corrupt"))
        paths = []
        for level in sorted(levels):
            lines.append("level %d: %d files" % (level, len(levels[level])))
            paths.extend(levels[level])
        if quarantined:
            lines.append("quarantined: %d" % len(quarantined))
    else:
        paths = list(target)

    totals = {"entries": 0, "records": 0, "flags": 0, "tombstones": 0, "bytes": 0}
    for path in paths:
        stats = parse_sst(path)
        lines.append(
            "%s: %d entries (%d records, %d flags, %d tombstones), "
            "%d items, %d bytes, covered_lsn %d"
            % (os.path.basename(path), stats["entries"], stats["kinds"][1],
               stats["kinds"][2], stats["kinds"][3], stats["items"],
               stats["bytes"], stats["covered_lsn"]))
        totals["entries"] += stats["entries"]
        totals["records"] += stats["kinds"][1]
        totals["flags"] += stats["kinds"][2]
        totals["tombstones"] += stats["kinds"][3]
        totals["bytes"] += stats["bytes"]
    lines.append(
        "total: %d files, %d entries (%d records, %d flags, %d tombstones), %d bytes"
        % (len(paths), totals["entries"], totals["records"], totals["flags"],
           totals["tombstones"], totals["bytes"]))
    return lines


def main(argv):
    args = argv[1:]
    expect_path = None
    if args and args[0] == "--expect":
        if len(args) < 3:
            print(__doc__, file=sys.stderr)
            return 1
        expect_path = args[1]
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        lines = summarize(args)
    except (Malformed, OSError, struct.error) as err:
        print("sst_stats: %s" % err, file=sys.stderr)
        return 1

    output = "\n".join(lines) + "\n"
    if expect_path is not None:
        with open(expect_path) as f:
            expected = f.read()
        if output != expected:
            sys.stderr.write("sst_stats: output differs from %s\n" % expect_path)
            sys.stderr.write("--- expected ---\n%s--- actual ---\n%s" % (expected, output))
            return 2
        print("sst_stats: golden match (%s)" % os.path.basename(expect_path))
        return 0
    sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
