// Experiment E10 — crypto primitive microbenchmarks (google-benchmark).
//
// Grounds E3's operation-cost model in measured primitive times: the §6
// tradeoff between signatures (secure store, masking quorums) and MACs
// (PBFT-style SMR) is quantified here — MACs are orders of magnitude
// cheaper per operation, which is exactly why PBFT wins on computation and
// loses on message count.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "crypto/chacha20.h"
#include "obs/trace.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/ida.h"
#include "crypto/keys.h"
#include "crypto/sha2.h"
#include "crypto/shamir.h"
#include "crypto/x25519.h"
#include "util/rng.h"

namespace securestore::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Ed25519Sign(benchmark::State& state) {
  Rng rng(3);
  const KeyPair pair = KeyPair::generate(rng);
  const Bytes message = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(pair.seed, message));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Rng rng(4);
  const KeyPair pair = KeyPair::generate(rng);
  const Bytes message = rng.bytes(256);
  const Bytes signature = ed25519_sign(pair.seed, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(pair.public_key, message, signature));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_Ed25519KeyGen(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyPair::generate(rng));
  }
}
BENCHMARK(BM_Ed25519KeyGen);

void BM_AeadSeal(benchmark::State& state) {
  Rng rng(6);
  const Bytes key = rng.bytes(kChaChaKeySize);
  const Bytes nonce = rng.bytes(kChaChaNonceSize);
  const Bytes plaintext = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_seal(key, nonce, {}, plaintext));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(4096)->Arg(65536);

void BM_AeadOpen(benchmark::State& state) {
  Rng rng(7);
  const Bytes key = rng.bytes(kChaChaKeySize);
  const Bytes nonce = rng.bytes(kChaChaNonceSize);
  const Bytes plaintext = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes sealed = aead_seal(key, nonce, {}, plaintext);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_open(key, nonce, {}, sealed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(256)->Arg(4096);

void BM_X25519SharedSecret(benchmark::State& state) {
  Rng rng(12);
  const DhKeyPair a = DhKeyPair::generate(rng);
  const DhKeyPair b = DhKeyPair::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519_shared_secret(a.private_scalar, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_ShamirSplit(benchmark::State& state) {
  Rng rng(8);
  const Bytes secret = rng.bytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_split(secret, 3, 7, rng));
  }
}
BENCHMARK(BM_ShamirSplit);

void BM_ShamirCombine(benchmark::State& state) {
  Rng rng(9);
  const Bytes secret = rng.bytes(32);
  const auto shares = shamir_split(secret, 3, 7, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_combine(std::span(shares).first(3), 3));
  }
}
BENCHMARK(BM_ShamirCombine);

void BM_IdaDisperse(benchmark::State& state) {
  Rng rng(10);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ida_disperse(data, 3, 7));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_IdaDisperse)->Arg(1024)->Arg(16384);

void BM_IdaReconstruct(benchmark::State& state) {
  Rng rng(11);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto fragments = ida_disperse(data, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ida_reconstruct(std::span(fragments).first(3), 3));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_IdaReconstruct)->Arg(1024)->Arg(16384);

/// Registry-sourced distributions for the sidecar: the google-benchmark
/// loops above report means, so the per-call spread of the two signature
/// primitives (the costs E3/E4 price protocol ops with) is re-measured here
/// through an obs::Histogram.
void emit_registry_sidecar() {
  obs::Registry registry;
  obs::Histogram& sign_us = registry.histogram("crypto.ed25519_sign_us");
  obs::Histogram& verify_us = registry.histogram("crypto.ed25519_verify_us");

  Rng rng(20);
  const KeyPair pair = KeyPair::generate(rng);
  const Bytes message = rng.bytes(256);
  const Bytes signature = ed25519_sign(pair.seed, message);
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    const std::uint64_t t0 = obs::wall_now_us();
    benchmark::DoNotOptimize(ed25519_sign(pair.seed, message));
    const std::uint64_t t1 = obs::wall_now_us();
    benchmark::DoNotOptimize(ed25519_verify(pair.public_key, message, signature));
    const std::uint64_t t2 = obs::wall_now_us();
    sign_us.observe(static_cast<double>(t1 - t0));
    verify_us.observe(static_cast<double>(t2 - t1));
  }

  bench::BenchJson json("e10_crypto_micro");
  bench::emit_metrics(json, registry);
}

}  // namespace
}  // namespace securestore::crypto

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  securestore::crypto::emit_registry_sidecar();
  return 0;
}
