// Experiment E8 — availability under server faults.
//
// §4/§5 claims reproduced: every operation completes, with correct results,
// while at most b servers fail in any modeled way; context operations
// (quorum ⌈(n+b+1)/2⌉) stop once more than b servers crash, while data
// operations (set b+1) survive even deeper crash counts as long as b+1
// servers live — the paper's availability rationale for small quorums.
#include "bench_common.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kItem{100};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

struct Rates {
  double connect = 0;
  double write = 0;
  double read = 0;
  double correct_reads = 0;
  sim::TransportStats transport;  // summed across the cell's trials
};

Rates run_cell(std::uint32_t n, std::uint32_t b, std::size_t faulty_count,
               faults::ServerFault fault, int trials,
               const std::shared_ptr<obs::Registry>& registry) {
  int connect_ok = 0, write_ok = 0, read_ok = 0, read_correct = 0;
  sim::TransportStats transport_total;

  for (int trial = 0; trial < trials; ++trial) {
    testkit::ClusterOptions options;
    options.n = n;
    options.b = b;
    options.seed = 5000 + static_cast<std::uint64_t>(trial) * 131 + faulty_count;
    options.gossip.period = milliseconds(200);
    options.registry = registry;
    for (std::size_t i = 0; i < faulty_count; ++i) {
      options.server_faults.push_back({static_cast<std::uint32_t>(i), {fault}});
    }
    testkit::Cluster cluster(options);
    cluster.set_group_policy(mrc_policy());

    core::SecureStoreClient::Options client_options;
    client_options.policy = mrc_policy();
    client_options.round_timeout = milliseconds(300);
    client_options.max_read_rounds = 3;
    auto client = cluster.make_client(ClientId{1}, client_options);
    // Worst case: faulty servers first in preference.
    std::vector<NodeId> order;
    for (std::uint32_t i = 0; i < n; ++i) order.push_back(NodeId{i});
    client->set_server_preference(order);
    core::SyncClient sync(*client, cluster.scheduler());

    if (sync.connect(kGroup).ok()) ++connect_ok;
    const std::string payload = "trial " + std::to_string(trial);
    if (sync.write(kItem, to_bytes(payload)).ok()) {
      ++write_ok;
      const auto result = sync.read_value(kItem);
      if (result.ok()) {
        ++read_ok;
        if (to_string(*result) == payload) ++read_correct;
      }
    }
    const auto& stats = cluster.transport_stats();
    transport_total.messages_sent += stats.messages_sent;
    transport_total.messages_delivered += stats.messages_delivered;
    transport_total.bytes_sent += stats.bytes_sent;
  }

  Rates rates;
  rates.transport = transport_total;
  rates.connect = static_cast<double>(connect_ok) / trials;
  rates.write = static_cast<double>(write_ok) / trials;
  rates.read = static_cast<double>(read_ok) / trials;
  rates.correct_reads = read_ok > 0 ? static_cast<double>(read_correct) / read_ok : 1.0;
  return rates;
}

void run() {
  print_title("E8: operation success rates vs number of faulty servers");
  print_claim(
      "all ops succeed (and reads stay correct) with <= b faults; context "
      "ops lose liveness beyond b crashes, data ops survive to n-(b+1) crashes");

  constexpr std::uint32_t n = 7, b = 2;
  constexpr int kTrials = 10;

  const struct {
    faults::ServerFault fault;
    const char* name;
  } kFaults[] = {
      {faults::ServerFault::kCrash, "crash"},
      {faults::ServerFault::kStaleData, "stale"},
      {faults::ServerFault::kCorruptValues, "corrupt"},
  };

  Table table({"fault", "faulty", "connect", "write", "read", "read_correct", "msgs"});
  table.print_header();
  BenchJson json("e8_availability");
  auto registry = std::make_shared<obs::Registry>();

  for (const auto& fault_case : kFaults) {
    const std::size_t max_faulty = fault_case.fault == faults::ServerFault::kCrash
                                       ? n - (b + 1) + 1  // one past the data-op limit
                                       : b + 1;
    for (std::size_t faulty = 0; faulty <= max_faulty; ++faulty) {
      const Rates rates = run_cell(n, b, faulty, fault_case.fault, kTrials, registry);
      table.cell(std::string(fault_case.name));
      table.cell(static_cast<std::uint64_t>(faulty));
      table.cell(rates.connect);
      table.cell(rates.write);
      table.cell(rates.read);
      table.cell(rates.correct_reads);
      table.cell(rates.transport.messages_sent);
      table.end_row();

      json.begin_row();
      json.field("fault", std::string(fault_case.name));
      json.field("faulty", static_cast<std::uint64_t>(faulty));
      json.field("connect_rate", rates.connect);
      json.field("write_rate", rates.write);
      json.field("read_rate", rates.read);
      json.field("read_correct_rate", rates.correct_reads);
      json.field("messages_sent", rates.transport.messages_sent);
    }
    std::printf("\n");
  }

  std::printf(
      "n=7, b=2, context quorum 5, data set 3, escalation on. Crashes: context\n"
      "ops (connect) fail once n - faulty < 5, i.e. > 2 crashed; data ops keep\n"
      "working until fewer than b+1 = 3 servers live. Stale/corrupt servers\n"
      "never break correctness (read_correct stays 1.0) because clients verify\n"
      "signatures and timestamps — they can only force escalation. The msgs\n"
      "column (transport messages_sent, summed over the cell's trials) shows\n"
      "the price: faulty servers force retry/escalation traffic.\n");

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
