// Experiment E4 — end-to-end response time in a wide-area deployment.
//
// §6's headline argument: weak-consistency small quorums beat both
// strong-consistency Byzantine quorums and SMR in environments "where
// communication latencies are high across the server replicas". PBFT's
// multi-phase O(n^2) exchange serializes three one-way replica hops before
// a reply, while the secure store's write finishes after one round trip to
// b+1 servers.
//
// Setup: every link is WAN-like (60 ms base + up to 40 ms jitter). Each
// cell is the mean over repeated operations in simulated time.
#include <chrono>

#include "baselines/masking_quorum.h"
#include "baselines/pbft.h"
#include "bench_common.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "net/sim_transport.h"
#include "sim/metrics.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr int kOpsPerCell = 20;

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

struct LatencyPair {
  double write_ms = 0;
  double read_ms = 0;
  sim::TransportStats transport;  // whole-cell traffic (secure store only)
};

LatencyPair secure_store_latency(std::uint32_t n, std::uint32_t b, std::uint64_t seed,
                                 std::shared_ptr<obs::Registry> registry = nullptr) {
  testkit::ClusterOptions options;
  options.n = n;
  options.b = b;
  options.seed = seed;
  options.link = sim::wan_profile();
  options.gossip.period = milliseconds(500);
  options.registry = std::move(registry);
  testkit::Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  core::SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = seconds(2);
  auto client = cluster.make_client(ClientId{1}, client_options);
  core::SyncClient sync(*client, cluster.scheduler());

  sim::Samples write_samples, read_samples;
  for (int op = 0; op < kOpsPerCell; ++op) {
    const ItemId item{static_cast<std::uint64_t>(100 + op)};
    const OpCost write_cost =
        measure(cluster, [&] { return sync.write(item, to_bytes("payload")).ok(); });
    if (write_cost.ok) write_samples.add(to_milliseconds(write_cost.latency));
    const OpCost read_cost = measure(cluster, [&] { return sync.read_value(item).ok(); });
    if (read_cost.ok) read_samples.add(to_milliseconds(read_cost.latency));
  }
  return {write_samples.mean(), read_samples.mean(), cluster.transport_stats()};
}

LatencyPair masking_quorum_latency(std::uint32_t n, std::uint32_t b, std::uint64_t seed,
                                   sim::LinkProfile profile = sim::wan_profile()) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(seed), profile));
  core::StoreConfig config;
  config.n = n;
  config.b = b;
  Rng rng(seed + 1);
  const crypto::KeyPair pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = pair.public_key;
  for (std::uint32_t i = 0; i < n; ++i) config.servers.push_back(NodeId{i});
  std::vector<std::unique_ptr<baselines::MqServer>> servers;
  for (std::uint32_t i = 0; i < n; ++i) {
    servers.push_back(std::make_unique<baselines::MqServer>(transport, NodeId{i}, config));
  }
  baselines::MqClient client(transport, NodeId{1000}, ClientId{1}, pair, config,
                             baselines::MqClient::Options{seconds(5)}, rng.fork());

  sim::Samples write_samples, read_samples;
  for (int op = 0; op < kOpsPerCell; ++op) {
    const ItemId item{static_cast<std::uint64_t>(100 + op)};
    {
      const SimTime start = scheduler.now();
      std::optional<VoidResult> slot;
      client.write(item, to_bytes("payload"), [&](VoidResult r) { slot = std::move(r); });
      while (!slot && scheduler.step()) {
      }
      if (slot && slot->ok()) write_samples.add(to_milliseconds(scheduler.now() - start));
    }
    {
      const SimTime start = scheduler.now();
      std::optional<Result<Bytes>> slot;
      client.read(item, [&](Result<Bytes> r) { slot = std::move(r); });
      while (!slot && scheduler.step()) {
      }
      if (slot && slot->ok()) read_samples.add(to_milliseconds(scheduler.now() - start));
    }
  }
  return {write_samples.mean(), read_samples.mean(), {}};
}

double pbft_latency(std::uint32_t f, std::uint64_t seed,
                    sim::LinkProfile profile = sim::wan_profile()) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(seed), profile));
  baselines::PbftConfig config;
  config.f = f;
  for (std::uint32_t i = 0; i < 3 * f + 1; ++i) config.replicas.push_back(NodeId{i});
  config.session_master = to_bytes("bench session master");
  std::vector<std::unique_ptr<baselines::PbftReplica>> replicas;
  for (const NodeId id : config.replicas) {
    replicas.push_back(std::make_unique<baselines::PbftReplica>(transport, id, config));
  }
  baselines::PbftClient client(transport, NodeId{1000}, config);

  sim::Samples samples;
  for (int op = 0; op < kOpsPerCell; ++op) {
    const SimTime start = scheduler.now();
    std::optional<Result<Bytes>> slot;
    client.execute(
        baselines::PbftOp{baselines::PbftOp::Kind::kPut,
                          ItemId{static_cast<std::uint64_t>(100 + op)}, to_bytes("payload")},
        [&](Result<Bytes> r) { slot = std::move(r); });
    while (!slot && scheduler.step()) {
    }
    if (slot && slot->ok()) samples.add(to_milliseconds(scheduler.now() - start));
  }
  return samples.mean();
}

void lan_crossover();

void run() {
  print_title("E4: WAN response time (ms), mean over 20 ops, 60-100 ms links");
  print_claim(
      "weak-consistency small quorums beat strong-consistency quorums and "
      "PBFT-style SMR when inter-replica latency is high");

  Table table({"n", "b", "ss_write", "ss_read", "mq_write", "mq_read", "pbft_op", "ss_msgs"});
  table.print_header();

  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e4_latency_wan");

  sim::TransportStats total;
  for (std::uint32_t b : {1u, 2u, 3u, 4u}) {
    const std::uint32_t n = 3 * b + 1;
    const LatencyPair ss = secure_store_latency(n, b, /*seed=*/100 + b, registry);
    const LatencyPair mq = masking_quorum_latency(n, b, /*seed=*/200 + b);
    const double pbft = pbft_latency(b, /*seed=*/300 + b);
    total.messages_sent += ss.transport.messages_sent;
    total.messages_dropped += ss.transport.messages_dropped;
    total.bytes_sent += ss.transport.bytes_sent;

    json.begin_row();
    json.field("n", static_cast<std::uint64_t>(n));
    json.field("b", static_cast<std::uint64_t>(b));
    json.field("ss_write_ms", ss.write_ms);
    json.field("ss_read_ms", ss.read_ms);
    json.field("mq_write_ms", mq.write_ms);
    json.field("mq_read_ms", mq.read_ms);
    json.field("pbft_op_ms", pbft);
    json.field("ss_msgs", ss.transport.messages_sent);

    table.cell(static_cast<std::uint64_t>(n));
    table.cell(static_cast<std::uint64_t>(b));
    table.cell(ss.write_ms);
    table.cell(ss.read_ms);
    table.cell(mq.write_ms);
    table.cell(mq.read_ms);
    table.cell(pbft);
    table.cell(ss.transport.messages_sent);
    table.end_row();
  }
  std::printf("\nss transport totals: %llu msgs, %llu bytes, %llu dropped "
              "(drops would indicate simulated loss; this profile has none)\n",
              static_cast<unsigned long long>(total.messages_sent),
              static_cast<unsigned long long>(total.bytes_sent),
              static_cast<unsigned long long>(total.messages_dropped));

  std::printf(
      "\nss writes = one round trip to b+1 servers (max of b+1 latency\n"
      "samples). Masking-quorum writes serialize TWO quorum round trips, and\n"
      "the max over a larger quorum is itself larger. PBFT pays request +\n"
      "pre-prepare + prepare + commit + reply: ~4 WAN hops before the client\n"
      "hears back, the §6 prediction for high-latency environments.\n");

  emit_metrics(json, *registry);

  lan_crossover();
}

/// The OTHER half of §6's PBFT assessment: "this implementation is shown to
/// be efficient in the common case when clients and servers have high
/// bandwidth connectivity" — because MAC authenticators (~µs) replace
/// signatures (~hundreds of µs), and on a fast LAN computation, not message
/// count, dominates. We estimate total op time as simulated network latency
/// plus the measured crypto time implied by each protocol's operation
/// counts (signatures/verifies/MACs, priced by this host's E10 numbers).
void lan_crossover() {
  std::printf("\n--- LAN crossover: network + crypto-adjusted op time (n=4, b=1) ---\n");

  // Price the primitives on this host.
  Rng rng(1);
  const crypto::KeyPair pair = crypto::KeyPair::generate(rng);
  const Bytes message = rng.bytes(256);
  auto time_us = [](auto&& fn, int iterations) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) fn();
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     start)
               .count() /
           iterations;
  };
  const double sign_us = time_us([&] { (void)crypto::ed25519_sign(pair.seed, message); }, 30);
  const Bytes signature = crypto::ed25519_sign(pair.seed, message);
  const double verify_us = time_us(
      [&] { (void)crypto::ed25519_verify(pair.public_key, message, signature); }, 30);
  const double mac_us =
      time_us([&] { (void)crypto::hmac_sha256(pair.seed, message); }, 2000);

  Table table({"profile", "protocol", "net_ms", "crypto_ms", "total_ms"});
  table.print_header();

  struct Row {
    const char* name;
    double signs, verifies, macs;  // per write op, whole system critical path*
  };
  // Critical-path crypto: ss write = client sign + ONE server verify (the
  // b+1 verifies run in parallel on different servers); mq = sign + one
  // verify per phase server (parallel too) => sign + verify; PBFT-lite
  // = ~2n MAC ops on the slowest replica's path (authenticator make+check
  // per phase) — generously rounded up.
  const Row rows[] = {
      {"securestore", 1, 1, 0},
      {"masking-q", 1, 1, 0},
      {"pbft", 0, 0, 2.0 * 4},
  };

  for (const bool wan : {false, true}) {
    // Measure pure network time with the crypto meter ignored.
    testkit::ClusterOptions options;
    options.n = 4;
    options.b = 1;
    options.link = wan ? sim::wan_profile() : sim::lan_profile();
    options.seed = wan ? 900 : 901;

    const LatencyPair ss = [&] {
      testkit::Cluster cluster(options);
      core::GroupPolicy policy = mrc_policy();
      cluster.set_group_policy(policy);
      core::SecureStoreClient::Options client_options;
      client_options.policy = policy;
      client_options.round_timeout = seconds(2);
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());
      sim::Samples samples;
      for (int op = 0; op < 10; ++op) {
        const OpCost cost = measure(cluster, [&] {
          return sync.write(ItemId{100 + static_cast<std::uint64_t>(op)},
                            to_bytes("payload"))
              .ok();
        });
        if (cost.ok) samples.add(to_milliseconds(cost.latency));
      }
      return LatencyPair{samples.mean(), 0, {}};
    }();
    const LatencyPair mq = masking_quorum_latency(4, 1, options.seed + 10, options.link);
    const double pbft = pbft_latency(1, options.seed + 20, options.link);
    const double nets[] = {ss.write_ms, mq.write_ms, pbft};

    for (std::size_t i = 0; i < std::size(rows); ++i) {
      const double crypto_ms =
          (rows[i].signs * sign_us + rows[i].verifies * verify_us + rows[i].macs * mac_us) /
          1000.0;
      table.cell(std::string(wan ? "WAN" : "LAN"));
      table.cell(std::string(rows[i].name));
      table.cell(nets[i]);
      table.cell(crypto_ms, 3);
      table.cell(nets[i] + crypto_ms);
      table.end_row();
    }
  }

  std::printf(
      "\nOn the LAN, crypto dominates: PBFT's MACs (~%.0f us each) make its\n"
      "total competitive despite O(n^2) messages — §6's concession that [3]\n"
      "'is shown to be efficient in the common case'. On the WAN the network\n"
      "term takes over and the secure store's single small-quorum round trip\n"
      "wins — the same table, both halves of the paper's argument.\n",
      mac_us);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
