// Experiment E9 — ablations on the design choices DESIGN.md calls out.
//
//  A. Gossip fanout & push-on-write: convergence time and server bandwidth
//     ("a frequency that can be tuned according to the needs of the clients
//     or the resources available to the servers", §5.2).
//  B. Random timestamp increments (§5.2 privacy): what the obfuscation
//     costs (nothing but timestamp-space).
//  C. Fragmentation-scattering (§3 / Fray et al. [18], Rabin [14]):
//     storage-per-server and CPU of IDA+Shamir versus full replication —
//     the complementary confidentiality technique the paper cites.
#include <chrono>

#include "bench_common.h"
#include "core/scatter.h"
#include "crypto/ida.h"
#include "crypto/shamir.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kItem{100};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

void gossip_ablation(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- A. gossip fanout / push-on-write (n=10, b=3) ---\n");
  Table table({"fanout", "push", "converge_ms", "msgs_total", "msgs_gossip"});
  table.print_header();

  for (const unsigned fanout : {1u, 2u, 3u}) {
    for (const bool push : {false, true}) {
      testkit::ClusterOptions options;
      options.n = 10;
      options.b = 3;
      options.seed = 77;
      options.gossip.period = milliseconds(500);
      options.gossip.fanout = fanout;
      options.gossip.push_on_write = push;
      options.registry = registry;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());

      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());

      const auto stats_before = cluster.transport().stats();
      const OpCost write_cost =
          measure(cluster, [&] { return sync.write(kItem, to_bytes("spread")).ok(); });

      const SimTime start = cluster.scheduler().now();
      auto everywhere = [&] {
        for (std::size_t s = 0; s < cluster.server_count(); ++s) {
          if (cluster.server(s).store().current(kItem) == nullptr) return false;
        }
        return true;
      };
      while (!everywhere() && cluster.scheduler().now() - start < seconds(60)) {
        cluster.run_for(milliseconds(20));
      }
      const double converge_ms = to_milliseconds(cluster.scheduler().now() - start);
      const std::uint64_t total =
          cluster.transport().stats().messages_sent - stats_before.messages_sent;

      json.begin_row();
      json.field("section", "gossip");
      json.field("fanout", static_cast<std::uint64_t>(fanout));
      json.field("push_on_write", push ? "yes" : "no");
      json.field("converge_ms", converge_ms);
      json.field("msgs_total", total);
      json.field("msgs_gossip", total - write_cost.messages);

      table.cell(static_cast<std::uint64_t>(fanout));
      table.cell(std::string(push ? "yes" : "no"));
      table.cell(converge_ms);
      table.cell(total);
      table.cell(total - write_cost.messages);
      table.end_row();
    }
  }
  std::printf(
      "\nHigher fanout / push-on-write converge faster at more messages — the\n"
      "bandwidth/freshness dial §5.2 describes.\n\n");
}

void privacy_ablation() {
  std::printf("--- B. random timestamp increments (§5.2 privacy) ---\n");
  for (const bool random_increment : {false, true}) {
    testkit::ClusterOptions options;
    options.n = 4;
    options.b = 1;
    options.seed = 11;
    testkit::Cluster cluster(options);
    cluster.set_group_policy(mrc_policy());

    core::SecureStoreClient::Options client_options;
    client_options.policy = mrc_policy();
    client_options.random_ts_increment = random_increment;
    auto client = cluster.make_client(ClientId{1}, client_options);
    core::SyncClient sync(*client, cluster.scheduler());

    std::uint64_t messages = 0;
    std::vector<std::uint64_t> timestamps;
    for (int i = 0; i < 10; ++i) {
      const OpCost cost =
          measure(cluster, [&] { return sync.write(kItem, to_bytes("v")).ok(); });
      messages += cost.messages;
      timestamps.push_back(client->context().get(kItem).time);
    }

    // Can an observer count updates from consecutive timestamps?
    std::uint64_t min_gap = ~0ull, max_gap = 0;
    for (std::size_t i = 1; i < timestamps.size(); ++i) {
      const std::uint64_t gap = timestamps[i] - timestamps[i - 1];
      min_gap = std::min(min_gap, gap);
      max_gap = std::max(max_gap, gap);
    }
    std::printf("  random_increment=%-3s msgs/10 writes = %llu, ts gap range = [%llu, %llu]\n",
                random_increment ? "yes" : "no",
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(min_gap),
                static_cast<unsigned long long>(max_gap));
  }
  std::printf(
      "  identical message cost; randomized gaps deny servers an update\n"
      "  count, as §5.2 proposes.\n\n");
}

void fragmentation_ablation() {
  std::printf("--- C. fragmentation-scattering (IDA + Shamir) vs replication ---\n");
  Table table({"value_KB", "scheme", "per_server_B", "total_B", "encode_us", "decode_us"});
  table.print_header();

  Rng rng(13);
  for (const std::size_t kilobytes : {1u, 16u, 64u}) {
    const Bytes value = rng.bytes(kilobytes * 1024);
    constexpr unsigned n = 7, m = 3;  // any 3 of 7 fragments reconstruct

    // Full replication at b+1 = 3 servers (the secure store's layout).
    table.cell(static_cast<std::uint64_t>(kilobytes));
    table.cell(std::string("replicate"));
    table.cell(static_cast<std::uint64_t>(value.size()));
    table.cell(static_cast<std::uint64_t>(value.size() * 3));
    table.cell(0.0);
    table.cell(0.0);
    table.end_row();

    // IDA over all 7 servers: each holds |v|/m, any m reconstruct.
    const auto t0 = std::chrono::steady_clock::now();
    const auto fragments = crypto::ida_disperse(value, m, n);
    const auto t1 = std::chrono::steady_clock::now();
    const Bytes restored =
        crypto::ida_reconstruct(std::span(fragments).first(m), m);
    const auto t2 = std::chrono::steady_clock::now();
    if (restored != value) std::printf("  !! IDA roundtrip mismatch\n");

    table.cell(static_cast<std::uint64_t>(kilobytes));
    table.cell(std::string("ida(3,7)"));
    table.cell(static_cast<std::uint64_t>(fragments[0].data.size()));
    table.cell(static_cast<std::uint64_t>(fragments[0].data.size() * n));
    table.cell(std::chrono::duration<double, std::micro>(t1 - t0).count());
    table.cell(std::chrono::duration<double, std::micro>(t2 - t1).count());
    table.end_row();
  }

  // Shamir for the (small) item keys.
  {
    Rng key_rng(14);
    const Bytes key = key_rng.bytes(32);
    const auto t0 = std::chrono::steady_clock::now();
    const auto shares = crypto::shamir_split(key, 3, 7, key_rng);
    const auto t1 = std::chrono::steady_clock::now();
    const Bytes back = crypto::shamir_combine(std::span(shares).first(3), 3);
    const auto t2 = std::chrono::steady_clock::now();
    std::printf(
        "\n  32-B key via Shamir(3,7): split %.1f us, combine %.1f us, share = 32 B;\n"
        "  fewer than 3 compromised servers learn nothing about the key.\n",
        std::chrono::duration<double, std::micro>(t1 - t0).count(),
        std::chrono::duration<double, std::micro>(t2 - t1).count());
    if (back != key) std::printf("  !! Shamir roundtrip mismatch\n");
  }

  std::printf(
      "\n  IDA stores |v|/m per server (vs |v| under replication) and spreads\n"
      "  bulk data across all n servers; pairing it with Shamir-shared keys\n"
      "  is the fragmentation-scattering design of [18]/[14] that §3 cites\n"
      "  as complementary to the secure store.\n");
}

void dynamic_quorum_ablation(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- D. dynamic Byzantine quorums (§3, Alvisi et al.) ---\n");
  Table table({"b", "mode", "wr_msgs", "rd_msgs"});
  table.print_header();

  for (std::uint32_t b : {1u, 2u, 3u}) {
    for (const bool dynamic : {false, true}) {
      testkit::ClusterOptions options;
      options.n = 3 * b + 1;
      options.b = b;
      options.start_gossip = false;
      options.registry = registry;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());

      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      if (dynamic) {
        client_options.dynamic_quorums =
            core::FaultEstimator::Config{.b_min = 0, .b_max = b, .soft_strikes = 2};
      }
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());

      const OpCost write_cost =
          measure(cluster, [&] { return sync.write(kItem, to_bytes("v")).ok(); });
      const OpCost read_cost = measure(cluster, [&] { return sync.read_value(kItem).ok(); });

      json.begin_row();
      json.field("section", "dynamic_quorums");
      json.field("b", static_cast<std::uint64_t>(b));
      json.field("mode", dynamic ? "dynamic" : "static");
      json.field("write_msgs", write_cost.messages);
      json.field("read_msgs", read_cost.messages);

      table.cell(static_cast<std::uint64_t>(b));
      table.cell(std::string(dynamic ? "dynamic" : "static"));
      table.cell(write_cost.messages);
      table.cell(read_cost.messages);
      table.end_row();
    }
  }
  std::printf(
      "\nFair weather (no fault evidence): dynamic quorums touch a single\n"
      "server per op regardless of b — 2 messages instead of 2(b+1) — and\n"
      "grow back to b+1 as evidence accumulates (see extensions tests).\n\n");
}

void scattered_store_ablation() {
  std::printf("--- E. scattered store end-to-end vs replicated store (n=7, b=2) ---\n");
  Table table({"value_KB", "mode", "wr_msgs", "wr_bytes", "rd_msgs", "per_server_B"});
  table.print_header();

  Rng data_rng(21);
  for (const std::size_t kilobytes : {4u, 64u}) {
    const Bytes value = data_rng.bytes(kilobytes * 1024);
    const ItemId item{700 + kilobytes};

    // Replicated (plain secure store).
    {
      testkit::ClusterOptions options;
      options.n = 7;
      options.b = 2;
      options.start_gossip = false;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());
      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());

      const OpCost write_cost = measure(cluster, [&] { return sync.write(item, value).ok(); });
      const OpCost read_cost = measure(cluster, [&] { return sync.read_value(item).ok(); });

      table.cell(static_cast<std::uint64_t>(kilobytes));
      table.cell(std::string("replicate"));
      table.cell(write_cost.messages);
      table.cell(write_cost.bytes);
      table.cell(read_cost.messages);
      table.cell(static_cast<std::uint64_t>(value.size()));
      table.end_row();
    }

    // Scattered.
    {
      testkit::ClusterOptions options;
      options.n = 7;
      options.b = 2;
      options.start_gossip = false;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());
      core::ScatteredStore::Options store_options;
      store_options.policy = mrc_policy();
      core::ScatteredStore store(cluster.transport(), NodeId{1500}, ClientId{1},
                                 cluster.client_keys(ClientId{1}), cluster.config(),
                                 store_options, Rng(22));

      auto drive_write = [&] {
        bool ok = false, done = false;
        store.write(item, value, [&](VoidResult r) {
          ok = r.ok();
          done = true;
        });
        while (!done && cluster.scheduler().step()) {
        }
        return ok;
      };
      auto drive_read = [&] {
        bool ok = false, done = false;
        store.read(item, [&](Result<Bytes> r) {
          ok = r.ok() && *r == value;
          done = true;
        });
        while (!done && cluster.scheduler().step()) {
        }
        return ok;
      };

      const OpCost write_cost = measure(cluster, drive_write);
      const OpCost read_cost = measure(cluster, drive_read);
      const std::size_t per_server =
          cluster.server(0).store().current(core::fragment_item(item, 0))->value.size();

      table.cell(static_cast<std::uint64_t>(kilobytes));
      table.cell(std::string("scatter"));
      table.cell(write_cost.messages);
      table.cell(write_cost.bytes);
      table.cell(read_cost.messages);
      table.cell(static_cast<std::uint64_t>(per_server));
      table.end_row();
    }
  }
  std::printf(
      "\nScattering talks to all n servers (more datagrams) but moves ~n/(b+1)x\n"
      "fewer total bytes for writes and stores 1/(b+1) of the value per\n"
      "server; plus the [18]-style confidentiality threshold. Replication\n"
      "reads are cheaper (b+1 servers, one value copy).\n");
}

void run() {
  print_title("E9: ablations — gossip tuning, ts privacy, fragmentation");
  print_claim("design knobs the paper discusses qualitatively, priced");
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e9_ablations");
  gossip_ablation(json, registry);
  privacy_ablation();
  fragmentation_ablation();
  dynamic_quorum_ablation(json, registry);
  scattered_store_ablation();
  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
