// Experiment E15 — server hot-path saturation: batched Ed25519 verify.
//
// Two levels, one claim: draining request bursts from the delivery ring and
// verifying their signatures as one Ed25519 batch (shared-doubling
// multi-scalar multiplication) buys back most of the per-request signature
// cost that makes the server CPU-bound under load.
//
//   1. verify_micro — raw verification throughput, one-at-a-time vs
//      ed25519_batch_verify, at batch sizes 4/16/64. This is the
//      server-side verify path with everything else stripped away; the
//      acceptance bar is >= 2x at realistic drain sizes.
//   2. saturation — the full stack on the wall-clock threaded transport,
//      pipelined writes from several clients, with delivery batching
//      toggled via set_max_batch(1) (one request per wakeup: the old
//      handoff) vs set_max_batch(32). The server.batch_size histogram
//      shows how large the coalesced batches actually get.
#include <chrono>
#include <functional>
#include <future>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "crypto/ed25519.h"
#include "crypto/ed25519_batch.h"
#include "net/thread_transport.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Repeats `round` (which returns the number of verifies it performed)
/// until enough wall time accumulates for a stable rate.
double verifies_per_second(const std::function<std::size_t()>& round) {
  constexpr double kMinSeconds = 0.3;
  const auto start = std::chrono::steady_clock::now();
  std::size_t done = 0;
  double elapsed = 0;
  do {
    done += round();
    elapsed = seconds_since(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(done) / elapsed;
}

void verify_micro_table(BenchJson& json) {
  std::printf("--- server-side verify throughput: one-at-a-time vs batch ---\n");
  Table table({"batch", "single_vps", "batch_vps", "speedup"});
  table.print_header();

  for (const std::size_t batch : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    // Distinct keys and messages per slot — exactly what a drained batch of
    // requests from different writers looks like.
    Rng rng(batch * 7 + 1);
    std::vector<crypto::KeyPair> pairs;
    std::vector<Bytes> messages;
    std::vector<Bytes> signatures;
    for (std::size_t i = 0; i < batch; ++i) {
      pairs.push_back(crypto::KeyPair::generate(rng));
      messages.push_back(rng.bytes(128));
      signatures.push_back(crypto::ed25519_sign(pairs.back().seed, messages.back()));
    }
    std::vector<crypto::BatchVerifyItem> items;
    for (std::size_t i = 0; i < batch; ++i) {
      items.push_back(
          crypto::BatchVerifyItem{pairs[i].public_key, messages[i], signatures[i]});
    }

    bool all_ok = true;
    const double single_vps = verifies_per_second([&] {
      for (std::size_t i = 0; i < batch; ++i) {
        all_ok &= crypto::ed25519_verify(pairs[i].public_key, messages[i], signatures[i]);
      }
      return batch;
    });
    const double batch_vps = verifies_per_second([&] {
      all_ok &= crypto::ed25519_batch_verify(items).all_valid;
      return batch;
    });
    if (!all_ok) {
      std::fprintf(stderr, "error: verification failed during measurement\n");
      std::exit(EXIT_FAILURE);
    }

    const double speedup = batch_vps / single_vps;
    json.begin_row();
    json.field("section", "verify_micro");
    json.field("batch", static_cast<std::uint64_t>(batch));
    json.field("single_verifies_per_s", single_vps);
    json.field("batch_verifies_per_s", batch_vps);
    json.field("speedup", speedup);
    table.cell(static_cast<std::uint64_t>(batch));
    table.cell(single_vps, 0);
    table.cell(batch_vps, 0);
    table.cell(speedup, 2);
    table.end_row();
  }
  std::printf(
      "\nStraus' trick shares the 256 point doublings across the whole\n"
      "batch; per-signature cost falls toward the addition chains alone.\n\n");
}

/// E11's live deployment, widened: several client principals and a
/// configurable delivery batch cap on the dispatcher.
struct SaturationDeployment {
  net::ThreadTransport transport;
  core::StoreConfig config;
  std::vector<crypto::KeyPair> client_pairs;
  std::vector<std::unique_ptr<core::SecureStoreServer>> servers;
  std::vector<std::unique_ptr<core::SecureStoreClient>> clients;

  SaturationDeployment(std::uint32_t n, std::uint32_t b, std::size_t max_batch,
                       std::uint32_t client_count, std::shared_ptr<obs::Registry> registry)
      : transport(sim::NetworkModel(
                      Rng(1), sim::LinkProfile{microseconds(200), microseconds(100), 0}),
                  std::move(registry)) {
    transport.set_max_batch(max_batch);
    config.n = n;
    config.b = b;
    Rng rng(2);
    for (std::uint32_t c = 1; c <= client_count; ++c) {
      client_pairs.push_back(crypto::KeyPair::generate(rng));
      config.client_keys[c] = client_pairs.back().public_key;
    }
    std::vector<crypto::KeyPair> server_pairs;
    for (std::uint32_t i = 0; i < n; ++i) {
      config.servers.push_back(NodeId{i});
      server_pairs.push_back(crypto::KeyPair::generate(rng));
      config.server_keys[NodeId{i}] = server_pairs.back().public_key;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      core::SecureStoreServer::Options options;
      options.gossip.period = milliseconds(200);
      servers.push_back(std::make_unique<core::SecureStoreServer>(
          transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
      servers.back()->set_group_policy(mrc_policy());
    }
    for (std::uint32_t c = 1; c <= client_count; ++c) {
      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      clients.push_back(std::make_unique<core::SecureStoreClient>(
          transport, NodeId{1000 + c}, ClientId{c}, client_pairs[c - 1], config,
          client_options, rng.fork()));
    }
  }

  ~SaturationDeployment() { transport.stop(); }
};

void saturation_table(BenchJson& json, std::shared_ptr<obs::Registry>& batched_registry) {
  std::printf("--- pipelined write saturation (n=4 b=1, 4 clients x 8 in flight) ---\n");
  Table table({"max_batch", "ops", "seconds", "ops_per_s", "batch_mean"});
  table.print_header();

  constexpr std::uint32_t kClients = 4;
  constexpr int kWindow = 8;
  constexpr int kOpsPerClient = 75;
  constexpr int kTotalOps = static_cast<int>(kClients) * kOpsPerClient;

  for (const std::size_t max_batch : {std::size_t{1}, std::size_t{32}}) {
    auto registry = std::make_shared<obs::Registry>();
    SaturationDeployment deployment(4, 1, max_batch, kClients, registry);
    const Bytes value(256, 0x42);

    const auto start = std::chrono::steady_clock::now();
    std::atomic<int> completed{0};
    std::promise<void> all_done;
    std::vector<std::shared_ptr<std::atomic<int>>> issued;
    for (std::uint32_t c = 0; c < kClients; ++c) {
      issued.push_back(std::make_shared<std::atomic<int>>(0));
    }

    // Per-client issue loop: keep `kWindow` writes in flight until the
    // client's quota is spent. All closures run on the dispatch thread.
    std::function<void(std::uint32_t)> issue_next = [&](std::uint32_t c) {
      const int op = issued[c]->fetch_add(1);
      if (op >= kOpsPerClient) return;
      deployment.clients[c]->write(
          ItemId{static_cast<std::uint64_t>(c * 100 + op % 16)}, value, [&, c](VoidResult) {
            if (completed.fetch_add(1) + 1 == kTotalOps) {
              all_done.set_value();
            } else {
              issue_next(c);
            }
          });
    };
    deployment.transport.schedule(0, [&] {
      for (std::uint32_t c = 0; c < kClients; ++c) {
        for (int i = 0; i < kWindow; ++i) issue_next(c);
      }
    });
    all_done.get_future().wait();
    const double seconds_elapsed = seconds_since(start);

    double batch_mean = 0;
    const obs::MetricsSnapshot snapshot = registry->snapshot();
    for (const auto& [name, histogram] : snapshot.histograms) {
      if (name == "server.batch_size") batch_mean = histogram.mean();
    }

    json.begin_row();
    json.field("section", "saturation");
    json.field("max_batch", static_cast<std::uint64_t>(max_batch));
    json.field("ops", static_cast<std::uint64_t>(kTotalOps));
    json.field("seconds", seconds_elapsed);
    json.field("ops_per_s", static_cast<double>(kTotalOps) / seconds_elapsed);
    json.field("server_batch_size_mean", batch_mean);
    table.cell(static_cast<std::uint64_t>(max_batch));
    table.cell(static_cast<std::uint64_t>(kTotalOps));
    table.cell(seconds_elapsed, 3);
    table.cell(static_cast<double>(kTotalOps) / seconds_elapsed, 0);
    table.cell(batch_mean, 2);
    table.end_row();

    if (max_batch > 1) batched_registry = registry;
  }
  std::printf(
      "\nmax_batch=1 re-creates the per-request handoff; max_batch=32 lets\n"
      "the dispatcher drain bursts and the server verify them as one batch.\n"
      "End-to-end gains are smaller than verify_micro because client-side\n"
      "signing (unbatchable) shares the same core.\n");
}

void run() {
  print_title("E15: hot-path saturation — batched signature verification");
  print_claim(
      "'the computational overhead of digital signatures' (SS6) — amortized "
      "by verifying request bursts as one Ed25519 batch");
  BenchJson json("e15_saturation");
  verify_micro_table(json);
  std::shared_ptr<obs::Registry> batched_registry;
  saturation_table(json, batched_registry);
  if (batched_registry != nullptr) emit_metrics(json, *batched_registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
