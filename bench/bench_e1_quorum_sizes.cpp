// Experiment E1 — quorum sizes and context-operation message counts.
//
// §5.1/§6 claims reproduced here:
//  * context quorum is ⌈(n+b+1)/2⌉, needing only b+1 servers in quorum
//    intersections, versus ⌈(n+2b+1)/2⌉ for Byzantine masking quorums
//    (which need 2b+1 in the intersection);
//  * a context read or write exchanges 2·⌈(n+b+1)/2⌉ messages;
//  * data operations need only b+1 (honest clients) or 2b+1 (malicious
//    clients) servers, independent of n.
//
// The quorum columns are computed from the same arithmetic the protocols
// use (StoreConfig); the message columns are *measured* by running the
// protocol in the simulator and counting datagrams.
#include "baselines/grid_quorum.h"
#include "bench_common.h"

namespace securestore::bench {
namespace {

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

/// Measured messages for one context acquisition + one context store in a
/// fault-free cluster of (n, b).
std::pair<std::uint64_t, std::uint64_t> measured_context_messages(
    std::uint32_t n, std::uint32_t b, std::shared_ptr<obs::Registry> registry) {
  testkit::ClusterOptions options;
  options.n = n;
  options.b = b;
  options.start_gossip = false;  // keep the counters pure
  options.registry = std::move(registry);
  testkit::Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  core::SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  core::SyncClient sync(*client, cluster.scheduler());

  const OpCost read_cost = measure(cluster, [&] { return sync.connect(GroupId{1}).ok(); });
  const OpCost write_cost = measure(cluster, [&] { return sync.disconnect().ok(); });
  return {read_cost.messages, write_cost.messages};
}

void run() {
  print_title("E1: quorum sizes vs (n, b)");
  print_claim(
      "context quorum ceil((n+b+1)/2) < masking quorum ceil((n+2b+1)/2); "
      "context op = 2*ceil((n+b+1)/2) msgs; data ops need only b+1 / 2b+1 servers");

  Table table({"n", "b", "ctx_quorum", "masking_q", "mgrid_q", "data_hon", "data_byz",
               "ctx_msgs_pred", "ctx_rd_meas", "ctx_wr_meas"}, 13);
  table.print_header();

  // One registry across every (n, b) cell: the client.p1.* histograms in
  // the sidecar aggregate the whole sweep.
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e1_quorum_sizes");

  for (std::uint32_t n : {4u, 7u, 10u, 13u, 16u, 25u, 40u, 100u}) {
    for (std::uint32_t b = 1; 3 * b + 1 <= n && b <= 8; ++b) {
      core::StoreConfig config;
      config.n = n;
      config.b = b;

      const std::uint64_t predicted = 2ull * config.context_quorum();
      const auto [read_messages, write_messages] = measured_context_messages(n, b, registry);

      json.begin_row();
      json.field("n", static_cast<std::uint64_t>(n));
      json.field("b", static_cast<std::uint64_t>(b));
      json.field("ctx_quorum", static_cast<std::uint64_t>(config.context_quorum()));
      json.field("masking_quorum", static_cast<std::uint64_t>(config.masking_quorum()));
      json.field("data_honest", static_cast<std::uint64_t>(config.data_quorum_honest()));
      json.field("data_byzantine", static_cast<std::uint64_t>(config.data_quorum_byzantine()));
      json.field("ctx_msgs_predicted", predicted);
      json.field("ctx_read_measured", read_messages);
      json.field("ctx_write_measured", write_messages);

      table.cell(static_cast<std::uint64_t>(n));
      table.cell(static_cast<std::uint64_t>(b));
      table.cell(static_cast<std::uint64_t>(config.context_quorum()));
      table.cell(static_cast<std::uint64_t>(config.masking_quorum()));
      if (baselines::MGrid::valid_parameters(n, b)) {
        table.cell(static_cast<std::uint64_t>(baselines::MGrid(n, b).quorum_size()));
      } else {
        table.cell(std::string("-"));
      }
      table.cell(static_cast<std::uint64_t>(config.data_quorum_honest()));
      table.cell(static_cast<std::uint64_t>(config.data_quorum_byzantine()));
      table.cell(predicted);
      table.cell(read_messages);
      table.cell(write_messages);
      table.end_row();
    }
  }

  std::printf(
      "\nNote: measured context read/write messages each equal the predicted\n"
      "2*ceil((n+b+1)/2) (q requests + q replies) in fault-free runs, and the\n"
      "context quorum is strictly smaller than the masking quorum for all b>0.\n"
      "mgrid_q is the O(sqrt(bn)) 'improved quorum design' of §6 (square n\n"
      "only): smaller than majority masking at scale, but the secure store's\n"
      "b+1 / 2b+1 data sets stay below even that, independent of n.\n");

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
