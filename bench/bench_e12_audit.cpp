// Experiment E12 — cost and efficacy of the audit subsystem (the [6]-style
// "logging and auditing of writes" defense §3 discusses as the complement
// to the paper's fast-path protocols).
//
// Measures (a) server-side log growth, (b) the messages/bytes/latency of a
// full audit pass as the history and cluster grow, and (c) detection: a
// durability-lying server is attributed by name.
#include "bench_common.h"
#include "core/auditor.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

Result<core::Auditor::Report> run_audit(testkit::Cluster& cluster,
                                        core::Auditor::Options options = {}) {
  core::Auditor auditor(cluster.transport(), NodeId{5000}, cluster.config(), options);
  std::optional<Result<core::Auditor::Report>> slot;
  auditor.run([&](Result<core::Auditor::Report> r) { slot = std::move(r); });
  while (!slot && cluster.scheduler().step()) {
  }
  if (!slot) return Result<core::Auditor::Report>(Error::kTimeout);
  return std::move(*slot);
}

void cost_table(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- audit pass cost vs history size and cluster size ---\n");
  Table table({"n", "writes", "log_entries", "audit_msgs", "audit_KB", "audit_ms"});
  table.print_header();

  for (const std::uint32_t n : {4u, 7u}) {
    for (const int writes : {10, 50, 200}) {
      testkit::ClusterOptions options;
      options.n = n;
      options.b = (n - 1) / 3;
      options.gossip.period = milliseconds(100);
      options.link = sim::wan_profile();
      options.registry = registry;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());

      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());
      for (int i = 0; i < writes; ++i) {
        (void)sync.write(ItemId{10 + static_cast<std::uint64_t>(i % 16)},
                         to_bytes("payload " + std::to_string(i)));
      }
      cluster.run_for(seconds(20));

      std::size_t log_entries = 0;
      for (std::size_t s = 0; s < cluster.server_count(); ++s) {
        log_entries += cluster.server(s).audit_log().size();
      }

      const auto stats_before = cluster.transport().stats();
      const SimTime start = cluster.scheduler().now();
      const auto report = run_audit(cluster);
      const bool clean = report.ok() && report->findings.empty();

      json.begin_row();
      json.field("n", static_cast<std::uint64_t>(n));
      json.field("writes", static_cast<std::uint64_t>(writes));
      json.field("log_entries", static_cast<std::uint64_t>(log_entries));
      json.field("audit_msgs",
                 cluster.transport().stats().messages_sent - stats_before.messages_sent);
      json.field("audit_kb", static_cast<double>(cluster.transport().stats().bytes_sent -
                                                 stats_before.bytes_sent) /
                                 1024.0);
      json.field("audit_ms", to_milliseconds(cluster.scheduler().now() - start));

      table.cell(static_cast<std::uint64_t>(n));
      table.cell(static_cast<std::uint64_t>(writes));
      table.cell(log_entries);
      table.cell(cluster.transport().stats().messages_sent - stats_before.messages_sent);
      table.cell(static_cast<double>(cluster.transport().stats().bytes_sent -
                                     stats_before.bytes_sent) /
                 1024.0);
      table.cell(to_milliseconds(cluster.scheduler().now() - start));
      if (!clean) std::printf("  !! unexpected findings\n");
      table.end_row();
    }
  }
  std::printf(
      "\nOne audit = n requests + n log transfers (bytes grow with history;\n"
      "a production auditor would checkpoint verified prefixes). Latency is\n"
      "one WAN round trip to the slowest of n-b responders.\n\n");
}

void detection_demo() {
  std::printf("--- detection: durability-lying server attributed by name ---\n");
  testkit::ClusterOptions options;
  options.start_gossip = false;
  options.server_faults = {{0, {faults::ServerFault::kDropWrites}}};
  testkit::Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  core::SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  core::SyncClient sync(*client, cluster.scheduler());
  for (int i = 0; i < 8; ++i) {
    (void)sync.write(ItemId{static_cast<std::uint64_t>(100 + i)}, to_bytes("w"));
  }
  for (std::size_t s = 1; s < cluster.server_count(); ++s) {
    cluster.server(s).gossip().start();
  }
  cluster.run_for(seconds(10));

  core::Auditor::Options audit_options;
  audit_options.tolerate_tail = 1;
  const auto report = run_audit(cluster, audit_options);
  if (!report.ok()) {
    std::printf("  audit failed: %s\n", error_name(report.error()));
    return;
  }
  std::printf("  findings: %zu (all against S0: %s)\n", report->findings.size(),
              std::all_of(report->findings.begin(), report->findings.end(),
                          [](const auto& f) { return f.server == NodeId{0}; })
                  ? "yes"
                  : "NO");
  std::printf(
      "  the server that acknowledged writes without storing them is exposed\n"
      "  by cross-comparing hash-chained logs — silent suppression becomes\n"
      "  attributable evidence.\n");
}

void run() {
  print_title("E12: audit subsystem — cost and detection");
  print_claim(
      "\"logging and auditing of writes ... to detect and rectify damage done "
      "by malicious servers\" (§3's Bayou follow-up), priced on this system");
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e12_audit");
  cost_table(json, registry);
  detection_demo();
  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
