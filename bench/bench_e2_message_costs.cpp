// Experiment E2 — message costs per operation, secure store vs baselines.
//
// §6 claims reproduced here:
//  * secure-store data write completes with b+1 messages (one per contacted
//    server) plus b+1 replies; best-case read = meta round at b+1 servers
//    plus one value fetch;
//  * hardened multi-writer ops use 2b+1 servers;
//  * masking-quorum read/write each contact ceil((n+2b+1)/2) servers (write
//    twice: timestamp round + store round);
//  * PBFT-style SMR needs O(n^2) messages per operation.
//
// All columns are measured datagram counts from the simulator.
#include "baselines/masking_quorum.h"
#include "baselines/pbft.h"
#include "bench_common.h"
#include "net/sim_transport.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kItem{100};

core::GroupPolicy policy(core::SharingMode sharing, core::ClientTrust trust) {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC, sharing, trust};
}

struct SecureStoreCosts {
  OpCost write;
  OpCost read;
};

SecureStoreCosts secure_store_costs(std::uint32_t n, std::uint32_t b,
                                    core::SharingMode sharing, core::ClientTrust trust,
                                    std::shared_ptr<obs::Registry> registry,
                                    bool inline_reads = true) {
  testkit::ClusterOptions options;
  options.n = n;
  options.b = b;
  options.start_gossip = false;
  options.registry = std::move(registry);
  testkit::Cluster cluster(options);
  cluster.set_group_policy(policy(sharing, trust));

  core::SecureStoreClient::Options client_options;
  client_options.policy = policy(sharing, trust);
  client_options.stability_gc = false;  // isolate the §6 write cost (E7 measures GC)
  client_options.inline_reads = inline_reads;
  auto client = cluster.make_client(ClientId{1}, client_options);
  core::SyncClient sync(*client, cluster.scheduler());

  SecureStoreCosts costs;
  costs.write = measure(cluster, [&] { return sync.write(kItem, to_bytes("payload")).ok(); });
  costs.read = measure(cluster, [&] { return sync.read_value(kItem).ok(); });
  return costs;
}

std::pair<OpCost, OpCost> masking_quorum_costs(std::uint32_t n, std::uint32_t b,
                                               std::uint64_t seed = 7) {
  // Reuse Cluster's plumbing is not possible (different server type), so a
  // local harness mirrors it.
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(seed), sim::lan_profile()));
  core::StoreConfig config;
  config.n = n;
  config.b = b;
  Rng rng(seed + 1);
  const crypto::KeyPair pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = pair.public_key;
  for (std::uint32_t i = 0; i < n; ++i) config.servers.push_back(NodeId{i});

  std::vector<std::unique_ptr<baselines::MqServer>> servers;
  for (std::uint32_t i = 0; i < n; ++i) {
    servers.push_back(std::make_unique<baselines::MqServer>(transport, NodeId{i}, config));
  }
  baselines::MqClient client(transport, NodeId{1000}, ClientId{1}, pair, config,
                             baselines::MqClient::Options{}, rng.fork());

  auto run_until = [&](auto& slot) {
    while (!slot && scheduler.step()) {
    }
  };

  OpCost write_cost;
  {
    const auto before = transport.stats();
    const SimTime start = scheduler.now();
    std::optional<VoidResult> slot;
    client.write(kItem, to_bytes("payload"), [&](VoidResult r) { slot = std::move(r); });
    run_until(slot);
    write_cost.ok = slot.has_value() && slot->ok();
    write_cost.messages = transport.stats().messages_sent - before.messages_sent;
    write_cost.latency = scheduler.now() - start;
  }
  OpCost read_cost;
  {
    const auto before = transport.stats();
    const SimTime start = scheduler.now();
    std::optional<Result<Bytes>> slot;
    client.read(kItem, [&](Result<Bytes> r) { slot = std::move(r); });
    run_until(slot);
    read_cost.ok = slot.has_value() && slot->ok();
    read_cost.messages = transport.stats().messages_sent - before.messages_sent;
    read_cost.latency = scheduler.now() - start;
  }
  return {write_cost, read_cost};
}

OpCost pbft_costs(std::uint32_t f, std::uint64_t seed = 9) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(seed), sim::lan_profile()));
  baselines::PbftConfig config;
  config.f = f;
  for (std::uint32_t i = 0; i < 3 * f + 1; ++i) config.replicas.push_back(NodeId{i});
  config.session_master = to_bytes("bench session master");

  std::vector<std::unique_ptr<baselines::PbftReplica>> replicas;
  for (const NodeId id : config.replicas) {
    replicas.push_back(std::make_unique<baselines::PbftReplica>(transport, id, config));
  }
  baselines::PbftClient client(transport, NodeId{1000}, config);

  OpCost cost;
  const auto before = transport.stats();
  const SimTime start = scheduler.now();
  std::optional<Result<Bytes>> slot;
  client.execute(baselines::PbftOp{baselines::PbftOp::Kind::kPut, kItem, to_bytes("payload")},
                 [&](Result<Bytes> r) { slot = std::move(r); });
  while (!slot && scheduler.step()) {
  }
  cost.ok = slot.has_value() && slot->ok();
  cost.latency = scheduler.now() - start;
  // Let the trailing commit/reply traffic finish so the count is the full
  // per-operation cost, not just until the client's f+1 replies.
  scheduler.run_until(scheduler.now() + seconds(1));
  cost.messages = transport.stats().messages_sent - before.messages_sent;
  return cost;
}

void run() {
  print_title("E2: messages per operation — secure store vs baselines");
  print_claim(
      "write = b+1 server set; hardened multi-writer = 2b+1; masking quorum = "
      "ceil((n+2b+1)/2) per phase; PBFT O(n^2)");

  Table table({"n", "b", "ss_wr", "ss_rd", "ss_rd2ph", "ssB_wr", "ssB_rd", "mq_wr", "mq_rd",
               "pbft_op"},
              11);
  table.print_header();

  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e2_message_costs");

  for (std::uint32_t b : {1u, 2u, 3u, 4u}) {
    const std::uint32_t n = 3 * b + 1;

    const SecureStoreCosts honest = secure_store_costs(
        n, b, core::SharingMode::kSingleWriter, core::ClientTrust::kHonest, registry);
    const SecureStoreCosts two_phase = secure_store_costs(
        n, b, core::SharingMode::kSingleWriter, core::ClientTrust::kHonest, registry,
        /*inline_reads=*/false);
    const SecureStoreCosts hardened = secure_store_costs(
        n, b, core::SharingMode::kMultiWriter, core::ClientTrust::kByzantine, registry);
    const auto [mq_write, mq_read] = masking_quorum_costs(n, b);
    const OpCost pbft = pbft_costs(b);

    json.begin_row();
    json.field("n", static_cast<std::uint64_t>(n));
    json.field("b", static_cast<std::uint64_t>(b));
    json.field("ss_write_msgs", honest.write.messages);
    json.field("ss_read_msgs", honest.read.messages);
    json.field("ss_read_two_phase_msgs", two_phase.read.messages);
    json.field("ss_byz_write_msgs", hardened.write.messages);
    json.field("ss_byz_read_msgs", hardened.read.messages);
    json.field("mq_write_msgs", mq_write.messages);
    json.field("mq_read_msgs", mq_read.messages);
    json.field("pbft_op_msgs", pbft.messages);

    table.cell(static_cast<std::uint64_t>(n));
    table.cell(static_cast<std::uint64_t>(b));
    table.cell(honest.write.messages);
    table.cell(honest.read.messages);
    table.cell(two_phase.read.messages);
    table.cell(hardened.write.messages);
    table.cell(hardened.read.messages);
    table.cell(mq_write.messages);
    table.cell(mq_read.messages);
    table.cell(pbft.messages);
    table.end_row();
  }

  std::printf(
      "\nColumns count request+reply datagrams. ss_wr = 2(b+1): b+1 writes +\n"
      "b+1 acks. ss_rd = 2(b+1): §6's best case, read cost == write cost.\n"
      "ss_rd2ph = 2(b+1)+2: the Fig. 2 literal two-phase read (meta round,\n"
      "then one value fetch — cheaper in BYTES for large values). ssB\n"
      "(hardened §5.3) scales with 2b+1. Masking-quorum writes pay two\n"
      "q-sized phases; PBFT grows quadratically in n.\n");

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
