// Experiment E7 — the hardened multi-writer protocol under malicious
// clients (§5.3).
//
// Three measurements:
//  1. The spurious-context DoS: an attacker floods poisoned writes; we
//     measure honest-reader success rate and context pollution WITH the
//     causal hold defense (it is always on in this implementation; the
//     "without" column is computed analytically: every poisoned read would
//     have corrupted the reader's context).
//  2. Server-side log retention: log entries per server over a write-heavy
//     run, with and without stability-certificate garbage collection, and
//     the message overhead GC adds.
//  3. The §6 quorum growth: honest b+1 vs hardened 2b+1 latency/messages
//     side by side.
#include "bench_common.h"
#include "faults/malicious_client.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{7};
constexpr ItemId kPlan{201};

core::GroupPolicy byz_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kCC,
                           core::SharingMode::kMultiWriter, core::ClientTrust::kByzantine};
}

core::GroupPolicy honest_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kCC,
                           core::SharingMode::kMultiWriter, core::ClientTrust::kHonest};
}

void spurious_context_attack(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- spurious-context DoS (n=4, b=1, 20 poisoned writes) ---\n");

  testkit::ClusterOptions options;
  options.n = 4;
  options.b = 1;
  options.registry = registry;
  testkit::Cluster cluster(options);
  cluster.set_group_policy(byz_policy());

  faults::MaliciousClient attacker(cluster.transport(), NodeId{2000}, ClientId{4},
                                   cluster.client_keys(ClientId{4}), cluster.config(),
                                   byz_policy());

  // Interleave honest writes and poisoned writes.
  core::SecureStoreClient::Options honest_options;
  honest_options.policy = byz_policy();
  honest_options.round_timeout = milliseconds(300);
  auto writer = cluster.make_client(ClientId{1}, honest_options);
  auto reader = cluster.make_client(ClientId{2}, honest_options);
  core::SyncClient writer_sync(*writer, cluster.scheduler());
  core::SyncClient reader_sync(*reader, cluster.scheduler());

  int reads_ok = 0, reads_poisoned = 0;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    (void)writer_sync.write(kPlan, to_bytes("honest v" + std::to_string(round)));
    attacker.send_spurious_context_write(kPlan, to_bytes("poison"),
                                         ItemId{900 + static_cast<std::uint64_t>(round)},
                                         1'000'000'000 + round, /*fanout=*/4);
    cluster.run_for(milliseconds(200));

    const auto result = reader_sync.read_value(kPlan);
    if (result.ok() && to_string(*result).rfind("honest", 0) == 0) ++reads_ok;
    // Pollution check: did any phantom timestamp leak into the context?
    for (int phantom = 0; phantom <= round; ++phantom) {
      if (!reader->context().get(ItemId{900 + static_cast<std::uint64_t>(phantom)}).is_zero()) {
        ++reads_poisoned;
        break;
      }
    }
  }

  std::size_t held = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    held += cluster.server(s).held_writes();
  }

  json.begin_row();
  json.field("section", "spurious_context_dos");
  json.field("rounds", static_cast<std::uint64_t>(kRounds));
  json.field("reads_ok", static_cast<std::uint64_t>(reads_ok));
  json.field("reads_poisoned", static_cast<std::uint64_t>(reads_poisoned));
  json.field("held_writes", static_cast<std::uint64_t>(held));

  std::printf("  honest reads returning honest data:  %d / %d\n", reads_ok, kRounds);
  std::printf("  reads that polluted the context:     %d / %d\n", reads_poisoned, kRounds);
  std::printf("  poisoned writes parked in hold queues: %zu (never reported)\n", held);
  std::printf(
      "  without the causal hold (analytic): every read after the first\n"
      "  poisoned write would import a phantom timestamp and then fail to\n"
      "  find data 'that new' — %d / %d reads lost, cascading via honest\n"
      "  rewrites (the paper's 'easy denial of service attack').\n\n",
      kRounds, kRounds);
}

void log_retention(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- log retention: stability-certificate GC (n=4, b=1, 30 writes) ---\n");

  auto run = [&](bool gc) {
    testkit::ClusterOptions options;
    options.n = 4;
    options.b = 1;
    options.registry = registry;
    testkit::Cluster cluster(options);
    cluster.set_group_policy(byz_policy());

    core::SecureStoreClient::Options client_options;
    client_options.policy = byz_policy();
    client_options.stability_gc = gc;
    auto writer = cluster.make_client(ClientId{1}, client_options);
    core::SyncClient sync(*writer, cluster.scheduler());

    std::uint64_t messages = 0;
    for (int i = 0; i < 30; ++i) {
      const OpCost cost =
          measure(cluster, [&] { return sync.write(kPlan, to_bytes("v" + std::to_string(i))).ok(); });
      messages += cost.messages;
      cluster.run_for(milliseconds(300));
    }
    cluster.run_for(seconds(2));

    std::size_t log_entries = 0;
    for (std::size_t s = 0; s < cluster.server_count(); ++s) {
      log_entries += cluster.server(s).store().total_log_entries();
    }
    return std::make_pair(log_entries, messages);
  };

  const auto [log_with_gc, msgs_with_gc] = run(true);
  const auto [log_without_gc, msgs_without_gc] = run(false);
  for (const bool gc : {true, false}) {
    json.begin_row();
    json.field("section", "log_retention");
    json.field("gc", gc ? "on" : "off");
    json.field("log_entries", static_cast<std::uint64_t>(gc ? log_with_gc : log_without_gc));
    json.field("write_msgs", gc ? msgs_with_gc : msgs_without_gc);
  }
  std::printf("  with GC:    total log entries across servers = %3zu, write msgs = %llu\n",
              log_with_gc, static_cast<unsigned long long>(msgs_with_gc));
  std::printf("  without GC: total log entries across servers = %3zu, write msgs = %llu\n",
              log_without_gc, static_cast<unsigned long long>(msgs_without_gc));
  std::printf(
      "  GC cost: +n one-way stability notices per write; benefit: logs stay\n"
      "  near-empty instead of capped only by the retention bound (§5.3: 'old\n"
      "  values could be erased once a new value is available at 2b+1 servers').\n\n");
}

void quorum_growth(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- honest (b+1) vs hardened (2b+1) multi-writer cost ---\n");
  Table table({"b", "mode", "wr_msgs", "rd_msgs", "wr_ms", "rd_ms"});
  table.print_header();

  for (std::uint32_t b : {1u, 2u, 3u}) {
    for (const bool hardened : {false, true}) {
      testkit::ClusterOptions options;
      options.n = 3 * b + 1;
      options.b = b;
      options.link = sim::wan_profile();
      options.start_gossip = false;
      options.registry = registry;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(hardened ? byz_policy() : honest_policy());

      core::SecureStoreClient::Options client_options;
      client_options.policy = hardened ? byz_policy() : honest_policy();
      client_options.stability_gc = false;
      client_options.round_timeout = seconds(2);
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());

      const OpCost write_cost =
          measure(cluster, [&] { return sync.write(kPlan, to_bytes("v")).ok(); });
      const OpCost read_cost = measure(cluster, [&] { return sync.read_value(kPlan).ok(); });

      json.begin_row();
      json.field("section", "quorum_growth");
      json.field("b", static_cast<std::uint64_t>(b));
      json.field("mode", hardened ? "2b+1" : "b+1");
      json.field("write_msgs", write_cost.messages);
      json.field("read_msgs", read_cost.messages);
      json.field("write_ms", to_milliseconds(write_cost.latency));
      json.field("read_ms", to_milliseconds(read_cost.latency));

      table.cell(static_cast<std::uint64_t>(b));
      table.cell(std::string(hardened ? "2b+1" : "b+1"));
      table.cell(write_cost.messages);
      table.cell(read_cost.messages);
      table.cell(to_milliseconds(write_cost.latency));
      table.cell(to_milliseconds(read_cost.latency));
      table.end_row();
    }
  }
  std::printf(
      "\n§6: 'the figures change from b+1 to 2b+1 for the malicious clients\n"
      "case' — the hardening roughly doubles message cost but latency stays\n"
      "one round trip (reads also wait for the slowest of a larger set).\n");
}

void run() {
  print_title("E7: multi-writer protocol under malicious clients (§5.3)");
  print_claim(
      "causal holds neutralize the spurious-context DoS; logs stay bounded "
      "via 2b+1 stability certificates; hardening costs b+1 -> 2b+1");
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e7_multiwriter_malicious");
  spurious_context_attack(json, registry);
  log_retention(json, registry);
  quorum_growth(json, registry);
  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
