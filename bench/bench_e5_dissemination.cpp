// Experiment E5 — read cost vs dissemination rate and write frequency.
//
// §6: "The cost of read and write operations for non-context data depends
// both on the quorum size as well as on the rate at which new values are
// propagated among servers... when writes are infrequent, most reads will
// access data that has been disseminated to all servers. In this case, the
// average cost of reads will be close to the costs of writes."
//
// Setup: a writer updates an item every `write_interval`; a reader (with a
// disjoint server preference, worst case) reads it just after each write.
// We sweep the gossip period and measure mean messages per read (extra
// rounds escalate past stale servers) and the fraction of reads that
// needed escalation.
#include "bench_common.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kItem{100};
constexpr int kOps = 40;

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

struct CellResult {
  double read_messages = 0;
  double write_messages = 0;
  double escalated_fraction = 0;
  double stale_fraction = 0;  // reads that failed every round
};

CellResult run_cell(SimDuration gossip_period, SimDuration read_delay, std::uint64_t seed,
                    std::shared_ptr<obs::Registry> registry) {
  testkit::ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.seed = seed;
  options.gossip.period = gossip_period;
  options.registry = std::move(registry);
  testkit::Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  core::SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = milliseconds(500);

  auto writer = cluster.make_client(ClientId{1}, client_options);
  // Worst case: the reader prefers exactly the servers the writer does NOT
  // write to, so only dissemination can serve it fresh data.
  auto reader = cluster.make_client(ClientId{2}, client_options);
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                 NodeId{5}, NodeId{6}});
  reader->set_server_preference({NodeId{4}, NodeId{5}, NodeId{6}, NodeId{3}, NodeId{2},
                                 NodeId{1}, NodeId{0}});
  core::SyncClient writer_sync(*writer, cluster.scheduler());
  core::SyncClient reader_sync(*reader, cluster.scheduler());

  // The reader tracks the writer's context (models "reader knows data is
  // fresh", e.g. via application-level signals), making staleness visible.
  sim::Samples read_messages, write_messages;
  const std::uint64_t baseline_read_messages = 2ull * (options.b + 1) + 2;
  int escalated = 0, stale = 0;

  for (int op = 0; op < kOps; ++op) {
    const OpCost write_cost = measure(
        cluster, [&] { return writer_sync.write(kItem, to_bytes("v" + std::to_string(op))).ok(); });
    write_messages.add(static_cast<double>(write_cost.messages));

    cluster.run_for(read_delay);
    reader->mutable_context().advance(kItem, writer->context().get(kItem));

    const OpCost read_cost = measure(cluster, [&] {
      const auto result = reader_sync.read_value(kItem);
      return result.ok();
    });
    read_messages.add(static_cast<double>(read_cost.messages));
    if (!read_cost.ok) {
      ++stale;
    } else if (read_cost.messages > baseline_read_messages) {
      ++escalated;
    }
  }

  CellResult cell;
  cell.read_messages = read_messages.mean();
  cell.write_messages = write_messages.mean();
  cell.escalated_fraction = static_cast<double>(escalated) / kOps;
  cell.stale_fraction = static_cast<double>(stale) / kOps;
  return cell;
}

void read_repair_ablation();

void run() {
  print_title("E5: read cost vs gossip period (n=7, b=2, reader on disjoint servers)");
  print_claim(
      "read cost depends on dissemination rate; when dissemination outpaces "
      "reads, average read cost approaches write cost (b+1 server set)");

  Table table({"gossip_ms", "read_after_ms", "rd_msgs", "wr_msgs", "escalated", "failed"});
  table.print_header();

  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e5_dissemination");

  const SimDuration read_delays[] = {milliseconds(50), milliseconds(500), seconds(5)};
  const SimDuration gossip_periods[] = {milliseconds(20), milliseconds(100),
                                        milliseconds(500), seconds(2), seconds(10)};

  for (const SimDuration read_delay : read_delays) {
    for (const SimDuration period : gossip_periods) {
      const CellResult cell = run_cell(period, read_delay, /*seed=*/1000 + period, registry);
      json.begin_row();
      json.field("gossip_ms", to_milliseconds(period));
      json.field("read_after_ms", to_milliseconds(read_delay));
      json.field("read_msgs", cell.read_messages);
      json.field("write_msgs", cell.write_messages);
      json.field("escalated_fraction", cell.escalated_fraction);
      json.field("stale_fraction", cell.stale_fraction);
      table.cell(to_milliseconds(period));
      table.cell(to_milliseconds(read_delay));
      table.cell(cell.read_messages);
      table.cell(cell.write_messages);
      table.cell(cell.escalated_fraction);
      table.cell(cell.stale_fraction);
      table.end_row();
    }
    std::printf("\n");
  }

  std::printf(
      "read_after_ms = how long after the write the read happens (the write\n"
      "'frequency' knob: long delay = infrequent writes). With fast gossip or\n"
      "infrequent writes, reads cost their floor of 2(b+1)+2 messages — close\n"
      "to the write's 2(b+1) as §6 predicts. Slow gossip + eager reads force\n"
      "escalation rounds (more messages) and eventually failures.\n");

  emit_metrics(json, *registry);

  read_repair_ablation();
}

/// Extension ablation: reader-driven repair (push the accepted record to
/// lagging servers) as a complement to server-side gossip. With gossip OFF,
/// the first read of each version escalates, but repairs make every
/// subsequent read of that version hit the floor.
void read_repair_ablation() {
  std::printf("\n--- read-repair ablation (gossip OFF, n=7, b=2) ---\n");
  Table table({"repair", "read#1_msgs", "read#2_msgs", "read#3_msgs"});
  table.print_header();

  for (const bool repair : {false, true}) {
    testkit::ClusterOptions options;
    options.n = 7;
    options.b = 2;
    options.seed = 77;
    options.start_gossip = false;
    testkit::Cluster cluster(options);
    cluster.set_group_policy(mrc_policy());

    core::SecureStoreClient::Options client_options;
    client_options.policy = mrc_policy();
    client_options.round_timeout = milliseconds(500);
    client_options.read_repair = repair;

    auto writer = cluster.make_client(ClientId{1}, client_options);
    writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                   NodeId{5}, NodeId{6}});
    core::SyncClient writer_sync(*writer, cluster.scheduler());
    (void)writer_sync.write(kItem, to_bytes("repair target"));

    // One reader preferring the servers the write missed, reading thrice.
    auto reader = cluster.make_client(ClientId{2}, client_options);
    reader->set_server_preference({NodeId{4}, NodeId{5}, NodeId{6}, NodeId{3}, NodeId{2},
                                   NodeId{1}, NodeId{0}});
    core::SyncClient reader_sync(*reader, cluster.scheduler());
    reader->mutable_context().advance(kItem, writer->context().get(kItem));

    table.cell(std::string(repair ? "on" : "off"));
    for (int read = 0; read < 3; ++read) {
      const OpCost cost =
          measure(cluster, [&] { return reader_sync.read_value(kItem).ok(); });
      table.cell(cost.messages);
      cluster.run_for(milliseconds(100));  // let repair writes land
      // Reset context floor so each read faces the same requirement.
      reader->mutable_context().set(kItem, writer->context().get(kItem));
    }
    table.end_row();
  }
  std::printf(
      "\nWithout repair every read pays the escalation; with it the first\n"
      "reader heals the servers it contacted and later reads hit the floor.\n");
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
