// Experiment E13 — durability cost of the write-ahead log.
//
// The paper's store is in-memory with periodic snapshots; the WAL subsystem
// adds per-write durability. This bench quantifies what each fsync policy
// pays for its guarantee: `always` buys zero acked-write loss at one fsync
// per append, `interval` amortizes fsyncs over a group-commit window, and
// `never` leaves flushing to the OS. A final pass measures recovery replay
// speed — the cost of rebuilding state from the log after a crash.
//
// Unlike the protocol benches this one measures real wall-clock disk I/O,
// so absolute numbers vary by machine; the *ratios* between policies are
// the result.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bench_common.h"
#include "storage/wal/wal.h"

namespace securestore::bench {
namespace {

using storage::FsyncPolicy;
using storage::WalEntryType;
using storage::WriteAheadLog;

constexpr std::size_t kPayloadBytes = 256;  // a typical signed WriteRecord

struct PolicyResult {
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
  double total_seconds = 0;
  double replay_seconds = 0;
  std::uint64_t replayed = 0;
};

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

PolicyResult run_policy(FsyncPolicy policy, std::size_t appends, std::size_t sync_every,
                        obs::Registry& registry) {
  std::string dir = (std::filesystem::temp_directory_path() / "bench_e13_XXXXXX").string();
  if (mkdtemp(dir.data()) == nullptr) std::abort();

  // Per-append latency distribution, keyed by policy so the sidecar's
  // histograms separate the fsync-per-append floor from the amortized modes.
  obs::Histogram& append_us =
      registry.histogram(std::string("bench.wal.append_us.") +
                         (policy == FsyncPolicy::kAlways     ? "always"
                          : policy == FsyncPolicy::kInterval ? "interval"
                                                             : "never"));

  const Bytes payload(kPayloadBytes, 0x42);
  PolicyResult result;
  {
    WriteAheadLog wal({dir, policy, /*segment_bytes=*/4u << 20});
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < appends; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      wal.append(WalEntryType::kWrite, payload);
      append_us.observe(
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
              .count());
      // Model the server's group-commit timer under the interval policy.
      if (policy == FsyncPolicy::kInterval && (i + 1) % sync_every == 0) wal.sync();
    }
    result.total_seconds = elapsed_seconds(start);
    result.appends = wal.stats().appends;
    result.fsyncs = wal.stats().fsyncs;
    result.rotations = wal.stats().rotations;
  }

  // Recovery: scan + CRC-check + replay every frame, as a rebooting server
  // would.
  {
    const auto start = std::chrono::steady_clock::now();
    WriteAheadLog recovered({dir, policy, 4u << 20});
    recovered.replay(0, [&](std::uint64_t, WalEntryType, BytesView) { ++result.replayed; });
    result.replay_seconds = elapsed_seconds(start);
  }

  std::filesystem::remove_all(dir);
  return result;
}

void run() {
  print_title("E13: WAL write cost and recovery speed per fsync policy");
  print_claim(
      "durable acked writes cost one fsync each under `always`; group commit "
      "(`interval`) amortizes that to ~1/window with a bounded loss window; "
      "recovery replays the log at memory speed after CRC checks");

  const struct {
    FsyncPolicy policy;
    const char* name;
    std::size_t appends;
    std::size_t sync_every;  // interval policy: group-commit window
  } kCells[] = {
      {FsyncPolicy::kAlways, "always", 2000, 1},
      {FsyncPolicy::kInterval, "interval-10", 20000, 10},
      {FsyncPolicy::kInterval, "interval-100", 20000, 100},
      {FsyncPolicy::kNever, "never", 20000, 0},
  };

  Table table({"policy", "appends", "fsyncs", "us/append", "appends/s", "replay/s"});
  table.print_header();
  BenchJson json("e13_durability");
  obs::Registry registry;

  for (const auto& cell : kCells) {
    const PolicyResult result =
        run_policy(cell.policy, cell.appends, cell.sync_every, registry);
    const double us_per_append = result.total_seconds * 1e6 / result.appends;
    const double appends_per_s = result.appends / result.total_seconds;
    const double replay_per_s =
        result.replay_seconds > 0 ? result.replayed / result.replay_seconds : 0;

    table.cell(std::string(cell.name));
    table.cell(result.appends);
    table.cell(result.fsyncs);
    table.cell(us_per_append);
    table.cell(appends_per_s, 0);
    table.cell(replay_per_s, 0);
    table.end_row();

    json.begin_row();
    json.field("policy", std::string(cell.name));
    json.field("payload_bytes", static_cast<std::uint64_t>(kPayloadBytes));
    json.field("appends", result.appends);
    json.field("fsyncs", result.fsyncs);
    json.field("rotations", result.rotations);
    json.field("us_per_append", us_per_append);
    json.field("appends_per_sec", appends_per_s, 0);
    json.field("replayed_entries", result.replayed);
    json.field("replay_entries_per_sec", replay_per_s, 0);
  }

  std::printf(
      "\n256-byte payloads, 4 MB segments, tmpfs-or-disk per machine. `always`\n"
      "pays one fsync per append — the floor is the device sync latency.\n"
      "`interval-k` fsyncs once per k appends (the server's flush timer):\n"
      "throughput approaches `never` as k grows, while the crash-loss window\n"
      "stays bounded by the flush interval. Recovery replays every surviving\n"
      "frame through the CRC check; its rate bounds restart time.\n");

  emit_metrics(json, registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
