// Experiment E17 — beyond-RAM storage: LSM engine vs the in-memory store.
//
// The paper's store keeps every version resident; the LSM engine
// (DESIGN.md §12) keeps only metadata resident and moves values through a
// memtable into SSTables, so a server can hold working sets larger than
// RAM. Two measurements:
//
//  (a) micro — bare `StorageEngine::apply` + point reads on a working set
//      8× the memtable budget. This isolates what the engine layer itself
//      pays (memtable inserts, flush fsyncs, SST point reads) against an
//      in-memory map that does none of it; the gap here is the engine's
//      raw overhead, reported but not the claim.
//  (b) sustained — the same write-heavy workload pushed through the full
//      replicated write path (n=4 cluster, Ed25519-signed records, WAL on
//      disk, quorum acks) with only the engine swapped. This is the
//      deployment question: does going beyond RAM change what a client
//      sees? Claim under test: within 2× of the in-memory engine, because
//      the WAL stays the commit point and SST fsyncs amortize over whole
//      memtable flushes while crypto + replication dominate per-write cost.
//
// Both phases do real disk I/O; absolute numbers vary by machine, the
// in-memory-to-LSM *ratios* are the result.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "core/sync.h"
#include "crypto/keys.h"
#include "storage/item_store.h"
#include "storage/lsm/lsm_store.h"
#include "testkit/cluster.h"
#include "util/rng.h"

namespace securestore::bench {
namespace {

using core::ConsistencyModel;
using core::Context;
using core::SecureStoreClient;
using core::StorageEngineKind;
using core::SyncClient;
using core::Timestamp;
using core::WriteRecord;
using storage::ItemStore;
using storage::StorageEngine;
using storage::lsm::LsmStore;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{7};
constexpr std::size_t kValueBytes = 256;  // a typical signed record body

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string scratch_dir(const char* tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / (std::string("bench_e17_") + tag + "_XXXXXX"))
          .string();
  if (mkdtemp(dir.data()) == nullptr) std::abort();
  return dir;
}

// --- (a) micro: bare engine apply/read ------------------------------------

constexpr std::size_t kMicroItems = 1024;
constexpr std::size_t kMicroVersions = 8;
constexpr std::size_t kMicroBudget = 256u << 10;  // working set ≈ 8× budget

struct MicroResult {
  double write_seconds = 0;
  double read_seconds = 0;
  std::size_t writes = 0;
  std::size_t reads = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::size_t sst_files = 0;
  double reopen_seconds = 0;  // LSM only: recover index from manifest + SSTs
};

WriteRecord make_record(ItemId item, std::uint64_t time, const Bytes& value) {
  WriteRecord record;
  record.item = item;
  record.group = kGroup;
  record.model = ConsistencyModel::kCC;
  record.writer = ClientId{1};
  record.value = value;
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = Timestamp{time, record.writer, record.value_digest};
  record.writer_context = Context(kGroup);
  return record;
}

MicroResult drive_micro(StorageEngine& engine, Rng& rng) {
  MicroResult result;
  Bytes value(kValueBytes);

  const auto write_start = std::chrono::steady_clock::now();
  std::uint64_t lsn = 0;
  for (std::size_t round = 1; round <= kMicroVersions; ++round) {
    for (std::size_t i = 0; i < kMicroItems; ++i) {
      for (auto& byte : value) byte = static_cast<std::uint8_t>(rng.next_u64());
      engine.apply(make_record(ItemId{i + 1}, round, value));
      engine.note_wal_lsn(++lsn);
      ++result.writes;
    }
  }
  result.write_seconds = elapsed_seconds(write_start);

  // Point-read sweep over the whole working set — which, for the LSM
  // engine, has long since left the memtable.
  const auto read_start = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < 4; ++pass) {
    for (std::size_t i = 0; i < kMicroItems; ++i) {
      const WriteRecord* current = engine.current(ItemId{i + 1});
      if (current == nullptr || current->ts.time != kMicroVersions) std::abort();
      ++result.reads;
    }
  }
  result.read_seconds = elapsed_seconds(read_start);
  return result;
}

MicroResult run_micro_memory() {
  Rng rng(17);
  ItemStore store(/*max_log_entries=*/4);
  return drive_micro(store, rng);
}

MicroResult run_micro_lsm(obs::Registry& registry) {
  const std::string dir = scratch_dir("micro");
  Rng rng(17);
  MicroResult result;
  {
    LsmStore::Options options;
    options.dir = dir;
    options.max_log_entries = 4;
    options.memtable_budget_bytes = kMicroBudget;
    options.registry = &registry;
    options.metric_prefix = "bench.";
    LsmStore store(options);
    result = drive_micro(store, rng);
    store.flush();
    const LsmStore::Stats stats = store.stats();
    result.flushes = stats.flushes;
    result.compactions = stats.compactions;
    result.sst_files = stats.sst_files;
  }
  {
    // Recovery: reopen from manifest + SSTs alone, as a rebooting server
    // would before its WAL replay.
    const auto start = std::chrono::steady_clock::now();
    LsmStore::Options options;
    options.dir = dir;
    options.max_log_entries = 4;
    options.memtable_budget_bytes = kMicroBudget;
    LsmStore reopened(options);
    if (reopened.item_count() != kMicroItems) std::abort();
    result.reopen_seconds = elapsed_seconds(start);
  }
  std::filesystem::remove_all(dir);
  return result;
}

// --- (b) sustained: full replicated write path ----------------------------

constexpr std::size_t kSustainedWrites = 600;
constexpr std::size_t kSustainedItems = 64;
constexpr std::size_t kSustainedBudget = 8u << 10;  // working set ≈ 20× budget

struct SustainedResult {
  double seconds = 0;
  std::size_t writes = 0;
};

SustainedResult run_sustained(StorageEngineKind kind) {
  const std::string dir = scratch_dir(kind == StorageEngineKind::kLsm ? "lsm" : "mem");

  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  options.durability_dir = dir;  // both engines pay the same WAL
  options.fsync = storage::FsyncPolicy::kInterval;
  options.engine.kind = kind;
  options.engine.memtable_budget_bytes = kSustainedBudget;
  options.engine.l0_compact_threshold = 3;
  Cluster cluster(options);

  const core::GroupPolicy policy{kGroup, ConsistencyModel::kMRC,
                                 core::SharingMode::kSingleWriter,
                                 core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);
  SecureStoreClient::Options client_options;
  client_options.policy = policy;
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  if (!sync.connect(kGroup).ok()) std::abort();

  SustainedResult result;
  const std::string padding(kValueBytes, 'e');
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSustainedWrites; ++i) {
    const ItemId item{1 + (i % kSustainedItems)};
    if (!sync.write(item, to_bytes(std::to_string(i) + " " + padding)).ok()) std::abort();
    ++result.writes;
  }
  result.seconds = elapsed_seconds(start);

  std::filesystem::remove_all(dir);
  return result;
}

void run() {
  print_title("E17: beyond-RAM writes — LSM engine vs in-memory store");
  print_claim(
      "pushing a write-heavy workload whose working set is many times the "
      "memtable budget through the full replicated write path sustains "
      "throughput within 2x of the in-memory engine: the WAL stays the "
      "commit point, SST fsyncs amortize over whole memtable flushes, and "
      "crypto + replication dominate per-write cost");

  BenchJson json("e17_beyondram");
  obs::Registry registry;

  // (a) micro
  std::printf("--- micro: bare StorageEngine apply/read, working set %.1f MB vs %zu KB budget ---\n",
              kMicroItems * kMicroVersions * kValueBytes / 1e6, kMicroBudget >> 10);
  Table micro_table({"engine", "writes", "us/write", "us/read", "flushes", "ssts"});
  micro_table.print_header();
  const MicroResult micro_memory = run_micro_memory();
  const MicroResult micro_lsm = run_micro_lsm(registry);
  const auto emit_micro = [&](const char* name, const MicroResult& r) {
    const double us_per_write = r.write_seconds * 1e6 / r.writes;
    const double us_per_read = r.read_seconds * 1e6 / r.reads;
    micro_table.cell(std::string(name));
    micro_table.cell(static_cast<std::uint64_t>(r.writes));
    micro_table.cell(us_per_write);
    micro_table.cell(us_per_read);
    micro_table.cell(r.flushes);
    micro_table.cell(static_cast<std::uint64_t>(r.sst_files));
    micro_table.end_row();

    json.begin_row();
    json.field("phase", std::string("micro"));
    json.field("engine", std::string(name));
    json.field("value_bytes", static_cast<std::uint64_t>(kValueBytes));
    json.field("memtable_budget_bytes", static_cast<std::uint64_t>(kMicroBudget));
    json.field("working_set_bytes",
               static_cast<std::uint64_t>(kMicroItems * kMicroVersions * kValueBytes));
    json.field("writes", static_cast<std::uint64_t>(r.writes));
    json.field("us_per_write", us_per_write);
    json.field("reads", static_cast<std::uint64_t>(r.reads));
    json.field("us_per_read", us_per_read);
    json.field("flushes", r.flushes);
    json.field("compactions", r.compactions);
    json.field("sst_files", static_cast<std::uint64_t>(r.sst_files));
    json.field("reopen_seconds", r.reopen_seconds);
  };
  emit_micro("memory", micro_memory);
  emit_micro("lsm", micro_lsm);
  const double micro_ratio = (micro_lsm.write_seconds / micro_lsm.writes) /
                             (micro_memory.write_seconds / micro_memory.writes);

  // (b) sustained
  std::printf("\n--- sustained: n=4 signed quorum writes, WAL on disk, engine swapped ---\n");
  Table table({"engine", "writes", "us/write", "writes/s"});
  table.print_header();
  const SustainedResult memory = run_sustained(StorageEngineKind::kMemory);
  const SustainedResult lsm = run_sustained(StorageEngineKind::kLsm);
  const auto emit_sustained = [&](const char* name, const SustainedResult& r) {
    const double us_per_write = r.seconds * 1e6 / r.writes;
    table.cell(std::string(name));
    table.cell(static_cast<std::uint64_t>(r.writes));
    table.cell(us_per_write);
    table.cell(r.writes / r.seconds, 0);
    table.end_row();

    json.begin_row();
    json.field("phase", std::string("sustained"));
    json.field("engine", std::string(name));
    json.field("value_bytes", static_cast<std::uint64_t>(kValueBytes));
    json.field("memtable_budget_bytes", static_cast<std::uint64_t>(kSustainedBudget));
    json.field("working_set_bytes",
               static_cast<std::uint64_t>(kSustainedWrites * kValueBytes));
    json.field("writes", static_cast<std::uint64_t>(r.writes));
    json.field("us_per_write", us_per_write);
    json.field("writes_per_sec", r.writes / r.seconds, 0);
  };
  emit_sustained("memory", memory);
  emit_sustained("lsm", lsm);

  const double sustained_ratio = (lsm.seconds / lsm.writes) / (memory.seconds / memory.writes);
  json.begin_row();
  json.field("phase", std::string("ratio"));
  json.field("micro_lsm_over_memory_write", micro_ratio);
  json.field("sustained_lsm_over_memory_write", sustained_ratio);
  json.field("within_2x", static_cast<std::uint64_t>(sustained_ratio <= 2.0 ? 1 : 0));

  std::printf(
      "\nMicro: the bare engine pays %.1fx over an in-memory map — that is the\n"
      "price of flush fsyncs and SST point reads in isolation. Sustained: with\n"
      "the full write path around it (Ed25519 signatures, n=4 quorum, WAL),\n"
      "the same beyond-RAM workload runs at %.2fx the in-memory engine\n"
      "(claim: <= 2x) — the engine's overhead hides behind the commit path\n"
      "the store already pays. Reopen recovers the micro index from\n"
      "manifest + SSTs in %.3f s without touching a WAL.\n",
      micro_ratio, sustained_ratio, micro_lsm.reopen_seconds);

  emit_metrics(json, registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
