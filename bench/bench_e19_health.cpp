// Experiment E19 — the health plane's cost and its detection latency.
//
// Two claims, three tables:
//
//   1. overhead — scraping every server at 20 Hz must cost the hot path
//      nothing measurable. Reruns the E15 saturation workload (threaded
//      wall-clock transport, pipelined writes, delivery batching) with and
//      without an attached HealthMonitor+IntrospectScraper; best-of-3
//      throughput may not drop more than 1%. The bench exits non-zero on a
//      breach, so CI can gate on it.
//   2. detection — deterministic sim: crash one server under a running
//      scraper and measure crash -> first unhealthy mark, then restart ->
//      healthy mark, per scrape interval. Shows the latency budget
//      trade-off the DESIGN.md §8 SLO table promises (about two scrape
//      rounds to detect, restart-hold plus two rounds to clear).
//   3. chaos_detection — the ground-truth distribution: monitored chaos
//      storms (the health_test soak harness) across several seeds, with
//      detection/recovery percentiles pulled from the scored report. This
//      is where the headline detection-latency p99 in the sidecar comes
//      from.
#include <algorithm>
#include <chrono>
#include <functional>
#include <future>
#include <optional>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "net/introspect.h"
#include "net/thread_transport.h"
#include "obs/health.h"
#include "testkit/chaos.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t percentile(std::vector<std::uint64_t> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(rank + 0.5)];
}

/// The E15 saturation deployment (threaded transport, several client
/// principals, delivery batching), plus an optional live health plane.
struct Deployment {
  net::ThreadTransport transport;
  core::StoreConfig config;
  std::vector<crypto::KeyPair> client_pairs;
  std::vector<std::unique_ptr<core::SecureStoreServer>> servers;
  std::vector<std::unique_ptr<core::SecureStoreClient>> clients;

  Deployment(std::uint32_t n, std::uint32_t b, std::uint32_t client_count,
             std::shared_ptr<obs::Registry> registry)
      : transport(sim::NetworkModel(
                      Rng(1), sim::LinkProfile{microseconds(200), microseconds(100), 0}),
                  std::move(registry)) {
    transport.set_max_batch(32);
    config.n = n;
    config.b = b;
    Rng rng(2);
    for (std::uint32_t c = 1; c <= client_count; ++c) {
      client_pairs.push_back(crypto::KeyPair::generate(rng));
      config.client_keys[c] = client_pairs.back().public_key;
    }
    std::vector<crypto::KeyPair> server_pairs;
    for (std::uint32_t i = 0; i < n; ++i) {
      config.servers.push_back(NodeId{i});
      server_pairs.push_back(crypto::KeyPair::generate(rng));
      config.server_keys[NodeId{i}] = server_pairs.back().public_key;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      core::SecureStoreServer::Options options;
      options.gossip.period = milliseconds(200);
      servers.push_back(std::make_unique<core::SecureStoreServer>(
          transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
      servers.back()->set_group_policy(mrc_policy());
    }
    for (std::uint32_t c = 1; c <= client_count; ++c) {
      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      clients.push_back(std::make_unique<core::SecureStoreClient>(
          transport, NodeId{1000 + c}, ClientId{c}, client_pairs[c - 1], config,
          client_options, rng.fork()));
    }
  }

  ~Deployment() { transport.stop(); }
};

/// One saturation run; returns ops/second. With `interval` set, a scraper
/// polls every server at that cadence for the whole run.
double saturation_ops_per_second(std::optional<SimDuration> interval) {
  constexpr std::uint32_t kClients = 4;
  constexpr int kWindow = 8;
  constexpr int kOpsPerClient = 75;
  constexpr int kTotalOps = static_cast<int>(kClients) * kOpsPerClient;

  auto registry = std::make_shared<obs::Registry>();
  Deployment deployment(4, 1, kClients, registry);
  const Bytes value(256, 0x42);

  std::unique_ptr<obs::HealthMonitor> monitor;
  std::unique_ptr<net::RpcNode> scrape_node;
  std::unique_ptr<net::IntrospectScraper> scraper;
  if (interval.has_value()) {
    std::vector<obs::HealthMonitor::ServerInfo> servers;
    std::vector<NodeId> nodes;
    for (std::uint32_t i = 0; i < 4; ++i) {
      servers.push_back({i, 0});
      nodes.push_back(NodeId{i});
    }
    monitor = std::make_unique<obs::HealthMonitor>(*registry, nullptr, servers,
                                                   obs::HealthMonitor::Options{});
    scrape_node = std::make_unique<net::RpcNode>(deployment.transport, NodeId{4998});
    net::IntrospectScraper::Options scraper_options;
    scraper_options.interval = *interval;
    scraper_options.timeout = std::min(*interval / 2, milliseconds(25));
    scraper = std::make_unique<net::IntrospectScraper>(*scrape_node, nodes, *monitor,
                                                       scraper_options);
  }

  const auto start = std::chrono::steady_clock::now();
  std::atomic<int> completed{0};
  std::promise<void> all_done;
  std::vector<std::shared_ptr<std::atomic<int>>> issued;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    issued.push_back(std::make_shared<std::atomic<int>>(0));
  }

  std::function<void(std::uint32_t)> issue_next = [&](std::uint32_t c) {
    const int op = issued[c]->fetch_add(1);
    if (op >= kOpsPerClient) return;
    deployment.clients[c]->write(
        ItemId{static_cast<std::uint64_t>(c * 100 + op % 16)}, value, [&, c](VoidResult) {
          if (completed.fetch_add(1) + 1 == kTotalOps) {
            all_done.set_value();
          } else {
            issue_next(c);
          }
        });
  };
  deployment.transport.schedule(0, [&] {
    if (scraper != nullptr) scraper->start();  // transport-thread discipline
    for (std::uint32_t c = 0; c < kClients; ++c) {
      for (int i = 0; i < kWindow; ++i) issue_next(c);
    }
  });
  all_done.get_future().wait();
  const double elapsed = seconds_since(start);

  if (scraper != nullptr) {
    // Stop on the dispatch thread and wait for the stop to land before the
    // deployment (and the monitor it scrapes into) is torn down.
    std::promise<void> stopped;
    deployment.transport.schedule(0, [&] {
      scraper->stop();
      stopped.set_value();
    });
    stopped.get_future().wait();
    if (monitor->rounds() == 0) {
      std::fprintf(stderr, "error: scraper never completed a round\n");
      std::exit(EXIT_FAILURE);
    }
  }
  return static_cast<double>(kTotalOps) / elapsed;
}

void overhead_table(BenchJson& json) {
  std::printf("--- monitoring overhead on the E15 saturation workload ---\n");
  Table table({"scrape_ms", "ops_per_s", "overhead_pct"});
  table.print_header();

  // Best-of-3 per cell: wall-clock noise on a shared machine dwarfs the
  // effect under test, and the max is the run least polluted by it.
  const auto best_of = [](std::optional<SimDuration> interval) {
    double best = 0;
    for (int i = 0; i < 3; ++i) best = std::max(best, saturation_ops_per_second(interval));
    return best;
  };
  const double baseline = best_of(std::nullopt);
  table.cell("off");
  table.cell(baseline, 0);
  table.cell(0.0, 2);
  table.end_row();
  json.begin_row();
  json.field("section", "overhead");
  json.field("scrape_interval_ms", std::uint64_t{0});
  json.field("ops_per_s", baseline);
  json.field("overhead_pct", 0.0);

  for (const SimDuration interval :
       {milliseconds(25), milliseconds(50), milliseconds(100)}) {
    const double monitored = best_of(interval);
    const double overhead_pct =
        std::max(0.0, (baseline - monitored) / baseline * 100.0);
    table.cell(to_milliseconds(interval), 0);
    table.cell(monitored, 0);
    table.cell(overhead_pct, 2);
    table.end_row();
    json.begin_row();
    json.field("section", "overhead");
    json.field("scrape_interval_ms", to_milliseconds(interval));
    json.field("ops_per_s", monitored);
    json.field("overhead_pct", overhead_pct);
    // The acceptance budget holds at every cadence down to 40 Hz.
    if (overhead_pct > 1.0) {
      std::fprintf(stderr, "error: monitoring overhead %.2f%% at %.0fms scrapes "
                   "exceeds the 1%% budget\n", overhead_pct, to_milliseconds(interval));
      std::exit(EXIT_FAILURE);
    }
  }
  std::printf("\nScrapes against 4 servers stay under 1%% of saturation\n"
              "throughput at every cadence measured.\n\n");
}

/// Crash -> mark and restart -> clear latency at one scrape cadence, in
/// deterministic virtual time.
struct DetectionRun {
  std::uint64_t detect_us = 0;
  std::uint64_t recover_us = 0;
};

DetectionRun measure_detection(SimDuration interval) {
  testkit::ClusterOptions options;
  options.n = 4;
  options.b = 1;
  options.seed = 19;
  options.gossip.period = milliseconds(50);
  testkit::Cluster cluster(options);

  std::vector<obs::HealthMonitor::ServerInfo> servers;
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < options.n; ++i) {
    servers.push_back({cluster.server_node(i).value, 0});
    nodes.push_back(cluster.server_node(i));
  }
  obs::HealthMonitor monitor(cluster.registry(), nullptr, servers,
                             obs::HealthMonitor::Options{});
  net::RpcNode scrape_node(cluster.endpoint_transport(), NodeId{4998});
  net::IntrospectScraper::Options scraper_options;
  scraper_options.interval = interval;
  scraper_options.timeout = std::min(interval / 2, milliseconds(25));
  net::IntrospectScraper scraper(scrape_node, nodes, monitor, scraper_options);

  std::optional<std::uint64_t> marked_at;
  std::optional<std::uint64_t> cleared_at;
  monitor.set_on_mark([&](std::uint32_t server, bool healthy, std::uint64_t at,
                          const std::vector<std::string>&) {
    if (server != 1) return;
    if (!healthy && !marked_at.has_value()) marked_at = at;
    if (healthy && marked_at.has_value()) cleared_at = at;
  });

  scraper.start();
  cluster.run_for(milliseconds(500));

  DetectionRun run;
  const std::uint64_t crash_at = cluster.endpoint_transport().now();
  cluster.stop_server(1);
  while (!marked_at.has_value()) cluster.run_for(milliseconds(10));
  run.detect_us = *marked_at - crash_at;

  const std::uint64_t restart_at = cluster.endpoint_transport().now();
  cluster.start_server(1);
  while (!cleared_at.has_value()) cluster.run_for(milliseconds(10));
  run.recover_us = *cleared_at - restart_at;
  scraper.stop();
  return run;
}

void detection_table(BenchJson& json) {
  std::printf("--- crash detection / restart clearance vs scrape cadence (sim) ---\n");
  Table table({"interval_ms", "detect_ms", "recover_ms"});
  table.print_header();
  for (const SimDuration interval :
       {milliseconds(25), milliseconds(50), milliseconds(100)}) {
    const DetectionRun run = measure_detection(interval);
    json.begin_row();
    json.field("section", "detection");
    json.field("scrape_interval_ms", to_milliseconds(interval));
    json.field("detect_ms", static_cast<double>(run.detect_us) / 1000.0, 1);
    json.field("recover_ms", static_cast<double>(run.recover_us) / 1000.0, 1);
    table.cell(to_milliseconds(interval));
    table.cell(static_cast<double>(run.detect_us) / 1000.0, 1);
    table.cell(static_cast<double>(run.recover_us) / 1000.0, 1);
    table.end_row();
  }
  std::printf("\nDetection needs unhealthy_after consecutive missed rounds;\n"
              "clearance pays the restart hold plus healthy_after rounds.\n\n");
}

void chaos_detection_table(BenchJson& json, obs::Registry& bench_registry) {
  std::printf("--- detection latency distribution under monitored chaos storms ---\n");
  Table table({"seed", "windows", "detected", "marks"});
  table.print_header();

  std::vector<std::uint64_t> detection;
  std::vector<std::uint64_t> recovery;
  for (const std::uint64_t seed : {301u, 302u, 303u}) {
    testkit::ClusterOptions options;
    options.n = 5;
    options.b = 1;
    options.seed = seed * 6151;
    options.chaos_seed = seed * 40503;
    options.gossip.period = milliseconds(50);
    options.op_timeout = seconds(2);
    testkit::Cluster cluster(options);

    Rng schedule_rng(seed);
    testkit::ChaosSchedule schedule =
        testkit::ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(10));
    testkit::ChaosRunnerOptions runner_options;
    runner_options.horizon = seconds(10);
    runner_options.quiesce = seconds(3);
    testkit::ChaosRunner runner(cluster, std::move(schedule), runner_options,
                                seed * 31 + 7);
    runner.attach_health_monitor();
    const testkit::ChaosReport report = runner.run();
    if (!report.violations.empty() || !report.health.has_value() ||
        !report.health->clean()) {
      std::fprintf(stderr, "error: monitored storm (seed %llu) was not clean:\n%s",
                   static_cast<unsigned long long>(seed),
                   report.health.has_value() ? report.health->summary().c_str() : "");
      std::exit(EXIT_FAILURE);
    }
    detection.insert(detection.end(), report.health->detection_latencies_us.begin(),
                     report.health->detection_latencies_us.end());
    recovery.insert(recovery.end(), report.health->recovery_latencies_us.begin(),
                    report.health->recovery_latencies_us.end());
    table.cell(seed);
    table.cell(static_cast<std::uint64_t>(report.health->windows_total));
    table.cell(static_cast<std::uint64_t>(report.health->windows_detected));
    table.cell(report.health->marks_unhealthy + report.health->marks_healthy);
    table.end_row();
  }

  for (const std::uint64_t v : detection) {
    bench_registry.histogram("health.detection_latency_us").observe(static_cast<double>(v));
  }
  for (const std::uint64_t v : recovery) {
    bench_registry.histogram("health.recovery_latency_us").observe(static_cast<double>(v));
  }

  json.begin_row();
  json.field("section", "chaos_detection");
  json.field("samples", static_cast<std::uint64_t>(detection.size()));
  json.field("detection_p50_ms", static_cast<double>(percentile(detection, 0.5)) / 1000.0, 1);
  json.field("detection_p99_ms", static_cast<double>(percentile(detection, 0.99)) / 1000.0, 1);
  json.field("recovery_p50_ms", static_cast<double>(percentile(recovery, 0.5)) / 1000.0, 1);
  json.field("recovery_p99_ms", static_cast<double>(percentile(recovery, 0.99)) / 1000.0, 1);

  std::printf("\ndetection p50=%.1fms p99=%.1fms, recovery p50=%.1fms p99=%.1fms\n"
              "over %zu scored fault windows across 3 storms.\n",
              static_cast<double>(percentile(detection, 0.5)) / 1000.0,
              static_cast<double>(percentile(detection, 0.99)) / 1000.0,
              static_cast<double>(percentile(recovery, 0.5)) / 1000.0,
              static_cast<double>(percentile(recovery, 0.99)) / 1000.0,
              detection.size());
}

void run() {
  print_title("E19: live health plane — overhead and detection latency");
  print_claim(
      "'continuous monitoring of replica health' at negligible cost — 20 Hz "
      "scrapes under 1% of saturation throughput, failures detected within "
      "a few scrape rounds");
  BenchJson json("e19_health");
  overhead_table(json);
  detection_table(json);
  obs::Registry bench_registry;
  chaos_detection_table(json, bench_registry);
  emit_metrics(json, bench_registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
