// Experiment E6 — context acquisition vs context reconstruction.
//
// §5.1: if a client fails before writing its context back, "a more
// expensive protocol is used to reconstruct the context. The client will
// have to read the timestamps associated with all data items in a group X
// ... from all servers." This bench quantifies "more expensive": messages
// and latency of the normal quorum acquisition versus the all-server
// reconstruction, as the group size grows.
#include "bench_common.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

void run() {
  print_title("E6: context acquisition (quorum) vs reconstruction (all servers)");
  print_claim("reconstruction reads all data items of the group from ALL servers");

  Table table({"n", "b", "items", "acq_msgs", "acq_ms", "rec_msgs", "rec_ms", "rec_bytes"});
  table.print_header();

  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e6_reconstruction");

  for (std::uint32_t n : {4u, 10u, 16u}) {
    const std::uint32_t b = (n - 1) / 3;
    for (std::size_t items : {2u, 8u, 32u}) {
      testkit::ClusterOptions options;
      options.n = n;
      options.b = b;
      options.link = sim::wan_profile();
      options.gossip.period = milliseconds(200);
      options.registry = registry;
      testkit::Cluster cluster(options);
      cluster.set_group_policy(mrc_policy());

      core::SecureStoreClient::Options client_options;
      client_options.policy = mrc_policy();
      client_options.round_timeout = seconds(2);
      auto client = cluster.make_client(ClientId{1}, client_options);
      core::SyncClient sync(*client, cluster.scheduler());

      // Populate the group, disseminate, and store the context properly.
      for (std::size_t i = 0; i < items; ++i) {
        (void)sync.write(ItemId{100 + i}, to_bytes("value " + std::to_string(i)));
      }
      cluster.run_for(seconds(30));
      (void)sync.disconnect();

      const OpCost acquisition =
          measure(cluster, [&] { return sync.connect(kGroup).ok(); });
      const OpCost reconstruction =
          measure(cluster, [&] { return sync.reconstruct_context(kGroup).ok(); });

      json.begin_row();
      json.field("n", static_cast<std::uint64_t>(n));
      json.field("b", static_cast<std::uint64_t>(b));
      json.field("items", static_cast<std::uint64_t>(items));
      json.field("acquire_msgs", acquisition.messages);
      json.field("acquire_ms", to_milliseconds(acquisition.latency));
      json.field("reconstruct_msgs", reconstruction.messages);
      json.field("reconstruct_ms", to_milliseconds(reconstruction.latency));
      json.field("reconstruct_bytes", reconstruction.bytes);

      table.cell(static_cast<std::uint64_t>(n));
      table.cell(static_cast<std::uint64_t>(b));
      table.cell(static_cast<std::uint64_t>(items));
      table.cell(acquisition.messages);
      table.cell(to_milliseconds(acquisition.latency));
      table.cell(reconstruction.messages);
      table.cell(to_milliseconds(reconstruction.latency));
      table.cell(reconstruction.bytes);
      table.end_row();
    }
  }

  std::printf(
      "\nAcquisition exchanges 2*ceil((n+b+1)/2) fixed-size messages and can\n"
      "finish as soon as the quorum answers. Reconstruction sends to all n\n"
      "servers, waits for n-b, and each reply carries per-item signed meta —\n"
      "bytes grow with the group size. The §5.1 'more expensive' path, priced.\n");

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
