// Experiment E3 — cryptographic operation counts per protocol operation.
//
// §6 claims reproduced here (all counts measured via the CryptoMeter the
// protocols do their crypto through):
//  * context write: 1 signature by the client + ⌈(n+b+1)/2⌉ verifications
//    (one per quorum server);
//  * context read: best case just 1 verification... (we also count the
//    client verifying every returned context candidate — the paper's best
//    case assumes one candidate);
//  * data write: 1 signature + b+1 server verifications;
//  * data read: 1 client verification of the accepted value;
//  * hardened multi-writer read: 0 client signature verifications —
//    "clients do not have to do signature verification for a read now
//    since non-malicious servers do the validation before reporting";
//  * "Since b will be much smaller than n, the overhead of signing and
//    signature verification will be significantly lower than other quorum
//    based protocols" — compare against the masking-quorum columns.
#include <chrono>

#include "baselines/masking_quorum.h"
#include "bench_common.h"
#include "crypto/ed25519.h"
#include "crypto/sha2.h"
#include "net/sim_transport.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kItem{100};

core::GroupPolicy policy(core::SharingMode sharing, core::ClientTrust trust) {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC, sharing, trust};
}

void secure_store_rows(Table& table, BenchJson& json, std::uint32_t n, std::uint32_t b,
                       std::shared_ptr<obs::Registry> registry) {
  testkit::ClusterOptions options;
  options.n = n;
  options.b = b;
  options.start_gossip = false;
  options.registry = std::move(registry);
  testkit::Cluster cluster(options);
  cluster.set_group_policy(policy(core::SharingMode::kSingleWriter, core::ClientTrust::kHonest));

  core::SecureStoreClient::Options client_options;
  client_options.policy = policy(core::SharingMode::kSingleWriter, core::ClientTrust::kHonest);
  auto client = cluster.make_client(ClientId{1}, client_options);
  core::SyncClient sync(*client, cluster.scheduler());

  auto row = [&](const char* op, const OpCost& cost) {
    table.cell(std::string(op));
    table.cell(static_cast<std::uint64_t>(n));
    table.cell(static_cast<std::uint64_t>(b));
    table.cell(cost.signs);
    table.cell(cost.verifies);
    table.cell(cost.digests);
    table.end_row();
    json.begin_row();
    json.field("op", op);
    json.field("n", static_cast<std::uint64_t>(n));
    json.field("b", static_cast<std::uint64_t>(b));
    json.field("signs", cost.signs);
    json.field("verifies", cost.verifies);
    json.field("digests", cost.digests);
  };

  row("ctx-read(fresh)", measure(cluster, [&] { return sync.connect(kGroup).ok(); }));
  row("data-write", measure(cluster, [&] { return sync.write(kItem, to_bytes("v")).ok(); }));
  row("data-read", measure(cluster, [&] { return sync.read_value(kItem).ok(); }));
  row("ctx-write", measure(cluster, [&] { return sync.disconnect().ok(); }));
  row("ctx-read(stored)", measure(cluster, [&] { return sync.connect(kGroup).ok(); }));

  // Hardened multi-writer (§5.3): reads verify nothing at the client.
  testkit::Cluster hardened_cluster(options);
  hardened_cluster.set_group_policy(
      policy(core::SharingMode::kMultiWriter, core::ClientTrust::kByzantine));
  core::SecureStoreClient::Options hardened_options;
  hardened_options.policy =
      policy(core::SharingMode::kMultiWriter, core::ClientTrust::kByzantine);
  hardened_options.stability_gc = false;
  auto hardened = hardened_cluster.make_client(ClientId{1}, hardened_options);
  core::SyncClient hardened_sync(*hardened, hardened_cluster.scheduler());
  row("byz-write", measure(hardened_cluster,
                           [&] { return hardened_sync.write(kItem, to_bytes("v")).ok(); }));
  row("byz-read", measure(hardened_cluster,
                          [&] { return hardened_sync.read_value(kItem).ok(); }));

  // Masking-quorum baseline for the same (n, b).
  {
    sim::Scheduler scheduler;
    net::SimTransport transport(scheduler, sim::NetworkModel(Rng(5), sim::lan_profile()));
    core::StoreConfig config;
    config.n = n;
    config.b = b;
    Rng rng(6);
    const crypto::KeyPair pair = crypto::KeyPair::generate(rng);
    config.client_keys[1] = pair.public_key;
    for (std::uint32_t i = 0; i < n; ++i) config.servers.push_back(NodeId{i});
    std::vector<std::unique_ptr<baselines::MqServer>> servers;
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<baselines::MqServer>(transport, NodeId{i}, config));
    }
    baselines::MqClient mq(transport, NodeId{1000}, ClientId{1}, pair, config,
                           baselines::MqClient::Options{}, rng.fork());

    auto& meter = crypto::CryptoMeter::instance();
    auto run_mq = [&](auto start_op) {
      const auto before = meter;
      start_op();
      while (scheduler.step()) {
      }
      OpCost cost;
      cost.signs = meter.signs - before.signs;
      cost.verifies = meter.verifies - before.verifies;
      cost.digests = meter.digests - before.digests;
      return cost;
    };

    row("mq-write", run_mq([&] {
          mq.write(kItem, to_bytes("v"), [](VoidResult) {});
        }));
    row("mq-read", run_mq([&] { mq.read(kItem, [](Result<Bytes>) {}); }));
  }
}

void primitive_timings() {
  std::printf("\nmeasured primitive costs (single core, RelWithDebInfo):\n");
  Rng rng(1);
  const crypto::KeyPair pair = crypto::KeyPair::generate(rng);
  const Bytes message = rng.bytes(256);

  auto time_us = [](auto&& fn, int iterations) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) fn();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() / iterations;
  };

  const double sign_us =
      time_us([&] { (void)crypto::ed25519_sign(pair.seed, message); }, 50);
  const Bytes signature = crypto::ed25519_sign(pair.seed, message);
  const double verify_us = time_us(
      [&] { (void)crypto::ed25519_verify(pair.public_key, message, signature); }, 50);
  const double digest_us = time_us([&] { (void)crypto::sha256(message); }, 2000);

  std::printf("  ed25519 sign:   %8.1f us\n", sign_us);
  std::printf("  ed25519 verify: %8.1f us\n", verify_us);
  std::printf("  sha256 (256B):  %8.3f us\n", digest_us);
  std::printf(
      "\nA data write costs the system 1 sign + (b+1) verifies ~= %.0f us of\n"
      "crypto regardless of n; a masking-quorum write costs 1 sign + q verifies\n"
      "(q grows with n). This is the 'significantly lower overhead' of §6.\n",
      sign_us + 2 * verify_us);
}

void run() {
  print_title("E3: crypto operations per protocol op");
  print_claim(
      "ctx write = 1 sign + ceil((n+b+1)/2) verifies; data write = 1 sign + "
      "(b+1) verifies; data read = 1 client verify; byz read = 0 client verifies");

  Table table({"op", "n", "b", "signs", "verifies", "digests"});
  table.print_header();
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e3_crypto_costs");
  secure_store_rows(table, json, 4, 1, registry);
  secure_store_rows(table, json, 10, 3, registry);

  primitive_timings();

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
