// Experiment E16 — sharded scale-out (DESIGN.md §11).
//
// One claim: because a shard is a full (n, b) SecureStore replica group and
// the ring only decides WHICH group a key talks to, aggregate throughput
// scales with the number of groups while per-op latency stays flat — the
// quorum protocols never widen.
//
// Method: every server is given a fixed per-message service cost on the
// simulated transport (SimTransport::set_service_time), making server CPU
// capacity — not network latency or host parallelism — the bottleneck, in
// virtual time. A closed-loop workload (6 clients x 4 writes in flight,
// 48 group keys spread over the ring) runs against 1/2/4/8 groups at the
// same per-group (n=4, b=1); the table reports aggregate acked-write
// throughput and p95 write latency in virtual time. The acceptance bar is
// >= 2.5x aggregate write throughput at 4 shards vs 1.
#include <algorithm>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "shard/sharded_client.h"
#include "testkit/sharded_cluster.h"

namespace securestore::bench {
namespace {

constexpr std::uint32_t kClients = 6;
constexpr std::uint32_t kKeysPerClient = 8;
constexpr int kWindow = 4;  // in-flight writes per client
constexpr SimDuration kServiceTime = microseconds(150);
constexpr SimDuration kWarmup = seconds(2);
constexpr SimDuration kMeasure = seconds(10);

struct CellResult {
  std::uint32_t shards = 0;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  double ops_per_s = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

/// Group key k of client c. 48 keys scatter over the ring, so every shard
/// serves a slice of every client's traffic.
GroupId client_group(std::uint32_t c, std::uint32_t k) { return GroupId{c * 100 + k}; }

CellResult run_cell(std::uint32_t shards) {
  testkit::ShardedClusterOptions options;
  options.groups = shards;
  options.n = 4;
  options.b = 1;
  options.seed = 42;
  options.max_clients = 8;
  testkit::ShardedCluster cluster(options);

  // The capacity model: each server processes one message per 150us of
  // virtual time. 4 servers saturate near 27k msgs/s; more groups = more
  // servers = more aggregate capacity for the same key space.
  for (std::size_t g = 0; g < cluster.group_count(); ++g) {
    for (std::size_t s = 0; s < cluster.group(g).server_count(); ++s) {
      cluster.transport().set_service_time(cluster.group(g).server_node(s), kServiceTime);
    }
  }

  // Disjoint single-writer keys: client c exclusively writes its own 8
  // group keys, so there is no write contention — the bench measures
  // capacity, not conflict resolution.
  for (std::uint32_t c = 1; c <= kClients; ++c) {
    for (std::uint32_t k = 0; k < kKeysPerClient; ++k) {
      cluster.set_group_policy(core::GroupPolicy{client_group(c, k),
                                                 core::ConsistencyModel::kMRC,
                                                 core::SharingMode::kSingleWriter,
                                                 core::ClientTrust::kHonest});
    }
  }

  std::vector<std::unique_ptr<shard::ShardedClient>> clients;
  for (std::uint32_t c = 1; c <= kClients; ++c) {
    core::SecureStoreClient::Options client_options;
    client_options.round_timeout = seconds(1);
    clients.push_back(cluster.make_client(ClientId{c}, std::move(client_options)));
  }
  for (std::uint32_t c = 1; c <= kClients; ++c) {
    shard::SyncShardedClient sync(*clients[c - 1], cluster.scheduler());
    for (std::uint32_t k = 0; k < kKeysPerClient; ++k) {
      if (!sync.connect(client_group(c, k)).ok()) {
        std::fprintf(stderr, "error: connect failed during setup (shards=%u)\n", shards);
        std::exit(EXIT_FAILURE);
      }
    }
  }

  // Closed-loop issue state; `measuring` gates what counts, `issuing`
  // drains the loops at the end of the window.
  const Bytes value(256, 0x42);
  bool measuring = false;
  bool issuing = true;
  std::uint64_t acked = 0;
  std::uint64_t failed = 0;
  std::vector<SimDuration> latencies;
  std::vector<std::uint64_t> seq(kClients, 0);

  std::function<void(std::uint32_t)> issue_next = [&](std::uint32_t c) {
    if (!issuing) return;
    const std::uint64_t op = seq[c]++;
    const std::uint32_t k = static_cast<std::uint32_t>(op % kKeysPerClient);
    const GroupId group = client_group(c + 1, k);
    const ItemId item{group.value * 100 + op % 4};
    const SimTime start = cluster.scheduler().now();
    clients[c]->write(group, item, value, [&, c, start](VoidResult result) {
      if (measuring) {
        if (result.ok()) {
          ++acked;
          latencies.push_back(cluster.scheduler().now() - start);
        } else {
          ++failed;
        }
      }
      issue_next(c);
    });
  };
  cluster.endpoint_transport().schedule(0, [&] {
    for (std::uint32_t c = 0; c < kClients; ++c) {
      for (int w = 0; w < kWindow; ++w) issue_next(c);
    }
  });

  cluster.run_for(kWarmup);
  measuring = true;
  cluster.run_for(kMeasure);
  measuring = false;
  issuing = false;
  cluster.run_for(seconds(2));  // drain in-flight ops

  CellResult cell;
  cell.shards = shards;
  cell.acked = acked;
  cell.failed = failed;
  cell.ops_per_s = static_cast<double>(acked) / to_seconds(kMeasure);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(q * static_cast<double>(latencies.size() - 1));
      return to_milliseconds(latencies[idx]);
    };
    cell.p50_ms = at(0.50);
    cell.p95_ms = at(0.95);
  }
  return cell;
}

void run() {
  print_title("E16: sharded scale-out — throughput vs shard count");
  print_claim(
      "a consistent-hashing ring over independent (n, b) replica groups "
      "scales aggregate throughput with shard count; quorums never widen, "
      "so per-op latency stays flat");
  BenchJson json("e16_scaleout");

  std::printf("--- closed-loop writes (6 clients x 4 in flight, 48 keys, n=4 b=1/shard) ---\n");
  Table table({"shards", "acked", "ops_per_s", "p50_ms", "p95_ms", "speedup"});
  table.print_header();

  double baseline = 0;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const CellResult cell = run_cell(shards);
    if (cell.failed != 0) {
      std::fprintf(stderr, "error: %llu writes failed at shards=%u (fault-free bench)\n",
                   static_cast<unsigned long long>(cell.failed), shards);
      std::exit(EXIT_FAILURE);
    }
    if (shards == 1) baseline = cell.ops_per_s;
    const double speedup = cell.ops_per_s / baseline;

    json.begin_row();
    json.field("section", "scaleout");
    json.field("shards", static_cast<std::uint64_t>(shards));
    json.field("acked_writes", cell.acked);
    json.field("write_ops_per_s", cell.ops_per_s);
    json.field("p50_ms", cell.p50_ms);
    json.field("p95_ms", cell.p95_ms);
    json.field("speedup_vs_1_shard", speedup);
    table.cell(static_cast<std::uint64_t>(shards));
    table.cell(cell.acked);
    table.cell(cell.ops_per_s, 0);
    table.cell(cell.p50_ms, 3);
    table.cell(cell.p95_ms, 3);
    table.cell(speedup, 2);
    table.end_row();
  }
  std::printf(
      "\nEvery shard is a full (n=4, b=1) group with a 150us/message service\n"
      "cost per server; the ring only routes. Throughput scales with groups\n"
      "because capacity does; latency stays flat because quorums do.\n");
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
