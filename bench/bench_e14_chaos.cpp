// Experiment E14 — protocol cost and success under injected transport chaos.
//
// DESIGN.md §9 claim reproduced: with the fault-injecting transport dialed
// from 0% to 20% message loss (plus proportional duplication, reordering and
// jittered delay), operations degrade gracefully — success rates stay high
// because the retry path (capped exponential backoff under the op deadline)
// absorbs the faults, at the price of extra rounds and latency. Every fault
// decision is drawn from one seed, so the whole sweep replays bit-identically.
#include <algorithm>

#include "bench_common.h"
#include "testkit/seed.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr int kOpsPerCell = 40;

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

net::FaultRule rule_for(double drop) {
  net::FaultRule rule;
  rule.drop = drop;
  rule.duplicate = drop / 2;
  rule.reorder = drop / 2;
  rule.delay_base = drop > 0 ? milliseconds(1) : SimDuration{0};
  rule.delay_jitter = SimDuration(static_cast<std::uint64_t>(drop * 20) * 1000);  // up to 4ms
  return rule;
}

struct CellResult {
  double write_rate = 0;
  double read_rate = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  std::uint64_t messages = 0;
  std::uint64_t faults_injected = 0;
};

CellResult run_cell(double drop, std::uint64_t seed,
                    const std::shared_ptr<obs::Registry>& registry) {
  testkit::ClusterOptions options;
  options.n = 5;
  options.b = 1;
  options.seed = seed;
  options.chaos_seed = seed * 9176 + 11;
  options.op_timeout = seconds(4);
  options.gossip.period = milliseconds(100);
  options.registry = registry;
  testkit::Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());
  cluster.chaos()->set_default_rule(rule_for(drop));

  core::SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = milliseconds(200);
  auto client = cluster.make_client(ClientId{1}, client_options);
  core::SyncClient sync(*client, cluster.scheduler());

  const std::uint64_t faults_before = cluster.chaos()->injected_count();
  const std::uint64_t messages_before = cluster.transport_stats().messages_sent;

  // Connecting may itself need several tries at high loss; give it a few.
  bool connected = false;
  for (int attempt = 0; attempt < 5 && !connected; ++attempt) {
    connected = sync.connect(kGroup).ok();
  }

  int write_ok = 0, read_ok = 0;
  std::vector<SimDuration> latencies;
  for (int op = 0; connected && op < kOpsPerCell; ++op) {
    const ItemId item{100 + static_cast<std::uint64_t>(op % 4)};
    const std::string payload = "op " + std::to_string(op);
    const OpCost write_cost =
        measure(cluster, [&] { return sync.write(item, to_bytes(payload)).ok(); });
    if (write_cost.ok) {
      ++write_ok;
      latencies.push_back(write_cost.latency);
      const OpCost read_cost = measure(cluster, [&] {
        const auto result = sync.read_value(item);
        return result.ok() && to_string(*result) == payload;
      });
      if (read_cost.ok) {
        ++read_ok;
        latencies.push_back(read_cost.latency);
      }
    }
    cluster.run_for(milliseconds(10));
  }

  CellResult cell;
  cell.write_rate = static_cast<double>(write_ok) / kOpsPerCell;
  cell.read_rate = write_ok > 0 ? static_cast<double>(read_ok) / write_ok : 0.0;
  cell.messages = cluster.transport_stats().messages_sent - messages_before;
  cell.faults_injected = cluster.chaos()->injected_count() - faults_before;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    SimDuration total = 0;
    for (const SimDuration latency : latencies) total += latency;
    cell.mean_ms = static_cast<double>(total) / latencies.size() / 1000.0;
    cell.p95_ms =
        static_cast<double>(latencies[latencies.size() * 95 / 100]) / 1000.0;
  }
  return cell;
}

void run() {
  print_title("E14: operation success and latency vs injected fault rate");
  print_claim(
      "backoff+deadline retries absorb transport chaos: success stays high as "
      "loss climbs to 20%, latency and message counts pay the bill");

  const std::uint64_t seed = testkit::announce_seed("bench_e14_chaos", 14001);
  const double kDropRates[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  Table table({"drop", "write_ok", "read_ok", "mean_ms", "p95_ms", "msgs", "faults"});
  table.print_header();
  BenchJson json("e14_chaos");
  auto registry = std::make_shared<obs::Registry>();

  for (const double drop : kDropRates) {
    const CellResult cell = run_cell(drop, seed, registry);
    table.cell(drop);
    table.cell(cell.write_rate);
    table.cell(cell.read_rate);
    table.cell(cell.mean_ms);
    table.cell(cell.p95_ms);
    table.cell(cell.messages);
    table.cell(cell.faults_injected);
    table.end_row();

    json.begin_row();
    json.field("drop_rate", drop);
    json.field("write_rate", cell.write_rate);
    json.field("read_rate", cell.read_rate);
    json.field("mean_latency_ms", cell.mean_ms);
    json.field("p95_latency_ms", cell.p95_ms);
    json.field("messages_sent", cell.messages);
    json.field("faults_injected", cell.faults_injected);
  }

  std::printf(
      "\nn=5, b=1, %d write+read pairs per cell, seed-deterministic faults\n"
      "(drop plus proportional duplicate/reorder/delay). Retries are capped\n"
      "exponential backoff under a 4s op deadline, so cells with heavy loss\n"
      "trade latency and messages for success instead of failing outright.\n",
      kOpsPerCell);

  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
