// Experiment E11 — the protocol stack on wall-clock time.
//
// §7: "we plan to build our store using the protocols discussed in this
// paper" — this bench runs the full implementation (not the simulator) on
// the real-time threaded transport and measures operation latency
// percentiles and pipelined throughput, with crypto costs (Ed25519 from
// scratch) and dispatch overhead actually paid. Latencies here include a
// LAN-like 200-300 us artificial link delay.
#include <chrono>
#include <future>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "net/thread_transport.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy mrc_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

struct LiveDeployment {
  net::ThreadTransport transport;
  core::StoreConfig config;
  crypto::KeyPair client_pair;
  std::vector<std::unique_ptr<core::SecureStoreServer>> servers;
  std::unique_ptr<core::SecureStoreClient> client;

  LiveDeployment(std::uint32_t n, std::uint32_t b,
                 std::shared_ptr<obs::Registry> registry = nullptr)
      : transport(sim::NetworkModel(
                      Rng(1), sim::LinkProfile{microseconds(200), microseconds(100), 0}),
                  std::move(registry)) {
    config.n = n;
    config.b = b;
    Rng rng(2);
    client_pair = crypto::KeyPair::generate(rng);
    config.client_keys[1] = client_pair.public_key;
    std::vector<crypto::KeyPair> server_pairs;
    for (std::uint32_t i = 0; i < n; ++i) {
      config.servers.push_back(NodeId{i});
      server_pairs.push_back(crypto::KeyPair::generate(rng));
      config.server_keys[NodeId{i}] = server_pairs.back().public_key;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      core::SecureStoreServer::Options options;
      options.gossip.period = milliseconds(200);
      servers.push_back(std::make_unique<core::SecureStoreServer>(
          transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
      servers.back()->set_group_policy(mrc_policy());
    }
    core::SecureStoreClient::Options client_options;
    client_options.policy = mrc_policy();
    client = std::make_unique<core::SecureStoreClient>(transport, NodeId{1000}, ClientId{1},
                                                       client_pair, config, client_options,
                                                       rng.fork());
  }

  ~LiveDeployment() { transport.stop(); }

  VoidResult write(ItemId item, const Bytes& value) {
    auto promise = std::make_shared<std::promise<VoidResult>>();
    auto future = promise->get_future();
    transport.schedule(0, [this, item, value, promise] {
      client->write(item, value, [promise](VoidResult r) { promise->set_value(std::move(r)); });
    });
    return future.get();
  }

  Result<core::ReadOutput> read(ItemId item) {
    auto promise = std::make_shared<std::promise<Result<core::ReadOutput>>>();
    auto future = promise->get_future();
    transport.schedule(0, [this, item, promise] {
      client->read(item, [promise](Result<core::ReadOutput> r) {
        promise->set_value(std::move(r));
      });
    });
    return future.get();
  }
};

void latency_table(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- sequential op latency (wall clock, n=4 b=1, 200-300 us links) ---\n");
  Table table({"op", "p50_us", "p95_us", "max_us"});
  table.print_header();

  LiveDeployment deployment(4, 1, registry);
  const Bytes value(256, 0x42);

  sim::Samples write_samples, read_samples;
  constexpr int kOps = 100;
  for (int op = 0; op < kOps; ++op) {
    const ItemId item{static_cast<std::uint64_t>(op % 8)};
    {
      const auto start = std::chrono::steady_clock::now();
      if (deployment.write(item, value).ok()) {
        write_samples.add(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      }
    }
    {
      const auto start = std::chrono::steady_clock::now();
      if (deployment.read(item).ok()) {
        read_samples.add(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count());
      }
    }
  }

  for (const auto& [name, samples] :
       {std::pair<const char*, sim::Samples&>{"write", write_samples}, {"read", read_samples}}) {
    json.begin_row();
    json.field("section", "latency");
    json.field("op", name);
    json.field("p50_us", samples.percentile(50));
    json.field("p95_us", samples.percentile(95));
    json.field("max_us", samples.max());
    table.cell(std::string(name));
    table.cell(samples.percentile(50), 0);
    table.cell(samples.percentile(95), 0);
    table.cell(samples.max(), 0);
    table.end_row();
  }
  std::printf(
      "\nLatency = 1 network round trip + 1 Ed25519 sign + (b+1) server\n"
      "verifies (write) / 1 client verify (read) + dispatch overhead.\n\n");
}

void throughput_table(BenchJson& json, const std::shared_ptr<obs::Registry>& registry) {
  std::printf("--- pipelined throughput (wall clock, n=4 b=1) ---\n");
  Table table({"in_flight", "ops", "seconds", "ops_per_s"});
  table.print_header();

  for (const int window : {1, 4, 16}) {
    LiveDeployment deployment(4, 1, registry);
    const Bytes value(256, 0x42);
    constexpr int kOps = 200;

    const auto start = std::chrono::steady_clock::now();
    std::atomic<int> completed{0};
    std::promise<void> all_done;
    auto issued = std::make_shared<std::atomic<int>>(0);

    // Issue up to `window` concurrent writes from the dispatch thread.
    std::function<void()> issue_next = [&]() {
      const int op = issued->fetch_add(1);
      if (op >= kOps) return;
      deployment.client->write(ItemId{static_cast<std::uint64_t>(op % 16)}, value,
                               [&](VoidResult) {
                                 if (completed.fetch_add(1) + 1 == kOps) {
                                   all_done.set_value();
                                 } else {
                                   issue_next();
                                 }
                               });
    };
    deployment.transport.schedule(0, [&] {
      for (int i = 0; i < window; ++i) issue_next();
    });
    all_done.get_future().wait();
    const double seconds_elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    json.begin_row();
    json.field("section", "throughput");
    json.field("in_flight", static_cast<std::uint64_t>(window));
    json.field("ops", static_cast<std::uint64_t>(kOps));
    json.field("seconds", seconds_elapsed);
    json.field("ops_per_s", static_cast<double>(kOps) / seconds_elapsed);
    table.cell(static_cast<std::uint64_t>(window));
    table.cell(static_cast<std::uint64_t>(kOps));
    table.cell(seconds_elapsed, 3);
    table.cell(static_cast<double>(kOps) / seconds_elapsed, 0);
    table.end_row();
  }
  std::printf(
      "\nPipelining hides network latency; the ceiling is the single-core\n"
      "crypto budget (~1 sign + 2 verifies ~= 0.8 ms CPU per write).\n");
}

void run() {
  print_title("E11: the real implementation on wall-clock time");
  print_claim("'simulations as well as actual implementations' (§6) — the latter half");
  // One registry across both halves; on the threaded transport now() is wall
  // time, so the client.p*.latency histograms are real-microsecond data.
  auto registry = std::make_shared<obs::Registry>();
  BenchJson json("e11_realtime");
  latency_table(json, registry);
  throughput_table(json, registry);
  emit_metrics(json, *registry);
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
