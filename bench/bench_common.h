// Shared helpers for the experiment binaries (DESIGN.md §4).
//
// Each bench regenerates one §6 claim as a printed table. Helpers here
// format tables and run measured client operations against a Cluster.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "crypto/keys.h"
#include "obs/export.h"
#include "sim/open_loop.h"
#include "testkit/cluster.h"

namespace securestore::bench {

/// Fixed-width table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int column_width = 14)
      : headers_(std::move(headers)), width_(column_width) {}

  void print_header() const {
    for (const auto& header : headers_) std::printf("%*s", width_, header.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%*s", width_, std::string(static_cast<std::size_t>(width_) - 2, '-').c_str());
    }
    std::printf("\n");
  }

  void cell(const std::string& value) const { std::printf("%*s", width_, value.c_str()); }
  void cell(std::uint64_t value) const { std::printf("%*llu", width_, static_cast<unsigned long long>(value)); }
  void cell(double value, int precision = 2) const {
    std::printf("%*.*f", width_, precision, value);
  }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

/// Machine-readable sidecar for a bench: collects rows of key -> value and
/// writes `BENCH_<name>.json` into the working directory on destruction, so
/// plots and CI diffs consume the same numbers the printed table shows.
/// A sidecar that silently fails to land would let CI diff against stale
/// numbers, so a write failure aborts the bench with a non-zero exit.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() {
    if (!write()) {
      std::fprintf(stderr, "error: could not write BENCH_%s.json\n", name_.c_str());
      std::exit(EXIT_FAILURE);
    }
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
  }
  void field(const std::string& key, std::uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, double value, int precision = 4) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    rows_.back().emplace_back(key, buffer);
  }

 private:
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    bool ok = true;
    ok &= std::fprintf(file, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str()) >= 0;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      ok &= std::fprintf(file, "    {") >= 0;
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        ok &= std::fprintf(file, "%s\"%s\": %s", f == 0 ? "" : ", ", rows_[r][f].first.c_str(),
                           rows_[r][f].second.c_str()) >= 0;
      }
      ok &= std::fprintf(file, "}%s\n", r + 1 < rows_.size() ? "," : "") >= 0;
    }
    ok &= std::fprintf(file, "  ]\n}\n") >= 0;
    // fclose flushes; a full disk often only surfaces here.
    ok &= std::fclose(file) == 0;
    if (ok) std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return ok;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Folds the registry's populated histograms into the sidecar (one row per
/// metric, tagged kind=histogram) and prints the full registry dump. Every
/// bench calls this once before exiting, so each BENCH_*.json carries the
/// measured latency distributions alongside its table rows, and the text
/// dump lands in the bench log for eyeballing.
inline void emit_metrics(BenchJson& json, obs::Registry& registry) {
  obs::MetricsSnapshot snapshot = registry.snapshot();
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (histogram.count == 0) continue;
    json.begin_row();
    json.field("kind", "histogram");
    json.field("metric", name);
    json.field("count", histogram.count);
    json.field("mean_us", histogram.mean());
    json.field("p50_us", histogram.p50());
    json.field("p95_us", histogram.p95());
    json.field("p99_us", histogram.p99());
    json.field("max_us", histogram.max);
  }
  std::printf("\n--- metrics ---\n%s", obs::to_text(snapshot).c_str());
}

inline void print_claim(const std::string& claim) {
  std::printf("paper claim: %s\n\n", claim.c_str());
}

/// Drives `issue` open-loop against a simulated cluster (DESIGN.md §13):
/// a seeded Poisson arrival schedule at `arrivals_per_sec` for `duration`
/// of virtual time, carried by a bounded stand-in pool (`max_in_flight`)
/// so a saturated deployment overflows — counted against goodput — rather
/// than queueing unbounded work inside the harness. After the schedule
/// ends, the drain tail runs (bounded by `drain`) so every in-flight
/// operation is accounted before the generator's stats are returned.
inline sim::OpenLoopLoad::Stats drive_open_loop(testkit::Cluster& cluster,
                                                double arrivals_per_sec,
                                                SimDuration duration,
                                                std::size_t max_in_flight,
                                                std::uint64_t seed,
                                                sim::OpenLoopLoad::IssueFn issue,
                                                SimDuration drain = seconds(10)) {
  sim::OpenLoopLoad::Options options;
  options.arrivals_per_sec = arrivals_per_sec;
  options.max_in_flight = max_in_flight;
  options.seed = seed;
  sim::OpenLoopLoad load(cluster.scheduler(), options, std::move(issue));
  load.start(cluster.transport().now() + duration);
  cluster.run_for(duration);
  const SimTime drained_by = cluster.transport().now() + drain;
  while (load.in_flight() > 0 && cluster.transport().now() < drained_by) {
    cluster.run_for(milliseconds(10));
  }
  return load.stats();
}

/// Message/crypto deltas around one measured operation.
struct OpCost {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t signs = 0;
  std::uint64_t verifies = 0;
  std::uint64_t digests = 0;
  std::uint64_t macs = 0;
  SimDuration latency = 0;
  bool ok = false;
};

/// Runs `op` (which must drive the scheduler to completion, e.g. via
/// SyncClient) and reports the cost deltas.
template <typename Op>
OpCost measure(testkit::Cluster& cluster, Op&& op) {
  auto& meter = crypto::CryptoMeter::instance();
  const auto stats_before = cluster.transport().stats();
  const auto meter_before = meter;
  const SimTime start = cluster.scheduler().now();

  const bool ok = op();

  OpCost cost;
  cost.ok = ok;
  cost.latency = cluster.scheduler().now() - start;
  const auto& stats_after = cluster.transport().stats();
  cost.messages = stats_after.messages_sent - stats_before.messages_sent;
  cost.bytes = stats_after.bytes_sent - stats_before.bytes_sent;
  cost.signs = meter.signs - meter_before.signs;
  cost.verifies = meter.verifies - meter_before.verifies;
  cost.digests = meter.digests - meter_before.digests;
  cost.macs = meter.macs - meter_before.macs;
  return cost;
}

}  // namespace securestore::bench
