// E18: overload robustness (DESIGN.md §13, EXPERIMENTS.md E18).
//
// Sweeps open-loop Poisson offered load past the deployment's saturation
// point — per-server service costs cap capacity, so saturation happens in
// virtual time on any host — and compares the admission-controlled
// deployment against the same deployment with the gate disabled. The
// claim: past saturation, shedding turns congestion collapse into a
// goodput plateau. Goodput at 2x the saturation rate stays >= 80% of
// peak, admitted-op p99 latency stays bounded (the queue never grows past
// the shed watermark), and the shed fraction grows to absorb the excess.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/client.h"
#include "core/sync.h"
#include "util/result.h"

namespace securestore::bench {
namespace {

constexpr GroupId kGroup{1};
constexpr std::uint32_t kClients = 16;
/// Stand-in pool for the open-loop population: large enough that doomed
/// (refused, backing-off) operations do not starve admitted ones.
constexpr std::size_t kPoolCap = 1024;
/// Per-message service cost at every server: 1ms -> 1000 msg/s capacity.
/// Writes land on a quorum (~half the servers), so the deployment
/// saturates around 2000 ops/s.
constexpr SimDuration kService = milliseconds(1);
constexpr SimDuration kWindow = seconds(3);  // measured arrival window

core::GroupPolicy single_writer_policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

std::uint64_t counter_value(testkit::Cluster& cluster, const std::string& name) {
  const auto snapshot = cluster.registry().snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

struct Cell {
  double offered = 0;  // arrivals per second
  sim::OpenLoopLoad::Stats stats;
  std::uint64_t refused_ops = 0;  // ops that ended kOverloaded
  std::uint64_t failed_ops = 0;   // ops that ended any other way (timeouts)
  std::uint64_t server_sheds = 0;
  double goodput = 0;        // succeeded per second of the arrival window
  double shed_fraction = 0;  // (refused + overflow) / arrivals
  double p50_ms = 0;         // admitted (successful) op latency
  double p99_ms = 0;
};

double percentile_ms(std::vector<SimDuration>& latencies, double q) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const auto index = static_cast<std::size_t>(q * static_cast<double>(latencies.size() - 1));
  return static_cast<double>(latencies[index]) / 1000.0;
}

/// One sweep cell: a fresh deployment, `kClients` connected writers, and
/// an open-loop arrival schedule at `offered` ops/s for `kWindow`. Every
/// arrival is one independent client write (round-robin principal, fresh
/// item), classified on completion as goodput, refusal or timeout.
Cell run_cell(double offered, bool admission_on) {
  testkit::ClusterOptions options;
  options.max_clients = kClients;
  options.start_gossip = false;
  options.op_timeout = milliseconds(750);
  options.admission.enabled = admission_on;
  // Tighter watermarks than the defaults: shed once ~64ms of work is
  // queued, so the latency of admitted requests stays well inside the
  // round budget.
  options.admission.net_backlog_high = 64;
  options.admission.net_backlog_low = 16;
  testkit::Cluster cluster(options);
  cluster.set_group_policy(single_writer_policy());

  core::SecureStoreClient::Options client_options;
  client_options.policy = single_writer_policy();
  client_options.round_timeout = milliseconds(250);
  std::vector<std::unique_ptr<core::SecureStoreClient>> clients;
  for (std::uint32_t c = 1; c <= kClients; ++c) {
    clients.push_back(cluster.make_client(ClientId{c}, client_options));
    core::SyncClient sync(*clients.back(), cluster.scheduler());
    if (!sync.connect(kGroup).ok()) {
      std::fprintf(stderr, "error: client %u failed to connect\n", c);
      std::exit(EXIT_FAILURE);
    }
  }

  // Capacity cap only after the connect handshakes: the sweep measures
  // the data path, not session setup.
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    cluster.transport().set_service_time(cluster.server_node(s), kService);
  }

  Cell cell;
  cell.offered = offered;
  std::vector<SimDuration> latencies;
  const Bytes value = to_bytes("overload-sweep-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  std::uint64_t sequence = 0;
  auto issue = [&](sim::OpenLoopLoad::DoneFn done) {
    const std::uint64_t op = sequence++;
    core::SecureStoreClient& client = *clients[op % kClients];
    const ItemId item{1 + op};
    const SimTime start = cluster.transport().now();
    client.write(item, value, [&, start, done = std::move(done)](VoidResult result) {
      if (result.ok()) {
        latencies.push_back(cluster.transport().now() - start);
      } else if (result.error() == Error::kOverloaded) {
        ++cell.refused_ops;
      } else {
        ++cell.failed_ops;
      }
      done(result.ok());
    });
  };
  cell.stats = drive_open_loop(cluster, offered, kWindow, kPoolCap,
                               /*seed=*/static_cast<std::uint64_t>(offered) * 7919 + 1, issue);

  cell.server_sheds = counter_value(cluster, "server.shed");
  const double window_s = static_cast<double>(kWindow) / 1e6;
  cell.goodput = static_cast<double>(cell.stats.succeeded) / window_s;
  cell.shed_fraction =
      cell.stats.arrivals == 0
          ? 0
          : static_cast<double>(cell.refused_ops + cell.stats.overflow) /
                static_cast<double>(cell.stats.arrivals);
  cell.p50_ms = percentile_ms(latencies, 0.50);
  cell.p99_ms = percentile_ms(latencies, 0.99);
  return cell;
}

void sweep_table(BenchJson& json, const std::string& mode, const std::vector<Cell>& cells) {
  std::printf("mode: %s\n", mode.c_str());
  Table table({"offered/s", "arrivals", "goodput/s", "p50 ms", "p99 ms", "shed frac",
               "refused", "overflow", "timeouts"},
              11);
  table.print_header();
  for (const Cell& cell : cells) {
    table.cell(cell.offered, 0);
    table.cell(cell.stats.arrivals);
    table.cell(cell.goodput, 0);
    table.cell(cell.p50_ms, 1);
    table.cell(cell.p99_ms, 1);
    table.cell(cell.shed_fraction, 3);
    table.cell(cell.refused_ops);
    table.cell(cell.stats.overflow);
    table.cell(cell.failed_ops);
    table.end_row();

    json.begin_row();
    json.field("kind", "sweep");
    json.field("mode", mode);
    json.field("offered_per_s", cell.offered, 0);
    json.field("arrivals", cell.stats.arrivals);
    json.field("issued", cell.stats.issued);
    json.field("overflow", cell.stats.overflow);
    json.field("succeeded", cell.stats.succeeded);
    json.field("refused_ops", cell.refused_ops);
    json.field("timeout_ops", cell.failed_ops);
    json.field("server_sheds", cell.server_sheds);
    json.field("goodput_per_s", cell.goodput, 1);
    json.field("p50_admitted_ms", cell.p50_ms, 2);
    json.field("p99_admitted_ms", cell.p99_ms, 2);
    json.field("shed_fraction", cell.shed_fraction);
  }
  std::printf("\n");
}

void run() {
  print_title("E18: overload robustness — admission control past saturation");
  print_claim(
      "open-loop load past saturation: with admission control, goodput "
      "plateaus (>= 80% of peak at 2x the saturation rate), admitted p99 "
      "stays bounded, and the shed fraction absorbs the excess; without "
      "it, the same sweep collapses into timeouts");

  BenchJson json("e18_overload");
  const std::vector<double> offered = {250, 500, 1000, 1500, 2000, 2500, 3000, 4000};

  std::vector<Cell> with_admission;
  std::vector<Cell> without_admission;
  for (const double rate : offered) with_admission.push_back(run_cell(rate, true));
  for (const double rate : offered) without_admission.push_back(run_cell(rate, false));

  sweep_table(json, "admission", with_admission);
  sweep_table(json, "no_admission", without_admission);

  // Saturation = the offered rate of the peak-goodput cell; the plateau
  // check reads the admission sweep at >= 2x that rate.
  const auto peak = std::max_element(
      with_admission.begin(), with_admission.end(),
      [](const Cell& a, const Cell& b) { return a.goodput < b.goodput; });
  const Cell* twice = nullptr;
  for (const Cell& cell : with_admission) {
    if (cell.offered >= 2 * peak->offered) {
      twice = &cell;
      break;
    }
  }
  const double ratio = twice != nullptr && peak->goodput > 0 ? twice->goodput / peak->goodput : 0;

  json.begin_row();
  json.field("kind", "acceptance");
  json.field("saturation_offered_per_s", peak->offered, 0);
  json.field("peak_goodput_per_s", peak->goodput, 1);
  json.field("offered_at_2x_per_s", twice != nullptr ? twice->offered : 0.0, 0);
  json.field("goodput_at_2x_per_s", twice != nullptr ? twice->goodput : 0.0, 1);
  json.field("goodput_ratio_at_2x", ratio);
  json.field("p99_admitted_ms_at_2x", twice != nullptr ? twice->p99_ms : 0.0, 2);
  json.field("shed_fraction_at_2x", twice != nullptr ? twice->shed_fraction : 0.0);

  std::printf("saturation (peak goodput): %.0f/s offered -> %.0f/s goodput\n", peak->offered,
              peak->goodput);
  if (twice != nullptr) {
    std::printf("at %.0f/s offered (>= 2x): goodput %.0f/s (%.0f%% of peak), "
                "p99 admitted %.1f ms, shed fraction %.3f\n",
                twice->offered, twice->goodput, 100 * ratio, twice->p99_ms,
                twice->shed_fraction);
  }
}

}  // namespace
}  // namespace securestore::bench

int main() {
  securestore::bench::run();
  return 0;
}
