// Quickstart: the secure store in ~60 lines.
//
// Stands up n=4 replicated servers (tolerating b=1 Byzantine failure),
// connects a client, writes an encrypted record, reads it back, and cycles
// a session so the context round-trips through the store.
//
//   $ ./quickstart
#include <cstdio>

#include "core/sync.h"
#include "testkit/cluster.h"

using namespace securestore;

int main() {
  // 1. Deploy the store: 4 servers, at most 1 may be compromised.
  testkit::ClusterOptions deployment;
  deployment.n = 4;
  deployment.b = 1;
  testkit::Cluster cluster(deployment);

  // 2. Declare a related group of data items: non-shared, monotonic-read
  //    consistency (the paper's class-1 application: private records).
  const GroupId medical_records{1};
  const core::GroupPolicy policy{medical_records, core::ConsistencyModel::kMRC,
                                 core::SharingMode::kSingleWriter,
                                 core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  // 3. A client with client-side encryption: servers never see plaintext.
  core::SecureStoreClient::Options options;
  options.policy = policy;
  options.codec = std::make_shared<core::AeadValueCodec>(to_bytes("resident-7 master key"),
                                                         Rng(system_entropy_seed()));
  auto client = cluster.make_client(ClientId{1}, options);
  core::SyncClient store(*client, cluster.scheduler());

  // 4. Session: connect (acquire context), write, read, disconnect (store
  //    context back).
  const ItemId blood_pressure{101};

  if (!store.connect(medical_records).ok()) {
    std::printf("connect failed\n");
    return 1;
  }
  std::printf("connected; context has %zu entries\n", client->context().size());

  if (!store.write(blood_pressure, to_bytes("2026-07-07 bp=118/76")).ok()) {
    std::printf("write failed\n");
    return 1;
  }
  std::printf("wrote blood-pressure record (signed, encrypted, at b+1=2 servers)\n");

  const auto reading = store.read_value(blood_pressure);
  if (!reading.ok()) {
    std::printf("read failed: %s\n", error_name(reading.error()));
    return 1;
  }
  std::printf("read back: \"%s\"\n", to_string(*reading).c_str());

  if (!store.disconnect().ok()) {
    std::printf("disconnect failed\n");
    return 1;
  }
  std::printf("disconnected; context stored at %u servers\n",
              cluster.config().context_quorum());

  // 5. A later session sees everything the previous one did.
  cluster.run_for(seconds(5));  // background dissemination
  auto later = cluster.make_client(ClientId{1}, options);
  core::SyncClient second_session(*later, cluster.scheduler());
  if (second_session.connect(medical_records).ok()) {
    const auto again = second_session.read_value(blood_pressure);
    std::printf("second session reads: \"%s\"\n",
                again.ok() ? to_string(*again).c_str() : error_name(again.error()));
  }

  std::printf("quickstart done\n");
  return 0;
}
