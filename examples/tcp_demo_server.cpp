// Multi-process demo, server side: hosts n=4 secure-store servers on real
// TCP and writes a deployment file (listen port + the key directory +
// client 1's key pair) that tcp_demo_client reads to join.
//
//   terminal 1:  ./tcp_demo_server /tmp/securestore.deployment
//   terminal 2:  ./tcp_demo_client /tmp/securestore.deployment
//
// The server process runs until stdin closes (or ^C).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/server.h"
#include "net/tcp_transport.h"

using namespace securestore;

namespace {

constexpr GroupId kGroup{1};
constexpr std::uint32_t kN = 4, kB = 1;

core::GroupPolicy policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string deployment_path =
      argc > 1 ? argv[1] : "/tmp/securestore.deployment";

  net::TcpTransport transport(0, {});

  core::StoreConfig config;
  config.n = kN;
  config.b = kB;
  Rng rng(system_entropy_seed());
  const crypto::KeyPair client_pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = client_pair.public_key;
  std::vector<crypto::KeyPair> server_pairs;
  for (std::uint32_t i = 0; i < kN; ++i) {
    config.servers.push_back(NodeId{i});
    server_pairs.push_back(crypto::KeyPair::generate(rng));
    config.server_keys[NodeId{i}] = server_pairs.back().public_key;
  }

  std::vector<std::unique_ptr<core::SecureStoreServer>> servers;
  for (std::uint32_t i = 0; i < kN; ++i) {
    core::SecureStoreServer::Options options;
    options.gossip.period = milliseconds(200);
    servers.push_back(std::make_unique<core::SecureStoreServer>(
        transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
    servers.back()->set_group_policy(policy());
  }

  // Deployment file: one hex/decimal field per line.
  {
    std::ofstream out(deployment_path);
    if (!out) {
      std::printf("cannot write %s\n", deployment_path.c_str());
      return 1;
    }
    out << transport.port() << "\n";
    out << kN << " " << kB << "\n";
    for (std::uint32_t i = 0; i < kN; ++i) {
      out << to_hex(config.server_keys[NodeId{i}]) << "\n";
    }
    out << to_hex(client_pair.public_key) << "\n";
    out << to_hex(client_pair.seed) << "\n";
  }

  std::printf("secure store serving %u replicas on 127.0.0.1:%u\n", kN, transport.port());
  std::printf("deployment file: %s\n", deployment_path.c_str());
  std::printf("run: ./tcp_demo_client %s   (press Enter here to shut down)\n",
              deployment_path.c_str());
  std::fflush(stdout);

  std::string line;
  std::getline(std::cin, line);  // block until Enter / EOF

  transport.stop();
  const auto& stats = transport.stats();
  std::printf("server shut down — transport: %llu msgs in (%llu bytes), "
              "%llu sent, %llu dropped, %llu reconnects, queue high-water %llu\n",
              static_cast<unsigned long long>(stats.messages_delivered),
              static_cast<unsigned long long>(stats.bytes_received),
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.messages_dropped),
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.send_queue_highwater));
  return 0;
}
