// Multi-process demo, client side: joins the deployment written by
// tcp_demo_server over real TCP, runs a session, writes and reads.
//
//   ./tcp_demo_client /tmp/securestore.deployment [message...]
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>

#include "core/client.h"
#include "net/tcp_transport.h"

using namespace securestore;

namespace {

constexpr GroupId kGroup{1};
constexpr ItemId kNote{101};

core::GroupPolicy policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string deployment_path =
      argc > 1 ? argv[1] : "/tmp/securestore.deployment";
  std::string message = "hello from another process";
  if (argc > 2) {
    std::ostringstream joined;
    for (int i = 2; i < argc; ++i) joined << (i > 2 ? " " : "") << argv[i];
    message = joined.str();
  }

  // Parse the deployment file.
  std::ifstream in(deployment_path);
  if (!in) {
    std::printf("cannot read %s — is tcp_demo_server running?\n", deployment_path.c_str());
    return 1;
  }
  std::uint16_t server_port = 0;
  std::uint32_t n = 0, b = 0;
  in >> server_port >> n >> b;
  core::StoreConfig config;
  config.n = n;
  config.b = b;
  std::map<NodeId, net::TcpEndpoint> directory;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key_hex;
    in >> key_hex;
    config.servers.push_back(NodeId{i});
    config.server_keys[NodeId{i}] = from_hex(key_hex);
    directory[NodeId{i}] = net::TcpEndpoint{"127.0.0.1", server_port};
  }
  std::string public_hex, seed_hex;
  in >> public_hex >> seed_hex;
  crypto::KeyPair client_pair;
  client_pair.public_key = from_hex(public_hex);
  client_pair.seed = from_hex(seed_hex);
  config.client_keys[1] = client_pair.public_key;

  net::TcpTransport transport(0, std::move(directory));

  core::SecureStoreClient::Options options;
  options.policy = policy();
  options.round_timeout = seconds(2);
  core::SecureStoreClient client(transport, NodeId{1000}, ClientId{1}, client_pair, config,
                                 options, Rng(system_entropy_seed()));

  auto wait_void = [&](auto op) {
    auto promise = std::make_shared<std::promise<VoidResult>>();
    auto future = promise->get_future();
    transport.schedule(0, [op, promise] {
      op([promise](VoidResult r) { promise->set_value(std::move(r)); });
    });
    return future.get();
  };

  if (!wait_void([&](auto cb) { client.connect(kGroup, cb); }).ok()) {
    std::printf("connect failed — server process reachable?\n");
    transport.stop();
    return 1;
  }
  std::printf("connected over TCP (context: %zu entries)\n", client.context().size());

  if (auto previous_ts = client.context().get(kNote); !previous_ts.is_zero()) {
    auto promise = std::make_shared<std::promise<Result<core::ReadOutput>>>();
    auto future = promise->get_future();
    transport.schedule(0, [&client, promise] {
      client.read(kNote, [promise](Result<core::ReadOutput> r) {
        promise->set_value(std::move(r));
      });
    });
    const auto previous = future.get();
    if (previous.ok()) {
      std::printf("previous note: \"%s\"\n", to_string(previous->value).c_str());
    }
  }

  if (!wait_void([&](auto cb) { client.write(kNote, to_bytes(message), cb); }).ok()) {
    std::printf("write failed\n");
    transport.stop();
    return 1;
  }
  std::printf("wrote: \"%s\"\n", message.c_str());

  if (!wait_void([&](auto cb) { client.disconnect(cb); }).ok()) {
    std::printf("disconnect failed\n");
    transport.stop();
    return 1;
  }
  std::printf("session stored; run me again to see read-your-writes across processes\n");

  transport.stop();
  const auto& stats = transport.stats();
  std::printf("transport: %llu sent (%llu bytes out, %llu in), %llu dropped, "
              "%llu connect failures, queue high-water %llu\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.bytes_received),
              static_cast<unsigned long long>(stats.messages_dropped),
              static_cast<unsigned long long>(stats.connect_failures),
              static_cast<unsigned long long>(stats.send_queue_highwater));
  return 0;
}
