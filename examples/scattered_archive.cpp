// Scattered archive: the fragmentation-scattering storage mode ([Fray et
// al.], [Rabin]; §3 of the paper) for bulk confidential data.
//
// A 100 KB family archive is encrypted under a fresh key, the ciphertext is
// dispersed with IDA(b+1, n) — each server stores only 1/(b+1) of it — and
// the key is Shamir-shared so that no b servers together learn anything.
// The demo then knocks out n-(b+1) servers and recovers the archive from
// the survivors.
#include <cstdio>

#include "core/scatter.h"
#include "testkit/cluster.h"

using namespace securestore;

int main() {
  const GroupId archives{40};
  const core::GroupPolicy policy{archives, core::ConsistencyModel::kMRC,
                                 core::SharingMode::kSingleWriter,
                                 core::ClientTrust::kHonest};

  testkit::ClusterOptions deployment;
  deployment.n = 7;
  deployment.b = 2;
  testkit::Cluster cluster(deployment);
  cluster.set_group_policy(policy);

  core::ScatteredStore::Options options;
  options.policy = policy;
  core::ScatteredStore archive(cluster.transport(), NodeId{1500}, ClientId{1},
                               cluster.client_keys(ClientId{1}), cluster.config(), options,
                               Rng(system_entropy_seed()));

  // A 100 KB archive.
  Rng data_rng(7);
  Bytes family_photos = data_rng.bytes(100 * 1024);
  const ItemId photos{801};

  auto drive = [&](auto&& op) {
    bool done = false;
    op(done);
    while (!done && cluster.scheduler().step()) {
    }
  };

  bool write_ok = false;
  drive([&](bool& done) {
    archive.write(photos, family_photos, [&](VoidResult r) {
      write_ok = r.ok();
      done = true;
    });
  });
  if (!write_ok) {
    std::printf("scattered write failed\n");
    return 1;
  }

  const std::size_t per_server =
      cluster.server(0).store().current(core::fragment_item(photos, 0))->value.size();
  std::printf("archived 100 KB: each of the 7 servers stores only %zu KB (1/%u of it)\n",
              per_server / 1024, archive.threshold());
  std::printf("confidentiality: any %u servers hold too few key shares to decrypt\n",
              deployment.b);

  // Disaster: 4 of 7 servers fail (far past the usual b = 2!).
  for (std::uint32_t s = 3; s < 7; ++s) {
    cluster.transport().network().set_partitioned(NodeId{s}, true);
  }
  std::printf("4 of 7 servers failed; reconstructing from the %u survivors...\n",
              archive.threshold());

  Result<Bytes> recovered(Error::kTimeout);
  drive([&](bool& done) {
    archive.read(photos, [&](Result<Bytes> r) {
      recovered = std::move(r);
      done = true;
    });
  });

  if (recovered.ok() && *recovered == family_photos) {
    std::printf("archive recovered intact (%zu KB, byte-for-byte)\n",
                recovered->size() / 1024);
  } else {
    std::printf("recovery failed: %s\n", error_name(recovered.error()));
    return 1;
  }
  return 0;
}
