// Interactive shell over a live (wall-clock, multi-threaded) secure store.
//
// Spins up n=4 servers tolerating b=1 Byzantine failure on the real-time
// transport and gives you a prompt:
//
//   securestore> connect
//   securestore> write 101 hello world
//   securestore> read 101
//   hello world   (ts=..., writer=C1)
//   securestore> crash 0        # kill a server, keep working
//   securestore> status
//   securestore> disconnect
//   securestore> quit
//
// Pipe a script in for non-interactive use:
//   printf 'connect\nwrite 1 hi\nread 1\nquit\n' | ./secure_store_cli
#include <cstdio>
#include <future>
#include <iostream>
#include <sstream>

#include "core/client.h"
#include "core/server.h"
#include "net/thread_transport.h"

using namespace securestore;

namespace {

constexpr GroupId kGroup{1};

core::GroupPolicy policy() {
  return core::GroupPolicy{kGroup, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

/// Posts an async op to the dispatch thread and waits for its result.
template <typename R>
R run_on_dispatcher(net::Transport& transport, std::function<void(std::function<void(R)>)> op) {
  auto promise = std::make_shared<std::promise<R>>();
  auto future = promise->get_future();
  transport.schedule(0, [op = std::move(op), promise] {
    op([promise](R r) { promise->set_value(std::move(r)); });
  });
  return future.get();
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 4, kB = 1;

  net::ThreadTransport transport(
      sim::NetworkModel(Rng(system_entropy_seed()),
                        sim::LinkProfile{milliseconds(2), milliseconds(1), 0.0}));

  core::StoreConfig config;
  config.n = kN;
  config.b = kB;
  Rng rng(system_entropy_seed());
  const crypto::KeyPair client_pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = client_pair.public_key;
  std::vector<crypto::KeyPair> server_pairs;
  for (std::uint32_t i = 0; i < kN; ++i) {
    config.servers.push_back(NodeId{i});
    server_pairs.push_back(crypto::KeyPair::generate(rng));
    config.server_keys[NodeId{i}] = server_pairs.back().public_key;
  }

  std::vector<std::unique_ptr<core::SecureStoreServer>> servers;
  for (std::uint32_t i = 0; i < kN; ++i) {
    core::SecureStoreServer::Options options;
    options.gossip.period = milliseconds(200);
    servers.push_back(std::make_unique<core::SecureStoreServer>(
        transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
    servers.back()->set_group_policy(policy());
  }

  core::SecureStoreClient::Options client_options;
  client_options.policy = policy();
  client_options.round_timeout = milliseconds(500);
  core::SecureStoreClient client(transport, NodeId{1000}, ClientId{1}, client_pair, config,
                                 client_options, rng.fork());

  std::printf("secure store: %u servers, tolerating %u Byzantine fault(s). 'help' lists commands.\n",
              kN, kB);

  std::string line;
  while (std::printf("securestore> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    input >> command;
    if (command.empty()) continue;

    if (command == "quit" || command == "exit") break;

    if (command == "help") {
      std::printf(
          "  connect               acquire this principal's session context\n"
          "  disconnect            store the context back\n"
          "  write <item> <text>   signed write to b+1 servers\n"
          "  read <item>           consistent, verified read\n"
          "  crash <server>        partition a server away (0..%u)\n"
          "  heal <server>         bring it back\n"
          "  status                per-server item counts + client context\n"
          "  quit\n",
          kN - 1);
    } else if (command == "connect") {
      const VoidResult result = run_on_dispatcher<VoidResult>(
          transport, [&](auto cb) { client.connect(kGroup, cb); });
      if (result.ok()) {
        std::printf("connected (%zu context entries)\n", client.context().size());
      } else {
        std::printf("failed: %s\n", error_name(result.error()));
      }
    } else if (command == "disconnect") {
      const VoidResult result =
          run_on_dispatcher<VoidResult>(transport, [&](auto cb) { client.disconnect(cb); });
      std::printf(result.ok() ? "context stored\n" : "failed: %s\n",
                  error_name(result.error()));
    } else if (command == "write") {
      std::uint64_t item = 0;
      input >> item;
      std::string text;
      std::getline(input, text);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      const VoidResult result = run_on_dispatcher<VoidResult>(transport, [&](auto cb) {
        client.write(ItemId{item}, to_bytes(text), cb);
      });
      if (result.ok()) {
        std::printf("ok (ts=%llu)\n",
                    static_cast<unsigned long long>(client.context().get(ItemId{item}).time));
      } else {
        std::printf("failed: %s\n", error_name(result.error()));
      }
    } else if (command == "read") {
      std::uint64_t item = 0;
      input >> item;
      const auto result = run_on_dispatcher<Result<core::ReadOutput>>(
          transport, [&](auto cb) { client.read(ItemId{item}, cb); });
      if (result.ok()) {
        std::printf("%s   (ts=%llu, writer=%s)\n", to_string(result->value).c_str(),
                    static_cast<unsigned long long>(result->ts.time),
                    to_string(result->writer).c_str());
      } else {
        std::printf("failed: %s\n", error_name(result.error()));
      }
    } else if (command == "crash" || command == "heal") {
      std::uint32_t server = 0;
      input >> server;
      if (server >= kN) {
        std::printf("no such server\n");
        continue;
      }
      transport.schedule(0, [&transport, server, down = command == "crash"] {
        transport.network().set_partitioned(NodeId{server}, down);
      });
      std::printf("%s S%u\n", command == "crash" ? "partitioned" : "healed", server);
    } else if (command == "status") {
      for (std::uint32_t i = 0; i < kN; ++i) {
        std::printf("  S%u: %zu items, %zu log entries%s\n", i,
                    servers[i]->store().item_count(),
                    servers[i]->store().total_log_entries(),
                    transport.network().is_partitioned(NodeId{i}) ? "  [DOWN]" : "");
      }
      std::printf("  context: %s\n", to_string(client.context()).c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }

  transport.stop();
  std::printf("bye\n");
  return 0;
}
