// Community plan: the paper's class-3 application (§2) — "a group of
// citizens may collectively develop a plan to address problems in the
// community over a period of time". Multiple writers, causal consistency,
// AND malicious clients: the full §5.3 protocol with 2b+1 quorums, causal
// holds and equivocation detection.
#include <cstdio>

#include "core/sync.h"
#include "faults/malicious_client.h"
#include "testkit/cluster.h"

using namespace securestore;

int main() {
  const GroupId town_projects{20};
  const core::GroupPolicy policy{town_projects, core::ConsistencyModel::kCC,
                                 core::SharingMode::kMultiWriter,
                                 core::ClientTrust::kByzantine};

  testkit::ClusterOptions deployment;
  deployment.n = 4;
  deployment.b = 1;
  testkit::Cluster cluster(deployment);
  cluster.set_group_policy(policy);

  core::SecureStoreClient::Options options;
  options.policy = policy;

  const ItemId park_plan{601};
  const ItemId budget{602};

  // Alice drafts the budget; Bob reads it and writes a plan based on it.
  auto alice = cluster.make_client(ClientId{1}, options);
  auto bob = cluster.make_client(ClientId{2}, options);
  core::SyncClient alice_store(*alice, cluster.scheduler());
  core::SyncClient bob_store(*bob, cluster.scheduler());

  (void)alice_store.connect(town_projects);
  (void)bob_store.connect(town_projects);

  (void)alice_store.write(budget, to_bytes("budget: $12k for the park"));
  std::printf("alice wrote the budget\n");
  cluster.run_for(seconds(2));

  const auto bobs_view = bob_store.read_value(budget);
  std::printf("bob read: \"%s\"\n",
              bobs_view.ok() ? to_string(*bobs_view).c_str() : error_name(bobs_view.error()));
  (void)bob_store.write(park_plan, to_bytes("plan: benches + playground, fits $12k"));
  std::printf("bob wrote a plan causally after the budget\n");
  cluster.run_for(seconds(2));

  // Causal consistency: anyone who reads Bob's plan will never see a
  // pre-budget state of the budget item.
  auto carol = cluster.make_client(ClientId{3}, options);
  core::SyncClient carol_store(*carol, cluster.scheduler());
  (void)carol_store.connect(town_projects);
  const auto plan = carol_store.read_value(park_plan);
  const auto seen_budget = carol_store.read_value(budget);
  std::printf("carol reads plan: \"%s\"\n",
              plan.ok() ? to_string(*plan).c_str() : error_name(plan.error()));
  std::printf("carol reads budget (never older than what the plan used): \"%s\"\n",
              seen_budget.ok() ? to_string(*seen_budget).c_str()
                               : error_name(seen_budget.error()));

  // A malicious resident tries the §5.3 denial-of-service: a write whose
  // context claims a phantom dependency with an absurd timestamp.
  faults::MaliciousClient mallory(cluster.transport(), NodeId{2000}, ClientId{4},
                                  cluster.client_keys(ClientId{4}), cluster.config(),
                                  policy);
  mallory.send_spurious_context_write(park_plan, to_bytes("MALLORY'S PLAN"),
                                      ItemId{666}, 1'000'000'000, 4);
  cluster.run_for(seconds(1));

  std::size_t held = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    held += cluster.server(s).held_writes();
  }
  std::printf("mallory's poisoned write: parked in %zu hold queues, never reported\n", held);

  const auto after_attack = carol_store.read_value(park_plan);
  std::printf("carol still reads: \"%s\"\n",
              after_attack.ok() ? to_string(*after_attack).c_str()
                                : error_name(after_attack.error()));

  // Mallory then equivocates — one timestamp, two different values.
  mallory.send_equivocating_writes(budget, to_bytes("tell auditors $12k"),
                                   to_bytes("tell council $20k"),
                                   /*time=*/9'999'999'999ull, 4);
  cluster.run_for(seconds(1));
  auto dave = cluster.make_client(ClientId{5}, options);
  core::SyncClient dave_store(*dave, cluster.scheduler());
  (void)dave_store.connect(town_projects);
  const auto flagged = dave_store.read_value(budget);
  std::printf("after mallory equivocates, a fresh reader gets: %s\n",
              flagged.ok() ? to_string(*flagged).c_str() : error_name(flagged.error()));
  std::printf("community plan demo done\n");
  return 0;
}
