// Family sharing: the §5.2 key-management story end to end.
//
// A parent (the data owner) shares household records with two family
// members using the group-key machinery: epoch keys wrapped per member
// under X25519 pairwise secrets, distributed THROUGH the secure store. When
// one member moves out, a re-key revokes their access to everything written
// afterwards — while the servers, as always, never see any plaintext.
#include <cstdio>

#include "core/group_key.h"
#include "core/sync.h"
#include "testkit/cluster.h"

using namespace securestore;

namespace {

constexpr GroupId kHousehold{1};
constexpr ItemId kAlarmCode{901};

core::GroupPolicy policy() {
  return core::GroupPolicy{kHousehold, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

}  // namespace

int main() {
  testkit::Cluster cluster(testkit::ClusterOptions{});
  cluster.set_group_policy(policy());
  Rng rng(system_entropy_seed());

  // Identities: the parent owns the data; kids hold X25519 key pairs.
  core::GroupKeyOwner parent_keys(kHousehold, crypto::DhKeyPair::generate(rng), rng.fork());
  const crypto::DhKeyPair kid_a = crypto::DhKeyPair::generate(rng);
  const crypto::DhKeyPair kid_b = crypto::DhKeyPair::generate(rng);
  parent_keys.add_member(ClientId{2}, kid_a.public_key);
  parent_keys.add_member(ClientId{3}, kid_b.public_key);

  // Parent session: publish the key bundle through the store, then write
  // the alarm code under the epoch key.
  core::SecureStoreClient::Options parent_options;
  parent_options.policy = policy();
  auto parent = cluster.make_client(ClientId{1}, parent_options);
  core::SyncClient parent_store(*parent, cluster.scheduler());
  (void)parent_store.connect(kHousehold);
  (void)parent_store.write(core::key_bundle_item(kHousehold),
                           parent_keys.make_bundle().serialize());
  parent->set_codec(parent_keys.make_codec());
  (void)parent_store.write(kAlarmCode, to_bytes("alarm code 4711"));
  std::printf("parent published key bundle (epoch %u) and the alarm code\n",
              parent_keys.epoch());
  cluster.run_for(seconds(5));

  auto kid_reads = [&](ClientId who, const crypto::DhKeyPair& dh, std::uint32_t offset) {
    core::SecureStoreClient::Options options;
    options.policy = policy();
    auto kid = cluster.make_client(who, options, NodeId{1300 + offset});
    core::SyncClient store(*kid, cluster.scheduler());
    (void)store.connect(kHousehold);
    const auto bundle_bytes = store.read_value(core::key_bundle_item(kHousehold));
    if (!bundle_bytes.ok()) return std::string("(no bundle)");
    const auto key = core::unwrap_bundle(core::KeyBundle::deserialize(*bundle_bytes), who,
                                         dh.private_scalar);
    if (!key.has_value()) return std::string("(not a member — locked out)");
    auto codec = std::make_shared<core::EpochCodec>(kHousehold, Rng(offset + 99));
    codec->add_epoch(key->first, key->second);
    kid->set_codec(std::move(codec));
    const auto value = store.read_value(kAlarmCode);
    return value.ok() ? to_string(*value) : std::string("(cannot decrypt)");
  };

  std::printf("kid A reads: %s\n", kid_reads(ClientId{2}, kid_a, 1).c_str());
  std::printf("kid B reads: %s\n", kid_reads(ClientId{3}, kid_b, 2).c_str());

  // Kid B moves out: revoke, republish, change the code.
  parent_keys.remove_member(ClientId{3});
  parent->set_codec(nullptr);
  (void)parent_store.write(core::key_bundle_item(kHousehold),
                           parent_keys.make_bundle().serialize());
  parent->set_codec(parent_keys.make_codec());
  (void)parent_store.write(kAlarmCode, to_bytes("alarm code 9021 (changed!)"));
  std::printf("kid B revoked; re-keyed to epoch %u and changed the code\n",
              parent_keys.epoch());
  cluster.run_for(seconds(5));

  std::printf("kid A reads: %s\n", kid_reads(ClientId{2}, kid_a, 3).c_str());
  std::printf("kid B reads: %s\n", kid_reads(ClientId{3}, kid_b, 4).c_str());
  std::printf("family sharing demo done\n");
  return 0;
}
