// Aware Home emergency: the paper's motivating scenario (§1) — "one of the
// applications being explored enables older residents to stay in the home
// longer by ... automatically connecting them with external medical
// facilities in the event of an emergency. Clearly, the information that
// is used to make such decisions must be highly available."
//
// The demo writes a resident's medical profile, then crashes b servers AND
// the resident's home device (losing the locally cached context), and shows
// an emergency responder still retrieving the profile: data ops need only
// b+1 live servers, and the context is reconstructed from item meta-data.
#include <cstdio>

#include "core/sync.h"
#include "testkit/cluster.h"

using namespace securestore;

int main() {
  const GroupId resident_profile{30};
  const core::GroupPolicy policy{resident_profile, core::ConsistencyModel::kMRC,
                                 core::SharingMode::kSingleWriter,
                                 core::ClientTrust::kHonest};

  testkit::ClusterOptions deployment;
  deployment.n = 7;
  deployment.b = 2;
  deployment.gossip.period = milliseconds(200);
  testkit::Cluster cluster(deployment);
  cluster.set_group_policy(policy);

  // Both the resident's device and the medical responder hold the shared
  // profile key (key distribution is out of band, as in the paper).
  const Bytes profile_key = to_bytes("resident-42 profile key");
  auto make_options = [&](std::uint64_t nonce_seed) {
    core::SecureStoreClient::Options options;
    options.policy = policy;
    options.codec = std::make_shared<core::AeadValueCodec>(profile_key, Rng(nonce_seed));
    options.round_timeout = milliseconds(400);
    return options;
  };

  const ItemId medications{701};
  const ItemId allergies{702};
  const ItemId physician{703};

  // Normal life: the home device maintains the profile.
  {
    auto device = cluster.make_client(ClientId{1}, make_options(1));
    core::SyncClient store(*device, cluster.scheduler());
    (void)store.connect(resident_profile);
    (void)store.write(medications, to_bytes("warfarin 5mg, lisinopril 10mg"));
    (void)store.write(allergies, to_bytes("penicillin"));
    (void)store.write(physician, to_bytes("Dr. Ruiz, +1-404-555-0141"));
    std::printf("home device stored the resident's profile (encrypted, replicated)\n");
    // The device "dies" without disconnecting: context never written back.
  }
  cluster.run_for(seconds(10));  // dissemination spreads the profile

  // Disaster strikes: two servers (the tolerated bound) go down too.
  std::printf("simulating failures: servers S0 and S1 crash, home device lost\n");
  cluster.transport().network().set_partitioned(NodeId{0}, true);
  cluster.transport().network().set_partitioned(NodeId{1}, true);

  // Emergency: the responder (same principal, recovered key material)
  // reconstructs the session context from the store itself.
  auto responder = cluster.make_client(ClientId{1}, make_options(2));
  core::SyncClient emergency(*responder, cluster.scheduler());

  if (!emergency.reconstruct_context(resident_profile).ok()) {
    std::printf("context reconstruction failed — cannot proceed\n");
    return 1;
  }
  std::printf("context reconstructed from %zu item timestamps despite 2 dead servers\n",
              responder->context().size());

  for (const auto& [item, label] :
       {std::pair{medications, "medications"}, {allergies, "allergies"},
        {physician, "physician"}}) {
    const auto value = emergency.read_value(item);
    std::printf("  %-12s: %s\n", label,
                value.ok() ? to_string(*value).c_str() : error_name(value.error()));
  }

  std::printf("emergency access succeeded with b=2 servers down\n");
  return 0;
}
