// School bulletin: the paper's class-2 application (§2) — a single source
// (the school) writes; many families read. Integrity is the requirement:
// "readers must be assured that the data they receive is from the
// legitimate writer and has not been modified".
//
// The demo puts a value-corrupting Byzantine server in every reader's
// preferred path and shows reads still returning the authentic bulletin,
// plus MRC in action: once a family has seen issue #2, no stale server can
// serve them issue #1 again.
#include <cstdio>

#include "core/sync.h"
#include "testkit/cluster.h"

using namespace securestore;

int main() {
  const GroupId bulletins{10};
  const core::GroupPolicy policy{bulletins, core::ConsistencyModel::kMRC,
                                 core::SharingMode::kSingleWriter,
                                 core::ClientTrust::kHonest};

  // n=4, b=1; server 0 is compromised and corrupts every value it serves.
  testkit::ClusterOptions deployment;
  deployment.n = 4;
  deployment.b = 1;
  deployment.server_faults = {{0, {faults::ServerFault::kCorruptValues,
                                   faults::ServerFault::kStaleData}}};
  testkit::Cluster cluster(deployment);
  cluster.set_group_policy(policy);

  core::SecureStoreClient::Options options;
  options.policy = policy;

  // The school (client 1) publishes; families (clients 2..4) read.
  auto school = cluster.make_client(ClientId{1}, options);
  core::SyncClient school_store(*school, cluster.scheduler());
  const ItemId newsletter{500};

  (void)school_store.connect(bulletins);
  (void)school_store.write(newsletter, to_bytes("Issue #1: term starts Aug 18"));
  std::printf("school published issue #1\n");
  cluster.run_for(seconds(5));  // dissemination to all servers

  for (std::uint32_t family = 2; family <= 4; ++family) {
    auto reader = cluster.make_client(ClientId{family}, options);
    // Adversarial routing: the corrupt server is first in preference.
    reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
    core::SyncClient reader_store(*reader, cluster.scheduler());
    (void)reader_store.connect(bulletins);
    const auto issue = reader_store.read_value(newsletter);
    std::printf("family %u reads: \"%s\" (corrupt server's forgery rejected by signature)\n",
                family, issue.ok() ? to_string(*issue).c_str() : error_name(issue.error()));
  }

  // Issue #2 goes out; a family that saw it can never be fed issue #1.
  (void)school_store.write(newsletter, to_bytes("Issue #2: open house Sep 3"));
  std::printf("school published issue #2\n");
  cluster.run_for(seconds(5));

  auto family = cluster.make_client(ClientId{2}, options);
  family->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  core::SyncClient family_store(*family, cluster.scheduler());
  (void)family_store.connect(bulletins);
  const auto first = family_store.read_value(newsletter);
  std::printf("family re-reads: \"%s\"\n",
              first.ok() ? to_string(*first).c_str() : error_name(first.error()));
  const auto second = family_store.read_value(newsletter);
  std::printf("family reads again (monotonic): \"%s\"\n",
              second.ok() ? to_string(*second).c_str() : error_name(second.error()));

  std::printf("school bulletin demo done\n");
  return 0;
}
