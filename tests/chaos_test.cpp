// Chaos harness tests (DESIGN.md §9, experiment E14).
//
// The headline suite is the multi-seed soak: a seeded `ChaosSchedule`
// (crashes, directed partitions, Byzantine flips, degraded links — never
// more than b simultaneously-faulty servers) executes against a live
// cluster while workloads on every protocol family run under a
// `ConsistencyOracle`. Zero violations tolerated, and the fault timeline
// must replay bit-identically from the same seed. The quick mode sweeps a
// fixed seed list; `SECURESTORE_CHAOS_SEEDS=<count>` widens the sweep for a
// full soak.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>

#include "core/sync.h"
#include "net/fault_transport.h"
#include "net/thread_transport.h"
#include "sim/scheduler.h"
#include "testkit/chaos.h"
#include "testkit/cluster.h"
#include "testkit/oracle.h"
#include "testkit/seed.h"

namespace securestore {
namespace {

using core::SyncClient;
using net::FaultInjectingTransport;
using net::FaultRule;
using testkit::ChaosReport;
using testkit::ChaosRunner;
using testkit::ChaosRunnerOptions;
using testkit::ChaosSchedule;
using testkit::Cluster;
using testkit::ClusterOptions;
using testkit::ConsistencyOracle;

bool gtest_failed() { return ::testing::Test::HasFailure(); }

// ---------------------------------------------------------------------------
// FaultInjectingTransport over SimTransport.
// ---------------------------------------------------------------------------

TEST(FaultTransport, DropsEverythingAndCountsIt) {
  sim::Scheduler scheduler;
  net::SimTransport inner(scheduler, sim::NetworkModel(Rng(7), sim::zero_profile()));
  FaultInjectingTransport chaos(inner, /*seed=*/42);

  int delivered = 0;
  chaos.register_node(NodeId{1}, [&](NodeId, BytesView) { ++delivered; });
  chaos.register_node(NodeId{2}, [&](NodeId, BytesView) { ++delivered; });

  FaultRule rule;
  rule.drop = 1.0;
  chaos.set_default_rule(rule);
  for (int i = 0; i < 20; ++i) chaos.send(NodeId{1}, NodeId{2}, to_bytes("doomed"));
  scheduler.run_until(seconds(1));

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(chaos.injected_count(), 20u);
  const auto snapshot = chaos.registry().snapshot();
  const auto it = snapshot.counters.find("chaos.drop");
  ASSERT_NE(it, snapshot.counters.end()) << "chaos.drop missing from registry dump";
  EXPECT_EQ(it->second, 20u);
}

TEST(FaultTransport, SameSeedSameTimeline) {
  // The whole point of the decorator: the fault timeline is a pure function
  // of (seed, send sequence).
  auto run_once = [](std::uint64_t seed) {
    sim::Scheduler scheduler;
    net::SimTransport inner(scheduler, sim::NetworkModel(Rng(7), sim::zero_profile()));
    FaultInjectingTransport chaos(inner, seed);
    chaos.register_node(NodeId{1}, [](NodeId, BytesView) {});
    chaos.register_node(NodeId{2}, [](NodeId, BytesView) {});
    FaultRule rule;
    rule.drop = 0.3;
    rule.duplicate = 0.2;
    rule.corrupt = 0.1;
    rule.delay_base = microseconds(50);
    chaos.set_default_rule(rule);
    for (int i = 0; i < 200; ++i) {
      chaos.send(NodeId{1}, NodeId{2}, to_bytes("m" + std::to_string(i)));
      chaos.send(NodeId{2}, NodeId{1}, to_bytes("r" + std::to_string(i)));
    }
    scheduler.run_until(seconds(1));
    return chaos.injected();
  };

  const auto first = run_once(99);
  const auto second = run_once(99);
  const auto other = run_once(100);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed must inject the identical fault timeline";
  EXPECT_NE(first, other) << "different seeds should diverge";
}

TEST(FaultTransport, DuplicatesAndMutationsAreVisible) {
  sim::Scheduler scheduler;
  net::SimTransport inner(scheduler, sim::NetworkModel(Rng(7), sim::zero_profile()));
  FaultInjectingTransport chaos(inner, /*seed=*/5);

  std::vector<Bytes> received;
  chaos.register_node(NodeId{1}, [&](NodeId, BytesView) {});
  chaos.register_node(NodeId{2}, [&](NodeId, BytesView payload) { received.push_back(Bytes(payload.begin(), payload.end())); });

  FaultRule dup;
  dup.duplicate = 1.0;
  chaos.set_link_rule(NodeId{1}, NodeId{2}, dup);
  chaos.send(NodeId{1}, NodeId{2}, to_bytes("twice"));
  scheduler.run_until(seconds(1));
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], to_bytes("twice"));
  EXPECT_EQ(received[1], to_bytes("twice"));

  received.clear();
  FaultRule corrupt;
  corrupt.corrupt = 1.0;
  chaos.set_link_rule(NodeId{1}, NodeId{2}, corrupt);
  chaos.send(NodeId{1}, NodeId{2}, to_bytes("pristine-payload"));
  scheduler.run_until(seconds(2));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].size(), to_bytes("pristine-payload").size());
  EXPECT_NE(received[0], to_bytes("pristine-payload"));

  received.clear();
  FaultRule truncate;
  truncate.truncate = 1.0;
  chaos.set_link_rule(NodeId{1}, NodeId{2}, truncate);
  chaos.send(NodeId{1}, NodeId{2}, to_bytes("soon-to-be-shorter"));
  scheduler.run_until(seconds(3));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_LT(received[0].size(), to_bytes("soon-to-be-shorter").size());
}

TEST(FaultTransport, PartitionWindowsAreDirected) {
  sim::Scheduler scheduler;
  net::SimTransport inner(scheduler, sim::NetworkModel(Rng(7), sim::zero_profile()));
  FaultInjectingTransport chaos(inner, /*seed=*/5);

  int to_one = 0;
  int to_two = 0;
  chaos.register_node(NodeId{1}, [&](NodeId, BytesView) { ++to_one; });
  chaos.register_node(NodeId{2}, [&](NodeId, BytesView) { ++to_two; });

  chaos.partition_link(NodeId{1}, NodeId{2});  // only 1 -> 2 is cut
  chaos.send(NodeId{1}, NodeId{2}, to_bytes("blocked"));
  chaos.send(NodeId{2}, NodeId{1}, to_bytes("flows"));
  scheduler.run_until(seconds(1));
  EXPECT_EQ(to_two, 0);
  EXPECT_EQ(to_one, 1);

  chaos.heal_link(NodeId{1}, NodeId{2});
  chaos.send(NodeId{1}, NodeId{2}, to_bytes("healed"));
  scheduler.run_until(seconds(2));
  EXPECT_EQ(to_two, 1);
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport over ThreadTransport (real time, real threads).
// ---------------------------------------------------------------------------

TEST(FaultTransport, WorksOverThreadTransport) {
  net::ThreadTransport inner(sim::NetworkModel(Rng(7), sim::zero_profile()));
  FaultInjectingTransport chaos(inner, /*seed=*/11);

  std::atomic<int> delivered{0};
  chaos.register_node(NodeId{1}, [&](NodeId, BytesView) { delivered.fetch_add(1); });
  chaos.register_node(NodeId{2}, [&](NodeId, BytesView) { delivered.fetch_add(1); });

  FaultRule rule;
  rule.drop = 1.0;
  chaos.set_link_rule(NodeId{1}, NodeId{2}, rule);
  for (int i = 0; i < 10; ++i) chaos.send(NodeId{1}, NodeId{2}, to_bytes("dropped"));
  chaos.send(NodeId{2}, NodeId{1}, to_bytes("clean link"));

  // Real time: poll until the clean message lands (dispatch thread).
  for (int spin = 0; spin < 200 && delivered.load() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(chaos.injected_count(), 10u);
  const auto snapshot = chaos.registry().snapshot();
  const auto it = snapshot.counters.find("chaos.drop");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 10u);
  inner.stop();
}

// ---------------------------------------------------------------------------
// Directed link partitions in the sim network model.
// ---------------------------------------------------------------------------

TEST(NetworkModel, DirectedLinkPartition) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(7), sim::zero_profile()));

  int to_one = 0;
  int to_two = 0;
  transport.register_node(NodeId{1}, [&](NodeId, BytesView) { ++to_one; });
  transport.register_node(NodeId{2}, [&](NodeId, BytesView) { ++to_two; });

  transport.network().partition_link(NodeId{1}, NodeId{2});
  EXPECT_TRUE(transport.network().link_partitioned(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(transport.network().link_partitioned(NodeId{2}, NodeId{1}));
  transport.send(NodeId{1}, NodeId{2}, to_bytes("cut"));
  transport.send(NodeId{2}, NodeId{1}, to_bytes("open"));
  scheduler.run_until(seconds(1));
  EXPECT_EQ(to_two, 0);
  EXPECT_EQ(to_one, 1);

  transport.network().heal_all_links();
  transport.send(NodeId{1}, NodeId{2}, to_bytes("healed"));
  scheduler.run_until(seconds(2));
  EXPECT_EQ(to_two, 1);
}

// ---------------------------------------------------------------------------
// Schedule generator invariants.
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, NeverExceedsFaultBudgetAndIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const ChaosSchedule schedule = ChaosSchedule::random(rng, /*n=*/5, /*b=*/1, seconds(15));
    Rng rng2(seed);
    const ChaosSchedule again = ChaosSchedule::random(rng2, /*n=*/5, /*b=*/1, seconds(15));
    ASSERT_EQ(schedule.events.size(), again.events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
      EXPECT_EQ(schedule.events[i].at, again.events[i].at) << "seed " << seed;
      EXPECT_EQ(schedule.events[i].kind, again.events[i].kind) << "seed " << seed;
      EXPECT_EQ(schedule.events[i].server, again.events[i].server) << "seed " << seed;
    }

    // Replay the timeline counting simultaneously-faulty servers.
    std::set<std::uint32_t> faulty;
    std::size_t max_faulty = 0;
    for (const auto& event : schedule.events) {
      using Kind = testkit::ChaosEvent::Kind;
      switch (event.kind) {
        case Kind::kCrash:
        case Kind::kIsolate:
        case Kind::kByzantine:
          faulty.insert(event.server);
          break;
        case Kind::kRestart:
        case Kind::kHealIsolation:
        case Kind::kRecover:
          faulty.erase(event.server);
          break;
        default:
          break;
      }
      max_faulty = std::max(max_faulty, faulty.size());
    }
    EXPECT_LE(max_faulty, 1u) << "seed " << seed << " exceeds b=1";
    EXPECT_TRUE(faulty.empty()) << "seed " << seed << " leaves a server faulty";
  }
}

// ---------------------------------------------------------------------------
// The oracle itself must not be vacuous.
// ---------------------------------------------------------------------------

TEST(Oracle, CatchesFabricatedViolations) {
  ConsistencyOracle oracle(/*causal=*/false);
  const ItemId item{101};
  core::Context ctx(GroupId{1});

  // A value nobody wrote -> authenticity violation.
  core::ReadOutput forged;
  forged.value = to_bytes("never-written");
  forged.ts = core::Timestamp{5, ClientId{1}, {}};
  oracle.note_read_ok(ClientId{2}, item, forged, /*at=*/10);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].check, "authenticity");

  // A legitimate write, then a read that travels back in time -> MRC.
  oracle.note_write_attempt(ClientId{1}, item, to_bytes("v1"));
  oracle.note_write_attempt(ClientId{1}, item, to_bytes("v2"));
  core::ReadOutput v2;
  v2.value = to_bytes("v2");
  v2.ts = core::Timestamp{20, ClientId{1}, {}};
  oracle.note_read_ok(ClientId{2}, item, v2, /*at=*/20);
  core::ReadOutput v1;
  v1.value = to_bytes("v1");
  v1.ts = core::Timestamp{10, ClientId{1}, {}};
  oracle.note_read_ok(ClientId{2}, item, v1, /*at=*/30);
  ASSERT_EQ(oracle.violations().size(), 2u);
  EXPECT_EQ(oracle.violations()[1].check, "mrc");

  // An acked write the final read does not reflect -> durability.
  ctx.set(item, core::Timestamp{40, ClientId{1}, {}});
  oracle.note_write_ok(ClientId{1}, item, to_bytes("v2"), core::Timestamp{40, ClientId{1}, {}},
                       ctx, 40);
  oracle.note_final_read(item, std::nullopt, /*at=*/50);
  ASSERT_EQ(oracle.violations().size(), 3u);
  EXPECT_EQ(oracle.violations()[2].check, "durability");
  EXPECT_FALSE(oracle.report().empty());
}

// ---------------------------------------------------------------------------
// Client retry path: deadline propagation + backoff.
// ---------------------------------------------------------------------------

TEST(Backoff, DeadlineGovernsRetriesAndShedsLoad) {
  // Every server down: the operation must fail once StoreConfig::op_timeout
  // is spent — NOT after max_read_rounds tight round_timeout loops — and
  // backoff must keep the number of quorum rounds (messages) small.
  ClusterOptions options;
  options.op_timeout = seconds(2);
  Cluster cluster(options);
  cluster.set_group_policy(core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                                             core::SharingMode::kSingleWriter,
                                             core::ClientTrust::kHonest});
  for (std::size_t s = 0; s < cluster.server_count(); ++s) cluster.stop_server(s);

  core::SecureStoreClient::Options client_opts;
  client_opts.policy = core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                                         core::SharingMode::kSingleWriter,
                                         core::ClientTrust::kHonest};
  client_opts.round_timeout = milliseconds(100);
  client_opts.max_read_rounds = 1000;  // rounds must NOT be the limiter
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());

  const SimTime start = cluster.transport().now();
  const auto result = sync.connect(GroupId{1});
  const SimTime elapsed = cluster.transport().now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kTimeout);
  // Bounded by the op deadline plus at most one round + one capped backoff.
  EXPECT_LE(elapsed, seconds(2) + milliseconds(100) + milliseconds(640));
  EXPECT_GE(elapsed, seconds(1));  // backoff alone must not give up early
  // With capped-exponential backoff the 2s budget fits only a handful of
  // rounds; the pre-backoff tight loop would have run ~20.
  EXPECT_LE(cluster.transport_stats().messages_sent, 12u * cluster.server_count());
}

// ---------------------------------------------------------------------------
// Disk-wiped replacement must not recover stale state.
// ---------------------------------------------------------------------------

TEST(Cluster, DiskWipedReplacementForgetsState) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ss-chaos-wipe-test").string();
  std::filesystem::remove_all(dir);
  {
    ClusterOptions options;
    options.durability_dir = dir;
    Cluster cluster(options);
    cluster.set_group_policy(core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                                               core::SharingMode::kSingleWriter,
                                               core::ClientTrust::kHonest});
    core::SecureStoreClient::Options client_opts;
    client_opts.policy = core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                                           core::SharingMode::kSingleWriter,
                                           core::ClientTrust::kHonest};
    auto client = cluster.make_client(ClientId{1}, client_opts);
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(GroupId{1}).ok());
    ASSERT_TRUE(sync.write(ItemId{101}, to_bytes("durable v1")).ok());
    cluster.run_for(milliseconds(100));  // WAL flush

    // Stateful restart: the record survives on disk.
    cluster.restart_server(0, /*restore_state=*/true);
    ASSERT_NE(cluster.server(0).store().current(ItemId{101}), nullptr);

    // Disk-wiped replacement: the record must be gone from that server —
    // a wiped disk cannot resurrect stale state.
    cluster.restart_server(0, /*restore_state=*/false);
    EXPECT_EQ(cluster.server(0).store().current(ItemId{101}), nullptr);

    // The deployment as a whole still serves the value (b+1 copies).
    const auto read_back = sync.read_value(ItemId{101});
    ASSERT_TRUE(read_back.ok()) << error_name(read_back.error());
    EXPECT_EQ(to_string(*read_back), "durable v1");
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The soak: seeded storms, live oracle, replayable timelines.
// ---------------------------------------------------------------------------

struct SoakCase {
  std::uint64_t seed;
};

ChaosReport run_soak(std::uint64_t seed) {
  ClusterOptions options;
  options.n = 5;
  options.b = 1;
  options.seed = seed * 6151;
  options.chaos_seed = seed * 40503;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  Cluster cluster(options);

  Rng schedule_rng(seed);
  ChaosSchedule schedule =
      ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(10));
  ChaosRunnerOptions runner_options;
  runner_options.horizon = seconds(10);
  runner_options.quiesce = seconds(3);
  ChaosRunner runner(cluster, std::move(schedule), runner_options,
                     /*workload_seed=*/seed * 31 + 7);
  return runner.run();
}

class ChaosSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ChaosSoak, NoOracleViolationsAndReplayableTimeline) {
  testkit::SeedBanner banner("chaos_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  const ChaosReport report = run_soak(seed);
  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  EXPECT_LE(report.max_simultaneous_faulty, 1u);
  EXPECT_GT(report.events_applied, 0u) << "storm was empty — vacuous run";
  EXPECT_GT(report.oracle_checks, 0u) << "oracle checked nothing — vacuous run";
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.reads_ok, 0u);

  // Replay: the identical seed must reproduce the identical fault timeline
  // (the reproducibility contract every chaos failure report relies on).
  const ChaosReport replay = run_soak(seed);
  EXPECT_EQ(report.fault_timeline, replay.fault_timeline)
      << "same seed produced a different fault timeline";
  EXPECT_EQ(report.writes_acked, replay.writes_acked);
  EXPECT_EQ(report.reads_ok, replay.reads_ok);
}

std::vector<SoakCase> soak_seeds() {
  // Quick mode: 8 fixed seeds. `SECURESTORE_CHAOS_SEEDS=<count>` widens the
  // sweep (full soak) without recompiling.
  std::size_t count = 8;
  if (const char* env = std::getenv("SECURESTORE_CHAOS_SEEDS")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) count = parsed;
  }
  std::vector<SoakCase> cases;
  for (std::size_t i = 0; i < count; ++i) cases.push_back(SoakCase{1000 + i * 17});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::ValuesIn(soak_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace securestore
