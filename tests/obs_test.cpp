// Observability subsystem tests: histogram quantile math against known
// answers, registry handle stability and thread-safety (run under tsan via
// the `obs` label), OpTrace phase attribution under both clock domains, and
// end-to-end assertions that a cluster workload populates the per-protocol,
// gossip, WAL, and rpc-drop metrics the dumps promise.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "net/fault_transport.h"

#include "core/sync.h"
#include "net/rpc.h"
#include "obs/export.h"
#include "net/sim_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "testkit/cluster.h"
#include "testkit/sharded_cluster.h"
#include "util/serial.h"

namespace securestore {
namespace {

namespace fs = std::filesystem;
using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "securestore_obs_XXXXXX").string();
    path = mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// ---------------------------------------------------------------------------
// Histogram quantiles
// ---------------------------------------------------------------------------

TEST(Histogram, KnownAnswerQuantiles) {
  obs::Histogram histogram({10.0, 20.0, 40.0});
  for (int i = 0; i < 5; ++i) histogram.observe(7.0);
  for (int i = 0; i < 5; ++i) histogram.observe(15.0);

  const obs::HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 10u);
  EXPECT_DOUBLE_EQ(snap.min, 7.0);
  EXPECT_DOUBLE_EQ(snap.max, 15.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 11.0);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.bucket_counts[0], 5u);
  EXPECT_EQ(snap.bucket_counts[1], 5u);

  // Rank q*count = 5 lands at the end of the first bucket [0, 10]:
  // interpolation gives exactly its upper bound.
  EXPECT_DOUBLE_EQ(snap.p50(), 10.0);
  // Rank 9 is the 4th of 5 observations in [10, 20]: interpolation says
  // 10 + 10 * 4/5 = 18, but nothing above 15 was ever recorded — the
  // estimate clamps to the observed max.
  EXPECT_DOUBLE_EQ(snap.quantile(0.9), 15.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 15.0);
}

TEST(Histogram, TopBucketQuantileNeverExceedsObservedMax) {
  // Every observation is 3.0, landing in the (2, 5] bucket. Naive
  // interpolation would report p99 ~= 4.97 — past anything recorded.
  obs::Histogram histogram({1.0, 2.0, 5.0});
  for (int i = 0; i < 100; ++i) histogram.observe(3.0);

  const obs::HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.p50(), 3.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 3.0);
  // Quantiles below the max still interpolate normally.
  EXPECT_DOUBLE_EQ(snap.quantile(0.1), 2.3);
}

TEST(Histogram, OverflowBucketClampsToObservedMax) {
  obs::Histogram histogram({10.0});
  histogram.observe(5.0);
  histogram.observe(50.0);
  histogram.observe(70.0);

  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.bucket_counts[1], 2u);  // overflow
  EXPECT_DOUBLE_EQ(snap.p99(), 70.0);
  EXPECT_DOUBLE_EQ(snap.max, 70.0);
}

TEST(Histogram, ResetKeepsBounds) {
  obs::Histogram histogram({10.0, 20.0});
  histogram.observe(15.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  histogram.observe(15.0);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableHandles) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_counter("x")->value(), 3u);

  // First creator fixes histogram bounds; later bounds are ignored.
  obs::Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = registry.histogram("h", {100.0});
  EXPECT_EQ(&h1, &h2);
  h1.observe(1.5);
  EXPECT_EQ(registry.snapshot().histograms.at("h").bucket_counts[1], 1u);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Gauge& gauge = registry.gauge("g");
  obs::Histogram& histogram = registry.histogram("h");
  counter.inc(5);
  gauge.set(-2);
  histogram.observe(3.0);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  counter.inc();  // handle still live
  EXPECT_EQ(registry.find_counter("c")->value(), 1u);
}

TEST(Registry, CollectorsRunAtSnapshotUntilRemoved) {
  obs::Registry registry;
  int runs = 0;
  const std::uint64_t id = registry.add_collector([&](obs::Registry& r) {
    ++runs;
    r.gauge("collected").set(42);
  });

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(snap.gauges.at("collected"), 42);

  registry.remove_collector(id);
  (void)registry.snapshot();
  EXPECT_EQ(runs, 1);
}

TEST(Registry, ConcurrentUpdatesAndSnapshots) {
  // Exercised under ThreadSanitizer via the `obs` ctest label: concurrent
  // find-or-create, relaxed updates, and snapshots must be race-free.
  obs::Registry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& counter = registry.counter("shared.counter");
      obs::Histogram& histogram = registry.histogram("shared.histogram");
      obs::Gauge& gauge = registry.gauge("shared.gauge");
      for (int i = 0; i < kIters; ++i) {
        counter.inc();
        histogram.observe(static_cast<double>(i % 100));
        gauge.record_max(i);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 100; ++i) (void)registry.snapshot();
  });
  for (auto& thread : threads) thread.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("shared.counter"), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histograms.at("shared.histogram").count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.gauges.at("shared.gauge"), kIters - 1);
}

// ---------------------------------------------------------------------------
// OpTrace
// ---------------------------------------------------------------------------

TEST(OpTrace, PhaseAttributionAndCounters) {
  obs::Registry registry;
  std::uint64_t fake_now = 1000;

  {
    obs::OpTrace trace(registry, "op", [&fake_now] { return fake_now; });
    fake_now += 5;  // unnamed first span: not attributed to any phase
    trace.phase("sign");
    fake_now += 30;
    trace.phase("quorum");
    fake_now += 100;
    trace.phase("sign");  // re-entry accumulates
    fake_now += 10;
    trace.add("retries", 2);
    trace.finish(true);
    trace.finish(false);  // idempotent: must not double-record
  }

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("op.ops"), 1u);
  EXPECT_EQ(snap.counters.at("op.retries"), 2u);
  EXPECT_EQ(snap.counters.count("op.failures"), 0u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("op.latency_us").sum, 145.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("op.sign_us").sum, 40.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("op.quorum_us").sum, 100.0);
}

TEST(OpTrace, UnfinishedTraceRecordsFailure) {
  obs::Registry registry;
  { obs::OpTrace trace(registry, "dropped", [] { return std::uint64_t{0}; }); }
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("dropped.failures"), 1u);
  EXPECT_EQ(snap.counters.at("dropped.ops"), 1u);
}

TEST(OpTrace, SimAndWallClocksProduceIdenticalMetricNames) {
  // The clock is the only thing that differs between the simulated and real
  // deployments; the metric namespace must not.
  obs::Registry sim_registry;
  obs::Registry wall_registry;
  std::uint64_t virtual_now = 0;

  const auto run = [](obs::Registry& registry, obs::ClockFn clock) {
    obs::OpTrace trace(registry, "client.p3.write", std::move(clock));
    trace.phase("sign");
    trace.phase("quorum");
    trace.add("retries");
    trace.finish(true);
  };
  run(sim_registry, [&virtual_now] { return virtual_now += 7; });
  run(wall_registry, obs::wall_now_us);

  const obs::MetricsSnapshot sim_snap = sim_registry.snapshot();
  const obs::MetricsSnapshot wall_snap = wall_registry.snapshot();
  ASSERT_EQ(sim_snap.counters.size(), wall_snap.counters.size());
  for (auto sim_it = sim_snap.counters.begin(), wall_it = wall_snap.counters.begin();
       sim_it != sim_snap.counters.end(); ++sim_it, ++wall_it) {
    EXPECT_EQ(sim_it->first, wall_it->first);
    EXPECT_EQ(sim_it->second, wall_it->second);
  }
  ASSERT_EQ(sim_snap.histograms.size(), wall_snap.histograms.size());
  for (auto sim_it = sim_snap.histograms.begin(), wall_it = wall_snap.histograms.begin();
       sim_it != sim_snap.histograms.end(); ++sim_it, ++wall_it) {
    EXPECT_EQ(sim_it->first, wall_it->first);
    EXPECT_EQ(sim_it->second.count, wall_it->second.count);
  }
}

TEST(OpTrace, WallClockIsMonotone) {
  const std::uint64_t a = obs::wall_now_us();
  const std::uint64_t b = obs::wall_now_us();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------------------
// Protocol instrumentation, end to end
// ---------------------------------------------------------------------------

GroupPolicy p3_policy() {
  return GroupPolicy{GroupId{1}, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

GroupPolicy p5_policy() {
  return GroupPolicy{GroupId{2}, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                     core::ClientTrust::kHonest};
}

TEST(ObsCluster, SimLatencyHistogramMatchesVirtualElapsed) {
  // Under the simulator the trace clock is transport.now(): the recorded
  // write latency must equal the virtual time the op took, exactly.
  ClusterOptions options;
  options.link = sim::LinkProfile{milliseconds(10), 0, 0.0};
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = p3_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  const SimTime before = cluster.scheduler().now();
  ASSERT_TRUE(sync.write(ItemId{100}, to_bytes("v")).ok());
  const SimTime elapsed = cluster.scheduler().now() - before;

  const obs::MetricsSnapshot snap = cluster.registry().snapshot();
  const obs::HistogramSnapshot& latency = snap.histograms.at("client.p3.write.latency_us");
  ASSERT_EQ(latency.count, 1u);
  EXPECT_DOUBLE_EQ(latency.sum, static_cast<double>(elapsed));
  EXPECT_EQ(snap.counters.at("client.p3.write.ops"), 1u);
}

TEST(ObsCluster, MixedWorkloadPopulatesProtocolGossipAndWalMetrics) {
  TempDir dir;
  ClusterOptions options;
  options.gossip.period = milliseconds(100);
  options.durability_dir = dir.path;
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());
  cluster.set_group_policy(p5_policy());

  SecureStoreClient::Options p3_options;
  p3_options.policy = p3_policy();
  auto single = cluster.make_client(ClientId{1}, p3_options);
  SyncClient single_sync(*single, cluster.scheduler());

  SecureStoreClient::Options p5_options;
  p5_options.policy = p5_policy();
  auto multi = cluster.make_client(ClientId{2}, p5_options);
  SyncClient multi_sync(*multi, cluster.scheduler());
  ASSERT_TRUE(single_sync.connect(GroupId{1}).ok());
  ASSERT_TRUE(multi_sync.connect(GroupId{2}).ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(single_sync.write(ItemId{100 + static_cast<std::uint64_t>(i)},
                                  to_bytes("p3 " + std::to_string(i)))
                    .ok());
    ASSERT_TRUE(single_sync.read_value(ItemId{100 + static_cast<std::uint64_t>(i)}).ok());
    ASSERT_TRUE(multi_sync.write(ItemId{200 + static_cast<std::uint64_t>(i)},
                                 to_bytes("p5 " + std::to_string(i)))
                    .ok());
    ASSERT_TRUE(multi_sync.read_value(ItemId{200 + static_cast<std::uint64_t>(i)}).ok());
  }
  cluster.run_for(seconds(2));  // gossip rounds + WAL flush timers

  const obs::MetricsSnapshot snap = cluster.registry().snapshot();

  // Per-protocol histograms: P3/P4 from the single-writer client, P5 from
  // the multi-writer one.
  EXPECT_GE(snap.histograms.at("client.p3.write.latency_us").count, 3u);
  EXPECT_GE(snap.histograms.at("client.p4.read.latency_us").count, 3u);
  EXPECT_GE(snap.histograms.at("client.p5.write.latency_us").count, 3u);
  EXPECT_GE(snap.histograms.at("client.p5.read.latency_us").count, 3u);
  EXPECT_GE(snap.histograms.at("client.p3.write.quorum_us").count, 3u);
  EXPECT_EQ(snap.counters.at("client.p3.write.ops"), 3u);
  EXPECT_EQ(snap.counters.count("client.p3.write.failures"), 0u);

  // Server request mix and apply timing.
  EXPECT_GE(snap.counters.at("server.req.write"), 6u);
  EXPECT_GE(snap.counters.at("server.req.meta"), 6u);
  EXPECT_GE(snap.histograms.at("server.apply_us").count, 6u);

  // Gossip made progress and measured its rounds.
  EXPECT_GT(snap.counters.at("gossip.rounds"), 0u);
  EXPECT_GT(snap.counters.at("gossip.records_sent"), 0u);
  EXPECT_GT(snap.histograms.at("gossip.digest_entries").count, 0u);
  EXPECT_GT(snap.histograms.at("gossip.round_us").count, 0u);

  // Durable servers timed their WAL appends (wall clock).
  EXPECT_GT(snap.histograms.at("server.wal.append_us").count, 0u);

  // Transport stats were folded in via the snapshot collector.
  EXPECT_GT(snap.gauges.at("transport.messages_sent"), 0);
}

TEST(ObsCluster, PeriodicSnapshotsFollowVirtualTime) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);

  int snapshots = 0;
  cluster.start_metrics_snapshots(milliseconds(100),
                                  [&](const obs::MetricsSnapshot&) { ++snapshots; });
  cluster.run_for(milliseconds(1050));
  EXPECT_GE(snapshots, 9);
  EXPECT_LE(snapshots, 11);
}

// ---------------------------------------------------------------------------
// Drop accounting: gossip garbage and expired rpc responses
// ---------------------------------------------------------------------------

TEST(ObsDrops, MalformedGossipIsCountedNotSwallowed) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());

  ASSERT_EQ(cluster.registry().counter("gossip.malformed_dropped").value(), 0u);

  // A peer sprays garbage at the gossip port: an undecodable digest...
  net::RpcNode attacker(cluster.transport(), NodeId{4000});
  attacker.send_oneway(NodeId{0}, net::MsgType::kGossipDigest, to_bytes("not a digest"));
  cluster.run_for(milliseconds(50));
  EXPECT_EQ(cluster.registry().counter("gossip.malformed_dropped").value(), 1u);

  // ...and a protocol message routed to the gossip handler.
  cluster.server(0).gossip().handle(NodeId{4000}, net::MsgType::kRead, to_bytes("nope"));
  EXPECT_EQ(cluster.registry().counter("gossip.non_gossip_dropped").value(), 1u);
}

TEST(ObsDrops, ExpiredRpcResponseIsCounted) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(1), sim::lan_profile()));

  net::RpcNode server(transport, NodeId{0});
  server.set_request_handler([](NodeId, net::MsgType, BytesView) {
    return std::make_optional(std::make_pair(net::MsgType::kAck, to_bytes("late")));
  });
  net::RpcNode client(transport, NodeId{1});

  bool fired = false;
  const std::uint64_t rpc_id = client.send_request(
      NodeId{0}, net::MsgType::kRead, to_bytes("q"),
      [&](NodeId, net::MsgType, BytesView) { fired = true; });
  client.cancel(rpc_id);  // caller gave up (timeout) before the reply lands
  scheduler.run_until_idle();

  EXPECT_FALSE(fired);
  EXPECT_EQ(transport.registry().counter("rpc.response_expired").value(), 1u);
}

TEST(ObsDrops, MisdirectedRpcResponseIsCounted) {
  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(2), sim::lan_profile()));

  net::RpcNode silent(transport, NodeId{0});  // never answers
  net::RpcNode client(transport, NodeId{1});

  bool fired = false;
  const std::uint64_t rpc_id = client.send_request(
      NodeId{0}, net::MsgType::kRead, to_bytes("q"),
      [&](NodeId, net::MsgType, BytesView) { fired = true; });
  scheduler.run_until_idle();

  // A Byzantine third party answers for the silent target with the right
  // rpc id but the wrong sender: rejected, and counted.
  Writer forged;
  forged.u8(1);  // Kind::kResponse
  forged.u64(rpc_id);
  forged.u16(static_cast<std::uint16_t>(net::MsgType::kAck));
  transport.send(NodeId{2}, NodeId{1}, forged.take());
  scheduler.run_until_idle();

  EXPECT_FALSE(fired);
  EXPECT_EQ(transport.registry().counter("rpc.response_misdirected").value(), 1u);
}

// ---------------------------------------------------------------------------
// Catalog conformance (DESIGN.md §8): every metric/event name a mixed
// P3/P5/P6 cluster run emits must appear in the documented catalog, so
// instrumentation cannot drift away from the docs unnoticed.
// ---------------------------------------------------------------------------

GroupPolicy p6_policy() {
  return GroupPolicy{GroupId{3}, ConsistencyModel::kMRC, SharingMode::kMultiWriter,
                     core::ClientTrust::kByzantine};
}

// Every `backticked` token between the catalog markers in DESIGN.md §8.
std::set<std::string> load_catalog() {
  std::ifstream in(std::string(SECURESTORE_SOURCE_DIR) + "/DESIGN.md");
  EXPECT_TRUE(in.is_open()) << "DESIGN.md not found under SECURESTORE_SOURCE_DIR";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::size_t begin = text.find("<!-- metric-event-catalog:begin -->");
  const std::size_t end = text.find("<!-- metric-event-catalog:end -->");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);

  std::set<std::string> catalog;
  std::size_t pos = begin;
  while (pos < end) {
    const std::size_t open = text.find('`', pos);
    if (open == std::string::npos || open >= end) break;
    const std::size_t close = text.find('`', open + 1);
    if (close == std::string::npos || close >= end) break;
    catalog.insert(text.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return catalog;
}

// Folds concrete names onto their catalog form: per-server gauges become
// `server.<id>.*`, per-protocol client names become `client.<op>*`, and the
// `{shard=<id>}` suffix sharded deployments append (DESIGN.md §11) is
// stripped — the catalog documents the base series.
std::string normalize_name(std::string name) {
  const std::size_t brace = name.find("{shard=");
  if (brace != std::string::npos && !name.empty() && name.back() == '}') {
    name = name.substr(0, brace);
  }
  if (name.rfind("server.", 0) == 0) {
    std::size_t digits_end = 7;
    while (digits_end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[digits_end]))) {
      ++digits_end;
    }
    if (digits_end > 7 && digits_end < name.size() && name[digits_end] == '.') {
      return "server.<id>" + name.substr(digits_end);
    }
  }
  if (name.rfind("client.p", 0) == 0) {
    std::size_t digits_end = 8;
    while (digits_end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[digits_end]))) {
      ++digits_end;
    }
    if (digits_end > 8 && digits_end < name.size() && name[digits_end] == '.') {
      std::size_t verb_end = digits_end + 1;
      while (verb_end < name.size() &&
             (std::islower(static_cast<unsigned char>(name[verb_end])) ||
              name[verb_end] == '_')) {
        ++verb_end;
      }
      return "client.<op>" + name.substr(verb_end);
    }
  }
  return name;
}

TEST(ObsCatalog, MixedWorkloadEmitsOnlyCatalogedNames) {
  const std::set<std::string> catalog = load_catalog();
  ASSERT_FALSE(catalog.empty());

  TempDir dir;
  ClusterOptions options;
  options.gossip.period = milliseconds(100);
  options.durability_dir = dir.path;
  // The LSM engine (DESIGN.md §12), with a budget small enough that the
  // workload actually flushes: the storage.* series must be emitted here to
  // be held against the catalog.
  options.engine.kind = core::StorageEngineKind::kLsm;
  options.engine.memtable_budget_bytes = 1u << 10;
  options.tracing = true;
  options.chaos_seed = 11;  // fault instants + chaos counters, but no loss
  Cluster cluster(options);
  net::FaultRule rule;
  rule.duplicate = 0.3;
  cluster.chaos()->set_default_rule(rule);
  cluster.set_group_policy(p3_policy());
  cluster.set_group_policy(p5_policy());
  cluster.set_group_policy(p6_policy());

  const auto run_workload = [&](ClientId id, const GroupPolicy& policy) {
    SecureStoreClient::Options client_options;
    client_options.policy = policy;
    auto client = cluster.make_client(id, client_options);
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(policy.group).ok());
    const std::uint64_t base = policy.group.value * 100;
    for (std::uint64_t k = 0; k < 2; ++k) {
      ASSERT_TRUE(sync.write(ItemId{base + k}, to_bytes("v" + std::to_string(k))).ok());
      ASSERT_TRUE(sync.read_value(ItemId{base + k}).ok());
    }
  };
  run_workload(ClientId{1}, p3_policy());
  run_workload(ClientId{2}, p5_policy());
  run_workload(ClientId{3}, p6_policy());
  cluster.run_for(seconds(2));  // gossip + WAL timers

  const auto check = [&](const std::string& name, const char* what) {
    EXPECT_TRUE(catalog.count(normalize_name(name)) == 1)
        << what << " `" << name << "` (normalized `" << normalize_name(name)
        << "`) is missing from the DESIGN.md §8 catalog";
  };
  const obs::MetricsSnapshot snap = cluster.registry().snapshot();
  for (const auto& [name, value] : snap.counters) check(name, "counter");
  for (const auto& [name, value] : snap.gauges) check(name, "gauge");
  for (const auto& [name, histogram] : snap.histograms) check(name, "histogram");
  const std::vector<obs::Event> events = cluster.events().snapshot();
  ASSERT_FALSE(events.empty());
  for (const obs::Event& event : events) {
    check(event.name, "event name");
    check(event.category, "event category");
  }

  // Non-vacuous LSM coverage: the engine's storage.* series were actually
  // emitted (registered counters/gauges appear in the snapshot), and the
  // tiny memtable budget forced real flush traffic through them.
  std::uint64_t lsm_flushes = 0;
  bool saw_memtable_gauge = false;
  bool saw_sst_gauge = false;
  for (const auto& [name, value] : snap.counters) {
    if (normalize_name(name) == "server.<id>.storage.flushes") lsm_flushes += value;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (normalize_name(name) == "server.<id>.storage.memtable_bytes") saw_memtable_gauge = true;
    if (normalize_name(name) == "server.<id>.storage.sst_files") saw_sst_gauge = true;
  }
  EXPECT_GT(lsm_flushes, 0u) << "LSM workload never flushed — storage.* series vacuous";
  EXPECT_TRUE(saw_memtable_gauge);
  EXPECT_TRUE(saw_sst_gauge);
}

// The sharded counterpart: a two-group deployment grown to three mid-run,
// so the `shard.*` series (ring installs, wrong-shard refusals, client
// refresh/reroute) and the `{shard=<id>}`-suffixed server/gossip series are
// actually emitted, then held to the same catalog.
TEST(ObsCatalog, ShardedWorkloadEmitsOnlyCatalogedNames) {
  const std::set<std::string> catalog = load_catalog();
  ASSERT_FALSE(catalog.empty());

  testkit::ShardedClusterOptions options;
  options.groups = 2;
  options.seed = 11;
  options.gossip.period = milliseconds(100);
  options.tracing = true;
  testkit::ShardedCluster cluster(options);
  for (std::uint32_t g = 1; g <= 16; ++g) {
    cluster.set_group_policy(GroupPolicy{GroupId{g}, ConsistencyModel::kMRC,
                                         SharingMode::kSingleWriter,
                                         core::ClientTrust::kHonest});
  }

  SecureStoreClient::Options client_options;
  client_options.round_timeout = seconds(1);
  auto client = cluster.make_client(ClientId{1}, client_options);
  shard::SyncShardedClient sync(*client, cluster.scheduler());
  for (std::uint32_t g = 1; g <= 16; ++g) {
    ASSERT_TRUE(sync.connect(GroupId{g}).ok());
    ASSERT_TRUE(sync.write(GroupId{g}, ItemId{g * 100}, to_bytes("v1")).ok());
  }
  // Growing the deployment bounces the now-stale client with kWrongShard on
  // every moved group: servers count the refusals, the client counts the
  // ring refresh and the reroutes.
  cluster.add_group();
  for (std::uint32_t g = 1; g <= 16; ++g) {
    ASSERT_TRUE(sync.write(GroupId{g}, ItemId{g * 100 + 1}, to_bytes("v2")).ok());
  }
  cluster.run_for(seconds(2));  // ring + record gossip

  const auto check = [&](const std::string& name, const char* what) {
    EXPECT_TRUE(catalog.count(normalize_name(name)) == 1)
        << what << " `" << name << "` (normalized `" << normalize_name(name)
        << "`) is missing from the DESIGN.md §8 catalog";
  };
  const obs::MetricsSnapshot snap = cluster.registry().snapshot();
  for (const auto& [name, value] : snap.counters) check(name, "counter");
  for (const auto& [name, value] : snap.gauges) check(name, "gauge");
  for (const auto& [name, histogram] : snap.histograms) check(name, "histogram");
  for (const obs::Event& event : cluster.events().snapshot()) {
    check(event.name, "event name");
    check(event.category, "event category");
  }
  // The names this test exists for must really have been exercised.
  EXPECT_GE(snap.counters.count("shard.ring_refresh"), 1u);
  EXPECT_GE(snap.counters.count("shard.reroute"), 1u);
  bool saw_wrong_shard = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("shard.wrong_shard", 0) == 0 && value > 0) saw_wrong_shard = true;
  }
  EXPECT_TRUE(saw_wrong_shard);
}

// Round-trip conformance (DESIGN.md §8): every catalog name, instantiated
// with concrete placeholder values and optionally carrying the §11 shard
// suffix, must (a) split back into exactly its base name and shard, and
// (b) map through `prometheus_name` onto the exposition-format name
// grammar WITHOUT collisions — two distinct catalog series may never fold
// into one Prometheus family, or dashboards silently sum unrelated data.
TEST(ObsCatalog, PrometheusNamesRoundTripInjectively) {
  const std::set<std::string> catalog = load_catalog();
  ASSERT_FALSE(catalog.empty());

  // Instantiate the documented placeholders the way real deployments do.
  std::vector<std::string> concrete;
  for (std::string name : catalog) {
    for (std::string::size_type at; (at = name.find("<id>")) != std::string::npos;) {
      name.replace(at, 4, "7");
    }
    for (std::string::size_type at; (at = name.find("<op>")) != std::string::npos;) {
      name.replace(at, 4, "p3.write");
    }
    concrete.push_back(std::move(name));
  }

  std::map<std::string, std::string> prometheus_to_base;
  const auto grammar_ok = [](const std::string& name) {
    if (name.empty()) return false;
    const auto head = static_cast<unsigned char>(name.front());
    if (!std::isalpha(head) && name.front() != '_' && name.front() != ':') return false;
    for (const char c : name) {
      const auto u = static_cast<unsigned char>(c);
      if (!std::isalnum(u) && c != '_' && c != ':') return false;
    }
    return true;
  };

  for (const std::string& base : concrete) {
    // The shard suffix must split off exactly — and its absence must not
    // invent one (names with inner braces would corrupt label folding).
    const auto [plain, no_shard] = obs::split_shard_suffix(base);
    EXPECT_EQ(plain, base);
    EXPECT_FALSE(no_shard.has_value()) << base;
    const auto [stripped, shard] = obs::split_shard_suffix(base + "{shard=2}");
    EXPECT_EQ(stripped, base);
    ASSERT_TRUE(shard.has_value()) << base;
    EXPECT_EQ(*shard, 2u);

    const std::string prom = obs::prometheus_name(base);
    EXPECT_TRUE(grammar_ok(prom))
        << "`" << base << "` maps to `" << prom << "`, which breaks the "
        << "exposition name grammar [a-zA-Z_:][a-zA-Z0-9_:]*";
    const auto [it, inserted] = prometheus_to_base.emplace(prom, base);
    EXPECT_TRUE(inserted) << "catalog names `" << it->second << "` and `" << base
                          << "` collide as Prometheus family `" << prom << "`";
  }
}

// The text exposition itself: dotted names escaped, shard suffixes folded
// into a `shard` label within one family, histograms emitting cumulative
// buckets with `+Inf`, `_sum` and `_count`.
TEST(Export, PrometheusTextEscapesNamesAndFoldsShardLabels) {
  obs::Registry registry;
  registry.counter("server.req.write").inc(3);
  registry.counter("gossip.rounds{shard=1}").inc(5);
  registry.counter("gossip.rounds{shard=2}").inc(7);
  auto& h = registry.histogram("client.op_latency_us");
  h.observe(50);
  h.observe(150);
  registry.histogram("wal.unused_us");  // zero observations: skipped

  const std::string text = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE server_req_write counter"), std::string::npos) << text;
  EXPECT_NE(text.find("server_req_write 3"), std::string::npos);
  EXPECT_NE(text.find("gossip_rounds{shard=\"1\"} 5"), std::string::npos) << text;
  EXPECT_NE(text.find("gossip_rounds{shard=\"2\"} 7"), std::string::npos);
  EXPECT_EQ(text.find("{shard="), text.find("{shard=\""))
      << "raw suffix leaked into the exposition:\n" << text;
  EXPECT_NE(text.find("client_op_latency_us_bucket{le="), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("client_op_latency_us_sum 200"), std::string::npos);
  EXPECT_NE(text.find("client_op_latency_us_count 2"), std::string::npos);
  EXPECT_EQ(text.find("wal_unused_us"), std::string::npos)
      << "empty histograms must be skipped";
}

}  // namespace
}  // namespace securestore
