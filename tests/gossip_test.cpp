// Tests for the epidemic dissemination engine: convergence, tunable
// period, push-on-write rumor mongering, and resistance to forged updates.
#include <gtest/gtest.h>

#include "core/sync.h"
#include "testkit/cluster.h"
#include "util/serial.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX1{101};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

SecureStoreClient::Options client_options() {
  SecureStoreClient::Options options;
  options.policy = mrc_policy();
  return options;
}

std::size_t servers_with_item(Cluster& cluster, ItemId item) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    if (cluster.server(s).store().current(item) != nullptr) ++count;
  }
  return count;
}

TEST(Gossip, WriteConvergesToAllServers) {
  ClusterOptions options;
  options.n = 8;
  options.b = 2;
  options.gossip.period = milliseconds(200);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.write(kX1, to_bytes("spread me")).ok());

  // Written to b+1 = 3 servers; anti-entropy carries it to all 8.
  EXPECT_LT(servers_with_item(cluster, kX1), cluster.server_count());
  cluster.run_for(seconds(10));
  EXPECT_EQ(servers_with_item(cluster, kX1), cluster.server_count());
}

TEST(Gossip, NewerVersionOvertakesOlderEverywhere) {
  ClusterOptions options;
  options.n = 6;
  options.gossip.period = milliseconds(200);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.write(kX1, to_bytes("v1")).ok());
  cluster.run_for(seconds(10));  // v1 everywhere
  ASSERT_TRUE(sync.write(kX1, to_bytes("v2")).ok());
  cluster.run_for(seconds(10));

  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    const core::WriteRecord* record = cluster.server(s).store().current(kX1);
    ASSERT_NE(record, nullptr) << "server " << s;
    EXPECT_EQ(to_string(record->value), "v2") << "server " << s;
  }
}

TEST(Gossip, ShorterPeriodConvergesFaster) {
  auto time_to_converge = [](SimDuration period) {
    ClusterOptions options;
    options.n = 8;
    options.b = 2;
    options.gossip.period = period;
    options.seed = 42;
    Cluster cluster(options);
    cluster.set_group_policy(mrc_policy());

    auto client = cluster.make_client(ClientId{1}, client_options());
    SyncClient sync(*client, cluster.scheduler());
    EXPECT_TRUE(sync.write(kX1, to_bytes("race")).ok());

    const SimTime start = cluster.scheduler().now();
    while (servers_with_item(cluster, kX1) < cluster.server_count()) {
      cluster.run_for(milliseconds(50));
      if (cluster.scheduler().now() - start > seconds(120)) break;  // safety
    }
    return cluster.scheduler().now() - start;
  };

  const SimDuration fast = time_to_converge(milliseconds(100));
  const SimDuration slow = time_to_converge(seconds(2));
  EXPECT_LT(fast, slow);
}

TEST(Gossip, PushOnWriteSpreadsWithoutWaitingForTick) {
  ClusterOptions options;
  options.n = 6;
  options.gossip.period = seconds(60);  // ticks effectively never fire
  options.gossip.push_on_write = true;
  options.gossip.fanout = 2;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  // push_on_write is wired through the server's write handler only when the
  // engine is configured for it; writes land on b+1 servers which then push
  // to fanout peers immediately.
  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.write(kX1, to_bytes("rumor")).ok());
  cluster.run_for(seconds(2));  // far less than the 60 s tick period

  EXPECT_GT(servers_with_item(cluster, kX1), cluster.config().data_quorum_honest());
}

TEST(Gossip, EngineStartStop) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto& engine = cluster.server(0).gossip();
  EXPECT_FALSE(engine.running());
  engine.start();
  EXPECT_TRUE(engine.running());
  cluster.run_for(seconds(3));
  EXPECT_GT(engine.ticks(), 0u);

  engine.stop();
  const std::uint64_t ticks_at_stop = engine.ticks();
  cluster.run_for(seconds(3));
  EXPECT_EQ(engine.ticks(), ticks_at_stop);
}

TEST(Gossip, DigestExchangeIsBidirectional) {
  // Server 0 knows item A, server 1 knows item B; a single digest from 0 to
  // 1 must reconcile BOTH directions (push B's absence, pull A).
  ClusterOptions options;
  options.n = 2;
  options.b = 0;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());

  client->set_server_preference({NodeId{0}, NodeId{1}});
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("item A")).ok());
  client->set_server_preference({NodeId{1}, NodeId{0}});
  ASSERT_TRUE(sync.write(ItemId{2}, to_bytes("item B")).ok());

  ASSERT_EQ(cluster.server(0).store().current(ItemId{2}), nullptr);
  ASSERT_EQ(cluster.server(1).store().current(ItemId{1}), nullptr);

  cluster.server(0).gossip().start();  // only one side gossips
  cluster.run_for(seconds(5));

  EXPECT_NE(cluster.server(0).store().current(ItemId{2}), nullptr);
  EXPECT_NE(cluster.server(1).store().current(ItemId{1}), nullptr);
}

TEST(Gossip, BadSignatureInBatchRejectsOnlyThatRecord) {
  // Byzantine peer slips one forged record into a multi-record update. The
  // batch verify path must fall back per-record: honest records apply, the
  // forged one is rejected and counted — one bad signature cannot poison
  // the batch (or sneak through under its cover).
  ClusterOptions options;
  options.n = 2;
  options.b = 0;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  client->set_server_preference({NodeId{0}, NodeId{1}});
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("good one")).ok());
  ASSERT_TRUE(sync.write(ItemId{2}, to_bytes("to be forged")).ok());
  ASSERT_TRUE(sync.write(ItemId{3}, to_bytes("good two")).ok());
  // b = 0: the writes land only on the preferred server 0.
  ASSERT_EQ(cluster.server(1).store().current(ItemId{1}), nullptr);

  std::vector<core::WriteRecord> records;
  for (const ItemId item : {ItemId{1}, ItemId{2}, ItemId{3}}) {
    const core::WriteRecord* record = cluster.server(0).store().current(item);
    ASSERT_NE(record, nullptr);
    records.push_back(*record);
  }
  records[1].signature[0] ^= 0x01;

  Writer w;
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const core::WriteRecord& record : records) {
    record.encode(w);
    w.u8(0);  // no origin trace context
  }
  const Bytes body = w.take();

  auto& received = cluster.registry().counter("gossip.records_received");
  auto& rejected = cluster.registry().counter("gossip.records_rejected");
  const std::uint64_t received_before = received.value();
  const std::uint64_t rejected_before = rejected.value();

  cluster.server(1).gossip().handle(NodeId{0}, net::MsgType::kGossipUpdates, body);

  const core::WriteRecord* good_one = cluster.server(1).store().current(ItemId{1});
  const core::WriteRecord* forged = cluster.server(1).store().current(ItemId{2});
  const core::WriteRecord* good_two = cluster.server(1).store().current(ItemId{3});
  ASSERT_NE(good_one, nullptr);
  EXPECT_EQ(to_string(good_one->value), "good one");
  EXPECT_EQ(forged, nullptr);
  ASSERT_NE(good_two, nullptr);
  EXPECT_EQ(to_string(good_two->value), "good two");
  EXPECT_EQ(received.value() - received_before, 3u);
  EXPECT_EQ(rejected.value() - rejected_before, 1u);
}

}  // namespace
}  // namespace securestore
