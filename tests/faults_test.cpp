// Fault-tolerance tests: every Byzantine server behavior from the paper's
// threat discussion, injected up to (and beyond) the bound b.
#include <gtest/gtest.h>

#include "core/sync.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using faults::ServerFault;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX1{101};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

SecureStoreClient::Options client_options() {
  SecureStoreClient::Options options;
  options.policy = mrc_policy();
  options.round_timeout = milliseconds(200);
  return options;
}

/// Puts the faulty servers FIRST in the client's preference so every
/// operation must survive talking to them.
void prefer_faulty_first(core::SecureStoreClient& client, std::uint32_t n,
                         std::initializer_list<std::uint32_t> faulty) {
  std::vector<NodeId> order;
  for (std::uint32_t f : faulty) order.push_back(NodeId{f});
  for (std::uint32_t i = 0; i < n; ++i) {
    if (std::find(order.begin(), order.end(), NodeId{i}) == order.end()) {
      order.push_back(NodeId{i});
    }
  }
  client.set_server_preference(std::move(order));
}

struct FaultCase {
  ServerFault fault;
  const char* name;
};

class SingleFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(SingleFaultSweep, StoreSurvivesBFaultyServers) {
  // n=4, b=1: one server misbehaves in every way the behavior describes;
  // all operations still complete correctly.
  ClusterOptions options;
  options.server_faults = {{0, {GetParam().fault}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  prefer_faulty_first(*client, options.n, {0});
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.connect(kGroup).ok()) << GetParam().name;
  ASSERT_TRUE(sync.write(kX1, to_bytes("v1")).ok()) << GetParam().name;
  auto first = sync.read_value(kX1);
  ASSERT_TRUE(first.ok()) << GetParam().name << ": " << error_name(first.error());
  EXPECT_EQ(to_string(*first), "v1");

  ASSERT_TRUE(sync.write(kX1, to_bytes("v2")).ok());
  auto second = sync.read_value(kX1);
  ASSERT_TRUE(second.ok()) << GetParam().name << ": " << error_name(second.error());
  EXPECT_EQ(to_string(*second), "v2");  // never the stale/corrupt v1

  ASSERT_TRUE(sync.disconnect().ok()) << GetParam().name;

  // Next session still sees v2 despite the faulty server.
  auto client2 = cluster.make_client(ClientId{1}, client_options());
  prefer_faulty_first(*client2, options.n, {0});
  SyncClient sync2(*client2, cluster.scheduler());
  ASSERT_TRUE(sync2.connect(kGroup).ok());
  auto third = sync2.read_value(kX1);
  ASSERT_TRUE(third.ok()) << GetParam().name << ": " << error_name(third.error());
  EXPECT_EQ(to_string(*third), "v2");
}

INSTANTIATE_TEST_SUITE_P(
    Behaviors, SingleFaultSweep,
    ::testing::Values(FaultCase{ServerFault::kCrash, "crash"},
                      FaultCase{ServerFault::kMuteData, "mute"},
                      FaultCase{ServerFault::kStaleContext, "stale-context"},
                      FaultCase{ServerFault::kStaleData, "stale-data"},
                      FaultCase{ServerFault::kCorruptValues, "corrupt"},
                      FaultCase{ServerFault::kDropWrites, "drop-writes"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class HardenedFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(HardenedFaultSweep, MultiWriterByzantineModeSurvives) {
  // The §5.3 protocol (2b+1 sets, b+1-matching reads) against every server
  // behavior, with the faulty server first in preference.
  GroupPolicy policy{kGroup, core::ConsistencyModel::kCC,
                     SharingMode::kMultiWriter, core::ClientTrust::kByzantine};
  ClusterOptions options;
  options.server_faults = {{0, {GetParam().fault}}};
  Cluster cluster(options);
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_opts;
  client_opts.policy = policy;
  client_opts.round_timeout = milliseconds(200);

  auto alice = cluster.make_client(ClientId{1}, client_opts);
  auto bob = cluster.make_client(ClientId{2}, client_opts);
  prefer_faulty_first(*alice, options.n, {0});
  prefer_faulty_first(*bob, options.n, {0});
  SyncClient alice_sync(*alice, cluster.scheduler());
  SyncClient bob_sync(*bob, cluster.scheduler());

  ASSERT_TRUE(alice_sync.connect(kGroup).ok()) << GetParam().name;
  ASSERT_TRUE(bob_sync.connect(kGroup).ok()) << GetParam().name;

  ASSERT_TRUE(alice_sync.write(kX1, to_bytes("alice v1")).ok()) << GetParam().name;
  cluster.run_for(seconds(2));
  auto first = bob_sync.read(kX1);
  ASSERT_TRUE(first.ok()) << GetParam().name << ": " << error_name(first.error());
  EXPECT_EQ(to_string(first->value), "alice v1");

  ASSERT_TRUE(bob_sync.write(kX1, to_bytes("bob v2")).ok()) << GetParam().name;
  cluster.run_for(seconds(2));
  auto second = alice_sync.read(kX1);
  ASSERT_TRUE(second.ok()) << GetParam().name << ": " << error_name(second.error());
  EXPECT_EQ(to_string(second->value), "bob v2");
}

INSTANTIATE_TEST_SUITE_P(
    Behaviors, HardenedFaultSweep,
    ::testing::Values(FaultCase{ServerFault::kCrash, "crash"},
                      FaultCase{ServerFault::kMuteData, "mute"},
                      FaultCase{ServerFault::kStaleContext, "stale-context"},
                      FaultCase{ServerFault::kStaleData, "stale-data"},
                      FaultCase{ServerFault::kCorruptValues, "corrupt"},
                      FaultCase{ServerFault::kDropWrites, "drop-writes"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class SessionFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(SessionFaultSweep, ConnectDisconnectCyclesSurviveEveryBehavior) {
  // P1 (Fig. 1) against every server behavior: repeated session cycles —
  // acquire context, advance it with a write, store it back — must neither
  // fail nor ever hand back a regressed context.
  ClusterOptions options;
  options.server_faults = {{0, {GetParam().fault}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  std::uint64_t newest_time = 0;
  for (int session = 1; session <= 3; ++session) {
    auto client = cluster.make_client(ClientId{1}, client_options());
    prefer_faulty_first(*client, options.n, {0});
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok()) << GetParam().name << " session " << session;
    EXPECT_GE(client->context().get(kX1).time, newest_time)
        << GetParam().name << ": context regressed in session " << session;
    ASSERT_TRUE(sync.write(kX1, to_bytes("session " + std::to_string(session))).ok())
        << GetParam().name;
    newest_time = client->context().get(kX1).time;
    ASSERT_TRUE(sync.disconnect().ok()) << GetParam().name << " session " << session;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Behaviors, SessionFaultSweep,
    ::testing::Values(FaultCase{ServerFault::kCrash, "crash"},
                      FaultCase{ServerFault::kMuteData, "mute"},
                      FaultCase{ServerFault::kStaleContext, "stale-context"},
                      FaultCase{ServerFault::kStaleData, "stale-data"},
                      FaultCase{ServerFault::kCorruptValues, "corrupt"},
                      FaultCase{ServerFault::kDropWrites, "drop-writes"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class MultiWriterHonestFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(MultiWriterHonestFaultSweep, P5InterleavedWritersSurviveEveryBehavior) {
  // P5 (3-tuple timestamps, honest writers) against every server behavior:
  // two clients alternate writes to the same item and each must read the
  // other's newest value through the faulty server.
  GroupPolicy policy{kGroup, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                     core::ClientTrust::kHonest};
  ClusterOptions options;
  options.server_faults = {{0, {GetParam().fault}}};
  Cluster cluster(options);
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_opts;
  client_opts.policy = policy;
  client_opts.round_timeout = milliseconds(200);

  auto alice = cluster.make_client(ClientId{1}, client_opts);
  auto bob = cluster.make_client(ClientId{2}, client_opts);
  prefer_faulty_first(*alice, options.n, {0});
  prefer_faulty_first(*bob, options.n, {0});
  SyncClient alice_sync(*alice, cluster.scheduler());
  SyncClient bob_sync(*bob, cluster.scheduler());

  ASSERT_TRUE(alice_sync.connect(kGroup).ok()) << GetParam().name;
  ASSERT_TRUE(bob_sync.connect(kGroup).ok()) << GetParam().name;

  ASSERT_TRUE(alice_sync.write(kX1, to_bytes("alice v1")).ok()) << GetParam().name;
  cluster.run_for(seconds(2));
  auto first = bob_sync.read(kX1);
  ASSERT_TRUE(first.ok()) << GetParam().name << ": " << error_name(first.error());
  EXPECT_EQ(to_string(first->value), "alice v1");

  ASSERT_TRUE(bob_sync.write(kX1, to_bytes("bob v2")).ok()) << GetParam().name;
  cluster.run_for(seconds(2));
  auto second = alice_sync.read(kX1);
  ASSERT_TRUE(second.ok()) << GetParam().name << ": " << error_name(second.error());
  EXPECT_EQ(to_string(second->value), "bob v2");
}

INSTANTIATE_TEST_SUITE_P(
    Behaviors, MultiWriterHonestFaultSweep,
    ::testing::Values(FaultCase{ServerFault::kCrash, "crash"},
                      FaultCase{ServerFault::kMuteData, "mute"},
                      FaultCase{ServerFault::kStaleContext, "stale-context"},
                      FaultCase{ServerFault::kStaleData, "stale-data"},
                      FaultCase{ServerFault::kCorruptValues, "corrupt"},
                      FaultCase{ServerFault::kDropWrites, "drop-writes"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Faults, SurvivesBFaultyWithLargerCluster) {
  // n=7, b=2: two differently-faulty servers at the same time.
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.server_faults = {{0, {ServerFault::kCrash}},
                           {1, {ServerFault::kCorruptValues, ServerFault::kStaleData}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  prefer_faulty_first(*client, options.n, {0, 1});
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("resilient")).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("resilient v2")).ok());
  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "resilient v2");
  ASSERT_TRUE(sync.disconnect().ok());
}

TEST(Faults, BeyondBoundCrashesBlockContextQuorum) {
  // n=4, b=1 tolerates one fault; crash TWO servers and the context quorum
  // ⌈(n+b+1)/2⌉ = 3 becomes unreachable: connect must fail, not hang or
  // return garbage.
  ClusterOptions options;
  options.server_faults = {{0, {ServerFault::kCrash}}, {1, {ServerFault::kCrash}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client_opts = client_options();
  client_opts.round_timeout = milliseconds(100);
  client_opts.max_read_rounds = 2;
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());

  const auto result = sync.connect(kGroup);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.error() == Error::kTimeout ||
              result.error() == Error::kInsufficientQuorum);
}

TEST(Faults, DataOpsStillPossibleWhenOnlyBPlusOneServersLive) {
  // Data quorums are b+1, so even with n-(b+1) servers crashed (more than
  // b!), a client that already holds its context can read and write — the
  // paper's efficiency argument for small data quorums. (Context ops would
  // fail; we bypass them by not connecting.)
  ClusterOptions options;
  options.server_faults = {{0, {ServerFault::kCrash}}, {1, {ServerFault::kCrash}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  prefer_faulty_first(*client, options.n, {0, 1});  // worst case: try dead ones first
  SyncClient sync(*client, cluster.scheduler());

  // No connect: fresh context.
  ASSERT_TRUE(sync.write(kX1, to_bytes("written to the living")).ok());
  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "written to the living");
}

TEST(Faults, ReconstructionSurvivesCorruptAndStaleServers) {
  // §5.1's recovery path reads meta from ALL servers and keeps "the latest
  // valid timestamp" — corrupt replies fail signature checks, stale replies
  // are outweighed by any honest server with the newer meta.
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.gossip.period = milliseconds(100);
  options.server_faults = {{0, {ServerFault::kCorruptValues}},
                           {1, {ServerFault::kStaleData}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  core::Timestamp truth;
  {
    auto client = cluster.make_client(ClientId{1}, client_options());
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    ASSERT_TRUE(sync.write(kX1, to_bytes("v1")).ok());
    cluster.run_for(seconds(5));  // ensure the stale server cached v1's meta
    ASSERT_TRUE(sync.write(kX1, to_bytes("v2")).ok());
    truth = client->context().get(kX1);
    // crash without disconnect
  }
  cluster.run_for(seconds(5));

  auto recovered = cluster.make_client(ClientId{1}, client_options());
  prefer_faulty_first(*recovered, options.n, {0, 1});
  SyncClient sync(*recovered, cluster.scheduler());
  ASSERT_TRUE(sync.reconstruct_context(kGroup).ok());
  EXPECT_EQ(recovered->context().get(kX1).time, truth.time);

  const auto value = sync.read_value(kX1);
  ASSERT_TRUE(value.ok()) << error_name(value.error());
  EXPECT_EQ(to_string(*value), "v2");
}

TEST(Faults, CorruptGossipCannotPoisonHonestServers) {
  // A corrupt server cannot use dissemination to spread forged records:
  // receivers verify writer signatures.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  // Hand-craft a forged record (bad signature) and gossip it directly.
  core::WriteRecord forged;
  forged.item = kX1;
  forged.group = kGroup;
  forged.model = ConsistencyModel::kMRC;
  forged.writer = ClientId{1};
  forged.ts = core::Timestamp{999, {}, {}};
  forged.value = to_bytes("forged");
  forged.value_digest = crypto::meter_digest(forged.value);
  forged.signature = Bytes(64, 0xee);  // junk

  Writer w;
  w.u32(1);
  forged.encode(w);
  net::RpcNode evil(cluster.transport(), NodeId{4000});
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    evil.send_oneway(NodeId{static_cast<std::uint32_t>(s)}, net::MsgType::kGossipUpdates,
                     w.data());
  }
  cluster.run_for(seconds(1));

  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.server(s).store().current(kX1), nullptr) << "server " << s;
  }
}

TEST(Faults, OperationsSurviveLossyNetwork) {
  // 5% message loss on every link. Quorum rounds time out and escalate to
  // wider server sets; the application-level retry ("try the operation at a
  // later time", Fig. 2 discussion) covers the rest.
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.seed = 424242;
  options.link = sim::LinkProfile{milliseconds(1), microseconds(200), 0.05};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client_opts = client_options();
  client_opts.round_timeout = milliseconds(100);
  client_opts.max_read_rounds = 6;
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());

  auto with_retry = [&](auto op) {
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (op()) return true;
      cluster.run_for(milliseconds(50));
    }
    return false;
  };

  ASSERT_TRUE(with_retry([&] { return sync.connect(kGroup).ok(); }));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(with_retry(
        [&] { return sync.write(kX1, to_bytes("v" + std::to_string(i))).ok(); }))
        << "write " << i;
    const auto result = sync.read_value(kX1);
    if (result.ok()) {
      // Loss can serve an older-but-context-consistent version; the value
      // must always be one the writer produced.
      EXPECT_EQ(to_string(*result).rfind("v", 0), 0u);
    }
  }
  ASSERT_TRUE(with_retry([&] { return sync.disconnect().ok(); }));
}

TEST(Faults, PartitionHealingRestoresAvailability) {
  ClusterOptions options;
  options.gossip.period = milliseconds(100);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client_opts = client_options();
  client_opts.round_timeout = milliseconds(100);
  client_opts.max_read_rounds = 2;
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("before partition")).ok());

  // Partition 3 of 4 servers: context quorum (3) unreachable.
  for (std::uint32_t s = 1; s < 4; ++s) {
    cluster.transport().network().set_partitioned(NodeId{s}, true);
  }
  EXPECT_FALSE(sync.disconnect().ok());

  // Heal; everything works again and the data survived.
  for (std::uint32_t s = 1; s < 4; ++s) {
    cluster.transport().network().set_partitioned(NodeId{s}, false);
  }
  ASSERT_TRUE(sync.disconnect().ok());
  auto client2 = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync2(*client2, cluster.scheduler());
  ASSERT_TRUE(sync2.connect(kGroup).ok());
  const auto result = sync2.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "before partition");
}

TEST(Faults, StaleReplayOfOldContextIsOutvoted) {
  // The quorum-intersection argument of §5.1: even when the faulty server
  // replays the oldest context it ever saw, the read quorum contains a
  // correct server with the newest one, and "latest valid" wins.
  ClusterOptions options;
  options.server_faults = {{0, {ServerFault::kStaleContext}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  std::uint64_t newest_time = 0;
  for (int session = 1; session <= 3; ++session) {
    auto client = cluster.make_client(ClientId{1}, client_options());
    prefer_faulty_first(*client, options.n, {0});
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    // The acquired context must never regress.
    EXPECT_GE(client->context().get(kX1).time, newest_time) << "session " << session;
    ASSERT_TRUE(sync.write(kX1, to_bytes("s" + std::to_string(session))).ok());
    newest_time = client->context().get(kX1).time;
    ASSERT_TRUE(sync.disconnect().ok());
  }
}

}  // namespace
}  // namespace securestore
