// Unit tests for the transport/rpc/quorum layer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "net/fault_transport.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "sim/scheduler.h"

namespace securestore::net {
namespace {

struct Harness {
  sim::Scheduler scheduler;
  SimTransport transport;

  explicit Harness(sim::LinkProfile profile = sim::lan_profile(), std::uint64_t seed = 1)
      : transport(scheduler, sim::NetworkModel(Rng(seed), profile)) {}
};

/// Transport that delivers synchronously inside send() — the sharpest
/// scheduling regime QuorumCall must survive (a reply can arrive before
/// send_request even returns). Timers are collected and run manually.
class InlineTransport final : public Transport {
 public:
  void register_node(NodeId node, DeliverFn deliver) override {
    handlers_[node] = std::move(deliver);
  }
  void unregister_node(NodeId node) override { handlers_.erase(node); }
  void send(NodeId from, NodeId to, Bytes payload) override {
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second(from, payload);
  }
  SimTime now() const override { return 0; }
  void schedule(SimDuration, std::function<void()> callback) override {
    timers_.push_back(std::move(callback));
  }
  const sim::TransportStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  void fire_timers() {
    auto timers = std::move(timers_);
    timers_.clear();
    for (auto& timer : timers) timer();
  }

 private:
  std::unordered_map<NodeId, DeliverFn> handlers_;
  std::vector<std::function<void()>> timers_;
  sim::TransportStats stats_;
};

/// Crafts a raw kResponse envelope as a Byzantine node would: kind=1, the
/// echoed rpc id, a type tag and body.
Bytes forge_response(std::uint64_t rpc_id, MsgType type, const Bytes& body) {
  Writer w;
  w.u8(1);  // Kind::kResponse
  w.u64(rpc_id);
  w.u16(static_cast<std::uint16_t>(type));
  w.raw(body);
  return w.take();
}

TEST(SimTransport, DeliversWithLatency) {
  Harness h(sim::LinkProfile{milliseconds(10), 0, 0.0});
  std::optional<SimTime> delivered_at;
  h.transport.register_node(NodeId{1}, [&](NodeId from, BytesView payload) {
    EXPECT_EQ(from, NodeId{0});
    EXPECT_EQ(Bytes(payload.begin(), payload.end()), to_bytes("hi"));
    delivered_at = h.scheduler.now();
  });
  h.transport.send(NodeId{0}, NodeId{1}, to_bytes("hi"));
  h.scheduler.run_until_idle();
  ASSERT_TRUE(delivered_at.has_value());
  EXPECT_EQ(*delivered_at, milliseconds(10));
}

TEST(SimTransport, UnregisteredDestinationDrops) {
  Harness h;
  h.transport.send(NodeId{0}, NodeId{42}, to_bytes("void"));
  h.scheduler.run_until_idle();
  EXPECT_EQ(h.transport.stats().messages_sent, 1u);
  EXPECT_EQ(h.transport.stats().messages_delivered, 0u);
  EXPECT_EQ(h.transport.stats().messages_dropped, 1u);
}

TEST(SimTransport, StatsCountBytes) {
  Harness h;
  h.transport.register_node(NodeId{1}, [](NodeId, BytesView) {});
  h.transport.send(NodeId{0}, NodeId{1}, Bytes(100, 0xaa));
  h.scheduler.run_until_idle();
  EXPECT_EQ(h.transport.stats().bytes_sent, 100u);
  h.transport.reset_stats();
  EXPECT_EQ(h.transport.stats().messages_sent, 0u);
}

TEST(SimTransport, SameTickDeliveriesCoalesceIntoOneBatch) {
  // Fixed latency, no jitter: five sends at t=0 all arrive at the same sim
  // instant, and the zero-delay flush event hands them to the batch handler
  // as ONE batch — the coalescing the server's batched verify pipeline
  // feeds on.
  Harness h(sim::LinkProfile{milliseconds(10), 0, 0.0});
  std::vector<std::size_t> batch_sizes;
  h.transport.register_node_batched(NodeId{1}, [&](std::vector<Delivery>& batch) {
    batch_sizes.push_back(batch.size());
    for (const Delivery& d : batch) EXPECT_EQ(d.from, NodeId{0});
  });
  for (std::uint8_t i = 0; i < 5; ++i) {
    h.transport.send(NodeId{0}, NodeId{1}, Bytes{i});
  }
  h.scheduler.run_until_idle();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes.front(), 5u);
  EXPECT_EQ(h.transport.stats().messages_delivered, 5u);
}

TEST(SimTransport, OversizedBurstSplitsAtMaxBatch) {
  Harness h(sim::LinkProfile{milliseconds(10), 0, 0.0});
  std::vector<std::size_t> batch_sizes;
  h.transport.register_node_batched(NodeId{1}, [&](std::vector<Delivery>& batch) {
    batch_sizes.push_back(batch.size());
  });
  const std::size_t count = Transport::kMaxDeliveryBatch + 8;
  for (std::size_t i = 0; i < count; ++i) {
    h.transport.send(NodeId{0}, NodeId{1}, to_bytes("m"));
  }
  h.scheduler.run_until_idle();
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], Transport::kMaxDeliveryBatch);
  EXPECT_EQ(batch_sizes[1], 8u);
}

TEST(SimTransport, BatchCoalescingIsDeterministicAcrossRuns) {
  // Coalescing is a pure function of the seeded event sequence: two runs
  // with the same seed and jittered latencies produce identical batch
  // shapes. The deterministic chaos replay depends on this.
  const auto run = [] {
    Harness h(sim::LinkProfile{milliseconds(1), microseconds(500), 0.0}, /*seed=*/42);
    std::vector<std::size_t> sizes;
    h.transport.register_node_batched(
        NodeId{1}, [&](std::vector<Delivery>& batch) { sizes.push_back(batch.size()); });
    for (int i = 0; i < 20; ++i) h.transport.send(NodeId{0}, NodeId{1}, to_bytes("m"));
    h.scheduler.run_until_idle();
    return sizes;
  };
  EXPECT_EQ(run(), run());
}

TEST(Rpc, RequestResponse) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});

  server.set_request_handler([](NodeId, MsgType type, BytesView body) {
    EXPECT_EQ(type, MsgType::kRead);
    Bytes echoed(body.begin(), body.end());
    echoed.push_back('!');
    return std::make_optional(std::make_pair(MsgType::kAck, echoed));
  });

  std::optional<Bytes> response;
  client.send_request(NodeId{0}, MsgType::kRead, to_bytes("ping"),
                      [&](NodeId from, MsgType type, BytesView body) {
                        EXPECT_EQ(from, NodeId{0});
                        EXPECT_EQ(type, MsgType::kAck);
                        response = Bytes(body.begin(), body.end());
                      });
  h.scheduler.run_until_idle();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(to_string(*response), "ping!");
}

TEST(Rpc, HandlerReturningNulloptMeansSilence) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});
  server.set_request_handler(
      [](NodeId, MsgType, BytesView) -> std::optional<std::pair<MsgType, Bytes>> {
        return std::nullopt;
      });

  bool responded = false;
  client.send_request(NodeId{0}, MsgType::kRead, {},
                      [&](NodeId, MsgType, BytesView) { responded = true; });
  h.scheduler.run_until_idle();
  EXPECT_FALSE(responded);
}

TEST(Rpc, CancelledRpcIgnoresLateResponse) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });

  bool fired = false;
  const std::uint64_t rpc_id = client.send_request(
      NodeId{0}, MsgType::kRead, {}, [&](NodeId, MsgType, BytesView) { fired = true; });
  client.cancel(rpc_id);
  h.scheduler.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Rpc, OnewayDelivery) {
  Harness h;
  RpcNode a(h.transport, NodeId{0});
  RpcNode b(h.transport, NodeId{1});

  std::optional<MsgType> received;
  b.set_oneway_handler([&](NodeId from, MsgType type, BytesView) {
    EXPECT_EQ(from, NodeId{0});
    received = type;
  });
  a.send_oneway(NodeId{1}, MsgType::kGossipDigest, to_bytes("digest"));
  h.scheduler.run_until_idle();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, MsgType::kGossipDigest);
}

TEST(Rpc, BatchRequestHandlerReceivesCoalescedRequests) {
  // Three requests landing in one transport batch reach the batch handler
  // in ONE call, and every caller still gets its own correctly-correlated
  // response.
  Harness h(sim::LinkProfile{milliseconds(5), 0, 0.0});
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});

  std::vector<std::size_t> batch_sizes;
  server.set_batch_request_handler([&](std::vector<IncomingRequest>& batch) {
    batch_sizes.push_back(batch.size());
    std::vector<std::optional<std::pair<MsgType, Bytes>>> out;
    for (const IncomingRequest& req : batch) {
      EXPECT_EQ(req.type, MsgType::kRead);
      Bytes echoed = req.body;
      echoed.push_back('!');
      out.emplace_back(std::make_pair(MsgType::kAck, std::move(echoed)));
    }
    return out;
  });

  int replies = 0;
  for (int i = 0; i < 3; ++i) {
    client.send_request(NodeId{0}, MsgType::kRead, to_bytes("q"),
                        [&](NodeId from, MsgType type, BytesView body) {
                          EXPECT_EQ(from, NodeId{0});
                          EXPECT_EQ(type, MsgType::kAck);
                          EXPECT_EQ(to_string(Bytes(body.begin(), body.end())), "q!");
                          ++replies;
                        });
  }
  h.scheduler.run_until_idle();
  EXPECT_EQ(replies, 3);
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes.front(), 3u);
}

TEST(Rpc, ShortBatchResultLeavesTailSilent) {
  // A batch handler returning fewer entries than requests means "no
  // response" for the tail — same semantics as a nullopt entry, never an
  // out-of-bounds read or a garbage reply.
  Harness h(sim::LinkProfile{milliseconds(5), 0, 0.0});
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});
  server.set_batch_request_handler([](std::vector<IncomingRequest>& batch) {
    std::vector<std::optional<std::pair<MsgType, Bytes>>> out;
    if (!batch.empty()) out.emplace_back(std::make_pair(MsgType::kAck, Bytes{}));
    return out;  // only the first request gets an answer
  });

  int replies = 0;
  for (int i = 0; i < 3; ++i) {
    client.send_request(NodeId{0}, MsgType::kRead, to_bytes("q"),
                        [&](NodeId, MsgType, BytesView) { ++replies; });
  }
  h.scheduler.run_until_idle();
  EXPECT_EQ(replies, 1);
}

TEST(Rpc, MalformedDatagramIgnored) {
  Harness h;
  RpcNode receiver(h.transport, NodeId{1});
  bool crashed = false;
  receiver.set_request_handler([&](NodeId, MsgType, BytesView) {
    crashed = true;
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  h.transport.send(NodeId{0}, NodeId{1}, Bytes{0x01});  // truncated envelope
  h.scheduler.run_until_idle();
  EXPECT_FALSE(crashed);
}

TEST(Rpc, SpoofedResponseFromNonTargetDropped) {
  Harness h;
  RpcNode mute(h.transport, NodeId{0});  // target: never answers
  RpcNode byzantine(h.transport, NodeId{2});
  RpcNode client(h.transport, NodeId{1});

  int fired = 0;
  NodeId reply_from{};
  const std::uint64_t rpc_id =
      client.send_request(NodeId{0}, MsgType::kRead, to_bytes("q"),
                          [&](NodeId from, MsgType, BytesView) {
                            ++fired;
                            reply_from = from;
                          });

  // A Byzantine server that somehow learned the rpc id answers for the
  // honest target. The reply must be dropped: it is not from node 0.
  h.transport.send(NodeId{2}, NodeId{1},
                   forge_response(rpc_id, MsgType::kAck, to_bytes("forged")));
  h.scheduler.run_until_idle();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(client.pending_count(), 1u);  // spoof did not consume the rpc

  // The genuine reply from the target is still accepted afterwards.
  h.transport.send(NodeId{0}, NodeId{1},
                   forge_response(rpc_id, MsgType::kAck, to_bytes("real")));
  h.scheduler.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(reply_from, NodeId{0});
  EXPECT_EQ(client.pending_count(), 0u);
  (void)byzantine;
}

TEST(Rpc, InitialRpcIdsRandomized) {
  // Ids start at a random 63-bit value per node: two independent nodes
  // colliding (or starting at the historical 1) would be a 2^-63 event.
  Harness h;
  RpcNode a(h.transport, NodeId{1});
  RpcNode b(h.transport, NodeId{2});
  const std::uint64_t id_a =
      a.send_request(NodeId{0}, MsgType::kRead, {}, [](NodeId, MsgType, BytesView) {});
  const std::uint64_t id_b =
      b.send_request(NodeId{0}, MsgType::kRead, {}, [](NodeId, MsgType, BytesView) {});
  EXPECT_NE(id_a, id_b);
  EXPECT_NE(id_a, 1u);
  a.cancel(id_a);
  b.cancel(id_b);
}

TEST(Quorum, SynchronousReplyDoesNotLeakPendingRpcs) {
  // Replies delivered inside send_request() used to finish the call before
  // later rpc ids were recorded, leaking their callbacks in pending_.
  InlineTransport transport;
  std::vector<std::unique_ptr<RpcNode>> servers;
  std::atomic<int> requests_seen{0};
  for (std::uint32_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<RpcNode>(transport, NodeId{i}));
    servers.back()->set_request_handler([&requests_seen](NodeId, MsgType, BytesView) {
      ++requests_seen;
      return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
    });
  }
  RpcNode client(transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}, NodeId{1}, NodeId{2}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return true; },  // first reply satisfies
      [&](QuorumOutcome result, std::size_t count) {
        outcome = result;
        EXPECT_EQ(count, 1u);
      });

  EXPECT_EQ(outcome, QuorumOutcome::kSatisfied);
  // The call was satisfied during the first send: the remaining targets
  // are never contacted and nothing lingers in pending_.
  EXPECT_EQ(requests_seen.load(), 1);
  EXPECT_EQ(client.pending_count(), 0u);

  // The (now moot) timeout timer must be a no-op, not a second done().
  transport.fire_timers();
  EXPECT_EQ(outcome, QuorumOutcome::kSatisfied);
}

TEST(Quorum, SynchronousExhaustionDrainsPending) {
  InlineTransport transport;
  std::vector<std::unique_ptr<RpcNode>> servers;
  for (std::uint32_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<RpcNode>(transport, NodeId{i}));
    servers.back()->set_request_handler([](NodeId, MsgType, BytesView) {
      return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
    });
  }
  RpcNode client(transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  std::size_t replies = 0;
  QuorumCall::start(
      client, {NodeId{0}, NodeId{1}, NodeId{2}}, MsgType::kRead, {},
      [&](NodeId, MsgType, BytesView) {
        ++replies;
        return false;  // never satisfied: exhausts after all three
      },
      [&](QuorumOutcome result, std::size_t) { outcome = result; });

  EXPECT_EQ(outcome, QuorumOutcome::kExhausted);
  EXPECT_EQ(replies, 3u);
  EXPECT_EQ(client.pending_count(), 0u);
}

TEST(Quorum, SatisfiedCallReleasesStateBeforeTimeout) {
  // The timeout timer holds only a weak reference: once satisfied, the
  // call state — and the buffers captured in its callbacks — must be
  // released immediately, not pinned until the timer fires.
  InlineTransport transport;
  RpcNode server(transport, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(transport, NodeId{100});

  auto sentinel = std::make_shared<int>(7);  // stands in for captured buffers
  std::weak_ptr<int> weak = sentinel;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [sentinel](NodeId, MsgType, BytesView) { return true; },
      [](QuorumOutcome, std::size_t) {});
  sentinel.reset();

  EXPECT_TRUE(weak.expired());  // released at satisfaction, timer still pending
  transport.fire_timers();      // and the timer finds nothing to do
}

TEST(Quorum, SatisfiedWhenPredicateAccepts) {
  Harness h;
  std::vector<std::unique_ptr<RpcNode>> servers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<RpcNode>(h.transport, NodeId{i}));
    servers.back()->set_request_handler([i](NodeId, MsgType, BytesView) {
      Writer w;
      w.u32(i);
      return std::make_optional(std::make_pair(MsgType::kAck, w.take()));
    });
  }
  RpcNode client(h.transport, NodeId{100});

  std::size_t replies = 0;
  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, MsgType::kRead, {},
      [&](NodeId, MsgType, BytesView) { return ++replies >= 3; },
      [&](QuorumOutcome result, std::size_t count) {
        outcome = result;
        EXPECT_EQ(count, 3u);
      });
  h.scheduler.run_until_idle();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, QuorumOutcome::kSatisfied);
}

TEST(Quorum, ExhaustedWhenAllReplyWithoutAcceptance) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(h.transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return false; },
      [&](QuorumOutcome result, std::size_t) { outcome = result; });
  h.scheduler.run_until_idle();
  EXPECT_EQ(outcome, QuorumOutcome::kExhausted);
}

TEST(Quorum, TimeoutWhenServersSilent) {
  Harness h;
  RpcNode mute(h.transport, NodeId{0});  // no handler: drops requests
  RpcNode client(h.transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  std::optional<SimTime> finished_at;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome result, std::size_t) {
        outcome = result;
        finished_at = h.scheduler.now();
      },
      QuorumCall::Options{milliseconds(500)});
  h.scheduler.run_until_idle();
  EXPECT_EQ(outcome, QuorumOutcome::kTimeout);
  EXPECT_EQ(*finished_at, milliseconds(500));
}

TEST(Quorum, EmptyTargetsExhaustImmediately) {
  Harness h;
  RpcNode client(h.transport, NodeId{100});
  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {}, MsgType::kRead, {}, [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome result, std::size_t) { outcome = result; });
  EXPECT_EQ(outcome, QuorumOutcome::kExhausted);
}

TEST(Quorum, DuplicateTargetEntriesCountDistinctResponders) {
  // A target list naming one server twice sends it two rpcs, but the quorum
  // tally counts responders: the second reply from the same node must not
  // advance the count, and exhaustion means "every DISTINCT target spoke".
  Harness h;
  std::vector<std::unique_ptr<RpcNode>> servers;
  for (std::uint32_t i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<RpcNode>(h.transport, NodeId{i}));
    servers.back()->set_request_handler([](NodeId, MsgType, BytesView) {
      return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
    });
  }
  RpcNode client(h.transport, NodeId{100});

  std::size_t on_reply_calls = 0;
  std::optional<QuorumOutcome> outcome;
  std::size_t final_count = 0;
  QuorumCall::start(
      client, {NodeId{0}, NodeId{0}, NodeId{1}}, MsgType::kRead, {},
      [&](NodeId, MsgType, BytesView) {
        ++on_reply_calls;
        return false;
      },
      [&](QuorumOutcome result, std::size_t count) {
        outcome = result;
        final_count = count;
      });
  h.scheduler.run_until_idle();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, QuorumOutcome::kExhausted);
  EXPECT_EQ(on_reply_calls, 2u);
  EXPECT_EQ(final_count, 2u);
}

TEST(Quorum, DuplicatedFramesCannotFakeAQuorum) {
  // Chaos rule: every frame is duplicated (requests and responses). A
  // collector that would be satisfied by hearing the same server twice must
  // never be — replayed frames are deduplicated before the tally.
  Harness h;
  FaultInjectingTransport chaotic(h.transport, /*seed=*/7);
  FaultRule duplicate_everything;
  duplicate_everything.duplicate = 1.0;
  chaotic.set_default_rule(duplicate_everything);

  RpcNode server(chaotic, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(chaotic, NodeId{100});

  std::size_t replies = 0;
  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [&](NodeId, MsgType, BytesView) { return ++replies >= 2; },
      [&](QuorumOutcome result, std::size_t) { outcome = result; },
      QuorumCall::Options{milliseconds(500)});
  h.scheduler.run_until_idle();
  EXPECT_GT(chaotic.injected_count(), 0u);  // the duplicate rule really fired
  EXPECT_EQ(replies, 1u);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NE(*outcome, QuorumOutcome::kSatisfied);
}

TEST(Quorum, DoneFiresExactlyOnce) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(h.transport, NodeId{100});

  int done_count = 0;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome, std::size_t) { ++done_count; },
      QuorumCall::Options{milliseconds(100)});
  h.scheduler.run_until_idle();  // runs past the timeout too
  EXPECT_EQ(done_count, 1);
}

}  // namespace
}  // namespace securestore::net
