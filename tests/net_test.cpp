// Unit tests for the transport/rpc/quorum layer.
#include <gtest/gtest.h>

#include "net/quorum.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "sim/scheduler.h"

namespace securestore::net {
namespace {

struct Harness {
  sim::Scheduler scheduler;
  SimTransport transport;

  explicit Harness(sim::LinkProfile profile = sim::lan_profile(), std::uint64_t seed = 1)
      : transport(scheduler, sim::NetworkModel(Rng(seed), profile)) {}
};

TEST(SimTransport, DeliversWithLatency) {
  Harness h(sim::LinkProfile{milliseconds(10), 0, 0.0});
  std::optional<SimTime> delivered_at;
  h.transport.register_node(NodeId{1}, [&](NodeId from, BytesView payload) {
    EXPECT_EQ(from, NodeId{0});
    EXPECT_EQ(Bytes(payload.begin(), payload.end()), to_bytes("hi"));
    delivered_at = h.scheduler.now();
  });
  h.transport.send(NodeId{0}, NodeId{1}, to_bytes("hi"));
  h.scheduler.run_until_idle();
  ASSERT_TRUE(delivered_at.has_value());
  EXPECT_EQ(*delivered_at, milliseconds(10));
}

TEST(SimTransport, UnregisteredDestinationDrops) {
  Harness h;
  h.transport.send(NodeId{0}, NodeId{42}, to_bytes("void"));
  h.scheduler.run_until_idle();
  EXPECT_EQ(h.transport.stats().messages_sent, 1u);
  EXPECT_EQ(h.transport.stats().messages_delivered, 0u);
  EXPECT_EQ(h.transport.stats().messages_dropped, 1u);
}

TEST(SimTransport, StatsCountBytes) {
  Harness h;
  h.transport.register_node(NodeId{1}, [](NodeId, BytesView) {});
  h.transport.send(NodeId{0}, NodeId{1}, Bytes(100, 0xaa));
  h.scheduler.run_until_idle();
  EXPECT_EQ(h.transport.stats().bytes_sent, 100u);
  h.transport.reset_stats();
  EXPECT_EQ(h.transport.stats().messages_sent, 0u);
}

TEST(Rpc, RequestResponse) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});

  server.set_request_handler([](NodeId, MsgType type, BytesView body) {
    EXPECT_EQ(type, MsgType::kRead);
    Bytes echoed(body.begin(), body.end());
    echoed.push_back('!');
    return std::make_optional(std::make_pair(MsgType::kAck, echoed));
  });

  std::optional<Bytes> response;
  client.send_request(NodeId{0}, MsgType::kRead, to_bytes("ping"),
                      [&](NodeId from, MsgType type, BytesView body) {
                        EXPECT_EQ(from, NodeId{0});
                        EXPECT_EQ(type, MsgType::kAck);
                        response = Bytes(body.begin(), body.end());
                      });
  h.scheduler.run_until_idle();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(to_string(*response), "ping!");
}

TEST(Rpc, HandlerReturningNulloptMeansSilence) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});
  server.set_request_handler(
      [](NodeId, MsgType, BytesView) -> std::optional<std::pair<MsgType, Bytes>> {
        return std::nullopt;
      });

  bool responded = false;
  client.send_request(NodeId{0}, MsgType::kRead, {},
                      [&](NodeId, MsgType, BytesView) { responded = true; });
  h.scheduler.run_until_idle();
  EXPECT_FALSE(responded);
}

TEST(Rpc, CancelledRpcIgnoresLateResponse) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  RpcNode client(h.transport, NodeId{1});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });

  bool fired = false;
  const std::uint64_t rpc_id = client.send_request(
      NodeId{0}, MsgType::kRead, {}, [&](NodeId, MsgType, BytesView) { fired = true; });
  client.cancel(rpc_id);
  h.scheduler.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Rpc, OnewayDelivery) {
  Harness h;
  RpcNode a(h.transport, NodeId{0});
  RpcNode b(h.transport, NodeId{1});

  std::optional<MsgType> received;
  b.set_oneway_handler([&](NodeId from, MsgType type, BytesView) {
    EXPECT_EQ(from, NodeId{0});
    received = type;
  });
  a.send_oneway(NodeId{1}, MsgType::kGossipDigest, to_bytes("digest"));
  h.scheduler.run_until_idle();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, MsgType::kGossipDigest);
}

TEST(Rpc, MalformedDatagramIgnored) {
  Harness h;
  RpcNode receiver(h.transport, NodeId{1});
  bool crashed = false;
  receiver.set_request_handler([&](NodeId, MsgType, BytesView) {
    crashed = true;
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  h.transport.send(NodeId{0}, NodeId{1}, Bytes{0x01});  // truncated envelope
  h.scheduler.run_until_idle();
  EXPECT_FALSE(crashed);
}

TEST(Quorum, SatisfiedWhenPredicateAccepts) {
  Harness h;
  std::vector<std::unique_ptr<RpcNode>> servers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<RpcNode>(h.transport, NodeId{i}));
    servers.back()->set_request_handler([i](NodeId, MsgType, BytesView) {
      Writer w;
      w.u32(i);
      return std::make_optional(std::make_pair(MsgType::kAck, w.take()));
    });
  }
  RpcNode client(h.transport, NodeId{100});

  std::size_t replies = 0;
  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, MsgType::kRead, {},
      [&](NodeId, MsgType, BytesView) { return ++replies >= 3; },
      [&](QuorumOutcome result, std::size_t count) {
        outcome = result;
        EXPECT_EQ(count, 3u);
      });
  h.scheduler.run_until_idle();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, QuorumOutcome::kSatisfied);
}

TEST(Quorum, ExhaustedWhenAllReplyWithoutAcceptance) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(h.transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return false; },
      [&](QuorumOutcome result, std::size_t) { outcome = result; });
  h.scheduler.run_until_idle();
  EXPECT_EQ(outcome, QuorumOutcome::kExhausted);
}

TEST(Quorum, TimeoutWhenServersSilent) {
  Harness h;
  RpcNode mute(h.transport, NodeId{0});  // no handler: drops requests
  RpcNode client(h.transport, NodeId{100});

  std::optional<QuorumOutcome> outcome;
  std::optional<SimTime> finished_at;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome result, std::size_t) {
        outcome = result;
        finished_at = h.scheduler.now();
      },
      QuorumCall::Options{milliseconds(500)});
  h.scheduler.run_until_idle();
  EXPECT_EQ(outcome, QuorumOutcome::kTimeout);
  EXPECT_EQ(*finished_at, milliseconds(500));
}

TEST(Quorum, EmptyTargetsExhaustImmediately) {
  Harness h;
  RpcNode client(h.transport, NodeId{100});
  std::optional<QuorumOutcome> outcome;
  QuorumCall::start(
      client, {}, MsgType::kRead, {}, [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome result, std::size_t) { outcome = result; });
  EXPECT_EQ(outcome, QuorumOutcome::kExhausted);
}

TEST(Quorum, DoneFiresExactlyOnce) {
  Harness h;
  RpcNode server(h.transport, NodeId{0});
  server.set_request_handler([](NodeId, MsgType, BytesView) {
    return std::make_optional(std::make_pair(MsgType::kAck, Bytes{}));
  });
  RpcNode client(h.transport, NodeId{100});

  int done_count = 0;
  QuorumCall::start(
      client, {NodeId{0}}, MsgType::kRead, {},
      [](NodeId, MsgType, BytesView) { return true; },
      [&](QuorumOutcome, std::size_t) { ++done_count; },
      QuorumCall::Options{milliseconds(100)});
  h.scheduler.run_until_idle();  // runs past the timeout too
  EXPECT_EQ(done_count, 1);
}

}  // namespace
}  // namespace securestore::net
