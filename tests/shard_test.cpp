// Sharding layer tests (DESIGN.md §11).
//
// Ring mechanics first — codec round-trips, signature discipline,
// known-answer balance and golden placement lookups (the placement function
// is a wire-compatibility surface: every party must compute identical
// owners) — then the router's update rules, then live-cluster integration:
// a stale-ring client healing through kWrongShard, forged rings bouncing
// off the signature check, and ring dissemination over gossip.
#include <gtest/gtest.h>

#include <string>

#include "net/rpc.h"
#include "shard/hash_ring.h"
#include "shard/router.h"
#include "shard/sharded_client.h"
#include "testkit/sharded_cluster.h"

namespace securestore {
namespace {

using shard::HashRing;
using shard::RingState;
using shard::ShardMembers;
using shard::ShardRouter;
using shard::SignedRingState;
using testkit::ShardedCluster;
using testkit::ShardedClusterOptions;

/// A ring over `shards` groups of 4 placeholder servers each.
RingState make_ring_state(std::uint32_t shards, std::uint32_t vnodes,
                          std::uint64_t version = 1, std::uint64_t seed = 7) {
  RingState state;
  state.version = version;
  state.vnodes_per_shard = vnodes;
  state.placement_seed = seed;
  for (std::uint32_t s = 0; s < shards; ++s) {
    ShardMembers members;
    members.shard_id = s;
    for (std::uint32_t i = 0; i < 4; ++i) {
      members.servers.push_back(NodeId{s * 100 + i});
      members.server_keys.push_back(Bytes(32, static_cast<std::uint8_t>(s + i)));
    }
    state.shards.push_back(std::move(members));
  }
  return state;
}

// ---------------------------------------------------------------------------
// Codec + signatures.
// ---------------------------------------------------------------------------

TEST(RingCodec, StateRoundTrips) {
  const RingState state = make_ring_state(3, 64, /*version=*/9, /*seed=*/123);
  const RingState back = RingState::deserialize(state.serialize());
  EXPECT_EQ(back.version, 9u);
  EXPECT_EQ(back.vnodes_per_shard, 64u);
  EXPECT_EQ(back.placement_seed, 123u);
  ASSERT_EQ(back.shards.size(), 3u);
  EXPECT_EQ(back.shards[2].shard_id, 2u);
  EXPECT_EQ(back.shards[2].servers, state.shards[2].servers);
  EXPECT_EQ(back.shards[2].server_keys, state.shards[2].server_keys);
}

TEST(RingCodec, SignedRoundTripVerifiesAndTamperFails) {
  Rng rng(5);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const crypto::KeyPair attacker = crypto::KeyPair::generate(rng);

  const SignedRingState signed_ring =
      SignedRingState::sign(make_ring_state(2, 64), authority.seed);
  EXPECT_TRUE(signed_ring.verify(authority.public_key));
  EXPECT_FALSE(signed_ring.verify(attacker.public_key));
  EXPECT_FALSE(signed_ring.verify(Bytes{}));

  SignedRingState back = SignedRingState::deserialize(signed_ring.serialize());
  EXPECT_TRUE(back.verify(authority.public_key));

  back.ring.version = 99;  // content tamper: signature no longer covers it
  EXPECT_FALSE(back.verify(authority.public_key));

  EXPECT_THROW(SignedRingState::deserialize(to_bytes("not a ring")), DecodeError);
}

TEST(RingCodec, HashRingRejectsDegenerateStates) {
  RingState empty = make_ring_state(2, 64);
  empty.shards.clear();
  EXPECT_THROW(HashRing ring(empty), std::invalid_argument);

  RingState zero_vnodes = make_ring_state(2, 64);
  zero_vnodes.vnodes_per_shard = 0;
  EXPECT_THROW(HashRing ring(zero_vnodes), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Placement: known-answer balance and golden lookups.
// ---------------------------------------------------------------------------

TEST(HashRingPlacement, BalanceKnownAnswer) {
  // 8 shards, 100k sequential group keys, fixed placement seed. The
  // max/mean key-load ratio must stay under a fixed bound at every vnode
  // count, and the max itself is pinned: placement is a pure function of
  // the RingState, so any change to the hash layout is a wire break and
  // must show up here.
  struct Case {
    std::uint32_t vnodes;
    double max_ratio;
    std::uint64_t pinned_max;
  };
  const Case cases[] = {{64, 1.25, 14411}, {128, 1.20, 14132}, {256, 1.20, 14501}};
  for (const Case& c : cases) {
    const HashRing ring(make_ring_state(8, c.vnodes));
    std::vector<std::uint64_t> load(8, 0);
    for (std::uint64_t k = 1; k <= 100000; ++k) {
      const std::uint32_t shard = ring.shard_for(GroupId{k});
      ASSERT_LT(shard, 8u);
      ++load[shard];
    }
    std::uint64_t max_load = 0;
    for (const std::uint64_t l : load) max_load = std::max(max_load, l);
    const double mean = 100000.0 / 8.0;
    EXPECT_LE(static_cast<double>(max_load) / mean, c.max_ratio)
        << "vnodes=" << c.vnodes;
    EXPECT_EQ(max_load, c.pinned_max) << "placement drifted at vnodes=" << c.vnodes;
  }
}

TEST(HashRingPlacement, GoldenLookups) {
  EXPECT_EQ(HashRing::key_point(GroupId{1}, 7), 9281914914035571503ull);
  EXPECT_EQ(HashRing::key_point(GroupId{42}, 7), 10995025515421811534ull);
  EXPECT_EQ(HashRing::key_point(GroupId{1000}, 7), 3753859024894447038ull);
  EXPECT_EQ(HashRing::vnode_point(3, 5, 7), 5384124486287107229ull);

  const HashRing ring(make_ring_state(8, 64));
  EXPECT_EQ(ring.shard_for(GroupId{1}), 5u);
  EXPECT_EQ(ring.shard_for(GroupId{2}), 3u);
  EXPECT_EQ(ring.shard_for(GroupId{3}), 5u);
  EXPECT_EQ(ring.shard_for(GroupId{42}), 5u);
  EXPECT_EQ(ring.shard_for(GroupId{999}), 2u);
  EXPECT_EQ(ring.shard_for(GroupId{100000}), 6u);
}

TEST(HashRingPlacement, SeedChangesPlacement) {
  const HashRing a(make_ring_state(8, 64, 1, /*seed=*/7));
  const HashRing b(make_ring_state(8, 64, 1, /*seed=*/8));
  int moved = 0;
  for (std::uint64_t k = 1; k <= 512; ++k) {
    if (a.shard_for(GroupId{k}) != b.shard_for(GroupId{k})) ++moved;
  }
  EXPECT_GT(moved, 256) << "placement seed barely affects the layout";
}

// ---------------------------------------------------------------------------
// Router update rules.
// ---------------------------------------------------------------------------

core::StoreConfig router_template(const Bytes& authority_key) {
  core::StoreConfig config;
  config.n = 4;
  config.b = 1;
  config.ring_authority_key = authority_key;
  config.client_keys[1] = Bytes(32, 0x11);
  return config;
}

TEST(Router, AcceptsOnlyStrictlyNewerVerifiedRings) {
  Rng rng(6);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const crypto::KeyPair attacker = crypto::KeyPair::generate(rng);

  ShardRouter router(SignedRingState::sign(make_ring_state(2, 64, /*version=*/1),
                                           authority.seed),
                     router_template(authority.public_key));
  EXPECT_EQ(router.version(), 1u);
  EXPECT_EQ(router.shard_count(), 2u);

  // Same version: replay, refused.
  EXPECT_FALSE(router.update(
      SignedRingState::sign(make_ring_state(3, 64, /*version=*/1), authority.seed)));
  // Older: refused.
  EXPECT_FALSE(router.update(
      SignedRingState::sign(make_ring_state(3, 64, /*version=*/0), authority.seed)));
  // Newer but forged: refused, version unchanged.
  EXPECT_FALSE(router.update(
      SignedRingState::sign(make_ring_state(3, 64, /*version=*/5), attacker.seed)));
  EXPECT_EQ(router.version(), 1u);
  // Newer and authentic: installed.
  EXPECT_TRUE(router.update(
      SignedRingState::sign(make_ring_state(3, 64, /*version=*/2), authority.seed)));
  EXPECT_EQ(router.version(), 2u);
  EXPECT_EQ(router.shard_count(), 3u);
}

TEST(Router, DerivesShardConfigFromRing) {
  Rng rng(6);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const RingState state = make_ring_state(2, 64);
  ShardRouter router(SignedRingState::sign(state, authority.seed),
                     router_template(authority.public_key));

  const core::StoreConfig config = router.config_for(1);
  EXPECT_EQ(config.n, 4u);
  EXPECT_EQ(config.b, 1u);
  EXPECT_EQ(config.servers, state.shards[1].servers);
  for (std::size_t i = 0; i < state.shards[1].servers.size(); ++i) {
    EXPECT_EQ(config.server_keys.at(state.shards[1].servers[i]),
              state.shards[1].server_keys[i]);
  }
  EXPECT_EQ(config.client_keys.at(1), Bytes(32, 0x11));
  EXPECT_THROW(router.config_for(7), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Live-cluster integration.
// ---------------------------------------------------------------------------

core::GroupPolicy single_writer(GroupId group) {
  return core::GroupPolicy{group, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

std::uint64_t counter_sum_with_prefix(const obs::MetricsSnapshot& snapshot,
                                      const std::string& prefix) {
  std::uint64_t sum = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(prefix, 0) == 0) sum += value;
  }
  return sum;
}

TEST(ShardedDeployment, StaleRingClientHealsThroughWrongShard) {
  ShardedClusterOptions options;
  options.groups = 2;
  options.seed = 11;
  ShardedCluster cluster(options);
  for (std::uint64_t g = 1; g <= 32; ++g) {
    cluster.set_group_policy(single_writer(GroupId{g}));
  }

  // Record pre-rebalance owners, then build the client on ring v1.
  std::vector<std::uint32_t> old_shard(33, 0);
  for (std::uint64_t g = 1; g <= 32; ++g) old_shard[g] = cluster.shard_for(GroupId{g});

  core::SecureStoreClient::Options client_options;
  auto client = cluster.make_client(ClientId{1}, std::move(client_options));
  shard::SyncShardedClient sync(*client, cluster.scheduler());

  // Write every group once under ring v1 so sessions and data exist.
  for (std::uint64_t g = 1; g <= 32; ++g) {
    ASSERT_TRUE(sync.connect(GroupId{g}).ok()) << "g=" << g;
    ASSERT_TRUE(sync.write(GroupId{g}, ItemId{g * 100}, to_bytes("v1")).ok()) << "g=" << g;
  }

  // Rebalance: one more group, full protocol. The client is NOT told.
  cluster.add_group();
  EXPECT_EQ(cluster.ring().ring.version, 2u);

  GroupId moved{0};
  for (std::uint64_t g = 1; g <= 32; ++g) {
    if (cluster.shard_for(GroupId{g}) != old_shard[g]) {
      moved = GroupId{g};
      break;
    }
  }
  ASSERT_NE(moved.value, 0u) << "no group moved to the new shard — widen the key range";

  // The stale client writes the moved group: the old owner rejects with
  // kWrongShard + its new ring; the client absorbs it, rebuilds the session
  // at the new owner (merging its context), retries, and succeeds.
  ASSERT_TRUE(sync.write(moved, ItemId{moved.value * 100}, to_bytes("v2")).ok());
  EXPECT_EQ(client->router().version(), 2u);
  EXPECT_EQ(client->shard_for(moved), cluster.shard_for(moved));

  // The write landed at the NEW owner, visible to a fresh post-ring client.
  auto fresh = cluster.make_client(ClientId{2}, core::SecureStoreClient::Options{});
  shard::SyncShardedClient fresh_sync(*fresh, cluster.scheduler());
  ASSERT_TRUE(fresh_sync.reconstruct_context(moved).ok());
  const auto read_back = fresh_sync.read_value(moved, ItemId{moved.value * 100});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), to_bytes("v2"));

  // §8 counters: the rejection, the refresh and the reroute all counted.
  const obs::MetricsSnapshot snapshot = cluster.registry().snapshot();
  EXPECT_GE(counter_sum_with_prefix(snapshot, "shard.wrong_shard"), 1u);
  const auto refresh = snapshot.counters.find("shard.ring_refresh");
  ASSERT_NE(refresh, snapshot.counters.end());
  EXPECT_GE(refresh->second, 1u);
  const auto reroute = snapshot.counters.find("shard.reroute");
  ASSERT_NE(reroute, snapshot.counters.end());
  EXPECT_GE(reroute->second, 1u);
}

TEST(ShardedDeployment, ForgedRingIsIgnored) {
  ShardedClusterOptions options;
  options.groups = 2;
  options.seed = 12;
  ShardedCluster cluster(options);

  // A Byzantine peer forges a "newer" ring signed by its own key and
  // gossips it straight at a server. The signature check drops it.
  Rng rng(99);
  const crypto::KeyPair attacker = crypto::KeyPair::generate(rng);
  RingState forged = cluster.ring().ring;
  forged.version = 1000;
  forged.shards.resize(1);  // the attack: collapse everything onto shard 0
  const SignedRingState forged_signed = SignedRingState::sign(forged, attacker.seed);

  net::RpcNode byzantine(cluster.endpoint_transport(), NodeId{9999});
  byzantine.send_oneway(cluster.group(0).server_node(0), net::MsgType::kGossipRing,
                        forged_signed.serialize());
  cluster.run_for(seconds(1));

  EXPECT_EQ(cluster.group(0).server(0).ring_version(), cluster.ring().ring.version);
  const obs::MetricsSnapshot snapshot = cluster.registry().snapshot();
  EXPECT_GE(counter_sum_with_prefix(snapshot, "shard.ring_rejected"), 1u);

  // Direct install of the same forgery is refused too.
  EXPECT_FALSE(cluster.group(0).server(0).install_ring(forged_signed));
}

TEST(ShardedDeployment, RingSpreadsOverGossipWithinGroup) {
  ShardedClusterOptions options;
  options.groups = 2;
  options.seed = 13;
  options.gossip.period = milliseconds(50);
  ShardedCluster cluster(options);

  // Hand ring v2 to ONE server of group 0; gossip must carry it to the
  // group's peers (dissemination is per-group: gossip peers are the
  // group's own servers).
  const SignedRingState v2 = cluster.next_ring();
  ASSERT_TRUE(cluster.group(0).server(0).install_ring(v2));
  cluster.run_for(seconds(2));

  for (std::size_t s = 0; s < cluster.group(0).server_count(); ++s) {
    EXPECT_EQ(cluster.group(0).server(s).ring_version(), 2u) << "server " << s;
  }
  for (std::size_t s = 0; s < cluster.group(1).server_count(); ++s) {
    EXPECT_EQ(cluster.group(1).server(s).ring_version(), 1u) << "server " << s;
  }

  const obs::MetricsSnapshot snapshot = cluster.registry().snapshot();
  EXPECT_GE(counter_sum_with_prefix(snapshot, "shard.ring_installed"), 1u);
}

TEST(ShardedDeployment, PerShardMetricSuffixSeparatesGroups) {
  ShardedClusterOptions options;
  options.groups = 2;
  options.seed = 14;
  ShardedCluster cluster(options);
  cluster.set_group_policy(single_writer(GroupId{1}));

  auto client = cluster.make_client(ClientId{1}, core::SecureStoreClient::Options{});
  shard::SyncShardedClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(GroupId{1}).ok());
  ASSERT_TRUE(sync.write(GroupId{1}, ItemId{100}, to_bytes("x")).ok());

  // Both groups' servers fold into ONE registry, distinguished by the
  // {shard=<id>} suffix (satellite: shared registry across groups).
  const obs::MetricsSnapshot snapshot = cluster.registry().snapshot();
  std::uint64_t suffixed = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.find("{shard=0}") != std::string::npos ||
        name.find("{shard=1}") != std::string::npos) {
      ++suffixed;
    }
  }
  EXPECT_GT(suffixed, 0u) << "no per-shard suffixed series in the shared registry";
}

}  // namespace
}  // namespace securestore
