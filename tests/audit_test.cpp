// Tests for the tamper-evident audit subsystem: hash-chain integrity,
// tamper detection, cross-server suppression detection, and the end-to-end
// Auditor over a live cluster with a write-suppressing Byzantine server.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "crypto/sha2.h"
#include "core/sync.h"
#include "storage/audit_log.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using storage::AuditFinding;
using storage::AuditLog;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX{10};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

core::WriteRecord make_record(ItemId item, std::uint64_t time, std::string_view value) {
  core::WriteRecord record;
  record.item = item;
  record.group = kGroup;
  record.model = ConsistencyModel::kMRC;
  record.writer = ClientId{1};
  record.value = to_bytes(value);
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = core::Timestamp{time, {}, {}};
  return record;
}

TEST(AuditLog, ChainGrowsAndVerifies) {
  AuditLog log;
  EXPECT_TRUE(log.verify());
  EXPECT_EQ(log.size(), 0u);

  for (std::uint64_t t = 1; t <= 10; ++t) {
    log.append(make_record(kX, t, "v" + std::to_string(t)), t * 100);
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_TRUE(log.verify());
  EXPECT_TRUE(log.contains(crypto::sha256(make_record(kX, 3, "v3").signed_payload())));
  EXPECT_FALSE(log.contains(crypto::sha256(make_record(kX, 99, "vX").signed_payload())));
}

TEST(AuditLog, SerializationRoundtrip) {
  AuditLog log;
  for (std::uint64_t t = 1; t <= 5; ++t) log.append(make_record(kX, t, "v"), t);
  const AuditLog parsed = AuditLog::deserialize(log.serialize());
  EXPECT_EQ(parsed.size(), 5u);
  EXPECT_TRUE(parsed.verify());
  EXPECT_EQ(parsed.head(), log.head());
}

TEST(AuditLog, EveryTamperBreaksTheChain) {
  AuditLog original;
  for (std::uint64_t t = 1; t <= 6; ++t) original.append(make_record(kX, t, "v"), t);
  const Bytes wire = original.serialize();

  // Field mutation: flip a byte anywhere in an entry body.
  for (std::size_t position = 8; position < wire.size(); position += 13) {
    Bytes mutated = wire;
    mutated[position] ^= 0x01;
    try {
      const AuditLog parsed = AuditLog::deserialize(mutated);
      EXPECT_FALSE(parsed.verify()) << "flip at " << position << " went undetected";
    } catch (const DecodeError&) {
      // Structural breakage is detection too.
    }
  }
}

TEST(AuditLog, RetroactiveRemovalDetected) {
  // A server that drops an embarrassing middle entry breaks its own chain.
  AuditLog log;
  std::vector<core::WriteRecord> records;
  for (std::uint64_t t = 1; t <= 5; ++t) records.push_back(make_record(kX, t, "v"));
  AuditLog censored;
  for (std::size_t i = 0; i < records.size(); ++i) {
    log.append(records[i], i);
    if (i != 2) censored.append(records[i], i);  // silently skip record 2
  }
  EXPECT_TRUE(log.verify());
  EXPECT_TRUE(censored.verify());  // a freshly-built chain verifies...
  // ...but its head differs: the chain commitment pins the full history.
  EXPECT_NE(censored.head(), log.head());
  // And truncating an EXISTING serialized log cannot be hidden: the decoded
  // prefix verifies but no longer contains the suppressed write.
  EXPECT_FALSE(censored.contains(crypto::sha256(records[2].signed_payload())));
}

TEST(AuditLog, CrossAuditFlagsSuppression) {
  // Eight writes to eight DIFFERENT items; the suppressing log drops one
  // item's write entirely.
  AuditLog complete_a, complete_b, suppressing;
  std::vector<core::WriteRecord> records;
  for (std::uint64_t t = 1; t <= 8; ++t) {
    records.push_back(make_record(ItemId{100 + t}, t, "v"));
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    complete_a.append(records[i], i);
    complete_b.append(records[i], i);
    if (i != 1) suppressing.append(records[i], i);  // drops item 102's write
  }

  const auto findings = storage::cross_audit(
      {{NodeId{0}, &complete_a}, {NodeId{1}, &complete_b}, {NodeId{2}, &suppressing}},
      /*tolerate_tail=*/2);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, AuditFinding::Kind::kMissingWrite);
  EXPECT_EQ(findings[0].server, NodeId{2});

  // The tail window forgives dissemination lag: a log missing only the
  // NEWEST writes is not flagged.
  AuditLog lagging;
  for (std::size_t i = 0; i + 2 < records.size(); ++i) lagging.append(records[i], i);
  const auto lag_findings = storage::cross_audit(
      {{NodeId{0}, &complete_a}, {NodeId{1}, &lagging}}, /*tolerate_tail=*/2);
  EXPECT_TRUE(lag_findings.empty());

  // Superseded versions of ONE item are legitimately absent from peers:
  // a log holding only the newest version is clean.
  AuditLog full_history, newest_only;
  for (std::uint64_t t = 1; t <= 5; ++t) {
    full_history.append(make_record(kX, t, "v" + std::to_string(t)), t);
  }
  newest_only.append(make_record(kX, 5, "v5"), 5);
  const auto version_findings = storage::cross_audit(
      {{NodeId{0}, &full_history}, {NodeId{1}, &newest_only}}, /*tolerate_tail=*/0);
  EXPECT_TRUE(version_findings.empty());
}

TEST(Auditor, CleanClusterProducesNoFindings) {
  ClusterOptions options;
  options.gossip.period = milliseconds(100);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sync.write(ItemId{10 + static_cast<std::uint64_t>(i)}, to_bytes("w" + std::to_string(i))).ok());
  }
  cluster.run_for(seconds(10));  // dissemination evens all logs out

  core::Auditor auditor(cluster.transport(), NodeId{5000}, cluster.config(),
                        core::Auditor::Options{});
  std::optional<Result<core::Auditor::Report>> slot;
  auditor.run([&](Result<core::Auditor::Report> r) { slot = std::move(r); });
  while (!slot && cluster.scheduler().step()) {
  }
  ASSERT_TRUE(slot.has_value());
  ASSERT_TRUE(slot->ok()) << error_name(slot->error());
  EXPECT_EQ((*slot)->logs_collected, 4u);
  EXPECT_TRUE((*slot)->findings.empty());
}

TEST(Auditor, SuppressingServerIsAttributed) {
  // Server 0 lies about durability (acks writes it never stores) AND never
  // hears gossip (we partition its inbound dissemination by keeping gossip
  // off): its audit log stays empty while peers' logs fill — attributable
  // suppression.
  ClusterOptions options;
  options.start_gossip = false;
  options.server_faults = {{0, {faults::ServerFault::kDropWrites}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient sync(*client, cluster.scheduler());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sync.write(kX, to_bytes("w" + std::to_string(i))).ok());
  }
  // Spread the writes to the honest majority so the audit baseline is wide.
  for (std::size_t s = 1; s < cluster.server_count(); ++s) {
    cluster.server(s).gossip().start();
  }
  cluster.run_for(seconds(10));

  core::Auditor::Options audit_options;
  audit_options.tolerate_tail = 1;
  core::Auditor auditor(cluster.transport(), NodeId{5000}, cluster.config(), audit_options);
  std::optional<Result<core::Auditor::Report>> slot;
  auditor.run([&](Result<core::Auditor::Report> r) { slot = std::move(r); });
  while (!slot && cluster.scheduler().step()) {
  }
  ASSERT_TRUE(slot.has_value());
  ASSERT_TRUE(slot->ok());

  ASSERT_FALSE((*slot)->findings.empty());
  for (const AuditFinding& finding : (*slot)->findings) {
    EXPECT_EQ(finding.server, NodeId{0});
    EXPECT_EQ(finding.kind, AuditFinding::Kind::kMissingWrite);
  }
}

TEST(Auditor, AuditChainSurvivesRestart) {
  ClusterOptions options;
  options.gossip.period = milliseconds(100);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        sync.write(ItemId{10 + static_cast<std::uint64_t>(i)}, to_bytes("w")).ok());
  }
  cluster.run_for(seconds(5));

  const Bytes head_before = cluster.server(1).audit_log().head();
  const std::size_t size_before = cluster.server(1).audit_log().size();
  ASSERT_GT(size_before, 0u);

  cluster.restart_server(1, /*restore_state=*/true);
  EXPECT_EQ(cluster.server(1).audit_log().head(), head_before);
  EXPECT_EQ(cluster.server(1).audit_log().size(), size_before);
  EXPECT_TRUE(cluster.server(1).audit_log().verify());

  // New writes keep extending the restored chain seamlessly.
  ASSERT_TRUE(sync.write(ItemId{99}, to_bytes("after reboot")).ok());
  cluster.run_for(seconds(5));
  EXPECT_GT(cluster.server(1).audit_log().size(), size_before);
  EXPECT_TRUE(cluster.server(1).audit_log().verify());

  // And a cluster-wide audit stays clean.
  core::Auditor auditor(cluster.transport(), NodeId{5000}, cluster.config(),
                        core::Auditor::Options{});
  std::optional<Result<core::Auditor::Report>> slot;
  auditor.run([&](Result<core::Auditor::Report> r) { slot = std::move(r); });
  while (!slot && cluster.scheduler().step()) {
  }
  ASSERT_TRUE(slot.has_value());
  ASSERT_TRUE(slot->ok());
  EXPECT_TRUE((*slot)->findings.empty());
}

}  // namespace
}  // namespace securestore
