// Unit tests for server-side storage: versioned item store with write
// logs, context store, causal hold queue.
#include <gtest/gtest.h>

#include "crypto/keys.h"
#include "storage/context_store.h"
#include "storage/hold_queue.h"
#include "storage/item_store.h"
#include "storage/snapshot.h"

namespace securestore::storage {
namespace {

using core::ConsistencyModel;
using core::Context;
using core::StoredContext;
using core::Timestamp;
using core::WriteRecord;

constexpr ItemId kX{1};
constexpr GroupId kGroup{9};

WriteRecord make_record(ItemId item, std::uint64_t time, std::string_view value,
                        ClientId writer = ClientId{1}) {
  WriteRecord record;
  record.item = item;
  record.group = kGroup;
  record.model = ConsistencyModel::kCC;
  record.writer = writer;
  record.value = to_bytes(value);
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = Timestamp{time, writer, record.value_digest};
  record.writer_context = Context(kGroup);
  return record;
}

TEST(ItemStore, NewerWriteBecomesCurrent) {
  ItemStore store;
  EXPECT_EQ(store.apply(make_record(kX, 1, "v1")), ApplyResult::kStoredNewer);
  EXPECT_EQ(store.apply(make_record(kX, 2, "v2")), ApplyResult::kStoredNewer);
  ASSERT_NE(store.current(kX), nullptr);
  EXPECT_EQ(securestore::to_string(store.current(kX)->value), "v2");
  EXPECT_EQ(store.item_count(), 1u);
}

TEST(ItemStore, OlderWriteGoesToLog) {
  ItemStore store;
  store.apply(make_record(kX, 5, "v5"));
  EXPECT_EQ(store.apply(make_record(kX, 3, "v3")), ApplyResult::kLogged);
  EXPECT_EQ(securestore::to_string(store.current(kX)->value), "v5");

  const auto log = store.log(kX);
  ASSERT_EQ(log.size(), 2u);  // current + history
  EXPECT_EQ(securestore::to_string(log[0].value), "v5");
  EXPECT_EQ(securestore::to_string(log[1].value), "v3");
}

TEST(ItemStore, DuplicateDetected) {
  ItemStore store;
  const WriteRecord record = make_record(kX, 1, "v1");
  EXPECT_EQ(store.apply(record), ApplyResult::kStoredNewer);
  EXPECT_EQ(store.apply(record), ApplyResult::kDuplicate);
  store.apply(make_record(kX, 2, "v2"));
  EXPECT_EQ(store.apply(record), ApplyResult::kDuplicate);  // now in the log
}

TEST(ItemStore, EquivocationFlagsWriter) {
  ItemStore store;
  store.apply(make_record(kX, 7, "tell alice A"));
  EXPECT_FALSE(store.flagged_faulty(kX));
  // Same (time, writer), different value -> different digest.
  EXPECT_EQ(store.apply(make_record(kX, 7, "tell bob B")), ApplyResult::kEquivocation);
  EXPECT_TRUE(store.flagged_faulty(kX));
}

TEST(ItemStore, LogIsBounded) {
  ItemStore store(/*max_log_entries=*/4);
  for (std::uint64_t t = 1; t <= 20; ++t) {
    store.apply(make_record(kX, t, "v" + std::to_string(t)));
  }
  EXPECT_LE(store.total_log_entries(), 4u);
  EXPECT_EQ(securestore::to_string(store.current(kX)->value), "v20");
}

TEST(ItemStore, LogStaysSortedNewestFirst) {
  ItemStore store;
  store.apply(make_record(kX, 10, "v10"));
  store.apply(make_record(kX, 4, "v4"));
  store.apply(make_record(kX, 7, "v7"));
  const auto log = store.log(kX);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].ts.time, 10u);
  EXPECT_EQ(log[1].ts.time, 7u);
  EXPECT_EQ(log[2].ts.time, 4u);
}

TEST(ItemStore, PruneLogErasesOlderThanTs) {
  ItemStore store;
  for (std::uint64_t t : {1u, 2u, 3u, 4u, 5u}) {
    store.apply(make_record(kX, t, "v" + std::to_string(t)));
  }
  const Timestamp cutoff{4, ClientId{1}, {}};
  const std::size_t erased = store.prune_log(kX, cutoff);
  EXPECT_EQ(erased, 3u);  // v1..v3 gone; v4 stays (not strictly older)
  const auto log = store.log(kX);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].ts.time, 5u);
  EXPECT_EQ(log[1].ts.time, 4u);
}

TEST(ItemStore, GroupMetaStripsValues) {
  ItemStore store;
  store.apply(make_record(ItemId{1}, 1, "value one"));
  store.apply(make_record(ItemId{2}, 2, "value two"));

  WriteRecord other_group = make_record(ItemId{3}, 3, "other");
  other_group.group = GroupId{99};
  store.apply(other_group);

  const auto metas = store.group_meta(kGroup);
  EXPECT_EQ(metas.size(), 2u);
  for (const auto& meta : metas) {
    EXPECT_TRUE(meta.value.empty());
    EXPECT_FALSE(meta.value_digest.empty());
  }
}

TEST(ContextStore, NewerContextReplaces) {
  ContextStore store;

  Context old_context(kGroup);
  old_context.set(kX, Timestamp{1, {}, {}});
  StoredContext old_stored{ClientId{1}, old_context, to_bytes("sig1")};
  EXPECT_TRUE(store.apply(old_stored));

  Context new_context(kGroup);
  new_context.set(kX, Timestamp{5, {}, {}});
  StoredContext new_stored{ClientId{1}, new_context, to_bytes("sig2")};
  EXPECT_TRUE(store.apply(new_stored));

  // Replaying the old one is refused.
  EXPECT_FALSE(store.apply(old_stored));
  ASSERT_NE(store.get(ClientId{1}, kGroup), nullptr);
  EXPECT_EQ(store.get(ClientId{1}, kGroup)->context.get(kX).time, 5u);
}

TEST(ContextStore, KeyedByOwnerAndGroup) {
  ContextStore store;
  StoredContext a{ClientId{1}, Context(GroupId{1}), {}};
  StoredContext b{ClientId{1}, Context(GroupId{2}), {}};
  StoredContext c{ClientId{2}, Context(GroupId{1}), {}};
  store.apply(a);
  store.apply(b);
  store.apply(c);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_NE(store.get(ClientId{1}, GroupId{1}), nullptr);
  EXPECT_NE(store.get(ClientId{1}, GroupId{2}), nullptr);
  EXPECT_NE(store.get(ClientId{2}, GroupId{1}), nullptr);
  EXPECT_EQ(store.get(ClientId{2}, GroupId{2}), nullptr);
}

TEST(HoldQueue, DependenciesMet) {
  WriteRecord record = make_record(kX, 5, "dependent");
  Context deps(kGroup);
  deps.set(kX, record.ts);                       // self entry: ignored
  deps.set(ItemId{2}, Timestamp{3, ClientId{1}, {}});  // real dependency
  record.writer_context = deps;

  const auto have_nothing = [](ItemId, const Timestamp&) { return false; };
  EXPECT_FALSE(HoldQueue::dependencies_met(record, have_nothing));

  const auto have_all = [](ItemId, const Timestamp&) { return true; };
  EXPECT_TRUE(HoldQueue::dependencies_met(record, have_all));
}

TEST(HoldQueue, TransitiveRelease) {
  // w2 depends on w1's item, w3 depends on w2's item: releasing w1's
  // dependency must cascade when the caller loops.
  HoldQueue queue;

  WriteRecord w2 = make_record(ItemId{2}, 1, "w2");
  Context d2(kGroup);
  d2.set(ItemId{1}, Timestamp{1, ClientId{1}, {}});
  w2.writer_context = d2;
  queue.hold(w2);

  WriteRecord w3 = make_record(ItemId{3}, 1, "w3");
  Context d3(kGroup);
  d3.set(ItemId{2}, Timestamp{1, ClientId{1}, {}});
  w3.writer_context = d3;
  queue.hold(w3);

  EXPECT_EQ(queue.size(), 2u);

  // Simulated store state: item 1 present; item 2 appears once w2 applies.
  bool have_item2 = false;
  const auto have = [&](ItemId item, const Timestamp&) {
    if (item == ItemId{1}) return true;
    if (item == ItemId{2}) return have_item2;
    return false;
  };

  auto first = queue.release(have);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].item, ItemId{2});
  have_item2 = true;  // the caller applied w2

  auto second = queue.release(have);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].item, ItemId{3});
  EXPECT_TRUE(queue.empty());
}

TEST(Snapshot, RoundtripPreservesEverything) {
  ItemStore items;
  ContextStore contexts;
  items.apply(make_record(ItemId{1}, 3, "current"));
  items.apply(make_record(ItemId{1}, 1, "old"));  // lands in the log
  items.apply(make_record(ItemId{2}, 5, "other"));
  StoredContext stored{ClientId{1}, Context(kGroup), to_bytes("sig")};
  contexts.apply(stored);

  const Bytes snapshot = make_snapshot(items, contexts);

  ItemStore restored_items;
  ContextStore restored_contexts;
  restore_snapshot(snapshot, restored_items, restored_contexts);

  ASSERT_NE(restored_items.current(ItemId{1}), nullptr);
  EXPECT_EQ(securestore::to_string(restored_items.current(ItemId{1})->value), "current");
  EXPECT_EQ(restored_items.log(ItemId{1}).size(), 2u);
  ASSERT_NE(restored_items.current(ItemId{2}), nullptr);
  ASSERT_NE(restored_contexts.get(ClientId{1}, kGroup), nullptr);
  EXPECT_EQ(*restored_contexts.get(ClientId{1}, kGroup), stored);
}

TEST(Snapshot, EquivocationFlagSurvivesRoundtrip) {
  // The record exposing the equivocation is never stored, so the flag has
  // no carrier among the persisted records — the snapshot must record it
  // explicitly or a rebooted server would forget the writer is faulty.
  ItemStore items;
  ContextStore contexts;
  items.apply(make_record(kX, 7, "tell alice A"));
  EXPECT_EQ(items.apply(make_record(kX, 7, "tell bob B")), ApplyResult::kEquivocation);
  items.apply(make_record(ItemId{2}, 1, "innocent"));
  ASSERT_TRUE(items.flagged_faulty(kX));

  const Bytes snapshot = make_snapshot(items, contexts);
  ItemStore restored_items;
  ContextStore restored_contexts;
  restore_snapshot(snapshot, restored_items, restored_contexts);

  EXPECT_TRUE(restored_items.flagged_faulty(kX));
  EXPECT_FALSE(restored_items.flagged_faulty(ItemId{2}));
  // And readers of the flagged item keep being warned after the reboot.
  ASSERT_NE(restored_items.current(kX), nullptr);
}

TEST(Snapshot, TamperingDetected) {
  ItemStore items;
  ContextStore contexts;
  items.apply(make_record(ItemId{1}, 1, "v"));
  Bytes snapshot = make_snapshot(items, contexts);

  ItemStore sink_items;
  ContextStore sink_contexts;

  Bytes flipped = snapshot;
  flipped[flipped.size() / 2] ^= 1;
  EXPECT_THROW(restore_snapshot(flipped, sink_items, sink_contexts), DecodeError);

  Bytes truncated(snapshot.begin(), snapshot.begin() + static_cast<long>(snapshot.size() / 2));
  EXPECT_THROW(restore_snapshot(truncated, sink_items, sink_contexts), DecodeError);

  EXPECT_THROW(restore_snapshot(to_bytes("not a snapshot at all........."), sink_items,
                                sink_contexts),
               DecodeError);
}

TEST(Snapshot, FileRoundtrip) {
  ItemStore items;
  ContextStore contexts;
  items.apply(make_record(ItemId{7}, 2, "persisted"));
  const Bytes snapshot = make_snapshot(items, contexts);

  const std::string path = "/tmp/securestore_snapshot_test.bin";
  save_snapshot_file(path, snapshot);
  const Bytes loaded = load_snapshot_file(path);
  EXPECT_EQ(loaded, snapshot);
  std::remove(path.c_str());

  EXPECT_THROW(load_snapshot_file("/tmp/definitely-missing-snapshot-xyz.bin"),
               std::runtime_error);
}

TEST(HoldQueue, ZeroTimestampDependenciesIgnored) {
  WriteRecord record = make_record(kX, 1, "w");
  Context deps(kGroup);
  deps.set(ItemId{2}, Timestamp{});  // zero: no real dependency
  record.writer_context = deps;
  EXPECT_TRUE(HoldQueue::dependencies_met(record,
                                          [](ItemId, const Timestamp&) { return false; }));
}

}  // namespace
}  // namespace securestore::storage
