// Integration tests for the multi-writer protocols (§5.3): 3-tuple
// timestamps, 2b+1 quorums with b+1-matching reads, causal holds against
// the spurious-context DoS, equivocation detection, stability-certificate
// log pruning.
#include <gtest/gtest.h>

#include "core/sync.h"
#include "faults/malicious_client.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ClientTrust;
using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{7};
constexpr ItemId kPlan{201};
constexpr ItemId kBudget{202};

GroupPolicy honest_policy(ConsistencyModel model = ConsistencyModel::kCC) {
  return GroupPolicy{kGroup, model, SharingMode::kMultiWriter, ClientTrust::kHonest};
}

GroupPolicy byzantine_policy(ConsistencyModel model = ConsistencyModel::kCC) {
  return GroupPolicy{kGroup, model, SharingMode::kMultiWriter, ClientTrust::kByzantine};
}

SecureStoreClient::Options client_options(const GroupPolicy& policy) {
  SecureStoreClient::Options options;
  options.policy = policy;
  return options;
}

TEST(MultiWriter, TwoHonestWritersConverge) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(honest_policy());

  auto alice = cluster.make_client(ClientId{1}, client_options(honest_policy()));
  auto bob = cluster.make_client(ClientId{2}, client_options(honest_policy()));
  SyncClient alice_sync(*alice, cluster.scheduler());
  SyncClient bob_sync(*bob, cluster.scheduler());

  ASSERT_TRUE(alice_sync.connect(kGroup).ok());
  ASSERT_TRUE(bob_sync.connect(kGroup).ok());

  ASSERT_TRUE(alice_sync.write(kPlan, to_bytes("alice draft")).ok());
  cluster.run_for(seconds(2));
  ASSERT_TRUE(bob_sync.write(kPlan, to_bytes("bob revision")).ok());
  cluster.run_for(seconds(2));

  // Both eventually read the same newest value; order is by (time, uid).
  const auto alice_view = alice_sync.read(kPlan);
  const auto bob_view = bob_sync.read(kPlan);
  ASSERT_TRUE(alice_view.ok()) << error_name(alice_view.error());
  ASSERT_TRUE(bob_view.ok());
  EXPECT_EQ(to_string(alice_view->value), "bob revision");
  EXPECT_EQ(to_string(bob_view->value), "bob revision");
  EXPECT_EQ(alice_view->writer, ClientId{2});
}

TEST(MultiWriter, ConcurrentSameTimeOrderedByUid) {
  // Two writers producing the same `time` must still be totally ordered:
  // the uid breaks the tie deterministically.
  core::Timestamp a{10, ClientId{1}, to_bytes("da")};
  core::Timestamp b{10, ClientId{2}, to_bytes("db")};
  EXPECT_LT(a, b);
  EXPECT_FALSE(a.equivocates(b));

  core::Timestamp c{10, ClientId{1}, to_bytes("different")};
  EXPECT_TRUE(a.equivocates(c));
}

TEST(MultiWriter, ByzantineModeRoundtrip) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(byzantine_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options(byzantine_policy()));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer_sync.write(kPlan, to_bytes("community plan v1")).ok());

  // Reads go to 2b+1 servers; the write reached 2b+1, so at least b+1
  // overlap and agree immediately.
  auto reader = cluster.make_client(ClientId{2}, client_options(byzantine_policy()));
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  const auto result = reader_sync.read_value(kPlan);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "community plan v1");
}

TEST(MultiWriter, SpuriousContextWriteIsNeverReported) {
  // The §5.3 DoS: a malicious client writes a value whose context claims a
  // dependency on a phantom write with an absurd timestamp. Honest servers
  // hold the write; honest readers never see it and are not poisoned.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  faults::MaliciousClient attacker(cluster.transport(), NodeId{2000}, ClientId{4},
                                   cluster.client_keys(ClientId{4}), cluster.config(),
                                   byzantine_policy());
  attacker.send_spurious_context_write(kPlan, to_bytes("poisoned plan"), kBudget,
                                       /*spurious_time=*/1'000'000'000,
                                       /*fanout=*/cluster.server_count());
  cluster.run_for(seconds(1));

  // Every server parked the write in its hold queue; none reports it.
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.server(s).held_writes(), 1u) << "server " << s;
    EXPECT_EQ(cluster.server(s).store().current(kPlan), nullptr) << "server " << s;
  }

  // An honest reader: item simply does not exist.
  auto reader_options = client_options(byzantine_policy());
  reader_options.round_timeout = milliseconds(100);
  reader_options.max_read_rounds = 2;
  auto reader = cluster.make_client(ClientId{2}, reader_options);
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  const auto result = reader_sync.read_value(kPlan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kNotFound);
  // And crucially, the reader's context was NOT poisoned with the phantom
  // timestamp.
  EXPECT_TRUE(reader->context().get(kBudget).is_zero());

  // Honest clients continue to work on the same item unharmed.
  auto writer = cluster.make_client(ClientId{1}, client_options(byzantine_policy()));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer_sync.write(kPlan, to_bytes("honest plan")).ok());
  const auto after = reader_sync.read_value(kPlan);
  ASSERT_TRUE(after.ok()) << error_name(after.error());
  EXPECT_EQ(to_string(*after), "honest plan");
}

TEST(MultiWriter, HeldWriteReleasedWhenDependencyArrives) {
  // A write with a *real* dependency is held until that dependency
  // disseminates, then released transitively.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  // Writer 1 writes the dependency x_budget but only servers {0,1,2} see it
  // (2b+1 = 3 of 4).
  auto writer1 = cluster.make_client(ClientId{1}, client_options(byzantine_policy()));
  writer1->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient writer1_sync(*writer1, cluster.scheduler());
  ASSERT_TRUE(writer1_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer1_sync.write(kBudget, to_bytes("budget v1")).ok());

  // Writer 2 reads the budget (gaining the causal dependency), then writes
  // the plan — but targets server {3} among others, which lacks the budget.
  auto writer2 = cluster.make_client(ClientId{2}, client_options(byzantine_policy()));
  writer2->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient writer2_sync(*writer2, cluster.scheduler());
  ASSERT_TRUE(writer2_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer2_sync.read_value(kBudget).ok());
  writer2->set_server_preference({NodeId{3}, NodeId{0}, NodeId{1}, NodeId{2}});
  ASSERT_TRUE(writer2_sync.write(kPlan, to_bytes("plan based on budget")).ok());

  // Server 3 holds the plan (missing dependency); servers 0-1 applied it.
  EXPECT_EQ(cluster.server(3).held_writes(), 1u);
  EXPECT_EQ(cluster.server(3).store().current(kPlan), nullptr);
  EXPECT_NE(cluster.server(0).store().current(kPlan), nullptr);

  // Start dissemination: the budget reaches server 3 and unblocks the plan.
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    cluster.server(s).gossip().start();
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(cluster.server(3).held_writes(), 0u);
  ASSERT_NE(cluster.server(3).store().current(kPlan), nullptr);
  EXPECT_EQ(to_string(cluster.server(3).store().current(kPlan)->value),
            "plan based on budget");
}

TEST(MultiWriter, EquivocatingWriterIsFlaggedToReaders) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  faults::MaliciousClient attacker(cluster.transport(), NodeId{2000}, ClientId{4},
                                   cluster.client_keys(ClientId{4}), cluster.config(),
                                   byzantine_policy());
  attacker.send_equivocating_writes(kPlan, to_bytes("tell alice A"),
                                    to_bytes("tell bob B"), /*time=*/42,
                                    /*fanout=*/cluster.server_count());
  cluster.run_for(seconds(1));

  // Servers stored one of the two and flagged the writer on the second.
  std::size_t flagged = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    if (cluster.server(s).store().flagged_faulty(kPlan)) ++flagged;
  }
  EXPECT_EQ(flagged, cluster.server_count());

  auto reader = cluster.make_client(ClientId{2}, client_options(byzantine_policy()));
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  const auto result = reader_sync.read_value(kPlan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kFaultyWriter);
}

TEST(MultiWriter, ForgedWriterIdentityRejectedEverywhere) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  faults::MaliciousClient attacker(cluster.transport(), NodeId{2000}, ClientId{4},
                                   cluster.client_keys(ClientId{4}), cluster.config(),
                                   byzantine_policy());
  attacker.send_forged_writer_write(kPlan, to_bytes("impersonated"), ClientId{1},
                                    /*fanout=*/cluster.server_count());
  cluster.run_for(seconds(1));

  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.server(s).store().current(kPlan), nullptr) << "server " << s;
    EXPECT_EQ(cluster.server(s).held_writes(), 0u) << "server " << s;
  }
}

TEST(MultiWriter, StabilityCertificatesPruneLogs) {
  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  auto gc_options = client_options(byzantine_policy());
  gc_options.stability_gc = true;
  auto writer = cluster.make_client(ClientId{1}, gc_options);
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());

  for (int version = 0; version < 10; ++version) {
    ASSERT_TRUE(writer_sync.write(kPlan, to_bytes("v" + std::to_string(version))).ok());
    cluster.run_for(milliseconds(500));  // let stability notices land
  }
  cluster.run_for(seconds(2));

  // With GC on, superseded entries are pruned as each write stabilizes:
  // logs stay near-empty instead of growing toward max_log_entries.
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_LE(cluster.server(s).store().total_log_entries(), 2u) << "server " << s;
  }

  // Control: with GC off, the log retains history.
  Cluster control(options);
  control.set_group_policy(byzantine_policy());
  auto no_gc_options = client_options(byzantine_policy());
  no_gc_options.stability_gc = false;
  auto writer2 = control.make_client(ClientId{1}, no_gc_options);
  SyncClient writer2_sync(*writer2, control.scheduler());
  ASSERT_TRUE(writer2_sync.connect(kGroup).ok());
  for (int version = 0; version < 10; ++version) {
    ASSERT_TRUE(writer2_sync.write(kPlan, to_bytes("v" + std::to_string(version))).ok());
    control.run_for(milliseconds(500));
  }
  std::size_t max_entries = 0;
  for (std::size_t s = 0; s < control.server_count(); ++s) {
    max_entries = std::max(max_entries, control.server(s).store().total_log_entries());
  }
  EXPECT_GE(max_entries, 5u);
}

TEST(MultiWriter, ReaderPicksCommonValueWhileNewestDisseminates) {
  // §5.3's reason for logs: "a value being over-written is still available
  // while the new value is being disseminated". With the newest value on
  // only one server of the read quorum, the reader falls back to the older
  // value that b+1 servers agree on.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(byzantine_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options(byzantine_policy()));
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer_sync.write(kPlan, to_bytes("stable v1")).ok());

  // Inject v2 at ONE server only (below the write quorum — as if the
  // writer crashed mid-write): readers must not accept it.
  {
    core::WriteRecord v2;
    v2.item = kPlan;
    v2.group = kGroup;
    v2.model = ConsistencyModel::kCC;
    v2.writer = ClientId{1};
    v2.value = to_bytes("half-written v2");
    v2.value_digest = crypto::meter_digest(v2.value);
    v2.ts = core::Timestamp{writer->context().get(kPlan).time + 1, ClientId{1},
                            v2.value_digest};
    v2.writer_context = core::Context(kGroup);
    v2.sign(cluster.client_keys(ClientId{1}).seed);

    core::WriteReq req;
    req.record = v2;
    net::RpcNode injector(cluster.transport(), NodeId{3000});
    injector.send_request(NodeId{0}, net::MsgType::kWrite, req.serialize(),
                          [](NodeId, net::MsgType, BytesView) {});
    cluster.run_for(seconds(1));
  }

  auto reader = cluster.make_client(ClientId{2}, client_options(byzantine_policy()));
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  const auto result = reader_sync.read_value(kPlan);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "stable v1");  // the b+1-agreed value
}

}  // namespace
}  // namespace securestore
