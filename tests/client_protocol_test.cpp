// Protocol-level adversarial tests: a scripted fake server replaces a real
// one on the transport and feeds the client precisely crafted responses,
// pinning down the client's decision logic (candidate fallback, forged
// advertisements, cross-item confusion, §5.3 ordering).
#include <gtest/gtest.h>

#include "core/sync.h"
#include "storage/item_store.h"
#include "storage/snapshot.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX{10};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

SecureStoreClient::Options client_options() {
  SecureStoreClient::Options options;
  options.policy = mrc_policy();
  options.round_timeout = milliseconds(200);
  return options;
}

/// Replaces server 0's transport registration with a scripted responder.
/// The real server object still exists but no longer receives messages.
/// The returned node must outlive the client operations and die before the
/// cluster (declare it after the Cluster in the test).
[[nodiscard]] std::unique_ptr<net::RpcNode> hijack_server0(
    Cluster& cluster, net::RpcNode::RequestHandler handler) {
  auto hijacker = std::make_unique<net::RpcNode>(cluster.transport(), NodeId{0});
  hijacker->set_request_handler(std::move(handler));
  return hijacker;
}

TEST(ClientProtocol, ForgedNewestAdvertisementRejected) {
  // Server 0 advertises a fabricated "newest" record with a garbage
  // signature. The inline read must reject it and accept the honest value.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options());
  writer->set_server_preference({NodeId{1}, NodeId{2}, NodeId{0}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.write(kX, to_bytes("honest value")).ok());

  auto hijacker = hijack_server0(cluster, [&](NodeId, net::MsgType type, BytesView) {
    if (type != net::MsgType::kMetaRequest) return std::optional<std::pair<net::MsgType, Bytes>>{};
    core::WriteRecord forged;
    forged.item = kX;
    forged.group = kGroup;
    forged.model = ConsistencyModel::kMRC;
    forged.writer = ClientId{1};
    forged.ts = core::Timestamp{99999999, {}, {}};
    forged.value = to_bytes("FORGED");
    forged.value_digest = crypto::meter_digest(forged.value);
    forged.signature = Bytes(64, 0xbb);
    core::MetaResp resp;
    resp.meta = std::move(forged);
    return std::make_optional(std::make_pair(net::MsgType::kMetaRequest, resp.serialize()));
  });

  auto reader = cluster.make_client(ClientId{2}, client_options());
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  const auto result = reader_sync.read_value(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "honest value");
  // And the forged timestamp must not have leaked into the context.
  EXPECT_LT(reader->context().get(kX).time, 99999999u);
}

TEST(ClientProtocol, TwoPhaseAdvertiserRefusesFetch) {
  // Two-phase mode: server 0 advertises a high legit-looking meta (it even
  // replays the honest meta) but stonewalls the value fetch. The client
  // falls through to a server that serves it.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options());
  writer->set_server_preference({NodeId{1}, NodeId{2}, NodeId{0}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.write(kX, to_bytes("fetch me elsewhere")).ok());
  const core::WriteRecord honest_meta = cluster.server(1).store().current(kX)->meta_only();

  auto hijacker = hijack_server0(cluster, [honest_meta](NodeId, net::MsgType type, BytesView)
                              -> std::optional<std::pair<net::MsgType, Bytes>> {
    if (type == net::MsgType::kMetaRequest) {
      core::MetaResp resp;
      resp.meta = honest_meta;
      return std::make_pair(net::MsgType::kMetaRequest, resp.serialize());
    }
    return std::nullopt;  // silent on kRead
  });

  auto reader_opts = client_options();
  reader_opts.inline_reads = false;  // force the Fig. 2 two-phase path
  auto reader = cluster.make_client(ClientId{2}, reader_opts);
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  const auto result = reader_sync.read_value(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "fetch me elsewhere");
}

TEST(ClientProtocol, CrossItemRecordIgnored) {
  // A confused/malicious server answers a meta request for item X with a
  // perfectly valid record ... of item Y. The client must not accept it
  // for X.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options());
  writer->set_server_preference({NodeId{1}, NodeId{2}, NodeId{0}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.write(ItemId{77}, to_bytes("item 77 value")).ok());
  const core::WriteRecord other_item = *cluster.server(1).store().current(ItemId{77});

  auto hijacker = hijack_server0(cluster, [other_item](NodeId, net::MsgType type, BytesView) {
    if (type != net::MsgType::kMetaRequest) return std::optional<std::pair<net::MsgType, Bytes>>{};
    core::MetaResp resp;
    resp.meta = other_item;  // valid record, wrong item
    return std::make_optional(std::make_pair(net::MsgType::kMetaRequest, resp.serialize()));
  });

  auto reader_opts = client_options();
  reader_opts.max_read_rounds = 2;
  auto reader = cluster.make_client(ClientId{2}, reader_opts);
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  const auto result = reader_sync.read_value(kX);  // kX was never written
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kNotFound);
}

TEST(ClientProtocol, ConcurrentSameTimeWritersOrderedByUid) {
  // Two honest multi-writer clients produce records with the SAME time
  // component; the §5.3 uid tiebreak makes every reader pick the same one.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  const GroupPolicy policy{kGroup, ConsistencyModel::kMRC, SharingMode::kMultiWriter,
                           core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  // Hand-craft the tie (the client library would advance past it).
  auto inject = [&](ClientId writer, std::string_view text) {
    core::WriteRecord record;
    record.item = kX;
    record.group = kGroup;
    record.model = ConsistencyModel::kMRC;
    record.writer = writer;
    record.value = to_bytes(text);
    record.value_digest = crypto::meter_digest(record.value);
    record.ts = core::Timestamp{1000, writer, record.value_digest};
    record.writer_context = core::Context(kGroup);
    record.sign(cluster.client_keys(writer).seed);

    core::WriteReq req;
    req.record = record;
    net::RpcNode injector(cluster.transport(),
                          NodeId{3000 + writer.value});
    for (std::uint32_t s = 0; s < 4; ++s) {
      injector.send_request(NodeId{s}, net::MsgType::kWrite, req.serialize(),
                            [](NodeId, net::MsgType, BytesView) {});
    }
    cluster.run_for(milliseconds(100));
  };
  inject(ClientId{1}, "from writer 1");
  inject(ClientId{2}, "from writer 2");

  SecureStoreClient::Options reader_opts;
  reader_opts.policy = policy;
  auto reader = cluster.make_client(ClientId{3}, reader_opts);
  SyncClient reader_sync(*reader, cluster.scheduler());
  const auto result = reader_sync.read(kX);
  ASSERT_TRUE(result.ok());
  // uid 2 > uid 1 at equal time: writer 2 wins everywhere.
  EXPECT_EQ(result->writer, ClientId{2});
  EXPECT_EQ(to_string(result->value), "from writer 2");
}

TEST(ClientProtocol, ReplayedOldContextWriteRefusedByServers) {
  // A malicious party replays a client's OLD signed context to the servers;
  // non-faulty servers must keep the newer one (ContextStore dominance).
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX, to_bytes("v1")).ok());
  ASSERT_TRUE(sync.disconnect().ok());

  // Capture the signed session-1 context off a server (via its snapshot,
  // the supported introspection path).
  core::StoredContext old_context;
  {
    const Bytes server_snapshot = cluster.server(0).snapshot();
    Reader wrapper(server_snapshot);  // store snapshot + audit chain
    const Bytes store_snapshot = wrapper.bytes();
    storage::ItemStore items;
    storage::ContextStore contexts;
    storage::restore_snapshot(store_snapshot, items, contexts);
    const core::StoredContext* stored = contexts.get(ClientId{1}, kGroup);
    ASSERT_NE(stored, nullptr);
    old_context = *stored;
  }

  // Session 2 advances the context.
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX, to_bytes("v2")).ok());
  ASSERT_TRUE(sync.disconnect().ok());

  // Replay the old context to every server.
  core::ContextWriteReq replay;
  replay.stored = old_context;
  net::RpcNode attacker(cluster.transport(), NodeId{4000});
  for (std::uint32_t s = 0; s < 4; ++s) {
    attacker.send_request(NodeId{s}, net::MsgType::kContextWrite, replay.serialize(),
                          [](NodeId, net::MsgType, BytesView) {});
  }
  cluster.run_for(seconds(1));

  // A fresh session still acquires the NEWER context.
  auto session3 = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync3(*session3, cluster.scheduler());
  ASSERT_TRUE(sync3.connect(kGroup).ok());
  const auto result = sync3.read_value(kX);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "v2");
}

TEST(ClientProtocol, ExpiredDeadlineFailsWithDeadlineError) {
  // op_timeout = 0 makes every operation's absolute deadline "now": the
  // round budget must clamp to zero and fail the op with a deadline error
  // instead of wrapping `deadline - now` into a huge round timeout.
  ClusterOptions options;
  options.start_gossip = false;
  options.op_timeout = 0;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  const auto result = sync.write(kX, to_bytes("never lands"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kTimeout);
  EXPECT_EQ(result.detail(), "operation deadline passed");

  const auto* exceeded = cluster.registry().find_counter("client.deadline_exceeded");
  ASSERT_NE(exceeded, nullptr);
  EXPECT_GE(exceeded->value(), 1u);
}

TEST(ClientProtocol, BackoffOvershootingDeadlineFailsInsteadOfHanging) {
  // All servers down: every round times out and the client backs off until
  // the retry would overshoot the whole-op deadline. The op must then fail
  // with a deadline-flavored error in bounded virtual time — the underflow
  // failure mode was a wrapped budget issuing an absurdly long round.
  ClusterOptions options;
  options.start_gossip = false;
  options.op_timeout = milliseconds(500);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());
  for (std::size_t i = 0; i < cluster.server_count(); ++i) cluster.stop_server(i);

  auto client_options_short = client_options();
  client_options_short.round_timeout = milliseconds(100);
  auto client = cluster.make_client(ClientId{1}, client_options_short);
  SyncClient sync(*client, cluster.scheduler());
  const auto result = sync.write(kX, to_bytes("never lands"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kTimeout);
  // Bounded failure: well before the sim could have run a wrapped
  // (multi-hour) round to completion.
  EXPECT_LE(cluster.scheduler().now(), seconds(2));
}

}  // namespace
}  // namespace securestore
