// Distributed-tracing tests (DESIGN.md §8).
//
// Covers the trace context's wire format and envelope carriage (including
// malformed/oversized fields from Byzantine peers, which must be counted
// and stripped, never trusted), the bounded event ring and its sampling
// knob, cross-node span stitching for a client write, gossip's origin-
// context hand-off, and the headline acceptance run: an 8-seed chaos soak
// with tracing on, each seed writing a Perfetto-loadable TRACE_*.json in
// which at least one client operation's span stitches to server
// verify/apply spans on three or more distinct nodes, with the injected
// fault timeline overlaid as instant events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/sync.h"
#include "net/fault_transport.h"
#include "net/rpc.h"
#include "net/sim_transport.h"
#include "obs/events.h"
#include "obs/export.h"
#include "sim/scheduler.h"
#include "testkit/chaos.h"
#include "testkit/cluster.h"
#include "testkit/seed.h"
#include "util/serial.h"

namespace securestore {
namespace {

using core::SyncClient;
using obs::Event;
using obs::EventKind;
using obs::EventLog;
using obs::TraceContext;
using testkit::ChaosReport;
using testkit::ChaosRunner;
using testkit::ChaosRunnerOptions;
using testkit::ChaosSchedule;
using testkit::Cluster;
using testkit::ClusterOptions;

bool gtest_failed() { return ::testing::Test::HasFailure(); }

core::GroupPolicy p3_policy() {
  return core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

// The hardened multi-writer Byzantine policy writes to the full 2b+1
// quorum, so its spans land on >= 3 distinct nodes (b=1).
core::GroupPolicy p6_policy() {
  return core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                           core::SharingMode::kMultiWriter, core::ClientTrust::kByzantine};
}

// Envelope byte-crafting constants (PROTOCOL.md §1b). Mirrored from
// rpc.cpp on purpose: these tests pin the wire format.
constexpr std::uint8_t kKindRequest = 0;
constexpr std::uint8_t kKindOneway = 2;
constexpr std::uint8_t kTraceFlag = 0x80;

TraceContext sampled_ctx(std::uint64_t trace_id, std::uint64_t span_id,
                         std::uint64_t origin_us = 0) {
  TraceContext ctx;
  ctx.trace_id = trace_id;
  ctx.span_id = span_id;
  ctx.flags = TraceContext::kSampledFlag;
  ctx.origin_us = origin_us;
  return ctx;
}

// ---------------------------------------------------------------------------
// TraceContext wire format
// ---------------------------------------------------------------------------

TEST(TraceContext, RoundTripsThroughTheWireFormat) {
  const TraceContext ctx = sampled_ctx(0x1122334455667788u, 0x99aabbccddeeff00u, 42);
  Writer w;
  ctx.encode(w);
  const Bytes bytes = w.take();
  ASSERT_EQ(bytes.size(), TraceContext::kWireSize);

  Reader r(bytes);
  const TraceContext decoded = TraceContext::decode(r);
  r.expect_end();
  EXPECT_EQ(decoded, ctx);
  EXPECT_TRUE(decoded.valid());
  EXPECT_TRUE(decoded.sampled());
}

TEST(TraceContext, DefaultIsInvalidAndDecodeThrowsWhenTruncated) {
  EXPECT_FALSE(TraceContext{}.valid());

  Writer w;
  sampled_ctx(1, 2).encode(w);
  Bytes bytes = w.take();
  bytes.resize(TraceContext::kWireSize - 1);
  Reader r(bytes);
  EXPECT_THROW(TraceContext::decode(r), DecodeError);
}

// ---------------------------------------------------------------------------
// EventLog: gating, sampling, bounded ring
// ---------------------------------------------------------------------------

TEST(EventLog, DisabledLogAdmitsNothing) {
  EventLog log(8);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.begin_root(0).valid());
  log.span(1, sampled_ctx(1, 2), "s", "c", 0, 1);
  log.instant(1, 0, TraceContext{}, "i", "c", 0);
  Event event;
  event.name = "direct";
  log.record(event);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(EventLog, WantRequiresEnabledAndSampledParent) {
  EventLog log(8);
  EXPECT_FALSE(log.want(sampled_ctx(1, 2)));  // disabled
  log.set_enabled(true);
  EXPECT_TRUE(log.want(sampled_ctx(1, 2)));
  EXPECT_FALSE(log.want(TraceContext{}));  // unsampled/invalid parent
}

TEST(EventLog, RootSamplingAdmitsOneInN) {
  EventLog log(64);
  log.set_enabled(true);
  log.set_sample_every(4);
  int admitted = 0;
  std::set<std::uint64_t> trace_ids;
  for (int i = 0; i < 8; ++i) {
    const TraceContext ctx = log.begin_root(7);
    if (!ctx.valid()) continue;
    ++admitted;
    EXPECT_TRUE(ctx.sampled());
    EXPECT_EQ(ctx.origin_us, 7u);
    trace_ids.insert(ctx.trace_id);
  }
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(trace_ids.size(), 2u) << "every admitted root gets a fresh trace id";
}

TEST(EventLog, RingOverwritesOldestAndCountsDrops) {
  EventLog log(4);
  log.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    Event event;
    event.name = "e" + std::to_string(i);
    log.record(std::move(event));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // oldest-first, e0/e1 overwritten
  EXPECT_EQ(events.back().name, "e5");
}

// ---------------------------------------------------------------------------
// Envelope carriage: propagation, interop, Byzantine containment
// ---------------------------------------------------------------------------

struct RpcPair {
  sim::Scheduler scheduler;
  net::SimTransport transport{scheduler, sim::NetworkModel(Rng(3), sim::lan_profile())};
  net::RpcNode server{transport, NodeId{0}};
  net::RpcNode client{transport, NodeId{1}};

  std::uint64_t malformed() {
    return transport.registry().counter("rpc.trace_ctx_malformed").value();
  }
};

TEST(RpcTrace, RequestCarriesContextAndResponseDoesNot) {
  RpcPair net;
  const TraceContext sent = sampled_ctx(100, 200, 5);
  TraceContext seen;
  net.server.set_request_handler([&](NodeId, net::MsgType, BytesView) {
    seen = net.server.incoming_trace();
    return std::make_optional(std::make_pair(net::MsgType::kAck, to_bytes("ok")));
  });

  bool responded = false;
  net.client.send_request(NodeId{0}, net::MsgType::kRead, to_bytes("q"),
                          [&](NodeId, net::MsgType, BytesView) {
                            responded = true;
                            // Responses never carry a context back.
                            EXPECT_FALSE(net.client.incoming_trace().valid());
                          },
                          sent);
  net.scheduler.run_until_idle();

  ASSERT_TRUE(responded);
  EXPECT_EQ(seen, sent);
  // Outside handler invocation the incoming context is cleared.
  EXPECT_FALSE(net.server.incoming_trace().valid());
  EXPECT_EQ(net.malformed(), 0u);
}

TEST(RpcTrace, OnewayCarriesContextAndUnknownFlagsAreCleared) {
  RpcPair net;
  TraceContext sent = sampled_ctx(7, 8);
  sent.flags = 0xFF;  // a Byzantine peer sets every bit
  TraceContext seen;
  net.server.set_oneway_handler(
      [&](NodeId, net::MsgType, BytesView) { seen = net.server.incoming_trace(); });

  net.client.send_oneway(NodeId{0}, net::MsgType::kStability, to_bytes("m"), sent);
  net.scheduler.run_until_idle();

  EXPECT_EQ(seen.trace_id, 7u);
  EXPECT_EQ(seen.span_id, 8u);
  EXPECT_EQ(seen.flags, TraceContext::kSampledFlag) << "unknown flag bits must not survive";
}

TEST(RpcTrace, LegacyEnvelopeWithoutTraceFieldInterops) {
  RpcPair net;
  int handled = 0;
  net.server.set_oneway_handler([&](NodeId, net::MsgType, BytesView body) {
    ++handled;
    EXPECT_EQ(to_string(Bytes(body.begin(), body.end())), "old");
    EXPECT_FALSE(net.server.incoming_trace().valid());
  });

  // A frame from a pre-trace sender: plain kind byte, no trace field.
  Writer w;
  w.u8(kKindOneway);
  w.u64(1);  // rpc id (unused for oneways)
  w.u16(static_cast<std::uint16_t>(net::MsgType::kStability));
  w.raw(to_bytes("old"));
  net.transport.send(NodeId{1}, NodeId{0}, w.take());
  net.scheduler.run_until_idle();

  EXPECT_EQ(handled, 1);
  EXPECT_EQ(net.malformed(), 0u);
}

TEST(RpcTrace, ForwardCompatibilitySuffixIsSkipped) {
  RpcPair net;
  TraceContext seen;
  net.server.set_oneway_handler(
      [&](NodeId, net::MsgType, BytesView) { seen = net.server.incoming_trace(); });

  // A future sender appends 5 extra bytes after the v1 context; a v1
  // receiver decodes the prefix and skips the rest.
  Writer w;
  w.u8(kKindOneway | kTraceFlag);
  w.u8(static_cast<std::uint8_t>(TraceContext::kWireSize + 5));
  sampled_ctx(11, 12).encode(w);
  w.raw(to_bytes("xxxxx"));
  w.u64(1);
  w.u16(static_cast<std::uint16_t>(net::MsgType::kStability));
  net.transport.send(NodeId{1}, NodeId{0}, w.take());
  net.scheduler.run_until_idle();

  EXPECT_EQ(seen.trace_id, 11u);
  EXPECT_EQ(net.malformed(), 0u);
}

// Builds a oneway envelope whose trace field claims `ctx_len` bytes and
// carries `ctx_bytes` of them, followed by a well-formed message.
Bytes envelope_with_ctx(std::uint8_t ctx_len, const Bytes& ctx_bytes) {
  Writer w;
  w.u8(kKindOneway | kTraceFlag);
  w.u8(ctx_len);
  w.raw(ctx_bytes);
  w.u64(1);
  w.u16(static_cast<std::uint16_t>(net::MsgType::kStability));
  return w.take();
}

TEST(RpcTrace, MalformedContextsAreCountedAndStrippedNeverTrusted) {
  RpcPair net;
  int handled = 0;
  net.server.set_oneway_handler([&](NodeId, net::MsgType, BytesView) {
    ++handled;
    EXPECT_FALSE(net.server.incoming_trace().valid());
  });

  // Too short to be a v1 context: counted, stripped, message still handled.
  net.transport.send(NodeId{1}, NodeId{0}, envelope_with_ctx(10, Bytes(10, 0xAB)));
  net.scheduler.run_until_idle();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(net.malformed(), 1u);

  // Larger than the acceptance bound (kMaxWireSize): same treatment.
  net.transport.send(NodeId{1}, NodeId{0}, envelope_with_ctx(70, Bytes(70, 0xCD)));
  net.scheduler.run_until_idle();
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(net.malformed(), 2u);

  // A zero trace id is never allocated; claiming one is malformed.
  Writer zero_ctx;
  TraceContext zero;
  zero.span_id = 9;
  zero.flags = TraceContext::kSampledFlag;
  zero.encode(zero_ctx);
  net.transport.send(
      NodeId{1}, NodeId{0},
      envelope_with_ctx(static_cast<std::uint8_t>(TraceContext::kWireSize), zero_ctx.take()));
  net.scheduler.run_until_idle();
  EXPECT_EQ(handled, 3);
  EXPECT_EQ(net.malformed(), 3u);

  // Length field pointing past the end of the payload: counted as a
  // malformed context AND the (undecodable) message is dropped.
  const std::uint64_t dropped_before =
      net.transport.registry().counter("rpc.malformed_dropped").value();
  net.transport.send(NodeId{1}, NodeId{0}, envelope_with_ctx(40, Bytes(3, 0xEF)));
  net.scheduler.run_until_idle();
  EXPECT_EQ(handled, 3) << "an envelope that lies about its length is undecodable";
  EXPECT_EQ(net.malformed(), 4u);
  EXPECT_EQ(net.transport.registry().counter("rpc.malformed_dropped").value(),
            dropped_before + 1);
}

// ---------------------------------------------------------------------------
// Cross-node stitching in a live cluster
// ---------------------------------------------------------------------------

ClusterOptions traced_options() {
  ClusterOptions options;
  options.tracing = true;
  return options;
}

// The events of `snapshot` with the given name, oldest first.
std::vector<Event> named(const std::vector<Event>& snapshot, std::string_view name) {
  std::vector<Event> out;
  for (const Event& event : snapshot) {
    if (event.name == name) out.push_back(event);
  }
  return out;
}

TEST(TraceCluster, ClientWriteStitchesToServerSpansOnAtLeastThreeNodes) {
  Cluster cluster(traced_options());
  cluster.set_group_policy(p6_policy());
  core::SecureStoreClient::Options client_options;
  client_options.policy = p6_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.write(ItemId{100}, to_bytes("traced")).ok());

  const std::vector<Event> events = cluster.events().snapshot();
  const std::vector<Event> roots = named(events, "client.p6.write");
  ASSERT_EQ(roots.size(), 1u);
  const Event& root = roots.front();
  EXPECT_EQ(root.category, "op");
  EXPECT_EQ(root.parent_span_id, 0u);
  ASSERT_NE(root.trace_id, 0u);

  // Client phase spans sit under the root on the same node.
  bool saw_phase = false;
  for (const Event& event : events) {
    if (event.category != "phase") continue;
    EXPECT_EQ(event.trace_id, root.trace_id);
    EXPECT_EQ(event.parent_span_id, root.span_id);
    EXPECT_EQ(event.node, root.node);
    saw_phase = true;
  }
  EXPECT_TRUE(saw_phase);

  // Server-side verify/apply spans parent to the root across >= 3 nodes
  // (the hardened write set is 2b+1 = 3 of the n=4 servers).
  std::set<std::uint32_t> verify_nodes;
  std::set<std::uint32_t> apply_nodes;
  for (const Event& event : events) {
    if (event.trace_id != root.trace_id) continue;
    if (event.name == "server.verify") verify_nodes.insert(event.node);
    if (event.name == "server.apply") apply_nodes.insert(event.node);
    if (event.name == "server.verify" || event.name == "server.apply") {
      EXPECT_EQ(event.parent_span_id, root.span_id);
      EXPECT_EQ(event.category, "server");
    }
  }
  EXPECT_GE(verify_nodes.size(), 3u);
  EXPECT_GE(apply_nodes.size(), 3u);

  // All span ids in the trace are distinct (nothing closed twice).
  std::set<std::uint64_t> span_ids;
  for (const Event& event : events) {
    if (event.kind != EventKind::kSpan) continue;
    EXPECT_TRUE(span_ids.insert(event.span_id).second)
        << "duplicate span id for " << event.name;
  }
}

TEST(TraceCluster, GossipHandoffCarriesOriginContextAndMeasuresLag) {
  ClusterOptions options = traced_options();
  options.gossip.period = milliseconds(50);
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());
  core::SecureStoreClient::Options client_options;
  client_options.policy = p3_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  // Server 3 misses the write (down), then recovers its pre-write state and
  // catches up via anti-entropy — the only path the record can take to it.
  cluster.stop_server(3);
  ASSERT_TRUE(sync.write(ItemId{100}, to_bytes("gossip me")).ok());
  cluster.start_server(3, /*restore_state=*/true);
  cluster.run_for(seconds(1));
  ASSERT_NE(cluster.server(3).store().current(ItemId{100}), nullptr);

  const std::vector<Event> events = cluster.events().snapshot();
  const std::vector<Event> roots = named(events, "client.p3.write");
  ASSERT_EQ(roots.size(), 1u);

  bool stitched = false;
  for (const Event& event : named(events, "gossip.apply")) {
    if (event.node == 3 && event.trace_id == roots.front().trace_id) stitched = true;
  }
  EXPECT_TRUE(stitched) << "gossip apply on the recovered node must link to the write's trace";

  const obs::MetricsSnapshot snap = cluster.registry().snapshot();
  const auto lag = snap.histograms.find("gossip.write_to_visible_us");
  ASSERT_NE(lag, snap.histograms.end());
  EXPECT_GE(lag->second.count, 1u);
}

TEST(TraceCluster, SamplingKnobAdmitsOneRootInN) {
  ClusterOptions options = traced_options();
  options.trace_sample_every = 1000;  // only the first root wins the draw
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());
  core::SecureStoreClient::Options client_options;
  client_options.policy = p3_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sync.write(ItemId{100 + static_cast<std::uint64_t>(i)}, to_bytes("v")).ok());
  }

  int roots = 0;
  for (const Event& event : cluster.events().snapshot()) {
    if (event.category == "op") ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(TraceCluster, TracingOffByDefaultRecordsNothing) {
  ClusterOptions options;  // tracing not set
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());
  core::SecureStoreClient::Options client_options;
  client_options.policy = p3_policy();
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.write(ItemId{100}, to_bytes("untraced")).ok());
  EXPECT_FALSE(cluster.events().enabled());
  EXPECT_TRUE(cluster.events().snapshot().empty());
  // Metrics stay always-on regardless of the tracing switch.
  EXPECT_EQ(cluster.registry().snapshot().counters.at("client.p3.write.ops"), 1u);
}

// ---------------------------------------------------------------------------
// Tracing under fire: the fault-injecting transport
// ---------------------------------------------------------------------------

TEST(TraceChaos, LossyLinksNeverCorruptTheLogOrDoubleCloseSpans) {
  ClusterOptions options = traced_options();
  options.chaos_seed = 99;
  options.op_timeout = seconds(2);
  options.gossip.period = milliseconds(50);
  Cluster cluster(options);
  cluster.set_group_policy(p3_policy());

  net::FaultRule rule;
  rule.drop = 0.15;
  rule.duplicate = 0.15;
  rule.truncate = 0.1;
  cluster.chaos()->set_default_rule(rule);

  core::SecureStoreClient::Options client_options;
  client_options.policy = p3_policy();
  client_options.round_timeout = milliseconds(150);
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  int acked = 0;
  for (int i = 0; i < 20; ++i) {
    if (sync.write(ItemId{100 + static_cast<std::uint64_t>(i)}, to_bytes("chaotic")).ok()) {
      ++acked;
    }
  }
  cluster.run_for(seconds(1));
  EXPECT_GT(acked, 0) << "the storm ate every write — vacuous run";
  EXPECT_GT(cluster.chaos()->injected_count(), 0u);

  const std::vector<Event> events = cluster.events().snapshot();
  ASSERT_FALSE(events.empty());

  // Dropped/duplicated/truncated messages must not leak half-open spans,
  // duplicate a span id, or leave garbage events in the ring.
  std::set<std::uint64_t> span_ids;
  std::uint64_t chaos_instants = 0;
  for (const Event& event : events) {
    EXPECT_FALSE(event.name.empty());
    EXPECT_FALSE(event.category.empty());
    if (event.kind == EventKind::kSpan) {
      EXPECT_TRUE(span_ids.insert(event.span_id).second)
          << "span " << event.name << " closed twice";
    } else if (event.category == "chaos") {
      ++chaos_instants;
      EXPECT_EQ(event.trace_id, 0u) << "fault instants are trace-free overlays";
    }
  }
  // Every root that was admitted shows up exactly once (failed ops close
  // with category op.failed — never twice, never half-open).
  std::map<std::uint64_t, int> roots_per_trace;
  for (const Event& event : events) {
    if (event.category == "op" || event.category == "op.failed") {
      ++roots_per_trace[event.trace_id];
    }
  }
  for (const auto& [trace_id, count] : roots_per_trace) EXPECT_EQ(count, 1);
  if (cluster.events().dropped() == 0) {
    EXPECT_EQ(chaos_instants, cluster.chaos()->injected_count())
        << "every injected fault lands on the timeline as an instant";
  }
}

// ---------------------------------------------------------------------------
// Acceptance: 8-seed chaos soak with tracing, Perfetto-loadable sidecars
// ---------------------------------------------------------------------------

struct TracedSoakCase {
  std::uint64_t seed;
};

class TracedChaosSoak : public ::testing::TestWithParam<TracedSoakCase> {};

TEST_P(TracedChaosSoak, WritesStitchedPerfettoTimelineWithFaultOverlay) {
  testkit::SeedBanner banner("traced_chaos_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  ClusterOptions options;
  options.n = 5;
  options.b = 1;
  options.seed = seed * 6151;
  options.chaos_seed = seed * 40503;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  options.tracing = true;
  Cluster cluster(options);

  Rng schedule_rng(seed);
  ChaosSchedule schedule = ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(5));
  ChaosRunnerOptions runner_options;
  runner_options.horizon = seconds(5);
  runner_options.quiesce = seconds(2);
  ChaosRunner runner(cluster, std::move(schedule), runner_options,
                     /*workload_seed=*/seed * 31 + 7);
  const ChaosReport report = runner.run();
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.events_applied, 0u);

  const std::vector<Event> events = cluster.events().snapshot();
  ASSERT_FALSE(events.empty());

  // At least one client operation stitches to server verify/apply spans on
  // >= 3 distinct nodes by trace id.
  std::set<std::uint64_t> op_roots;
  std::map<std::uint64_t, std::set<std::uint32_t>> server_nodes_by_trace;
  std::uint64_t fault_instants = 0;
  for (const Event& event : events) {
    if (event.category == "op") op_roots.insert(event.trace_id);
    if (event.name == "server.verify" || event.name == "server.apply") {
      server_nodes_by_trace[event.trace_id].insert(event.node);
    }
    if (event.kind == EventKind::kInstant && event.category == "chaos") ++fault_instants;
  }
  bool stitched = false;
  for (const std::uint64_t trace_id : op_roots) {
    const auto it = server_nodes_by_trace.find(trace_id);
    if (it != server_nodes_by_trace.end() && it->second.size() >= 3) stitched = true;
  }
  EXPECT_TRUE(stitched) << "no client op stitched to server spans on >= 3 nodes";
  EXPECT_GT(fault_instants, 0u) << "the storm's fault timeline must overlay as instants";

  // The Perfetto-loadable sidecar lands next to the BENCH_* files.
  const std::string name = "chaos_" + std::to_string(seed);
  ASSERT_TRUE(cluster.write_trace_sidecar(name));
  std::FILE* file = std::fopen(("TRACE_" + name + ".json").c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
}

std::vector<TracedSoakCase> traced_soak_seeds() {
  std::vector<TracedSoakCase> cases;
  for (std::size_t i = 0; i < 8; ++i) cases.push_back(TracedSoakCase{2000 + i * 13});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracedChaosSoak, ::testing::ValuesIn(traced_soak_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace securestore
