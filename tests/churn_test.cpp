// Churn soak test: servers restart (with and without their disks) while
// clients keep reading and writing. The long-term-store guarantees must
// hold throughout: no accepted read is ever unauthentic or a consistency
// regression, and the system converges once churn stops.
#include <gtest/gtest.h>

#include "core/sync.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};

class ChurnWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnWorkload, InvariantsSurviveServerChurn) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.seed = seed;
  options.gossip.period = milliseconds(100);
  Cluster cluster(options);
  const GroupPolicy policy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                           core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_options;
  client_options.policy = policy;
  client_options.round_timeout = milliseconds(300);
  client_options.max_read_rounds = 4;

  auto writer = cluster.make_client(ClientId{1}, client_options);
  auto reader = cluster.make_client(ClientId{2}, client_options);
  SyncClient writer_sync(*writer, cluster.scheduler());
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());

  const ItemId item{10};
  std::map<std::uint64_t, std::string> written;  // ts.time -> value
  core::Timestamp reader_floor;

  for (int round = 0; round < 30; ++round) {
    // Churn: every few rounds, bounce a random server; half the time it
    // loses its disk and must re-learn through gossip.
    if (round % 3 == 0) {
      const std::size_t victim = rng.next_below(options.n);
      const bool keep_disk = rng.next_bool(0.5);
      cluster.restart_server(victim, keep_disk);
    }

    if (writer_sync.write(item, to_bytes("round " + std::to_string(round))).ok()) {
      written[writer->context().get(item).time] = "round " + std::to_string(round);
    }
    cluster.run_for(milliseconds(rng.next_below(500)));

    const auto result = reader_sync.read(item);
    if (result.ok()) {
      // Authenticity: value matches what the writer produced at that ts.
      const auto it = written.find(result->ts.time);
      ASSERT_NE(it, written.end()) << "seed " << seed << " round " << round;
      EXPECT_EQ(to_string(result->value), it->second);
      // Monotonicity across churn.
      EXPECT_FALSE(result->ts < reader_floor) << "seed " << seed << " round " << round;
      reader_floor = result->ts;
    }
  }

  // Churn stops; everything converges to the newest write.
  cluster.run_for(seconds(30));
  ASSERT_FALSE(written.empty());
  const std::string& newest = written.rbegin()->second;
  std::size_t fresh_servers = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    const core::WriteRecord* record = cluster.server(s).store().current(item);
    if (record != nullptr && to_string(record->value) == newest) ++fresh_servers;
  }
  EXPECT_EQ(fresh_servers, cluster.server_count()) << "seed " << seed;

  const auto final_read = reader_sync.read_value(item);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(to_string(*final_read), newest);

  // Sessions still close and reopen cleanly after all that.
  ASSERT_TRUE(writer_sync.disconnect().ok());
  ASSERT_TRUE(reader_sync.disconnect().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnWorkload, ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace securestore
