// Overload robustness tests (DESIGN.md §13, experiment E18).
//
// Three regressions pin the §13 contract — a shed request is never
// acknowledged (shed-exclusivity), the client's circuit breaker trips
// under refusals and the server rejoins after the cooldown, and a
// server's retry-after hint never stretches an operation past its
// absolute deadline — plus unit coverage for the admission hysteresis
// and the open-loop load generator. The headline suite is the 8-seed
// overload-storm soak: hand-built storm schedules (offered load always
// past the victim's service capacity) run against a live cluster with
// every workload under the ConsistencyOracle, zero violations tolerated.
//
// Determinism note: all regressions run in-memory clusters, so nothing
// touches the wall clock (the WAL latency EWMA is the one wall-time
// admission signal; it stays zero here) — every run of a test is
// bit-identical. Shedding is forced through the net-backlog signal: a
// burst through the transport's finite-service-capacity model, with
// `net_backlog_low = 0`, latches admission permanently (the calm check
// requires every signal strictly below its low watermark).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/admission.h"
#include "core/messages.h"
#include "core/sync.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "sim/open_loop.h"
#include "testkit/chaos.h"
#include "testkit/cluster.h"
#include "testkit/seed.h"

namespace securestore {
namespace {

using core::AdmissionController;
using core::AdmissionSignals;
using core::SyncClient;
using testkit::ChaosEvent;
using testkit::ChaosReport;
using testkit::ChaosRunner;
using testkit::ChaosRunnerOptions;
using testkit::ChaosSchedule;
using testkit::Cluster;
using testkit::ClusterOptions;

bool gtest_failed() { return ::testing::Test::HasFailure(); }

core::GroupPolicy single_writer_policy() {
  return core::GroupPolicy{GroupId{1}, core::ConsistencyModel::kMRC,
                           core::SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

std::uint64_t counter_value(Cluster& cluster, const std::string& name) {
  const auto snapshot = cluster.registry().snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

/// One well-formed sheddable request (the same shape the chaos harness
/// floods with): admission is evaluated before decode, so the reply being
/// an error does not matter — only that the request walks the gate.
Bytes probe_body() {
  core::MetaReq req;
  req.item = ItemId{100};
  req.group = GroupId{1};
  req.requester = ClientId{999};
  return req.serialize();
}

/// Latches every server's admission controller through the net-backlog
/// signal: each server briefly gets a finite per-message service cost and
/// a same-instant burst of sheddable probes, so the first probe already
/// sees the rest of the burst queued behind it. With the backlog low
/// watermark at 0 the latch can never release (calm requires strictly
/// below every low), so the cluster sheds client work forever after —
/// service times are restored so subsequent refusals are fast.
void latch_all_servers(Cluster& cluster, net::RpcNode& probe) {
  const Bytes body = probe_body();
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    cluster.transport().set_service_time(cluster.server_node(s), milliseconds(1));
    for (int i = 0; i < 8; ++i) {
      net::QuorumOptions options;
      options.timeout = milliseconds(200);
      net::QuorumCall::start(
          probe, {cluster.server_node(s)}, net::MsgType::kMetaRequest, body,
          [](NodeId, net::MsgType, BytesView) { return true; },
          [](net::QuorumOutcome, std::size_t) {}, options);
    }
  }
  cluster.run_for(milliseconds(300));  // bursts drain; every latch is set
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    cluster.transport().set_service_time(cluster.server_node(s), 0);
  }
}

// ---------------------------------------------------------------------------
// AdmissionController: hysteresis and hint shaping.
// ---------------------------------------------------------------------------

TEST(Admission, HysteresisLatchesOnHighAndOffBelowLow) {
  AdmissionController::Options options;
  options.net_backlog_high = 100;
  options.net_backlog_low = 10;
  AdmissionController admission(options);

  AdmissionSignals signals;
  signals.net_backlog = 99;
  EXPECT_FALSE(admission.should_shed(signals)) << "below high: stay open";

  signals.net_backlog = 100;
  EXPECT_TRUE(admission.should_shed(signals)) << "at high: latch on";

  // Between the watermarks the latch must HOLD — a single cutoff would
  // re-admit here and flap at the boundary.
  signals.net_backlog = 50;
  EXPECT_TRUE(admission.should_shed(signals));
  EXPECT_TRUE(admission.overloaded());

  signals.net_backlog = 9;
  EXPECT_FALSE(admission.should_shed(signals)) << "below low: latch off";
  EXPECT_FALSE(admission.overloaded());

  // And from below-low it must not re-latch until high again.
  signals.net_backlog = 50;
  EXPECT_FALSE(admission.should_shed(signals));
}

TEST(Admission, AnySignalLatchesAllSignalsMustCalm) {
  AdmissionController::Options options;
  options.net_backlog_high = 100;
  options.net_backlog_low = 10;
  options.wal_append_high_us = 1000;
  options.wal_append_low_us = 100;
  options.wal_ewma_alpha = 1.0;  // EWMA == last sample, for the test
  AdmissionController admission(options);

  // The WAL alone trips the latch.
  admission.note_wal_append(2000);
  AdmissionSignals signals;
  signals.net_backlog = 0;
  signals.wal_append_ewma_us = admission.wal_append_ewma_us();
  EXPECT_TRUE(admission.should_shed(signals));

  // Network calm but WAL still above its low: stay latched.
  admission.note_wal_append(500);
  signals.wal_append_ewma_us = admission.wal_append_ewma_us();
  EXPECT_TRUE(admission.should_shed(signals));

  // Every signal below its low watermark: release.
  admission.note_wal_append(50);
  signals.wal_append_ewma_us = admission.wal_append_ewma_us();
  EXPECT_FALSE(admission.should_shed(signals));
}

TEST(Admission, RetryAfterScalesWithSeverityQuantizedAndClamped) {
  AdmissionController::Options options;
  options.net_backlog_high = 100;
  options.net_backlog_low = 10;
  options.retry_after_min = milliseconds(2);
  options.retry_after_max = milliseconds(200);
  AdmissionController admission(options);

  AdmissionSignals signals;
  signals.net_backlog = 100;  // severity 1.0
  ASSERT_TRUE(admission.should_shed(signals));
  const std::uint32_t at_watermark = admission.retry_after_us();
  EXPECT_GE(at_watermark, 2000u);

  signals.net_backlog = 1000;  // severity 10x
  ASSERT_TRUE(admission.should_shed(signals));
  const std::uint32_t deep = admission.retry_after_us();
  EXPECT_GT(deep, at_watermark) << "hint must grow with severity";
  EXPECT_LE(deep, 200'000u) << "hint must respect retry_after_max";
  // Power-of-two quantization: the whole point is a tiny signature cache.
  EXPECT_EQ(deep & (deep - 1), 0u) << "hint " << deep << " not a power of two";

  signals.net_backlog = 1u << 20;  // absurd severity still clamps
  ASSERT_TRUE(admission.should_shed(signals));
  EXPECT_LE(admission.retry_after_us(), 200'000u);
}

TEST(Admission, DisabledNeverSheds) {
  AdmissionController::Options options;
  options.enabled = false;
  options.net_backlog_high = 1;
  AdmissionController admission(options);
  AdmissionSignals signals;
  signals.net_backlog = 1u << 30;
  EXPECT_FALSE(admission.should_shed(signals));
}

// ---------------------------------------------------------------------------
// OpenLoopLoad: deterministic Poisson arrivals, overflow accounting.
// ---------------------------------------------------------------------------

TEST(OpenLoopLoad, SameSeedSameArrivals) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Scheduler scheduler;
    sim::OpenLoopLoad::Options options;
    options.arrivals_per_sec = 5000;
    options.seed = seed;
    std::vector<SimTime> at;
    sim::OpenLoopLoad load(scheduler, options, [&](sim::OpenLoopLoad::DoneFn done) {
      at.push_back(scheduler.now());
      done(true);
    });
    load.start(seconds(1));
    scheduler.run_until(seconds(2));
    return at;
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  const auto c = run_once(8);
  EXPECT_EQ(a, b) << "same seed must reproduce the arrival process";
  EXPECT_NE(a, c) << "different seed must vary it";
  // λ=5000 over 1s: the Poisson count lands near 5000 (±14σ bounds).
  EXPECT_GT(a.size(), 4000u);
  EXPECT_LT(a.size(), 6000u);
}

TEST(OpenLoopLoad, ArrivalsPastTheCapCountAsOverflowNotDeferredWork) {
  sim::Scheduler scheduler;
  sim::OpenLoopLoad::Options options;
  options.arrivals_per_sec = 1000;
  options.max_in_flight = 4;
  std::vector<sim::OpenLoopLoad::DoneFn> parked;
  sim::OpenLoopLoad load(scheduler, options, [&](sim::OpenLoopLoad::DoneFn done) {
    parked.push_back(std::move(done));  // ops never finish on their own
  });
  load.start(seconds(1));
  scheduler.run_until(milliseconds(500));

  EXPECT_EQ(load.stats().issued, 4u) << "only the stand-in pool issues";
  EXPECT_GT(load.stats().overflow, 0u) << "the rest is overflow, not a backlog";
  EXPECT_EQ(load.stats().arrivals, load.stats().issued + load.stats().overflow);
  EXPECT_EQ(load.in_flight(), 4u);

  // Completions free pool slots for later arrivals.
  for (auto& done : parked) done(true);
  parked.clear();
  scheduler.run_until(seconds(2));
  EXPECT_GT(load.stats().issued, 4u);
  EXPECT_EQ(load.stats().succeeded, 4u);
}

// ---------------------------------------------------------------------------
// Regression 1: a shed request is never acknowledged, and refusals are
// classified as kOverloaded (client.refused), never as timeouts.
// ---------------------------------------------------------------------------

TEST(Overload, ShedWriteIsNeverAckedAnywhere) {
  ClusterOptions options;
  options.start_gossip = false;
  options.op_timeout = milliseconds(400);
  options.admission.net_backlog_high = 2;
  options.admission.net_backlog_low = 0;  // permanent latch once tripped
  // Wide retry hints relative to the deadline: the final retry decision
  // lands well before the deadline, so the op ends on a refused round.
  options.admission.retry_after_min = milliseconds(150);
  options.admission.retry_after_max = milliseconds(150);
  Cluster cluster(options);
  cluster.set_group_policy(single_writer_policy());

  core::SecureStoreClient::Options client_opts;
  client_opts.policy = single_writer_policy();
  client_opts.round_timeout = milliseconds(100);
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.connect(GroupId{1}).ok());  // pre-latch: admitted
  ASSERT_TRUE(sync.write(ItemId{101}, to_bytes("admitted")).ok());

  net::RpcNode probe(cluster.endpoint_transport(), NodeId{4999});
  latch_all_servers(cluster, probe);

  const SimTime start = cluster.transport().now();
  const auto refused = sync.write(ItemId{102}, to_bytes("shed me"));
  const SimTime elapsed = cluster.transport().now() - start;

  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), Error::kOverloaded)
      << "refusals are their own outcome, not timeouts: " << error_name(refused.error());
  EXPECT_LE(elapsed, milliseconds(900)) << "refused op must end at its deadline";

  // Shed-exclusivity, checked against the replicas themselves: no server
  // ever applied the refused write (the gate sits before decode/WAL/state).
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.server(s).store().current(ItemId{102}), nullptr)
        << "server " << s << " applied a write it shed";
  }

  EXPECT_GT(counter_value(cluster, "client.refused"), 0u);
  EXPECT_GT(counter_value(cluster, "server.shed"), 0u);
}

// ---------------------------------------------------------------------------
// Regression 2: the circuit breaker trips under sustained refusals, and a
// circuit-broken server is re-probed after the cooldown and rejoins.
// ---------------------------------------------------------------------------

TEST(Overload, BreakerTripsAndServerRejoinsAfterCooldown) {
  ClusterOptions options;
  options.start_gossip = false;
  options.op_timeout = seconds(2);
  options.admission.net_backlog_high = 2;
  options.admission.net_backlog_low = 0;  // permanent latch once tripped
  options.admission.retry_after_min = milliseconds(150);
  options.admission.retry_after_max = milliseconds(150);
  Cluster cluster(options);
  cluster.set_group_policy(single_writer_policy());

  core::SecureStoreClient::Options client_opts;
  client_opts.policy = single_writer_policy();
  client_opts.round_timeout = milliseconds(100);
  client_opts.breaker_threshold = 2;
  client_opts.breaker_cooldown = milliseconds(300);
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(GroupId{1}).ok());

  // Latch every replica permanently (low = 0): with the whole cluster
  // refusing, each retry round strikes all four breakers, and the 150ms
  // hint fits ~13 rounds inside the 2s deadline — far past the threshold.
  net::RpcNode probe(cluster.endpoint_transport(), NodeId{4999});
  latch_all_servers(cluster, probe);

  const auto stormy = sync.write(ItemId{110}, to_bytes("stormy"));
  EXPECT_FALSE(stormy.ok());
  EXPECT_GT(counter_value(cluster, "client.refused"), 0u)
      << "overloaded cluster never caused a counted refusal — vacuous";
  EXPECT_GT(counter_value(cluster, "client.breaker_trips"), 0u);
  bool any_open = false;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    any_open = any_open || client->breaker_open(cluster.server_node(s));
  }
  EXPECT_TRUE(any_open) << "repeated refusals must open a breaker";

  // Overload over: reboot every replica with its state (a fresh admission
  // controller boots unlatched), then wait out the breaker cooldown. The
  // first picks after the cooldown are half-open probes; useful replies
  // must clear the breakers and the cluster must serve writes again.
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    cluster.restart_server(s, /*restore_state=*/true);
  }
  cluster.run_for(milliseconds(400));  // > breaker_cooldown

  bool recovered = false;
  for (int i = 0; i < 5 && !recovered; ++i) {
    recovered = sync.write(ItemId{120 + i}, to_bytes("calm")).ok();
  }
  EXPECT_TRUE(recovered) << "servers never rejoined after the cooldown";
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_FALSE(client->breaker_open(cluster.server_node(s)))
        << "server " << s << " still circuit-broken after recovery";
  }
}

// ---------------------------------------------------------------------------
// Regression 3: retry-after hints are honored but never extend the
// absolute deadline (and the remaining budget never underflows).
// ---------------------------------------------------------------------------

TEST(Overload, RetryAfterNeverOutlivesTheDeadline) {
  ClusterOptions options;
  options.start_gossip = false;
  options.op_timeout = milliseconds(300);
  options.admission.net_backlog_high = 2;
  options.admission.net_backlog_low = 0;  // permanent latch
  // The servers' hint exceeds the whole operation budget.
  options.admission.retry_after_min = milliseconds(400);
  options.admission.retry_after_max = milliseconds(400);
  Cluster cluster(options);
  cluster.set_group_policy(single_writer_policy());

  core::SecureStoreClient::Options client_opts;
  client_opts.policy = single_writer_policy();
  client_opts.round_timeout = milliseconds(100);
  client_opts.retry_after_clamp = seconds(1);  // the clamp is NOT the guard here
  auto client = cluster.make_client(ClientId{1}, client_opts);
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.connect(GroupId{1}).ok());
  net::RpcNode probe(cluster.endpoint_transport(), NodeId{4999});
  latch_all_servers(cluster, probe);

  const SimTime start = cluster.transport().now();
  const auto refused = sync.write(ItemId{102}, to_bytes("hinted"));
  const SimTime elapsed = cluster.transport().now() - start;

  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), Error::kOverloaded);
  // The 400ms hint cannot fit before the 300ms deadline: the client must
  // give up right after the first refused round instead of sleeping
  // through the deadline (or wrapping a negative budget into a huge one).
  EXPECT_LE(elapsed, milliseconds(150))
      << "retry-after hint stretched the operation toward/past its deadline";
  EXPECT_GT(counter_value(cluster, "client.refused"), 0u);
}

// ---------------------------------------------------------------------------
// The 8-seed overload-storm soak.
// ---------------------------------------------------------------------------

/// A storms-first schedule: three overlapping windows flood distinct
/// servers at 2-5x their (service-time-capped) capacity, plus one
/// crash/restart window on a server no storm touches, for interaction
/// coverage inside the b=1 fault budget (storms cost no budget: an
/// overloaded server is still honest).
ChaosSchedule storm_schedule(std::uint64_t seed, std::uint32_t n, SimTime horizon) {
  Rng rng(seed);
  ChaosSchedule schedule;
  const SimTime latest = horizon - milliseconds(200);
  for (std::uint32_t w = 0; w < 3; ++w) {
    ChaosEvent open;
    ChaosEvent close;
    open.server = close.server = w;  // distinct victims: windows may overlap
    open.at = milliseconds(100) + rng.next_below(horizon / 2);
    close.at = std::min<SimTime>(
        open.at + milliseconds(800) + rng.next_below(horizon / 4), latest);
    open.kind = ChaosEvent::Kind::kOverloadStorm;
    close.kind = ChaosEvent::Kind::kEndOverloadStorm;
    open.storm_rate = 4000.0 + static_cast<double>(rng.next_below(4000));
    open.storm_service = microseconds(400 + rng.next_below(400));
    schedule.events.push_back(open);
    schedule.events.push_back(close);
  }
  ChaosEvent crash;
  crash.kind = ChaosEvent::Kind::kCrash;
  crash.server = 3 + static_cast<std::uint32_t>(rng.next_below(n - 3));
  crash.at = milliseconds(500) + rng.next_below(horizon / 3);
  ChaosEvent restart;
  restart.kind = ChaosEvent::Kind::kRestart;
  restart.server = crash.server;
  restart.at = std::min<SimTime>(crash.at + seconds(1), latest);
  schedule.events.push_back(crash);
  schedule.events.push_back(restart);
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return schedule;
}

ChaosReport run_overload_soak(std::uint64_t seed, std::uint64_t* shed_total) {
  ClusterOptions options;
  options.n = 5;
  options.b = 1;
  options.seed = seed * 9173;
  options.chaos_seed = seed * 52501;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  // Lower backlog band than the production defaults so even the shortest
  // storm window reliably latches; the release threshold stays above idle.
  options.admission.net_backlog_high = 64;
  options.admission.net_backlog_low = 8;
  Cluster cluster(options);

  ChaosSchedule schedule = storm_schedule(seed, options.n, seconds(8));
  ChaosRunnerOptions runner_options;
  runner_options.horizon = seconds(8);
  runner_options.quiesce = seconds(3);
  ChaosRunner runner(cluster, std::move(schedule), runner_options,
                     /*workload_seed=*/seed * 131 + 3);
  ChaosReport report = runner.run();
  if (shed_total != nullptr) *shed_total = counter_value(cluster, "server.shed");
  return report;
}

struct OverloadSoakCase {
  std::uint64_t seed;
};

class OverloadSoak : public ::testing::TestWithParam<OverloadSoakCase> {};

TEST_P(OverloadSoak, SheddingDegradesThroughputNeverSafety) {
  testkit::SeedBanner banner("overload_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  std::uint64_t shed = 0;
  const ChaosReport report = run_overload_soak(seed, &shed);

  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  EXPECT_GT(report.oracle_checks, 0u) << "oracle checked nothing — vacuous run";
  EXPECT_GT(report.events_applied, 0u);
  EXPECT_GT(report.storm_arrivals, 0u) << "storms generated no load — vacuous run";
  EXPECT_GT(shed, 0u) << "no server ever shed — storms never caused overload";
  // Shedding degraded throughput, never safety: acked writes and good
  // reads still flowed around the drowning replicas.
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.reads_ok, 0u);

  // Determinism: the same seed reproduces the same storm and outcome
  // counts (the reproducibility contract chaos debugging relies on).
  std::uint64_t shed_replay = 0;
  const ChaosReport replay = run_overload_soak(seed, &shed_replay);
  EXPECT_EQ(report.storm_arrivals, replay.storm_arrivals);
  EXPECT_EQ(report.writes_acked, replay.writes_acked);
  EXPECT_EQ(shed, shed_replay);
}

std::vector<OverloadSoakCase> overload_seeds() {
  std::vector<OverloadSoakCase> cases;
  for (std::uint64_t i = 0; i < 8; ++i) cases.push_back(OverloadSoakCase{3000 + i * 13});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadSoak, ::testing::ValuesIn(overload_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace securestore
