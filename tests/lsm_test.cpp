// LSM storage engine (DESIGN.md §12): memtable/SSTable/manifest unit tests,
// flush-before-truncate ordering (including under fsync=never, where WAL
// truncation is the ONLY durability gate), corruption quarantine (bit-flips
// and torn tails in SSTs and the manifest), and a randomized equivalence
// property against the in-memory ItemStore — pre-flush, post-flush and
// post-compaction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/sync.h"
#include "crypto/keys.h"
#include "storage/item_store.h"
#include "storage/lsm/lsm_store.h"
#include "storage/lsm/sst.h"
#include "testkit/cluster.h"
#include "util/rng.h"

namespace securestore {
namespace {

namespace fs = std::filesystem;
using core::ConsistencyModel;
using core::Context;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::StorageEngineKind;
using core::SyncClient;
using core::Timestamp;
using core::WriteRecord;
using storage::ApplyResult;
using storage::FsyncPolicy;
using storage::ItemStore;
using storage::StorageEngine;
using storage::lsm::LsmStore;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr ItemId kX{1};
constexpr GroupId kGroup{9};

/// A unique, self-cleaning scratch directory per test.
struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "securestore_lsm_XXXXXX").string();
    path = mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

WriteRecord make_record(ItemId item, std::uint64_t time, std::string_view value,
                        ClientId writer = ClientId{1}) {
  WriteRecord record;
  record.item = item;
  record.group = kGroup;
  record.model = ConsistencyModel::kCC;
  record.writer = writer;
  record.value = to_bytes(value);
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = Timestamp{time, writer, record.value_digest};
  record.writer_context = Context(kGroup);
  return record;
}

LsmStore::Options small_options(const std::string& dir) {
  LsmStore::Options options;
  options.dir = dir;
  options.max_log_entries = 4;
  options.memtable_budget_bytes = 8u << 10;  // tiny: flushes come quickly
  options.l0_compact_threshold = 3;
  options.sst_target_bytes = 64u << 10;
  return options;
}

std::vector<std::string> sst_files_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> corrupt_files_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".corrupt") out.push_back(entry.path().string());
  }
  return out;
}

void flip_byte_at(const std::string& path, std::streamoff pos) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(pos);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(pos);
  file.write(&byte, 1);
}

void truncate_tail(const std::string& path, std::size_t drop) {
  const auto size = static_cast<std::size_t>(fs::file_size(path));
  ASSERT_GT(size, drop);
  fs::resize_file(path, size - drop);
}

// ---------------------------------------------------------------------------
// Engine basics
// ---------------------------------------------------------------------------

TEST(LsmStore, ApplySemanticsMatchItemStoreContract) {
  TempDir dir;
  LsmStore store(small_options(dir.path));
  EXPECT_EQ(store.apply(make_record(kX, 2, "v2")), ApplyResult::kStoredNewer);
  EXPECT_EQ(store.apply(make_record(kX, 1, "v1")), ApplyResult::kLogged);
  EXPECT_EQ(store.apply(make_record(kX, 2, "v2")), ApplyResult::kDuplicate);
  ASSERT_NE(store.current(kX), nullptr);
  EXPECT_EQ(to_string(store.current(kX)->value), "v2");
  const auto log = store.log(kX);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(to_string(log[0].value), "v2");
  EXPECT_EQ(to_string(log[1].value), "v1");
  // Same (time, writer), different digest: equivocation.
  EXPECT_EQ(store.apply(make_record(kX, 2, "forked")), ApplyResult::kEquivocation);
  EXPECT_TRUE(store.flagged_faulty(kX));
}

TEST(LsmStore, FlushedStateSurvivesReopen) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    for (std::uint64_t i = 1; i <= 20; ++i) {
      store.apply(make_record(ItemId{i}, i, "value " + std::to_string(i)));
    }
    store.note_wal_lsn(20);
    EXPECT_EQ(store.flush(), 20u);
    EXPECT_EQ(store.durable_lsn(), 20u);
  }
  LsmStore reopened(small_options(dir.path));
  EXPECT_EQ(reopened.durable_lsn(), 20u);
  EXPECT_EQ(reopened.item_count(), 20u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    const WriteRecord* record = reopened.current(ItemId{i});
    ASSERT_NE(record, nullptr) << "item " << i;
    EXPECT_EQ(to_string(record->value), "value " + std::to_string(i));
  }
}

TEST(LsmStore, UnflushedMemtableIsNotClaimedDurable) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    store.apply(make_record(kX, 1, "flushed"));
    store.note_wal_lsn(1);
    EXPECT_EQ(store.flush(), 1u);
    // A later write stays memtable-only: durable_lsn must NOT advance, or
    // the server would truncate the WAL segment that holds it.
    store.apply(make_record(ItemId{2}, 2, "memtable only"));
    store.note_wal_lsn(2);
    EXPECT_EQ(store.durable_lsn(), 1u);
  }  // crash: the destructor deliberately does not flush
  LsmStore reopened(small_options(dir.path));
  EXPECT_EQ(reopened.durable_lsn(), 1u);  // server replays WAL from here
  EXPECT_NE(reopened.current(kX), nullptr);
  EXPECT_EQ(reopened.current(ItemId{2}), nullptr);  // lost with the memtable
}

TEST(LsmStore, BudgetCrossingFlushesAutomatically) {
  TempDir dir;
  LsmStore store(small_options(dir.path));
  const std::string big(1024, 'x');
  for (std::uint64_t i = 1; i <= 64; ++i) {
    store.apply(make_record(ItemId{i}, i, big));
    store.note_wal_lsn(i);
  }
  EXPECT_GT(store.stats().flushes, 0u);
  EXPECT_GT(store.stats().sst_files, 0u);
  // Reads hit SSTs and the memtable transparently.
  for (std::uint64_t i = 1; i <= 64; ++i) {
    ASSERT_NE(store.current(ItemId{i}), nullptr) << "item " << i;
  }
}

TEST(LsmStore, EquivocationFlagSurvivesFlushReopenAndCompaction) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    store.apply(make_record(kX, 7, "tell alice A"));
    EXPECT_EQ(store.apply(make_record(kX, 7, "tell bob B")), ApplyResult::kEquivocation);
    EXPECT_TRUE(store.flagged_faulty(kX));
    store.note_wal_lsn(2);
    store.flush();
  }
  {
    LsmStore reopened(small_options(dir.path));
    EXPECT_TRUE(reopened.flagged_faulty(kX));
    ASSERT_EQ(reopened.flagged_items().size(), 1u);
    EXPECT_EQ(reopened.flagged_items()[0], kX);
    // Push more flushes through and compact: the flag entry must be carried
    // into the compaction output (the §5.3 compaction filter).
    for (std::uint64_t i = 10; i < 14; ++i) {
      reopened.apply(make_record(ItemId{i}, i, "filler"));
      reopened.note_wal_lsn(i);
      reopened.flush();
    }
    reopened.compact_now();
    EXPECT_GT(reopened.stats().compactions, 0u);
    EXPECT_TRUE(reopened.flagged_faulty(kX));
  }
  LsmStore again(small_options(dir.path));
  EXPECT_TRUE(again.flagged_faulty(kX));
}

TEST(LsmStore, CompactionMergesL0AndKeepsReadsCorrect) {
  TempDir dir;
  LsmStore::Options options = small_options(dir.path);
  // Keep the background trigger out of the way: the third flush would
  // otherwise schedule a merge that races the stats reads below.
  // compact_now() drives the compaction under test explicitly.
  options.l0_compact_threshold = 100;
  LsmStore store(options);
  // Several flush rounds over an overlapping key range → several L0 files
  // with superseded versions.
  std::uint64_t lsn = 0;
  for (std::uint64_t round = 1; round <= 4; ++round) {
    for (std::uint64_t i = 1; i <= 10; ++i) {
      store.apply(make_record(ItemId{i}, round * 100 + i,
                              "round " + std::to_string(round) + " item " + std::to_string(i)));
      store.note_wal_lsn(++lsn);
    }
    store.flush();
  }
  const auto before = store.stats();
  EXPECT_GE(before.l0_files, 3u);
  store.compact_now();
  const auto after = store.stats();
  EXPECT_GT(after.compactions, before.compactions);
  EXPECT_LT(after.l0_files, before.l0_files);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    const WriteRecord* record = store.current(ItemId{i});
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(to_string(record->value), "round 4 item " + std::to_string(i));
  }
  // Each item's log still honors the bound (1 current + max_log_entries).
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_LE(store.log(ItemId{i}).size(), 1u + options.max_log_entries);
  }
}

TEST(LsmStore, PruneLogDropsVersionsAndCompactionReclaims) {
  TempDir dir;
  LsmStore store(small_options(dir.path));
  std::uint64_t lsn = 0;
  for (std::uint64_t t = 1; t <= 6; ++t) {
    store.apply(make_record(kX, t, "v" + std::to_string(t)));
    store.note_wal_lsn(++lsn);
    if (t % 2 == 0) store.flush();
  }
  ASSERT_EQ(to_string(store.current(kX)->value), "v6");
  // A §5.3 stability certificate at t=6 prunes everything older.
  const WriteRecord stable = make_record(kX, 6, "v6");
  EXPECT_GT(store.prune_log(kX, stable.ts), 0u);
  EXPECT_EQ(store.log(kX).size(), 1u);
  store.compact_now();
  EXPECT_EQ(store.log(kX).size(), 1u);
  EXPECT_EQ(to_string(store.current(kX)->value), "v6");
}

TEST(LsmStore, CheckpointHardlinksManifestAndSsts) {
  TempDir dir;
  LsmStore store(small_options(dir.path));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    store.apply(make_record(ItemId{i}, i, "v" + std::to_string(i)));
    store.note_wal_lsn(i);
  }
  store.flush();
  store.checkpoint();
  const std::string checkpoint = dir.path + "/" + storage::lsm::kCheckpointDirName;
  ASSERT_TRUE(fs::exists(checkpoint + "/" + storage::lsm::kManifestName));
  EXPECT_EQ(sst_files_in(checkpoint).size(), sst_files_in(dir.path).size());
  // The checkpoint is a valid engine directory in its own right.
  LsmStore::Options from_checkpoint = small_options(dir.path);
  from_checkpoint.dir = checkpoint;
  LsmStore restored(from_checkpoint);
  EXPECT_EQ(restored.item_count(), 10u);
}

// ---------------------------------------------------------------------------
// Corruption quarantine: bit-flips and torn tails must never crash the
// engine or silently serve damaged data.
// ---------------------------------------------------------------------------

TEST(LsmCorruption, BitFlippedSstQuarantinedAndWalReplaysEverything) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    for (std::uint64_t i = 1; i <= 10; ++i) {
      store.apply(make_record(ItemId{i}, i, "v" + std::to_string(i)));
      store.note_wal_lsn(i);
    }
    EXPECT_EQ(store.flush(), 10u);
  }
  const auto files = sst_files_in(dir.path);
  ASSERT_FALSE(files.empty());
  // Flip a byte in the middle of the data section: the whole-file CRC must
  // catch it at open.
  flip_byte_at(files[0], static_cast<std::streamoff>(fs::file_size(files[0]) / 2));

  LsmStore reopened(small_options(dir.path));
  EXPECT_GE(reopened.stats().quarantined, 1u);
  EXPECT_FALSE(corrupt_files_in(dir.path).empty());
  EXPECT_TRUE(sst_files_in(dir.path).empty());  // quarantined, not left in place
  // Data was lost from the engine's own files, so it must not claim ANY WAL
  // coverage: the server will replay every segment it still has.
  EXPECT_EQ(reopened.durable_lsn(), 0u);
}

TEST(LsmCorruption, TornSstTailQuarantined) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    for (std::uint64_t i = 1; i <= 10; ++i) {
      store.apply(make_record(ItemId{i}, i, "v" + std::to_string(i)));
      store.note_wal_lsn(i);
    }
    store.flush();
  }
  const auto files = sst_files_in(dir.path);
  ASSERT_FALSE(files.empty());
  truncate_tail(files[0], 5);  // torn mid-footer: crash during a rename-less copy

  LsmStore reopened(small_options(dir.path));
  EXPECT_GE(reopened.stats().quarantined, 1u);
  EXPECT_EQ(reopened.durable_lsn(), 0u);
  EXPECT_FALSE(corrupt_files_in(dir.path).empty());
}

TEST(LsmCorruption, BitFlippedManifestFallsBackToSstScan) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    for (std::uint64_t i = 1; i <= 10; ++i) {
      store.apply(make_record(ItemId{i}, i, "v" + std::to_string(i)));
      store.note_wal_lsn(i);
    }
    store.flush();
  }
  const std::string manifest = dir.path + "/" + storage::lsm::kManifestName;
  ASSERT_TRUE(fs::exists(manifest));
  flip_byte_at(manifest, static_cast<std::streamoff>(fs::file_size(manifest) / 2));

  LsmStore reopened(small_options(dir.path));
  EXPECT_GE(reopened.stats().quarantined, 1u);
  // Fallback scan recovered the intact SSTs; durable_lsn is conservative
  // (0) so the server replays the full WAL over this state.
  EXPECT_EQ(reopened.durable_lsn(), 0u);
  EXPECT_EQ(reopened.item_count(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ASSERT_NE(reopened.current(ItemId{i}), nullptr) << "item " << i;
  }
}

TEST(LsmCorruption, DamagedFrameDetectedAtReadTime) {
  TempDir dir;
  LsmStore::Options options = small_options(dir.path);
  {
    LsmStore store(options);
    store.apply(make_record(kX, 1, std::string(2048, 'v')));
    store.note_wal_lsn(1);
    store.flush();
  }
  // Open succeeds (we damage the file AFTER open-time validation would have
  // passed — simulate in-place rot between open and read by flipping a data
  // byte and reopening with the footer CRC also patched to hide it). The
  // cheap way to exercise the per-frame CRC path: flip a byte inside the
  // record frame and also inside the footer CRC field so open-time
  // validation cannot rely on the whole-file checksum.
  const auto files = sst_files_in(dir.path);
  ASSERT_EQ(files.size(), 1u);
  const auto size = static_cast<std::streamoff>(fs::file_size(files[0]));
  flip_byte_at(files[0], size / 4);                    // inside the value frame
  flip_byte_at(files[0], size - 12);                   // footer whole-file CRC
  LsmStore reopened(options);
  if (reopened.stats().quarantined == 0) {
    // The doctored CRC happened to re-validate: the frame CRC is the last
    // line of defense — the read must fail cleanly, never return bad bytes.
    const WriteRecord* record = reopened.current(kX);
    if (record != nullptr) {
      EXPECT_EQ(to_string(record->value), std::string(2048, 'v'));
    } else {
      EXPECT_GT(reopened.stats().read_errors, 0u);
    }
  }
}

TEST(LsmCorruption, RottedFrameDroppedFromIndexSoGossipCanRepair) {
  TempDir dir;
  LsmStore store(small_options(dir.path));
  const WriteRecord record = make_record(kX, 1, std::string(2048, 'v'));
  ASSERT_EQ(store.apply(record), ApplyResult::kStoredNewer);
  store.note_wal_lsn(1);
  store.flush();

  // Rot the value frame in place while the reader is open: open-time
  // validation already passed, so the per-frame CRC is the only guard.
  const auto files = sst_files_in(dir.path);
  ASSERT_EQ(files.size(), 1u);
  flip_byte_at(files[0], static_cast<std::streamoff>(fs::file_size(files[0])) / 4);

  EXPECT_EQ(store.current(kX), nullptr);
  EXPECT_GT(store.stats().read_errors, 0u);
  // The engine must stop advertising the version it cannot serve: were kX
  // still listed at ts 1, a peer's digest comparison would find us current
  // and anti-entropy would never repair the item.
  for (const auto& entry : store.current_index()) EXPECT_NE(entry.item, kX);
  // And the copy a peer re-sends must be accepted, not rejected as a
  // duplicate of the rotted version.
  EXPECT_EQ(store.apply(record), ApplyResult::kStoredNewer);
  ASSERT_NE(store.current(kX), nullptr);
  EXPECT_EQ(to_string(store.current(kX)->value), std::string(2048, 'v'));
}

TEST(LsmCorruption, CompactionQuarantinesRottedInputAndDropsDanglingVersions) {
  TempDir dir;
  constexpr ItemId kIntact{2};
  {
    LsmStore store(small_options(dir.path));
    store.apply(make_record(kX, 1, std::string(2048, 'v')));
    store.note_wal_lsn(1);
    store.flush();
    store.apply(make_record(kIntact, 1, "intact"));
    store.note_wal_lsn(2);
    store.flush();

    const auto files = sst_files_in(dir.path);
    ASSERT_EQ(files.size(), 2u);
    flip_byte_at(files[0], static_cast<std::streamoff>(fs::file_size(files[0])) / 4);

    store.compact_now();

    // The unreadable frame's version must not dangle into an unlinked file:
    // it is dropped from the index at install, the rotted input survives as
    // a forensic copy, and the intact record still reads.
    EXPECT_EQ(store.current(kX), nullptr);
    EXPECT_GE(store.stats().read_errors, 1u);
    EXPECT_GE(store.stats().quarantined, 1u);
    EXPECT_EQ(corrupt_files_in(dir.path).size(), 1u);
    EXPECT_EQ(store.item_count(), 1u);
    ASSERT_NE(store.current(kIntact), nullptr);
    EXPECT_EQ(to_string(store.current(kIntact)->value), "intact");
  }
  // Reopen from the post-compaction manifest: no resurrection, no crash.
  LsmStore reopened(small_options(dir.path));
  EXPECT_EQ(reopened.current(kX), nullptr);
  ASSERT_NE(reopened.current(kIntact), nullptr);
  EXPECT_EQ(to_string(reopened.current(kIntact)->value), "intact");
}

TEST(LsmStore, EmptyMemtableFlushPersistsFreshEquivocationFlag) {
  TempDir dir;
  {
    LsmStore store(small_options(dir.path));
    store.apply(make_record(kX, 1, "v1"));
    store.note_wal_lsn(1);
    store.flush();
    // A conflicting twin (same time+writer, different digest) only sets the
    // flag — the exposing record never enters the memtable.
    EXPECT_EQ(store.apply(make_record(kX, 1, "evil-twin")), ApplyResult::kEquivocation);
    store.note_wal_lsn(2);
    // Empty memtable + fresh flag: the flush must write a flag-carrying SST
    // before advancing the truncation watermark, not just rewrite the
    // manifest — otherwise truncating the WAL past the exposing record
    // leaves the flag with no durable home in the engine's own files.
    EXPECT_EQ(store.flush(), 2u);
  }
  LsmStore reopened(small_options(dir.path));
  EXPECT_TRUE(reopened.flagged_faulty(kX));
  EXPECT_EQ(reopened.durable_lsn(), 2u);
}

// ---------------------------------------------------------------------------
// Flush-before-truncate ordering at the server level (satellite: regression
// test, including under fsync=never where truncation is the only gate).
// ---------------------------------------------------------------------------

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

SecureStoreClient::Options client_options() {
  SecureStoreClient::Options options;
  options.policy = mrc_policy();
  return options;
}

ClusterOptions lsm_cluster_options(const std::string& dir, FsyncPolicy fsync) {
  ClusterOptions options;
  options.durability_dir = dir;
  options.fsync = fsync;
  options.engine.kind = StorageEngineKind::kLsm;
  options.engine.memtable_budget_bytes = 4u << 10;  // force frequent flushes
  options.engine.l0_compact_threshold = 3;
  options.snapshot_period = seconds(100000);  // only explicit snapshots
  options.gossip.period = milliseconds(200);
  return options;
}

class LsmFlushOrdering : public ::testing::TestWithParam<FsyncPolicy> {};

TEST_P(LsmFlushOrdering, AckedWritesSurviveCrashAfterSnapshotTruncation) {
  TempDir dir;
  Cluster cluster(lsm_cluster_options(dir.path, GetParam()));
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options());
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  // Enough data that several memtable flushes happen mid-workload.
  for (std::uint64_t i = 1; i <= 40; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("phase1 " + std::to_string(i) +
                                               std::string(256, 'a')))
                    .ok());
  }
  cluster.run_for(seconds(5));
  // Snapshot: flushes the engine, checkpoints, truncates the WAL. From here
  // on the SSTs are the only copy of phase-1 writes.
  cluster.server(1).save_snapshot_now();

  for (std::uint64_t i = 41; i <= 60; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("phase2 " + std::to_string(i) +
                                               std::string(256, 'b')))
                    .ok());
  }
  cluster.run_for(seconds(5));
  for (std::uint64_t i = 1; i <= 60; ++i) {
    ASSERT_NE(cluster.server(1).store().current(ItemId{i}), nullptr) << "item " << i;
  }

  // Crash + recover from disk. Under fsync=kNever the WAL never fsynced:
  // flush-before-truncate is the ONLY reason phase-1 data still exists.
  cluster.restart_server(1, /*restore_state=*/true);
  for (std::uint64_t i = 1; i <= 60; ++i) {
    const WriteRecord* record = cluster.server(1).store().current(ItemId{i});
    ASSERT_NE(record, nullptr) << "item " << i << " lost in crash";
    const std::string prefix = (i <= 40 ? "phase1 " : "phase2 ") + std::to_string(i);
    EXPECT_EQ(to_string(record->value).substr(0, prefix.size()), prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(FsyncPolicies, LsmFlushOrdering,
                         ::testing::Values(FsyncPolicy::kAlways, FsyncPolicy::kNever));

TEST(LsmServer, EquivocationFlagSurvivesLsmCrashRecovery) {
  TempDir dir;
  ClusterOptions options = lsm_cluster_options(dir.path, FsyncPolicy::kAlways);
  Cluster cluster(options);
  const GroupPolicy policy{kGroup, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                           core::ClientTrust::kByzantine};
  cluster.set_group_policy(policy);

  // Two conflicting records, same (time, writer), injected via the import
  // path (full validation, no ownership gate) on server 1.
  const crypto::KeyPair& keys = cluster.client_keys(ClientId{1});
  auto sign = [&](WriteRecord record) {
    record.sign(keys.seed);
    return record;
  };
  WriteRecord a = make_record(kX, 7, "tell alice A");
  a.model = ConsistencyModel::kCC;
  WriteRecord b = make_record(kX, 7, "tell bob B");
  b.model = ConsistencyModel::kCC;
  ASSERT_TRUE(cluster.server(1).import_record(sign(a)));
  // The conflicting twin validates (real signature) and flags the writer.
  ASSERT_TRUE(cluster.server(1).import_record(sign(b)));
  ASSERT_TRUE(cluster.server(1).store().flagged_faulty(kX));

  cluster.restart_server(1, /*restore_state=*/true);
  // WAL replay re-derives the flag from the two logged conflicting records.
  EXPECT_TRUE(cluster.server(1).store().flagged_faulty(kX));
}

// ---------------------------------------------------------------------------
// Randomized equivalence: LsmStore ≡ ItemStore on the same operation
// sequence, checked pre-flush, post-flush and post-compaction.
// ---------------------------------------------------------------------------

void expect_equivalent(const StorageEngine& lsm, const ItemStore& mem,
                       const std::vector<ItemId>& items, const std::string& where) {
  EXPECT_EQ(lsm.item_count(), mem.item_count()) << where;
  EXPECT_EQ(lsm.total_log_entries(), mem.total_log_entries()) << where;
  for (const ItemId item : items) {
    const WriteRecord* mem_current = mem.current(item);
    const WriteRecord* lsm_current = lsm.current(item);
    if (mem_current == nullptr) {
      EXPECT_EQ(lsm_current, nullptr) << where << " item " << item.value;
      continue;
    }
    ASSERT_NE(lsm_current, nullptr) << where << " item " << item.value;
    EXPECT_EQ(*lsm_current, *mem_current) << where << " item " << item.value;
    const auto mem_log = mem.log(item);
    const auto lsm_log = lsm.log(item);
    ASSERT_EQ(lsm_log.size(), mem_log.size()) << where << " item " << item.value;
    for (std::size_t i = 0; i < mem_log.size(); ++i) {
      EXPECT_EQ(lsm_log[i], mem_log[i]) << where << " item " << item.value << " pos " << i;
    }
    EXPECT_EQ(lsm.flagged_faulty(item), mem.flagged_faulty(item))
        << where << " item " << item.value;
  }
  // group_meta agreement (sorted identically by construction).
  const auto mem_meta = mem.group_meta(kGroup);
  const auto lsm_meta = lsm.group_meta(kGroup);
  ASSERT_EQ(lsm_meta.size(), mem_meta.size()) << where;
}

class LsmEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsmEquivalence, RandomSequenceMatchesItemStore) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  TempDir dir;
  LsmStore::Options options = small_options(dir.path);
  options.max_log_entries = 3;
  LsmStore lsm(options);
  ItemStore mem(/*max_log_entries=*/3);

  std::vector<ItemId> items;
  for (std::uint64_t i = 1; i <= 8; ++i) items.push_back(ItemId{i});

  std::uint64_t lsn = 0;
  for (int op = 0; op < 400; ++op) {
    const ItemId item = items[rng.next_below(items.size())];
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 80) {
      // Random write: timestamps collide across writers and values to
      // produce kLogged / kDuplicate / kEquivocation paths.
      const std::uint64_t time = 1 + rng.next_below(40);
      const ClientId writer{1 + static_cast<std::uint32_t>(rng.next_below(3))};
      const std::string value = "v" + std::to_string(rng.next_below(4));
      const WriteRecord record = make_record(item, time, value, writer);
      EXPECT_EQ(lsm.apply(record), mem.apply(record)) << "seed " << seed << " op " << op;
      lsm.note_wal_lsn(++lsn);
    } else if (roll < 88) {
      // §5.3 prune against the item's current version (if any).
      const WriteRecord* current = mem.current(item);
      if (current != nullptr) {
        const Timestamp ts = current->ts;
        EXPECT_EQ(lsm.prune_log(item, ts), mem.prune_log(item, ts))
            << "seed " << seed << " op " << op;
      }
    } else if (roll < 92) {
      lsm.flag_faulty(item);
      mem.flag_faulty(item);
    } else if (roll < 97) {
      lsm.flush();
    } else {
      lsm.compact_now();
    }
  }
  expect_equivalent(lsm, mem, items, "seed " + std::to_string(seed) + " final");
  lsm.flush();
  expect_equivalent(lsm, mem, items, "seed " + std::to_string(seed) + " post-flush");
  lsm.compact_now();
  expect_equivalent(lsm, mem, items, "seed " + std::to_string(seed) + " post-compaction");

  // A reopened engine over the flushed state agrees on everything flushed.
  const std::uint64_t durable = lsm.durable_lsn();
  EXPECT_EQ(durable, lsn);  // last op was a flush (or flush just above)
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmEquivalence, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace securestore
