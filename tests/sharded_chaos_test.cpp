// Rebalance-under-faults soak (DESIGN.md §9, §11 — experiment E16's
// correctness side).
//
// Each seed builds a sharded deployment (2 groups of n=4 b=1), generates an
// independent ChaosSchedule per group — each bounded by that group's own
// fault budget — and runs ShardedClient workloads on every protocol family
// while a mid-storm rebalance adds a third group and hands off the moved
// key ranges STEPWISE, with crashes, partitions and Byzantine flips
// interleaving the phases. Zero oracle violations tolerated per group key,
// and the final fresh-client sweep must find every acknowledged write —
// whichever shard the rebalance left it on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "testkit/seed.h"
#include "testkit/sharded_chaos.h"

namespace securestore {
namespace {

using testkit::ChaosSchedule;
using testkit::ShardedChaosOptions;
using testkit::ShardedChaosReport;
using testkit::ShardedChaosRunner;
using testkit::ShardedCluster;
using testkit::ShardedClusterOptions;

bool gtest_failed() { return ::testing::Test::HasFailure(); }

/// A unique, self-cleaning scratch directory (LSM soak variant).
struct TempDir {
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "securestore_shchaos_XXXXXX").string();
    path = mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

ShardedChaosReport run_soak(std::uint64_t seed, bool rebalance,
                            const std::string& lsm_dir = {}) {
  ShardedClusterOptions options;
  options.groups = 2;
  options.n = 4;
  options.b = 1;
  options.seed = seed * 6151;
  options.chaos_seed = seed * 40503;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  if (!lsm_dir.empty()) {
    // Beyond-RAM variant (DESIGN.md §12): every server runs the LSM engine
    // over a real durability directory, with a tiny memtable budget so the
    // storm's writes actually cross the flush/compaction paths, and
    // fsync=kNever so flush-before-truncate is the only durability gate.
    // Disk-wipe crashes (restore_state=false, 1 in 4 restarts) then model a
    // replacement node recovering purely from peers.
    options.durability_dir = lsm_dir;
    options.fsync = storage::FsyncPolicy::kNever;
    options.engine.kind = core::StorageEngineKind::kLsm;
    options.engine.memtable_budget_bytes = 4u << 10;
    options.engine.l0_compact_threshold = 3;
  }
  ShardedCluster cluster(options);

  Rng schedule_rng(seed);
  std::vector<ChaosSchedule> schedules;
  for (std::uint32_t g = 0; g < options.groups; ++g) {
    schedules.push_back(
        ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(10)));
  }
  ShardedChaosOptions runner_options;
  runner_options.horizon = seconds(10);
  runner_options.quiesce = seconds(3);
  runner_options.rebalance = rebalance;
  ShardedChaosRunner runner(cluster, std::move(schedules), runner_options,
                            /*workload_seed=*/seed * 31 + 7);
  return runner.run();
}

struct SoakCase {
  std::uint64_t seed;
};

class ShardedChaosSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ShardedChaosSoak, RebalanceUnderFaultsKeepsEveryAckedWrite) {
  testkit::SeedBanner banner("sharded_chaos_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  const ShardedChaosReport report = run_soak(seed, /*rebalance=*/true);
  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  for (const auto& group : report.groups) {
    EXPECT_TRUE(group.violations.empty())
        << "group " << group.group.value << " (shard " << group.shard << ")";
    EXPECT_GT(group.checks, 0u) << "group " << group.group.value << " checked nothing";
  }
  EXPECT_GT(report.events_applied, 0u) << "storm was empty — vacuous run";
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.reads_ok, 0u);
  // The rebalance actually happened: a third group, ring v2, data moved.
  EXPECT_EQ(report.groups_after, 3u);
  EXPECT_EQ(report.final_ring_version, 2u);
  EXPECT_GT(report.records_copied, 0u) << "rebalance moved nothing — vacuous handoff";
}

std::vector<SoakCase> soak_seeds() {
  // Quick mode: 8 fixed seeds; SECURESTORE_CHAOS_SEEDS=<count> widens the
  // sweep without recompiling (same switch as the unsharded soak).
  std::size_t count = 8;
  if (const char* env = std::getenv("SECURESTORE_CHAOS_SEEDS")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) count = parsed;
  }
  std::vector<SoakCase> cases;
  for (std::size_t i = 0; i < count; ++i) cases.push_back(SoakCase{2000 + i * 23});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedChaosSoak, ::testing::ValuesIn(soak_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

// The same storm + rebalance soak with every server on the LSM engine
// (DESIGN.md §12): crash/recover cycles — including disk-wiped replacements
// — now exercise SST recovery, manifest quarantine-or-load and WAL replay
// over flushed state under fsync=kNever. Same zero-violation bar.
class LsmShardedChaosSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(LsmShardedChaosSoak, LsmEngineKeepsEveryAckedWriteUnderStorm) {
  testkit::SeedBanner banner("sharded_chaos_lsm_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  TempDir dir;
  const ShardedChaosReport report = run_soak(seed, /*rebalance=*/true, dir.path);
  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  for (const auto& group : report.groups) {
    EXPECT_TRUE(group.violations.empty())
        << "group " << group.group.value << " (shard " << group.shard << ")";
    EXPECT_GT(group.checks, 0u) << "group " << group.group.value << " checked nothing";
  }
  EXPECT_GT(report.events_applied, 0u) << "storm was empty — vacuous run";
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.reads_ok, 0u);
  EXPECT_EQ(report.groups_after, 3u);
  EXPECT_EQ(report.final_ring_version, 2u);
  EXPECT_GT(report.records_copied, 0u) << "rebalance moved nothing — vacuous handoff";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmShardedChaosSoak, ::testing::ValuesIn(soak_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

// One storm WITHOUT the rebalance: isolates the sharded harness itself
// (routing, shared infrastructure, per-group schedules) from the handoff
// machinery, so a failure here points at the deployment, not the move.
TEST(ShardedChaos, StormWithoutRebalanceStaysConsistent) {
  testkit::SeedBanner banner("sharded_chaos_static", 424242, gtest_failed);
  const ShardedChaosReport report = run_soak(banner.seed(), /*rebalance=*/false);
  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_EQ(report.groups_after, 2u);
  EXPECT_EQ(report.records_copied, 0u);
}

}  // namespace
}  // namespace securestore
