// Durability subsystem: write-ahead log unit tests (append/replay, torn and
// corrupt tails, rotation, snapshot-coordinated truncation) and server-level
// crash recovery — kill a server mid-workload after snapshot + further acked
// writes, restart from snapshot+WAL, and every acked write is served again.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sync.h"
#include "faults/malicious_client.h"
#include "storage/snapshot.h"
#include "storage/wal/wal.h"
#include "testkit/cluster.h"
#include "util/crc32.h"

namespace securestore {
namespace {

namespace fs = std::filesystem;
using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SecureStoreServer;
using core::SharingMode;
using core::SyncClient;
using storage::FsyncPolicy;
using storage::WalEntryType;
using storage::WalOptions;
using storage::WriteAheadLog;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};

/// A unique, self-cleaning scratch directory per test.
struct TempDir {
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "securestore_dur_XXXXXX").string();
    path = mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

GroupPolicy multiwriter_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                     core::ClientTrust::kByzantine};
}

SecureStoreClient::Options client_options(const GroupPolicy& policy) {
  SecureStoreClient::Options options;
  options.policy = policy;
  return options;
}

/// The newest (and by construction only) WAL segment file in `dir`.
std::string last_segment(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  EXPECT_FALSE(files.empty());
  std::sort(files.begin(), files.end());
  return files.back();
}

void flip_last_byte(const std::string& path) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const auto size = file.tellg();
  ASSERT_GT(size, 0);
  file.seekg(-1, std::ios::end);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(-1, std::ios::end);
  file.write(&byte, 1);
}

void append_garbage(const std::string& path, std::size_t count) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  for (std::size_t i = 0; i < count; ++i) file.put(static_cast<char>(0xA5));
}

// ---------------------------------------------------------------------------
// WriteAheadLog unit tests
// ---------------------------------------------------------------------------

TEST(Wal, AppendReplayRoundtrip) {
  TempDir dir;
  std::vector<std::pair<WalEntryType, std::string>> written = {
      {WalEntryType::kWrite, "alpha"},
      {WalEntryType::kContext, "beta"},
      {WalEntryType::kRelease, "a-much-longer-payload-with-structure"},
      {WalEntryType::kWrite, ""},
  };
  {
    WriteAheadLog wal({dir.path, FsyncPolicy::kAlways, 1u << 20});
    std::uint64_t expected = 1;
    for (const auto& [type, payload] : written) {
      EXPECT_EQ(wal.append(type, to_bytes(payload)), expected++);
    }
    EXPECT_EQ(wal.last_lsn(), written.size());
    EXPECT_EQ(wal.stats().appends, written.size());
    EXPECT_GE(wal.stats().fsyncs, written.size());  // kAlways: one per append
  }

  WriteAheadLog reopened({dir.path, FsyncPolicy::kAlways, 1u << 20});
  EXPECT_EQ(reopened.last_lsn(), written.size());
  std::vector<std::pair<WalEntryType, std::string>> replayed;
  std::uint64_t last_seen = 0;
  reopened.replay(0, [&](std::uint64_t lsn, WalEntryType type, BytesView payload) {
    EXPECT_EQ(lsn, last_seen + 1);
    last_seen = lsn;
    replayed.emplace_back(type, to_string(payload));
  });
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(reopened.stats().replayed_entries, written.size());
  EXPECT_EQ(reopened.stats().truncated_tail_bytes, 0u);
}

TEST(Wal, ReplayAfterLsnFilters) {
  TempDir dir;
  WriteAheadLog wal({dir.path, FsyncPolicy::kNever, 1u << 20});
  for (int i = 1; i <= 6; ++i) wal.append(WalEntryType::kWrite, to_bytes(std::to_string(i)));
  std::vector<std::string> seen;
  wal.replay(4, [&](std::uint64_t, WalEntryType, BytesView payload) {
    seen.push_back(to_string(payload));
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"5", "6"}));
}

TEST(Wal, TornTailTruncatedNotFatal) {
  TempDir dir;
  {
    WriteAheadLog wal({dir.path, FsyncPolicy::kAlways, 1u << 20});
    for (int i = 1; i <= 5; ++i) {
      wal.append(WalEntryType::kWrite, to_bytes("entry " + std::to_string(i)));
    }
  }
  // A crash mid-write leaves a partial frame at the tail.
  append_garbage(last_segment(dir.path), 11);

  WriteAheadLog recovered({dir.path, FsyncPolicy::kAlways, 1u << 20});
  EXPECT_EQ(recovered.last_lsn(), 5u);
  EXPECT_EQ(recovered.stats().truncated_tail_bytes, 11u);
  std::size_t count = 0;
  recovered.replay(0, [&](std::uint64_t, WalEntryType, BytesView) { ++count; });
  EXPECT_EQ(count, 5u);
  // The log stays appendable after truncation.
  EXPECT_EQ(recovered.append(WalEntryType::kWrite, to_bytes("after")), 6u);
}

TEST(Wal, CorruptFrameTruncatesFromThere) {
  TempDir dir;
  {
    WriteAheadLog wal({dir.path, FsyncPolicy::kAlways, 1u << 20});
    for (int i = 1; i <= 5; ++i) {
      wal.append(WalEntryType::kWrite, to_bytes("entry " + std::to_string(i)));
    }
  }
  // Bit rot inside the LAST frame's payload: its CRC fails; entries before
  // the corruption point survive untouched.
  flip_last_byte(last_segment(dir.path));

  WriteAheadLog recovered({dir.path, FsyncPolicy::kAlways, 1u << 20});
  EXPECT_EQ(recovered.last_lsn(), 4u);
  EXPECT_GT(recovered.stats().truncated_tail_bytes, 0u);
  std::vector<std::string> seen;
  recovered.replay(0, [&](std::uint64_t, WalEntryType, BytesView payload) {
    seen.push_back(to_string(payload));
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"entry 1", "entry 2", "entry 3", "entry 4"}));
}

TEST(Wal, RotationAndSnapshotTruncation) {
  TempDir dir;
  WriteAheadLog wal({dir.path, FsyncPolicy::kNever, /*segment_bytes=*/128});
  for (int i = 1; i <= 40; ++i) {
    wal.append(WalEntryType::kWrite, to_bytes("payload-" + std::to_string(i)));
  }
  EXPECT_GT(wal.stats().rotations, 0u);
  EXPECT_GT(wal.segment_count(), 1u);
  const std::size_t segments_before = wal.segment_count();

  // A snapshot covering everything lets every dead segment go; the active
  // one always survives.
  const std::size_t removed = wal.truncate_up_to(wal.last_lsn());
  EXPECT_EQ(removed, segments_before - 1);
  EXPECT_EQ(wal.segment_count(), 1u);
  EXPECT_EQ(wal.stats().segments_removed, removed);

  // Appends continue with monotone LSNs after truncation.
  EXPECT_EQ(wal.append(WalEntryType::kWrite, to_bytes("post")), 41u);
}

TEST(Wal, ReopenAfterTruncationKeepsTail) {
  TempDir dir;
  std::uint64_t last = 0;
  {
    WriteAheadLog wal({dir.path, FsyncPolicy::kAlways, /*segment_bytes=*/128});
    for (int i = 1; i <= 20; ++i) {
      last = wal.append(WalEntryType::kWrite, to_bytes("v" + std::to_string(i)));
    }
    wal.truncate_up_to(10);  // as if a snapshot covered LSN 10
  }
  WriteAheadLog reopened({dir.path, FsyncPolicy::kAlways, 128});
  EXPECT_EQ(reopened.last_lsn(), last);
  std::uint64_t first_replayed = 0;
  reopened.replay(10, [&](std::uint64_t lsn, WalEntryType, BytesView) {
    if (first_replayed == 0) first_replayed = lsn;
  });
  EXPECT_EQ(first_replayed, 11u);
}

TEST(Wal, ReserveThroughSkipsCoveredLsns) {
  TempDir dir;
  {
    WriteAheadLog wal({dir.path, FsyncPolicy::kAlways, 1u << 20});
    wal.reserve_through(100);  // snapshot covered LSN 100; WAL dir was lost
    EXPECT_EQ(wal.append(WalEntryType::kWrite, to_bytes("fresh")), 101u);
  }
  WriteAheadLog reopened({dir.path, FsyncPolicy::kAlways, 1u << 20});
  EXPECT_EQ(reopened.last_lsn(), 101u);
  std::size_t replayed = 0;
  reopened.replay(100, [&](std::uint64_t, WalEntryType, BytesView) { ++replayed; });
  EXPECT_EQ(replayed, 1u);
}

// ---------------------------------------------------------------------------
// Server-level crash recovery
// ---------------------------------------------------------------------------

ClusterOptions durable_options(const std::string& dir) {
  ClusterOptions options;
  options.durability_dir = dir;
  options.fsync = FsyncPolicy::kAlways;
  options.snapshot_period = seconds(100000);  // only explicit snapshots
  options.gossip.period = milliseconds(200);
  return options;
}

TEST(CrashRecovery, ServesEveryAckedWriteAfterSnapshotPlusWal) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  // Phase 1: acked writes, disseminated everywhere, then a snapshot.
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("pre-snapshot " + std::to_string(i))).ok());
  }
  cluster.run_for(seconds(5));  // gossip spreads to every server
  cluster.server(1).save_snapshot_now();

  // Phase 2: more acked writes that exist only in the WAL tail.
  for (std::uint64_t i = 4; i <= 6; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("post-snapshot " + std::to_string(i))).ok());
  }
  cluster.run_for(seconds(5));
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ASSERT_NE(cluster.server(1).store().current(ItemId{i}), nullptr) << "item " << i;
  }
  const std::size_t audit_before = cluster.server(1).audit_log().size();

  // Crash: the dying server saves nothing; recovery is snapshot + WAL.
  cluster.restart_server(1, /*restore_state=*/true);

  for (std::uint64_t i = 1; i <= 6; ++i) {
    const auto* record = cluster.server(1).store().current(ItemId{i});
    ASSERT_NE(record, nullptr) << "item " << i << " lost in crash";
    const std::string expect =
        (i <= 3 ? "pre-snapshot " : "post-snapshot ") + std::to_string(i);
    EXPECT_EQ(to_string(record->value), expect);
  }
  // The WAL tail really was replayed (phase-2 writes were not in the snapshot).
  ASSERT_NE(cluster.server(1).wal_stats(), nullptr);
  EXPECT_GE(cluster.server(1).wal_stats()->replayed_entries, 3u);
  // The audit chain grew back to cover every accepted write.
  EXPECT_EQ(cluster.server(1).audit_log().size(), audit_before);
  EXPECT_TRUE(cluster.server(1).audit_log().verify());

  // And the store as a whole still serves reads.
  const auto result = sync.read_value(ItemId{5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "post-snapshot 5");
}

TEST(CrashRecovery, TornWalTailLosesOnlyTheTornFrame) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  options.n = 4;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("w" + std::to_string(i))).ok());
  }
  cluster.run_for(seconds(5));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_NE(cluster.server(0).store().current(ItemId{i}), nullptr);
  }

  // Corrupt the newest frame of server 0's WAL while it is down — a torn
  // write at the moment of the crash.
  const std::string wal_dir = cluster.server_disk_dir(0) + "/wal";
  cluster.restart_server(0, /*restore_state=*/true);  // cycle once: clean state on disk
  flip_last_byte(last_segment(wal_dir));
  cluster.restart_server(0, /*restore_state=*/true);

  ASSERT_NE(cluster.server(0).wal_stats(), nullptr);
  EXPECT_GT(cluster.server(0).wal_stats()->truncated_tail_bytes, 0u);
  // Everything before the corruption point survived.
  std::size_t present = 0;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    if (cluster.server(0).store().current(ItemId{i}) != nullptr) ++present;
  }
  EXPECT_GE(present, 4u);
  // Gossip anti-entropy repairs the lost tail from honest peers.
  cluster.run_for(seconds(10));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_NE(cluster.server(0).store().current(ItemId{i}), nullptr) << "item " << i;
  }
}

TEST(CrashRecovery, CorruptSnapshotQuarantinedAndWalReplayed) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("only in the wal")).ok());
  cluster.run_for(seconds(5));
  ASSERT_NE(cluster.server(2).store().current(ItemId{1}), nullptr);

  // A corrupt snapshot file must not kill the booting server: quarantined,
  // logged, and the WAL still replays every acked write.
  const std::string snapshot_path = cluster.server_disk_dir(2) + "/snapshot.bin";
  {
    std::ofstream garbage(snapshot_path, std::ios::binary | std::ios::trunc);
    garbage << "this is not a snapshot";
  }
  cluster.restart_server(2, /*restore_state=*/true);

  EXPECT_TRUE(fs::exists(snapshot_path + ".corrupt"));
  EXPECT_FALSE(fs::exists(snapshot_path));
  const auto* record = cluster.server(2).store().current(ItemId{1});
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(to_string(record->value), "only in the wal");
}

TEST(CrashRecovery, AmnesiacRestartWipesDisk) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("forgettable")).ok());
  cluster.run_for(seconds(5));
  ASSERT_NE(cluster.server(1).store().current(ItemId{1}), nullptr);

  cluster.restart_server(1, /*restore_state=*/false);
  EXPECT_EQ(cluster.server(1).store().current(ItemId{1}), nullptr);
  // ... and gossip re-teaches it, as for any fresh replica.
  cluster.run_for(seconds(10));
  EXPECT_NE(cluster.server(1).store().current(ItemId{1}), nullptr);
}

TEST(CrashRecovery, EquivocationFlagSurvivesCrashReplay) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  Cluster cluster(options);
  cluster.set_group_policy(multiwriter_policy());

  // An equivocating writer hits every server with two values under one
  // timestamp; servers flag the item.
  faults::MaliciousClient attacker(cluster.transport(), NodeId{2000}, ClientId{2},
                                   cluster.client_keys(ClientId{2}), cluster.config(),
                                   multiwriter_policy());
  attacker.send_equivocating_writes(ItemId{7}, to_bytes("tell alice A"),
                                    to_bytes("tell bob B"), /*time=*/42,
                                    /*fanout=*/cluster.server_count());
  cluster.run_for(seconds(2));
  ASSERT_TRUE(cluster.server(0).store().flagged_faulty(ItemId{7}));

  // Crash + WAL replay: both conflicting records replay, the flag re-derives.
  cluster.restart_server(0, /*restore_state=*/true);
  EXPECT_TRUE(cluster.server(0).store().flagged_faulty(ItemId{7}));

  // Snapshot → crash: the exposing record is gone from the store, so the
  // snapshot must carry the flag explicitly (v2 flagged-items list).
  cluster.server(0).save_snapshot_now();
  cluster.restart_server(0, /*restore_state=*/true);
  EXPECT_TRUE(cluster.server(0).store().flagged_faulty(ItemId{7}));
}

TEST(CrashRecovery, SnapshotTruncatesWalSegments) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  options.wal_segment_bytes = 1024;  // rotate often
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes(std::string(200, 'x'))).ok());
  }
  cluster.run_for(seconds(5));

  auto* wal = cluster.server(1).wal();
  ASSERT_NE(wal, nullptr);
  ASSERT_GT(wal->segment_count(), 1u);

  cluster.server(1).save_snapshot_now();
  EXPECT_EQ(wal->segment_count(), 1u);
  EXPECT_GT(wal->stats().segments_removed, 0u);

  // After truncation a crash still recovers everything (from the snapshot).
  cluster.restart_server(1, /*restore_state=*/true);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    EXPECT_NE(cluster.server(1).store().current(ItemId{i}), nullptr) << "item " << i;
  }
}

TEST(CrashRecovery, GroupCommitIntervalPolicyRecovers) {
  TempDir dir;
  ClusterOptions options = durable_options(dir.path);
  options.fsync = FsyncPolicy::kInterval;
  options.wal_flush_interval = milliseconds(5);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(sync.write(ItemId{i}, to_bytes("grouped " + std::to_string(i))).ok());
  }
  cluster.run_for(seconds(2));  // several flush ticks pass

  ASSERT_NE(cluster.server(1).wal_stats(), nullptr);
  const auto fsyncs = cluster.server(1).wal_stats()->fsyncs;
  const auto appends = cluster.server(1).wal_stats()->appends;
  EXPECT_GT(appends, 0u);
  EXPECT_LT(fsyncs, appends + 2);  // group commit: far fewer fsyncs than appends

  cluster.restart_server(1, /*restore_state=*/true);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_NE(cluster.server(1).store().current(ItemId{i}), nullptr) << "item " << i;
  }
}

}  // namespace
}  // namespace securestore
