// Unit tests for the discrete-event simulator: scheduler ordering, network
// model sampling, metrics.
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace securestore::sim {
namespace {

TEST(Scheduler, ExecutesInTimestampOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(30, [&] { order.push_back(3); });
  scheduler.schedule_at(10, [&] { order.push_back(1); });
  scheduler.schedule_at(20, [&] { order.push_back(2); });
  scheduler.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30u);
}

TEST(Scheduler, FifoAmongSameTimeEvents) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  scheduler.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler scheduler;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) scheduler.schedule_in(5, chain);
  };
  scheduler.schedule_in(5, chain);
  scheduler.run_until_idle();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(scheduler.now(), 50u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  int fired = 0;
  scheduler.schedule_at(10, [&] { ++fired; });
  scheduler.schedule_at(20, [&] { ++fired; });
  scheduler.schedule_at(30, [&] { ++fired; });
  scheduler.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(scheduler.now(), 20u);
  EXPECT_EQ(scheduler.pending_events(), 1u);
  scheduler.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(scheduler.now(), 100u);  // clock advances to the deadline
}

TEST(Scheduler, PastSchedulingRejected) {
  Scheduler scheduler;
  scheduler.schedule_at(50, [] {});
  scheduler.run_until_idle();
  EXPECT_THROW(scheduler.schedule_at(10, [] {}), std::invalid_argument);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.schedule_at(1, [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
  EXPECT_EQ(scheduler.executed_events(), 1u);
}

TEST(NetworkModel, LatencyWithinProfileBounds) {
  NetworkModel model(Rng(1), LinkProfile{milliseconds(10), milliseconds(5), 0.0});
  for (int i = 0; i < 200; ++i) {
    const auto latency = model.sample_delivery(NodeId{0}, NodeId{1});
    ASSERT_TRUE(latency.has_value());
    EXPECT_GE(*latency, milliseconds(10));
    EXPECT_LE(*latency, milliseconds(15));
  }
}

TEST(NetworkModel, LossDropsRoughlyAtRate) {
  NetworkModel model(Rng(2), LinkProfile{milliseconds(1), 0, 0.3});
  int dropped = 0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (!model.sample_delivery(NodeId{0}, NodeId{1}).has_value()) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kTrials, 0.3, 0.03);
}

TEST(NetworkModel, PartitionBlocksBothDirections) {
  NetworkModel model(Rng(3), zero_profile());
  model.set_partitioned(NodeId{1}, true);
  EXPECT_FALSE(model.sample_delivery(NodeId{0}, NodeId{1}).has_value());
  EXPECT_FALSE(model.sample_delivery(NodeId{1}, NodeId{0}).has_value());
  EXPECT_TRUE(model.sample_delivery(NodeId{0}, NodeId{2}).has_value());

  model.set_partitioned(NodeId{1}, false);
  EXPECT_TRUE(model.sample_delivery(NodeId{0}, NodeId{1}).has_value());
}

TEST(NetworkModel, PerLinkOverride) {
  NetworkModel model(Rng(4), LinkProfile{milliseconds(1), 0, 0.0});
  model.set_link_profile(NodeId{0}, NodeId{1}, LinkProfile{milliseconds(100), 0, 0.0});
  EXPECT_EQ(*model.sample_delivery(NodeId{0}, NodeId{1}), milliseconds(100));
  // Override is directed: the reverse link keeps the default.
  EXPECT_EQ(*model.sample_delivery(NodeId{1}, NodeId{0}), milliseconds(1));
}

TEST(NetworkModel, StandardProfilesAreOrdered) {
  EXPECT_LT(lan_profile().base_latency, wan_profile().base_latency);
  EXPECT_EQ(zero_profile().base_latency, 0u);
}

TEST(Samples, SummaryStatistics) {
  Samples samples;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) samples.add(v);
  EXPECT_EQ(samples.count(), 5u);
  EXPECT_DOUBLE_EQ(samples.mean(), 3.0);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 5.0);
  EXPECT_DOUBLE_EQ(samples.median(), 3.0);
  EXPECT_DOUBLE_EQ(samples.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 5.0);
  EXPECT_NEAR(samples.stddev(), 1.4142, 1e-3);
}

TEST(Samples, EmptyThrows) {
  Samples samples;
  EXPECT_TRUE(samples.empty());
  EXPECT_THROW(samples.mean(), std::logic_error);
  EXPECT_THROW(samples.percentile(50), std::logic_error);
}

TEST(Samples, PercentileInterpolates) {
  Samples samples;
  samples.add(0.0);
  samples.add(10.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(samples.percentile(90), 9.0);
}

}  // namespace
}  // namespace securestore::sim
