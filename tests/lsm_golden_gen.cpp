// Deterministic LSM fixture generator for the sst_stats.py golden test.
//
// Builds a small engine directory — three explicit flushes, a faulty flag,
// a prune, then one compaction — from fixed inputs only, so the resulting
// MANIFEST and SSTables are byte-stable across runs and platforms. The
// paired golden file (tests/data/sst_stats_golden.txt) therefore pins both
// the tool's output format and the on-disk SST format (DESIGN.md §12).
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>

#include "crypto/keys.h"
#include "storage/lsm/lsm_store.h"
#include "util/bytes.h"

namespace {

using namespace securestore;
using core::ConsistencyModel;
using core::Context;
using core::Timestamp;
using core::WriteRecord;
using storage::lsm::LsmStore;

constexpr GroupId kGroup{9};

WriteRecord make_record(ItemId item, std::uint64_t time, std::string_view value,
                        ClientId writer = ClientId{1}) {
  WriteRecord record;
  record.item = item;
  record.group = kGroup;
  record.model = ConsistencyModel::kCC;
  record.writer = writer;
  record.value = to_bytes(value);
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = Timestamp{time, writer, record.value_digest};
  record.writer_context = Context(kGroup);
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: lsm_golden_gen <output-dir>\n";
    return 1;
  }
  const std::string dir = argv[1];
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // stale fixtures would skew counts

  LsmStore::Options options;
  options.dir = dir;
  options.max_log_entries = 4;
  // Flushes and the compaction are driven explicitly below; keep the
  // automatic triggers out of the way so the file layout is fixed.
  options.memtable_budget_bytes = 4u << 20;
  options.l0_compact_threshold = 100;
  LsmStore store(options);

  std::uint64_t lsn = 0;
  const auto write = [&](ItemId item, std::uint64_t time, std::string_view value,
                         ClientId writer = ClientId{1}) {
    store.apply(make_record(item, time, value, writer));
    store.note_wal_lsn(++lsn);
  };

  // SST 1: four items, three versions each, plus one faulty flag.
  for (std::uint64_t item = 1; item <= 4; ++item) {
    for (std::uint64_t t = 1; t <= 3; ++t) {
      write(ItemId{item}, t, "v" + std::to_string(item) + "." + std::to_string(t));
    }
  }
  store.flag_faulty(ItemId{3});
  store.flush();

  // SST 2: newer versions for two items plus two fresh items; pruning item 1
  // up to its current version drops the two older frames at compaction time.
  write(ItemId{1}, 4, "v1.4");
  write(ItemId{2}, 4, "v2.4");
  write(ItemId{5}, 1, "v5.1");
  write(ItemId{6}, 1, "v6.1");
  const WriteRecord* current = store.current(ItemId{1});
  if (current == nullptr) {
    std::cerr << "lsm_golden_gen: item 1 lost its current version\n";
    return 1;
  }
  store.prune_log(ItemId{1}, current->ts);
  store.flush();

  // SST 3: a second writer on item 2, so the merged output keeps distinct
  // same-time versions apart.
  write(ItemId{2}, 5, "v2.5a", ClientId{2});
  write(ItemId{2}, 5, "v2.5b", ClientId{3});
  store.flush();

  // Merge everything into L1; the golden asserts the post-compaction layout.
  store.compact_now();
  return 0;
}
