// Session-guarantee tests (the Bayou lineage the paper builds on: MRC "is
// similar to the monotonic-reads and read-your-writes session guarantees in
// Bayou", §4.2) and multi-group sessions (§4: consistency is only required
// within a related group; §6: a session may touch several groups, each with
// its own context).
#include <gtest/gtest.h>

#include "core/sync.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

GroupPolicy policy_for(GroupId group, ConsistencyModel model) {
  return GroupPolicy{group, model, SharingMode::kSingleWriter, core::ClientTrust::kHonest};
}

SecureStoreClient::Options options_for(const GroupPolicy& policy) {
  SecureStoreClient::Options options;
  options.policy = policy;
  return options;
}

TEST(SessionGuarantees, ReadYourWrites) {
  // After writing, the writer's own reads always see that write (or newer),
  // even when its read preference points at servers the write missed.
  ClusterOptions cluster_options;
  cluster_options.n = 7;
  cluster_options.b = 2;
  cluster_options.start_gossip = false;
  Cluster cluster(cluster_options);
  const GroupPolicy policy = policy_for(GroupId{1}, ConsistencyModel::kMRC);
  cluster.set_group_policy(policy);

  auto client = cluster.make_client(ClientId{1}, options_for(policy));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(GroupId{1}).ok());

  // Write lands on servers {0,1,2}; reads then prefer {4,5,6}.
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                 NodeId{5}, NodeId{6}});
  ASSERT_TRUE(sync.write(ItemId{10}, to_bytes("my own write")).ok());
  client->set_server_preference({NodeId{4}, NodeId{5}, NodeId{6}, NodeId{3}, NodeId{2},
                                 NodeId{1}, NodeId{0}});

  const auto result = sync.read_value(ItemId{10});
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "my own write");  // escalation found it
}

TEST(SessionGuarantees, ReadYourWritesAcrossSessions) {
  Cluster cluster(ClusterOptions{});
  const GroupPolicy policy = policy_for(GroupId{1}, ConsistencyModel::kMRC);
  cluster.set_group_policy(policy);

  {
    auto client = cluster.make_client(ClientId{1}, options_for(policy));
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(GroupId{1}).ok());
    ASSERT_TRUE(sync.write(ItemId{10}, to_bytes("session 1 write")).ok());
    ASSERT_TRUE(sync.disconnect().ok());
  }
  // No dissemination wait on purpose: the context carried across sessions
  // is what guarantees the second session cannot read anything older.
  {
    auto client = cluster.make_client(ClientId{1}, options_for(policy));
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(GroupId{1}).ok());
    const auto result = sync.read_value(ItemId{10});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(to_string(*result), "session 1 write");
  }
}

TEST(SessionGuarantees, WritesAreMonotonicallyOrdered) {
  // "Since the timestamp of this data item monotonically increases as
  // values are read and written, successive reads of a client will return
  // newer values" — including across interleaved reads.
  Cluster cluster(ClusterOptions{});
  const GroupPolicy policy = policy_for(GroupId{1}, ConsistencyModel::kMRC);
  cluster.set_group_policy(policy);

  auto client = cluster.make_client(ClientId{1}, options_for(policy));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(GroupId{1}).ok());

  core::Timestamp previous;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sync.write(ItemId{10}, to_bytes("w" + std::to_string(i))).ok());
    const auto result = sync.read(ItemId{10});
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->ts.time, previous.time);
    previous = result->ts;
  }
}

TEST(MultiGroup, IndependentContextsPerGroup) {
  // One principal, two related groups with different consistency models;
  // each group gets its own session/context endpoint (§4: "consistency is
  // only required across a group of related data items").
  Cluster cluster(ClusterOptions{});
  const GroupPolicy tax = policy_for(GroupId{1}, ConsistencyModel::kMRC);
  const GroupPolicy medical = policy_for(GroupId{2}, ConsistencyModel::kCC);
  cluster.set_group_policy(tax);
  cluster.set_group_policy(medical);

  auto tax_endpoint = cluster.make_client(ClientId{1}, options_for(tax), NodeId{1101});
  auto medical_endpoint =
      cluster.make_client(ClientId{1}, options_for(medical), NodeId{1102});
  SyncClient tax_session(*tax_endpoint, cluster.scheduler());
  SyncClient medical_session(*medical_endpoint, cluster.scheduler());

  ASSERT_TRUE(tax_session.connect(GroupId{1}).ok());
  ASSERT_TRUE(medical_session.connect(GroupId{2}).ok());

  ASSERT_TRUE(tax_session.write(ItemId{100}, to_bytes("tax 2026")).ok());
  ASSERT_TRUE(medical_session.write(ItemId{200}, to_bytes("bp 118/76")).ok());

  // Context isolation: the tax context knows nothing of medical items.
  EXPECT_FALSE(tax_endpoint->context().get(ItemId{100}).is_zero());
  EXPECT_TRUE(tax_endpoint->context().get(ItemId{200}).is_zero());
  EXPECT_FALSE(medical_endpoint->context().get(ItemId{200}).is_zero());
  EXPECT_TRUE(medical_endpoint->context().get(ItemId{100}).is_zero());

  ASSERT_TRUE(tax_session.disconnect().ok());
  ASSERT_TRUE(medical_session.disconnect().ok());

  // Both contexts are independently stored and re-acquired.
  auto tax2 = cluster.make_client(ClientId{1}, options_for(tax), NodeId{1103});
  auto medical2 = cluster.make_client(ClientId{1}, options_for(medical), NodeId{1104});
  SyncClient tax_session2(*tax2, cluster.scheduler());
  SyncClient medical_session2(*medical2, cluster.scheduler());
  ASSERT_TRUE(tax_session2.connect(GroupId{1}).ok());
  ASSERT_TRUE(medical_session2.connect(GroupId{2}).ok());
  EXPECT_FALSE(tax2->context().get(ItemId{100}).is_zero());
  EXPECT_FALSE(medical2->context().get(ItemId{200}).is_zero());
  EXPECT_TRUE(tax_session2.read_value(ItemId{100}).ok());
  EXPECT_TRUE(medical_session2.read_value(ItemId{200}).ok());
}

TEST(MultiGroup, PolicyMismatchRejectedByServers) {
  // The same item group cannot be accessed under a different consistency
  // model than it was created with (§5.2): a record claiming the wrong
  // model for its group is rejected by every honest server.
  ClusterOptions cluster_options;
  cluster_options.start_gossip = false;
  Cluster cluster(cluster_options);
  cluster.set_group_policy(policy_for(GroupId{1}, ConsistencyModel::kMRC));

  // A confused (or malicious) client writes CC-flavored records into the
  // MRC group.
  auto confused_options = options_for(policy_for(GroupId{1}, ConsistencyModel::kCC));
  confused_options.round_timeout = milliseconds(100);
  confused_options.max_read_rounds = 2;
  auto confused = cluster.make_client(ClientId{1}, confused_options);
  SyncClient sync(*confused, cluster.scheduler());
  EXPECT_FALSE(sync.write(ItemId{10}, to_bytes("wrong model")).ok());
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.server(s).store().current(ItemId{10}), nullptr);
  }
}

TEST(SessionGuarantees, FreshClientStartsUnconstrained) {
  // A principal with no prior session has an empty context: any value is
  // acceptable on first contact (MRC constrains only relative to what a
  // client has SEEN).
  ClusterOptions cluster_options;
  cluster_options.start_gossip = false;
  Cluster cluster(cluster_options);
  const GroupPolicy policy = policy_for(GroupId{1}, ConsistencyModel::kMRC);
  cluster.set_group_policy(policy);

  auto writer = cluster.make_client(ClientId{1}, options_for(policy));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.write(ItemId{10}, to_bytes("existing")).ok());

  auto fresh = cluster.make_client(ClientId{2}, options_for(policy));
  SyncClient fresh_sync(*fresh, cluster.scheduler());
  ASSERT_TRUE(fresh_sync.connect(GroupId{1}).ok());
  EXPECT_TRUE(fresh->context().empty());
  EXPECT_TRUE(fresh_sync.read_value(ItemId{10}).ok());
}

}  // namespace
}  // namespace securestore
