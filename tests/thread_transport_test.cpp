// Tests for the real-time transport: the whole protocol stack running on
// wall-clock time with a background dispatch thread, driven from the main
// thread through promises.
#include <gtest/gtest.h>

#include <future>

#include "core/client.h"
#include "core/server.h"
#include "net/thread_transport.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SecureStoreServer;
using core::SharingMode;

constexpr GroupId kGroup{1};
constexpr ItemId kX{10};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

/// Real-time deployment harness: n servers + key directory over a
/// ThreadTransport with fast LAN-ish latencies.
struct LiveDeployment {
  net::ThreadTransport transport;
  core::StoreConfig config;
  std::vector<crypto::KeyPair> client_pairs;
  std::vector<std::unique_ptr<SecureStoreServer>> servers;

  explicit LiveDeployment(std::uint32_t n, std::uint32_t b, std::uint64_t seed = 1)
      : transport(sim::NetworkModel(Rng(seed),
                                    sim::LinkProfile{microseconds(200), microseconds(100), 0})) {
    config.n = n;
    config.b = b;
    Rng rng(seed + 1);
    for (std::uint32_t c = 1; c <= 4; ++c) {
      client_pairs.push_back(crypto::KeyPair::generate(rng));
      config.client_keys[c] = client_pairs.back().public_key;
    }
    std::vector<crypto::KeyPair> server_pairs;
    for (std::uint32_t i = 0; i < n; ++i) {
      config.servers.push_back(NodeId{i});
      server_pairs.push_back(crypto::KeyPair::generate(rng));
      config.server_keys[NodeId{i}] = server_pairs.back().public_key;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      SecureStoreServer::Options options;
      options.gossip.period = milliseconds(20);
      servers.push_back(std::make_unique<SecureStoreServer>(
          transport, NodeId{i}, config, server_pairs[i], options, rng.fork()));
      servers.back()->set_group_policy(mrc_policy());
    }
  }

  ~LiveDeployment() {
    // Stop dispatch BEFORE the servers are destroyed (pending jobs may
    // reference them).
    transport.stop();
  }

  std::unique_ptr<SecureStoreClient> make_client(ClientId id) {
    SecureStoreClient::Options options;
    options.policy = mrc_policy();
    options.round_timeout = milliseconds(500);
    return std::make_unique<SecureStoreClient>(transport, NodeId{1000 + id.value}, id,
                                               client_pairs[id.value - 1], config, options,
                                               Rng(id.value * 97));
  }
};

/// Blocking bridge. Protocol objects are single-threaded BY DESIGN (they
/// run entirely on the dispatch thread), so op *initiation* is posted onto
/// that thread via schedule(0); the completion callback fulfills a promise
/// the main thread waits on.
VoidResult wait_void(net::Transport& transport,
                     const std::function<void(SecureStoreClient::VoidCb)>& op) {
  auto promise = std::make_shared<std::promise<VoidResult>>();
  auto future = promise->get_future();
  transport.schedule(0, [op, promise] {
    op([promise](VoidResult r) { promise->set_value(std::move(r)); });
  });
  if (future.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
    return VoidResult(Error::kTimeout, "wall-clock safety timeout");
  }
  return future.get();
}

Result<core::ReadOutput> wait_read(net::Transport& transport, SecureStoreClient& client,
                                   ItemId item) {
  auto promise = std::make_shared<std::promise<Result<core::ReadOutput>>>();
  auto future = promise->get_future();
  transport.schedule(0, [&client, item, promise] {
    client.read(item,
                [promise](Result<core::ReadOutput> r) { promise->set_value(std::move(r)); });
  });
  if (future.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
    return Result<core::ReadOutput>(Error::kTimeout, "wall-clock safety timeout");
  }
  return future.get();
}

TEST(ThreadTransport, FullSessionOverRealTime) {
  LiveDeployment deployment(4, 1);
  auto client = deployment.make_client(ClientId{1});

  ASSERT_TRUE(
      wait_void(deployment.transport, [&](auto cb) { client->connect(kGroup, cb); }).ok());
  ASSERT_TRUE(wait_void(deployment.transport, [&](auto cb) {
                client->write(kX, to_bytes("live value"), cb);
              }).ok());

  const auto result = wait_read(deployment.transport, *client, kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(result->value), "live value");

  ASSERT_TRUE(wait_void(deployment.transport, [&](auto cb) { client->disconnect(cb); }).ok());
}

TEST(ThreadTransport, GossipDisseminatesInRealTime) {
  LiveDeployment deployment(4, 1);
  auto client = deployment.make_client(ClientId{1});
  ASSERT_TRUE(wait_void(deployment.transport, [&](auto cb) {
                client->write(kX, to_bytes("spread live"), cb);
              }).ok());

  // Written to b+1 = 2 servers; gossip (20 ms period) reaches the rest.
  // Stores are only touched on the dispatch thread, so inspect them there.
  auto count_replicas = [&] {
    auto promise = std::make_shared<std::promise<std::size_t>>();
    auto future = promise->get_future();
    deployment.transport.schedule(0, [&deployment, promise] {
      std::size_t have = 0;
      for (const auto& server : deployment.servers) {
        if (server->store().current(kX) != nullptr) ++have;
      }
      promise->set_value(have);
    });
    return future.get();
  };
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t have = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    have = count_replicas();
    if (have == deployment.servers.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(have, deployment.servers.size());
}

TEST(ThreadTransport, ConcurrentClientsDoNotInterfere) {
  LiveDeployment deployment(4, 1);
  auto alice = deployment.make_client(ClientId{1});
  auto bob = deployment.make_client(ClientId{2});

  // Two clients issue interleaved async ops (both posted to the dispatch
  // thread); both complete correctly.
  auto alice_write = std::make_shared<std::promise<VoidResult>>();
  auto bob_write = std::make_shared<std::promise<VoidResult>>();
  deployment.transport.schedule(0, [&] {
    alice->write(ItemId{1}, to_bytes("alice data"),
                 [alice_write](VoidResult r) { alice_write->set_value(std::move(r)); });
    bob->write(ItemId{2}, to_bytes("bob data"),
               [bob_write](VoidResult r) { bob_write->set_value(std::move(r)); });
  });

  ASSERT_TRUE(alice_write->get_future().get().ok());
  ASSERT_TRUE(bob_write->get_future().get().ok());

  const auto alice_view = wait_read(deployment.transport, *alice, ItemId{1});
  const auto bob_view = wait_read(deployment.transport, *bob, ItemId{2});
  ASSERT_TRUE(alice_view.ok());
  ASSERT_TRUE(bob_view.ok());
  EXPECT_EQ(to_string(alice_view->value), "alice data");
  EXPECT_EQ(to_string(bob_view->value), "bob data");
}

TEST(ThreadTransport, NowAdvancesWithWallClock) {
  net::ThreadTransport transport(sim::NetworkModel(Rng(1), sim::zero_profile()));
  const SimTime before = transport.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const SimTime after = transport.now();
  EXPECT_GE(after - before, milliseconds(15));
  transport.stop();
}

TEST(ThreadTransport, BatchedDeliveryDrainsBurstsWithCappedBatches) {
  // Zero-latency sends publish straight into the destination ring from the
  // caller thread; the dispatcher drains them in batches capped by
  // set_max_batch. Every message arrives exactly once, in send order.
  net::ThreadTransport transport(sim::NetworkModel(Rng(1), sim::zero_profile()));
  transport.set_max_batch(4);
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> calls{0};
  std::atomic<bool> order_ok{true};
  auto next_expected = std::make_shared<std::uint32_t>(0);  // dispatch thread only
  transport.register_node_batched(NodeId{1}, [&, next_expected](
                                                 std::vector<net::Delivery>& batch) {
    if (batch.empty() || batch.size() > 4) order_ok = false;
    for (const net::Delivery& d : batch) {
      Reader r(d.payload);
      if (r.u32() != (*next_expected)++) order_ok = false;
    }
    calls.fetch_add(1);
    total.fetch_add(batch.size());
  });

  constexpr std::uint32_t kCount = 400;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    Writer w;
    w.u32(i);
    transport.send(NodeId{0}, NodeId{1}, w.take());
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (total.load() < kCount && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  transport.stop();
  EXPECT_EQ(total.load(), kCount);
  EXPECT_TRUE(order_ok.load());
  EXPECT_GE(calls.load(), kCount / 4);  // cap respected ⇒ at least count/cap calls
  EXPECT_EQ(transport.stats().messages_delivered, kCount);
  EXPECT_EQ(transport.stats().messages_dropped, 0u);
}

TEST(ThreadTransport, SendsRacingStopAreDeliveredOrCountedDropped) {
  // Same exact-accounting contract as the TCP transport: sends racing
  // stop() either reach the handler or land in messages_dropped.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  net::ThreadTransport transport(sim::NetworkModel(Rng(1), sim::zero_profile()));
  std::atomic<std::uint64_t> handled{0};
  transport.register_node_batched(NodeId{9}, [&](std::vector<net::Delivery>& batch) {
    handled.fetch_add(batch.size());
  });

  std::atomic<bool> go{false};
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        transport.send(NodeId{0}, NodeId{9}, to_bytes("racing"));
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  transport.stop();
  for (auto& thread : senders) thread.join();

  const auto& stats = transport.stats();
  EXPECT_EQ(stats.messages_sent, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.messages_sent, stats.messages_delivered + stats.messages_dropped);
  EXPECT_EQ(stats.messages_delivered, handled.load());
}

TEST(ThreadTransport, StopIsIdempotentAndDropsPendingJobs) {
  auto transport =
      std::make_unique<net::ThreadTransport>(sim::NetworkModel(Rng(1), sim::zero_profile()));
  auto fired = std::make_shared<std::atomic<bool>>(false);
  transport->schedule(seconds(60), [fired] { *fired = true; });
  transport->stop();
  transport->stop();
  transport.reset();
  EXPECT_FALSE(*fired);
}

}  // namespace
}  // namespace securestore
