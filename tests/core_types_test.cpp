// Unit tests for the core data types: timestamps, contexts, signed records,
// protocol messages, authorization tokens, confidentiality codec.
#include <gtest/gtest.h>

#include "core/auth.h"
#include "core/confidential.h"
#include "core/context.h"
#include "core/messages.h"
#include "core/record.h"
#include "core/timestamp.h"
#include "crypto/keys.h"

namespace securestore::core {
namespace {

constexpr GroupId kGroup{3};
constexpr ItemId kX{10};
constexpr ItemId kY{11};

// ------------------------------- Timestamp ---------------------------------

TEST(Timestamp, OrderByTimeThenUid) {
  Timestamp a{1, ClientId{5}, {}};
  Timestamp b{2, ClientId{1}, {}};
  EXPECT_LT(a, b);  // time dominates

  Timestamp c{2, ClientId{2}, {}};
  EXPECT_LT(b, c);  // uid breaks ties
}

TEST(Timestamp, DigestDoesNotOrder) {
  Timestamp a{1, ClientId{1}, to_bytes("da")};
  Timestamp b{1, ClientId{1}, to_bytes("db")};
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.equivocates(b));
  EXPECT_FALSE(a.equivocates(a));
}

TEST(Timestamp, EncodingRoundtrip) {
  Timestamp ts{123456789, ClientId{42}, to_bytes("digest bytes")};
  Writer w;
  ts.encode(w);
  Reader r(w.data());
  const Timestamp decoded = Timestamp::decode(r);
  EXPECT_EQ(decoded, ts);
  EXPECT_TRUE(r.at_end());
}

TEST(Timestamp, ZeroDetection) {
  EXPECT_TRUE(Timestamp{}.is_zero());
  EXPECT_FALSE((Timestamp{1, {}, {}}).is_zero());
}

// -------------------------------- Context ----------------------------------

TEST(Context, AdvanceOnlyMovesForward) {
  Context context(kGroup);
  context.advance(kX, Timestamp{5, {}, {}});
  context.advance(kX, Timestamp{3, {}, {}});  // no-op
  EXPECT_EQ(context.get(kX).time, 5u);
  context.advance(kX, Timestamp{9, {}, {}});
  EXPECT_EQ(context.get(kX).time, 9u);
}

TEST(Context, MergeIsPointwiseMax) {
  Context a(kGroup);
  a.set(kX, Timestamp{5, {}, {}});
  a.set(kY, Timestamp{1, {}, {}});

  Context b(kGroup);
  b.set(kX, Timestamp{2, {}, {}});
  b.set(kY, Timestamp{7, {}, {}});
  b.set(ItemId{12}, Timestamp{4, {}, {}});

  a.merge(b);
  EXPECT_EQ(a.get(kX).time, 5u);
  EXPECT_EQ(a.get(kY).time, 7u);
  EXPECT_EQ(a.get(ItemId{12}).time, 4u);
}

TEST(Context, Dominates) {
  Context newer(kGroup);
  newer.set(kX, Timestamp{5, {}, {}});
  newer.set(kY, Timestamp{5, {}, {}});

  Context older(kGroup);
  older.set(kX, Timestamp{3, {}, {}});

  EXPECT_TRUE(newer.dominates(older));
  EXPECT_FALSE(older.dominates(newer));
  EXPECT_TRUE(newer.dominates(newer));
  EXPECT_TRUE(newer.dominates(Context(kGroup)));  // empty is dominated by all
}

TEST(Context, SerializationIsCanonical) {
  // Insertion order must not affect the bytes (signatures depend on this).
  Context a(kGroup);
  a.set(kX, Timestamp{1, {}, {}});
  a.set(kY, Timestamp{2, {}, {}});

  Context b(kGroup);
  b.set(kY, Timestamp{2, {}, {}});
  b.set(kX, Timestamp{1, {}, {}});

  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(Context::deserialize(a.serialize()), a);
}

TEST(Context, MissingItemIsZero) {
  Context context(kGroup);
  EXPECT_TRUE(context.get(ItemId{404}).is_zero());
}

// ------------------------------ WriteRecord --------------------------------

WriteRecord sample_record(const crypto::KeyPair& keys) {
  WriteRecord record;
  record.item = kX;
  record.group = kGroup;
  record.model = ConsistencyModel::kCC;
  record.writer = ClientId{1};
  record.value = to_bytes("the value");
  record.ts = Timestamp{10, {}, {}};
  Context context(kGroup);
  context.set(kX, record.ts);
  record.writer_context = context;
  record.sign(keys.seed);
  return record;
}

TEST(WriteRecord, SignVerifyRoundtrip) {
  Rng rng(1);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  const WriteRecord record = sample_record(keys);
  EXPECT_TRUE(record.verify(keys.public_key));
  EXPECT_TRUE(record.verify_meta(keys.public_key));
}

TEST(WriteRecord, TamperedValueDetected) {
  Rng rng(2);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  WriteRecord record = sample_record(keys);
  record.value[0] ^= 1;
  // Meta still verifies (signature covers the digest), but the value check
  // fails — exactly the split servers rely on.
  EXPECT_TRUE(record.verify_meta(keys.public_key));
  EXPECT_FALSE(record.verify(keys.public_key));
}

TEST(WriteRecord, TamperedMetaDetected) {
  Rng rng(3);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);

  WriteRecord bumped_ts = sample_record(keys);
  bumped_ts.ts.time += 1;
  EXPECT_FALSE(bumped_ts.verify_meta(keys.public_key));

  WriteRecord changed_item = sample_record(keys);
  changed_item.item = kY;
  EXPECT_FALSE(changed_item.verify_meta(keys.public_key));

  WriteRecord changed_context = sample_record(keys);
  Context poisoned(kGroup);
  poisoned.set(kY, Timestamp{999999, {}, {}});
  changed_context.writer_context = poisoned;
  EXPECT_FALSE(changed_context.verify_meta(keys.public_key));
}

TEST(WriteRecord, MetaOnlyStripsValueButStaysVerifiable) {
  Rng rng(4);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  const WriteRecord meta = sample_record(keys).meta_only();
  EXPECT_TRUE(meta.value.empty());
  EXPECT_TRUE(meta.verify_meta(keys.public_key));
}

TEST(WriteRecord, SerializationRoundtrip) {
  Rng rng(5);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  const WriteRecord record = sample_record(keys);
  const WriteRecord decoded = WriteRecord::deserialize(record.serialize());
  EXPECT_EQ(decoded, record);
  EXPECT_TRUE(decoded.verify(keys.public_key));
}

TEST(WriteRecord, MismatchedTsDigestRejectedAtSignTime) {
  Rng rng(6);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  WriteRecord record;
  record.item = kX;
  record.value = to_bytes("v");
  record.ts = Timestamp{1, ClientId{1}, to_bytes("not the digest")};
  EXPECT_THROW(record.sign(keys.seed), std::invalid_argument);
}

TEST(StoredContext, SignVerifyRoundtrip) {
  Rng rng(7);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  Context context(kGroup);
  context.set(kX, Timestamp{3, {}, {}});
  StoredContext stored{ClientId{2}, context, {}};
  stored.sign(keys.seed);
  EXPECT_TRUE(stored.verify(keys.public_key));

  stored.context.set(kX, Timestamp{4, {}, {}});
  EXPECT_FALSE(stored.verify(keys.public_key));
}

// ------------------------------- Messages ----------------------------------

TEST(Messages, AllRoundtrip) {
  Rng rng(8);
  const crypto::KeyPair keys = crypto::KeyPair::generate(rng);
  const WriteRecord record = sample_record(keys);

  {
    ContextReadReq req{ClientId{1}, kGroup};
    const auto decoded = ContextReadReq::deserialize(req.serialize());
    EXPECT_EQ(decoded.owner, req.owner);
    EXPECT_EQ(decoded.group, req.group);
  }
  {
    StoredContext stored{ClientId{1}, Context(kGroup), to_bytes("s")};
    ContextReadResp resp{stored};
    const auto decoded = ContextReadResp::deserialize(resp.serialize());
    ASSERT_TRUE(decoded.stored.has_value());
    EXPECT_EQ(*decoded.stored, stored);

    ContextReadResp empty;
    EXPECT_FALSE(ContextReadResp::deserialize(empty.serialize()).stored.has_value());
  }
  {
    MetaReq req;
    req.item = kX;
    req.requester = ClientId{2};
    const auto decoded = MetaReq::deserialize(req.serialize());
    EXPECT_EQ(decoded.item, kX);
    EXPECT_FALSE(decoded.token.has_value());
  }
  {
    MetaResp resp;
    resp.faulty_writer = true;
    resp.meta = record.meta_only();
    const auto decoded = MetaResp::deserialize(resp.serialize());
    EXPECT_TRUE(decoded.faulty_writer);
    ASSERT_TRUE(decoded.meta.has_value());
    EXPECT_EQ(*decoded.meta, record.meta_only());
  }
  {
    WriteReq req;
    req.record = record;
    const auto decoded = WriteReq::deserialize(req.serialize());
    EXPECT_EQ(decoded.record, record);
  }
  {
    WriteResp resp;
    resp.ok = true;
    resp.stability_share = to_bytes("share");
    const auto decoded = WriteResp::deserialize(resp.serialize());
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.stability_share, to_bytes("share"));
  }
  {
    LogReadResp resp;
    resp.records = {record, record};
    const auto decoded = LogReadResp::deserialize(resp.serialize());
    EXPECT_EQ(decoded.records.size(), 2u);
    EXPECT_EQ(decoded.records[0], record);
  }
  {
    ReconstructResp resp;
    resp.metas = {record.meta_only()};
    const auto decoded = ReconstructResp::deserialize(resp.serialize());
    ASSERT_EQ(decoded.metas.size(), 1u);
    EXPECT_EQ(decoded.metas[0], record.meta_only());
  }
}

TEST(Messages, TrailingGarbageRejected) {
  ContextReadReq req{ClientId{1}, kGroup};
  Bytes bytes = req.serialize();
  bytes.push_back(0xff);
  EXPECT_THROW(ContextReadReq::deserialize(bytes), DecodeError);
}

// --------------------------------- Auth ------------------------------------

TEST(Auth, TokenLifecycle) {
  Rng rng(9);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const Authorizer authorizer(authority.seed);
  const TokenVerifier verifier(authority.public_key);

  const AuthToken token = authorizer.issue(ClientId{1}, kGroup, Rights::kReadWrite);
  EXPECT_TRUE(verifier.check(token, ClientId{1}, kGroup, Rights::kRead, 0));
  EXPECT_TRUE(verifier.check(token, ClientId{1}, kGroup, Rights::kWrite, 0));

  // Wrong principal / group / missing token all fail.
  EXPECT_FALSE(verifier.check(token, ClientId{2}, kGroup, Rights::kRead, 0));
  EXPECT_FALSE(verifier.check(token, ClientId{1}, GroupId{99}, Rights::kRead, 0));
  EXPECT_FALSE(verifier.check(std::nullopt, ClientId{1}, kGroup, Rights::kRead, 0));

  // Read-only token cannot write.
  const AuthToken read_only = authorizer.issue(ClientId{1}, kGroup, Rights::kRead);
  EXPECT_TRUE(verifier.check(read_only, ClientId{1}, kGroup, Rights::kRead, 0));
  EXPECT_FALSE(verifier.check(read_only, ClientId{1}, kGroup, Rights::kWrite, 0));
}

TEST(Auth, ExpiryEnforced) {
  Rng rng(10);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const Authorizer authorizer(authority.seed);
  const TokenVerifier verifier(authority.public_key);

  const AuthToken token = authorizer.issue(ClientId{1}, kGroup, Rights::kRead,
                                           /*expiry=*/seconds(10));
  EXPECT_TRUE(verifier.check(token, ClientId{1}, kGroup, Rights::kRead, seconds(5)));
  EXPECT_FALSE(verifier.check(token, ClientId{1}, kGroup, Rights::kRead, seconds(10)));
}

TEST(Auth, ForgedTokenRejected) {
  Rng rng(11);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const crypto::KeyPair impostor = crypto::KeyPair::generate(rng);
  const TokenVerifier verifier(authority.public_key);

  const Authorizer fake(impostor.seed);
  const AuthToken token = fake.issue(ClientId{1}, kGroup, Rights::kReadWrite);
  EXPECT_FALSE(verifier.check(token, ClientId{1}, kGroup, Rights::kRead, 0));
}

TEST(Auth, TokenEncodingRoundtrip) {
  Rng rng(12);
  const crypto::KeyPair authority = crypto::KeyPair::generate(rng);
  const AuthToken token =
      Authorizer(authority.seed).issue(ClientId{7}, kGroup, Rights::kWrite, seconds(99));
  Writer w;
  token.encode(w);
  Reader r(w.data());
  const AuthToken decoded = AuthToken::decode(r);
  EXPECT_EQ(decoded.client, token.client);
  EXPECT_EQ(decoded.group, token.group);
  EXPECT_EQ(decoded.rights, token.rights);
  EXPECT_EQ(decoded.expiry, token.expiry);
  EXPECT_EQ(decoded.signature, token.signature);
}

// ----------------------------- Confidentiality -----------------------------

TEST(Confidential, AeadRoundtrip) {
  AeadValueCodec codec(to_bytes("master key"), Rng(13));
  const Bytes plaintext = to_bytes("private medical data");
  const Bytes stored = codec.encode(kX, plaintext);
  EXPECT_NE(stored, plaintext);
  const auto decoded = codec.decode(kX, stored);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, plaintext);
}

TEST(Confidential, PerItemKeysDiffer) {
  AeadValueCodec codec(to_bytes("master key"), Rng(14));
  const Bytes for_x = codec.encode(kX, to_bytes("data"));
  // A ciphertext moved to a different item fails (aad binds the item).
  EXPECT_FALSE(codec.decode(kY, for_x).has_value());
}

TEST(Confidential, WrongKeyFails) {
  AeadValueCodec writer(to_bytes("right key"), Rng(15));
  AeadValueCodec attacker(to_bytes("wrong key"), Rng(16));
  const Bytes stored = writer.encode(kX, to_bytes("secret"));
  EXPECT_FALSE(attacker.decode(kX, stored).has_value());
}

TEST(Confidential, TamperDetected) {
  AeadValueCodec codec(to_bytes("key"), Rng(17));
  Bytes stored = codec.encode(kX, to_bytes("secret"));
  stored[stored.size() / 2] ^= 1;
  EXPECT_FALSE(codec.decode(kX, stored).has_value());
}

TEST(Confidential, RekeyCycle) {
  AeadValueCodec old_codec(to_bytes("old key"), Rng(18));
  AeadValueCodec new_codec(to_bytes("new key"), Rng(19));

  const Bytes stored = old_codec.encode(kX, to_bytes("long-lived record"));
  const auto reencrypted = old_codec.rekey(kX, stored, new_codec);
  ASSERT_TRUE(reencrypted.has_value());

  EXPECT_FALSE(old_codec.decode(kX, *reencrypted).has_value());
  const auto decoded = new_codec.decode(kX, *reencrypted);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(securestore::to_string(*decoded), "long-lived record");
}

TEST(Confidential, PlainCodecPassesThrough) {
  PlainValueCodec codec;
  const Bytes data = to_bytes("public data");
  EXPECT_EQ(codec.encode(kX, data), data);
  EXPECT_EQ(*codec.decode(kX, data), data);
}

}  // namespace
}  // namespace securestore::core
