// Unit tests for the bounded MPSC delivery ring — the transports' lock-free
// producer/consumer handoff. The shutdown test pins the exact-accounting
// contract: after close() returns, every push that reported kOk is visible
// to a final drain, and every rejected push was reported to its caller, so
// sent == drained + rejected holds under arbitrary races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/ring.h"

namespace securestore::net {
namespace {

Delivery make(NodeId from, std::uint8_t tag) { return Delivery{from, Bytes{tag}}; }

TEST(DeliveryRing, PushDrainPreservesFifoOrder) {
  DeliveryRing ring(8);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.try_push(make(NodeId{i}, i)), DeliveryRing::PushResult::kOk);
  }
  std::vector<Delivery> out;
  EXPECT_EQ(ring.drain(out, 32), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].from, NodeId{i});
    EXPECT_EQ(out[i].payload, Bytes{i});
  }
  EXPECT_TRUE(ring.empty());
}

TEST(DeliveryRing, DrainHonorsMaxAndResumes) {
  DeliveryRing ring(8);
  for (std::uint8_t i = 0; i < 6; ++i) {
    ASSERT_EQ(ring.try_push(make(NodeId{1}, i)), DeliveryRing::PushResult::kOk);
  }
  std::vector<Delivery> first;
  EXPECT_EQ(ring.drain(first, 4), 4u);
  EXPECT_FALSE(ring.empty());
  std::vector<Delivery> rest;
  EXPECT_EQ(ring.drain(rest, 4), 2u);
  EXPECT_EQ(rest.front().payload, Bytes{4});
  EXPECT_TRUE(ring.empty());
}

TEST(DeliveryRing, CapacityRoundsUpAndFullIsReported) {
  DeliveryRing ring(3);  // rounds up to 4
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.try_push(make(NodeId{1}, i)), DeliveryRing::PushResult::kOk);
  }
  EXPECT_EQ(ring.try_push(make(NodeId{1}, 99)), DeliveryRing::PushResult::kFull);
  std::vector<Delivery> out;
  EXPECT_EQ(ring.drain(out, 64), 4u);
  // Freed slots are reusable (wrap-around).
  EXPECT_EQ(ring.try_push(make(NodeId{1}, 5)), DeliveryRing::PushResult::kOk);
  out.clear();
  EXPECT_EQ(ring.drain(out, 64), 1u);
  EXPECT_EQ(out.front().payload, Bytes{5});
}

TEST(DeliveryRing, WrapAroundManyTimes) {
  DeliveryRing ring(4);
  std::vector<Delivery> out;
  for (std::uint8_t round = 0; round < 50; ++round) {
    ASSERT_EQ(ring.try_push(make(NodeId{2}, round)), DeliveryRing::PushResult::kOk);
    out.clear();
    ASSERT_EQ(ring.drain(out, 8), 1u);
    ASSERT_EQ(out.front().payload, Bytes{round});
  }
}

TEST(DeliveryRing, ClosedRingRejectsPushesButDrainsRemnants) {
  DeliveryRing ring(8);
  ASSERT_EQ(ring.try_push(make(NodeId{1}, 1)), DeliveryRing::PushResult::kOk);
  ring.close();
  EXPECT_EQ(ring.try_push(make(NodeId{1}, 2)), DeliveryRing::PushResult::kClosed);
  std::vector<Delivery> out;
  EXPECT_EQ(ring.drain(out, 8), 1u);
  EXPECT_EQ(out.front().payload, Bytes{1});
}

TEST(DeliveryRing, ConcurrentPushersRacingCloseAccountExactly) {
  // The satellite-4 contract at ring level: N threads spam pushes while the
  // main thread closes mid-stream. Every push returns kOk (drainable after
  // close) or a rejection (the pusher's drop to count) — nothing is lost,
  // nothing double-counted.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  DeliveryRing ring(64);
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> stop_consumer{false};

  std::thread consumer([&] {
    std::vector<Delivery> out;
    while (!stop_consumer.load(std::memory_order_acquire)) {
      out.clear();
      drained += ring.drain(out, 32);
    }
  });

  std::vector<std::thread> pushers;
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        switch (ring.try_push(make(NodeId{static_cast<std::uint32_t>(t)},
                                   static_cast<std::uint8_t>(i)))) {
          case DeliveryRing::PushResult::kOk:
            ++ok;
            break;
          case DeliveryRing::PushResult::kFull:
          case DeliveryRing::PushResult::kClosed:
            ++rejected;
            break;
        }
      }
    });
  }

  // Close while pushers are (very likely) still running; close() waits out
  // in-flight pushes, so every kOk slot is drainable afterwards.
  ring.close();
  for (auto& thread : pushers) thread.join();
  stop_consumer.store(true, std::memory_order_release);
  consumer.join();

  std::vector<Delivery> remnants;
  drained += ring.drain(remnants, kThreads * kPerThread);

  EXPECT_EQ(ok.load() + rejected.load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(drained.load(), ok.load());
}

}  // namespace
}  // namespace securestore::net
