// Unit tests for the util substrate: bytes/hex, RNG determinism,
// serialization roundtrips and malformed-input rejection, ids, results.
#include <gtest/gtest.h>

#include <unordered_set>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/time.h"

namespace securestore {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), data);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), data);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Crc32, KnownAnswers) {
  // IEEE 802.3 reflected polynomial — the zlib/PNG checksum.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, SeedChainingMatchesConcatenation) {
  const Bytes a = to_bytes("write-ahead ");
  const Bytes b = to_bytes("log frame");
  Bytes joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  EXPECT_EQ(crc32(b, crc32(a)), crc32(joined));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes frame = to_bytes("frame body with a payload");
  const std::uint32_t good = crc32(frame);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] ^= 0x01;
    EXPECT_NE(crc32(frame), good) << "flip at byte " << i;
    frame[i] ^= 0x01;
  }
}

TEST(Bytes, TextRoundtrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
  EXPECT_TRUE(to_bytes("").empty());
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {};
  const Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({}), Bytes{});
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_in_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(12);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(10.0);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, FillCoversAllLengths) {
  Rng rng(14);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 33u}) {
    const Bytes b = rng.bytes(n);
    EXPECT_EQ(b.size(), n);
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng a(15);
  Rng fork1 = a.fork();
  // Draw from parent; the fork must be unaffected compared to a replay.
  Rng b(15);
  Rng fork2 = b.fork();
  (void)a.next_u64();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
}

TEST(Serial, PrimitiveRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str("context");
  w.bytes(Bytes{9, 8, 7});

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str(), "context");
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serial, TruncatedInputThrows) {
  Writer w;
  w.u64(7);
  const Bytes& full = w.data();
  Reader r(BytesView(full.data(), 4));
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serial, TruncatedLengthPrefixedThrows) {
  Writer w;
  w.bytes(Bytes(100, 1));
  Bytes truncated = w.take();
  truncated.resize(50);
  Reader r(truncated);
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Serial, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(Serial, CanonicalEncoding) {
  // Two writers producing the same logical content yield identical bytes —
  // the property signatures rely on.
  Writer w1, w2;
  w1.u32(5);
  w1.str("x");
  w2.u32(5);
  w2.str("x");
  EXPECT_EQ(w1.data(), w2.data());
}

TEST(Ids, DistinctTypesHashAndCompare) {
  std::unordered_set<ItemId> items{ItemId{1}, ItemId{2}, ItemId{1}};
  EXPECT_EQ(items.size(), 2u);
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(to_string(ClientId{3}), "C3");
  EXPECT_EQ(to_string(ItemId{4}), "x4");
  EXPECT_EQ(to_string(NodeId{5}), "S5");
  EXPECT_EQ(to_string(GroupId{6}), "G6");
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(0), 42);

  Result<int> bad(Error::kStale, "older than context");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Error::kStale);
  EXPECT_EQ(bad.detail(), "older than context");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, VoidResult) {
  VoidResult ok;
  EXPECT_TRUE(ok.ok());
  VoidResult fail(Error::kTimeout);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.error(), Error::kTimeout);
}

TEST(Result, ErrorNames) {
  EXPECT_STREQ(error_name(Error::kNone), "ok");
  EXPECT_STREQ(error_name(Error::kBadSignature), "bad-signature");
  EXPECT_STREQ(error_name(Error::kNoAgreement), "no-agreement");
}

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(5), 5000u);
  EXPECT_EQ(seconds(2), 2000000u);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(2500)), 2.5);
}

}  // namespace
}  // namespace securestore
