// Integration tests for the single-writer secure store protocols: session
// management (Fig. 1), reads/writes (Fig. 2), context reconstruction,
// confidentiality and authorization — over the full simulated stack.
#include <gtest/gtest.h>

#include "core/sync.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX1{101};
constexpr ItemId kX2{102};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

GroupPolicy cc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kCC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

SecureStoreClient::Options client_options(const GroupPolicy& policy) {
  SecureStoreClient::Options options;
  options.policy = policy;
  return options;
}

TEST(SecureStore, WriteThenReadRoundtrip) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("medical record v1")).ok());

  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "medical record v1");
}

TEST(SecureStore, ReadOfUnknownItemFails) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  const auto result = sync.read_value(ItemId{999});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kNotFound);
}

TEST(SecureStore, SuccessiveWritesAdvanceVersions) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  std::uint64_t last_time = 0;
  for (int version = 1; version <= 5; ++version) {
    ASSERT_TRUE(sync.write(kX1, to_bytes("v" + std::to_string(version))).ok());
    const auto result = sync.read(kX1);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(to_string(result->value), "v" + std::to_string(version));
    EXPECT_GT(result->ts.time, last_time);
    last_time = result->ts.time;
  }
}

TEST(SecureStore, SessionCycleCarriesContext) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  {
    auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    ASSERT_TRUE(sync.write(kX1, to_bytes("session-1 value")).ok());
    ASSERT_TRUE(sync.disconnect().ok());
  }

  // Let gossip spread the write everywhere before the next session.
  cluster.run_for(seconds(5));

  {
    auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    // The acquired context demands at least the session-1 timestamp.
    EXPECT_FALSE(client->context().get(kX1).is_zero());
    const auto result = sync.read_value(kX1);
    ASSERT_TRUE(result.ok()) << error_name(result.error());
    EXPECT_EQ(to_string(*result), "session-1 value");
  }
}

TEST(SecureStore, SingleWriterManyReaders) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("school newsletter #1")).ok());

  cluster.run_for(seconds(5));  // dissemination

  for (std::uint32_t reader_id = 2; reader_id <= 4; ++reader_id) {
    auto reader = cluster.make_client(ClientId{reader_id}, client_options(mrc_policy()));
    SyncClient reader_sync(*reader, cluster.scheduler());
    ASSERT_TRUE(reader_sync.connect(kGroup).ok());
    const auto result = reader_sync.read_value(kX1);
    ASSERT_TRUE(result.ok()) << "reader " << reader_id;
    EXPECT_EQ(to_string(*result), "school newsletter #1");
  }
}

TEST(SecureStore, MonotonicReadsAcrossStaleServers) {
  // A reader that has seen version 2 must never accept version 1 again,
  // even when the servers it prefers only hold version 1.
  ClusterOptions options;
  options.start_gossip = false;  // freeze dissemination: staleness persists
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());

  // v1 lands on servers {0,1}; v2 on servers {2,3} via changed preference.
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("v1")).ok());
  writer->set_server_preference({NodeId{2}, NodeId{3}, NodeId{0}, NodeId{1}});
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("v2")).ok());

  // Reader prefers the stale servers {0,1} but carries no context yet: MRC
  // allows v1 on first contact...
  auto reader = cluster.make_client(ClientId{2}, client_options(mrc_policy()));
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  auto first = reader_sync.read_value(kX1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(to_string(*first), "v1");

  // ...then it reads from fresh servers and sees v2...
  reader->set_server_preference({NodeId{2}, NodeId{3}, NodeId{0}, NodeId{1}});
  auto second = reader_sync.read_value(kX1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(to_string(*second), "v2");

  // ...after which the stale servers can never drag it back to v1: the
  // read escalates past them and returns v2 again.
  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  auto third = reader_sync.read_value(kX1);
  ASSERT_TRUE(third.ok()) << error_name(third.error());
  EXPECT_EQ(to_string(*third), "v2");
}

TEST(SecureStore, CausalConsistencyAcrossItems) {
  // C1 reads x1, writes x2 based on it. A client that reads C1's x2 must
  // not subsequently accept a pre-causal value of x1 — the CC context merge
  // forces escalation past servers that only have the old x1.
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(cc_policy());

  // Writer A seeds x1=old everywhere, then x1=new on servers {2,3} only.
  auto writer = cluster.make_client(ClientId{1}, client_options(cc_policy()));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("x1 old")).ok());
  cluster.run_for(seconds(1));
  writer->set_server_preference({NodeId{2}, NodeId{3}, NodeId{0}, NodeId{1}});
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("x1 new")).ok());
  // Write x2 after (and causally dependent on) x1=new; lands on {2,3}.
  ASSERT_TRUE(writer_sync.write(kX2, to_bytes("x2 derived from new x1")).ok());

  // Reader reads x2 from the fresh servers, then is pointed at the stale
  // ones for x1: CC must refuse "x1 old".
  auto reader = cluster.make_client(ClientId{2}, client_options(cc_policy()));
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  reader->set_server_preference({NodeId{2}, NodeId{3}, NodeId{0}, NodeId{1}});
  auto x2 = reader_sync.read_value(kX2);
  ASSERT_TRUE(x2.ok());
  EXPECT_EQ(to_string(*x2), "x2 derived from new x1");

  reader->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  auto x1 = reader_sync.read_value(kX1);
  ASSERT_TRUE(x1.ok()) << error_name(x1.error());
  EXPECT_EQ(to_string(*x1), "x1 new");  // never "x1 old"
}

TEST(SecureStore, StaleEverywhereFailsInsteadOfRegressing) {
  // If no reachable server can satisfy the context, the read fails (kStale)
  // rather than returning an older value — Fig. 2's "contact additional
  // servers or try later".
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("v1")).ok());

  // The writer's own context now demands v1's timestamp... simulate a
  // context demanding a FUTURE write by advancing it artificially.
  core::Timestamp future;
  future.time = writer->context().get(kX1).time + 1000;
  writer->mutable_context().set(kX1, future);

  auto result = writer_sync.read_value(kX1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kStale);
}

TEST(SecureStore, ContextReconstructionAfterCrash) {
  // Session 1 writes but never disconnects (client crash): the stored
  // context is missing, yet reconstruction from item meta-data recovers the
  // timestamps (§5.1's expensive path).
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  core::Timestamp written_ts;
  {
    auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    ASSERT_TRUE(sync.write(kX1, to_bytes("unsaved session")).ok());
    written_ts = client->context().get(kX1);
    // no disconnect: context never stored
  }

  cluster.run_for(seconds(5));

  auto recovered = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*recovered, cluster.scheduler());

  // A plain connect "succeeds" (quorum reached) but yields an empty context.
  ASSERT_TRUE(sync.connect(kGroup).ok());
  EXPECT_TRUE(recovered->context().get(kX1).is_zero());

  // Reconstruction recovers the lost timestamp from the servers' meta-data.
  ASSERT_TRUE(sync.reconstruct_context(kGroup).ok());
  EXPECT_EQ(recovered->context().get(kX1).time, written_ts.time);

  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "unsaved session");
}

TEST(SecureStore, EncryptedValuesOpaqueToServers) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto options = client_options(mrc_policy());
  options.codec = std::make_shared<core::AeadValueCodec>(to_bytes("owner master key"),
                                                         Rng(99));
  auto client = cluster.make_client(ClientId{1}, options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  const std::string secret = "tax return 2026: total income ...";
  ASSERT_TRUE(sync.write(kX1, to_bytes(secret)).ok());

  // Every stored copy is ciphertext: the plaintext appears nowhere.
  cluster.run_for(seconds(5));
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    const core::WriteRecord* record = cluster.server(s).store().current(kX1);
    if (record == nullptr) continue;
    const std::string stored = to_string(record->value);
    EXPECT_EQ(stored.find("tax return"), std::string::npos) << "server " << s;
  }

  // The owner still reads it back.
  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), secret);

  // A reader without the key gets an authenticated-decryption failure, not
  // garbage.
  auto stranger = cluster.make_client(ClientId{2}, client_options(mrc_policy()));
  auto stranger_options = client_options(mrc_policy());
  stranger_options.codec =
      std::make_shared<core::AeadValueCodec>(to_bytes("wrong key"), Rng(100));
  auto stranger2 = cluster.make_client(ClientId{3}, stranger_options);
  SyncClient stranger_sync(*stranger2, cluster.scheduler());
  ASSERT_TRUE(stranger_sync.connect(kGroup).ok());
  const auto denied = stranger_sync.read_value(kX1);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error(), Error::kBadSignature);
}

TEST(SecureStore, RandomTimestampIncrementsStayMonotonic) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto options = client_options(mrc_policy());
  options.random_ts_increment = true;
  auto client = cluster.make_client(ClientId{1}, options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  std::uint64_t previous = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sync.write(kX1, to_bytes("v")).ok());
    const std::uint64_t current = client->context().get(kX1).time;
    EXPECT_GT(current, previous);
    previous = current;
  }
}

TEST(SecureStore, LargeValuesRoundtrip) {
  // Values the size of real documents (1 MB) flow through serialization,
  // signing (digest-based, so cost is one hash), dissemination and reads.
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  Rng rng(2024);
  const Bytes megabyte = rng.bytes(1024 * 1024);
  ASSERT_TRUE(sync.write(kX1, megabyte).ok());

  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(*result, megabyte);

  // And it disseminates intact.
  cluster.run_for(seconds(10));
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    const core::WriteRecord* record = cluster.server(s).store().current(kX1);
    ASSERT_NE(record, nullptr) << "server " << s;
    EXPECT_EQ(record->value.size(), megabyte.size());
  }
}

TEST(SecureStore, EmptyValueIsValid) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());
  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.write(kX1, Bytes{}).ok());
  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(SecureStore, ListGroupEnumeratesItems) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("alpha")).ok());
  ASSERT_TRUE(sync.write(kX2, to_bytes("beta")).ok());
  cluster.run_for(seconds(5));

  const auto listing = sync.list_group(kGroup);
  ASSERT_TRUE(listing.ok()) << error_name(listing.error());
  ASSERT_EQ(listing->size(), 2u);
  EXPECT_EQ((*listing)[0].item, kX1);
  EXPECT_EQ((*listing)[1].item, kX2);
  EXPECT_EQ((*listing)[0].writer, ClientId{1});
  EXPECT_FALSE((*listing)[0].ts.is_zero());

  // Empty/unknown group lists empty.
  const auto empty = sync.list_group(GroupId{555});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(SecureStore, ReadRepairHealsLaggingServers) {
  ClusterOptions options;
  options.start_gossip = false;  // only read repair can spread data
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto writer_opts = client_options(mrc_policy());
  auto writer = cluster.make_client(ClientId{1}, writer_opts);
  writer->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.write(kX1, to_bytes("repair me")).ok());
  ASSERT_EQ(cluster.server(2).store().current(kX1), nullptr);
  ASSERT_EQ(cluster.server(3).store().current(kX1), nullptr);

  // A repairing reader that contacts a mixed fresh/stale set.
  auto reader_opts = client_options(mrc_policy());
  reader_opts.read_repair = true;
  auto reader = cluster.make_client(ClientId{2}, reader_opts);
  reader->set_server_preference({NodeId{0}, NodeId{2}, NodeId{1}, NodeId{3}});
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.read_value(kX1).ok());
  cluster.run_for(seconds(1));

  // Server 2 (contacted, lagging) was repaired; server 3 (never contacted)
  // was not.
  EXPECT_NE(cluster.server(2).store().current(kX1), nullptr);
  EXPECT_EQ(cluster.server(3).store().current(kX1), nullptr);
}

TEST(SecureStore, MidSimulationRestart) {
  ClusterOptions options;
  options.gossip.period = milliseconds(200);
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(kX1, to_bytes("survives reboot")).ok());
  cluster.run_for(seconds(5));  // everywhere via gossip

  // Reboot with state: immediately serves the item again.
  cluster.restart_server(1, /*restore_state=*/true);
  ASSERT_NE(cluster.server(1).store().current(kX1), nullptr);

  // Reboot WITHOUT state (disk lost): empty at first, re-learns via gossip.
  cluster.restart_server(2, /*restore_state=*/false);
  EXPECT_EQ(cluster.server(2).store().current(kX1), nullptr);
  cluster.run_for(seconds(10));
  ASSERT_NE(cluster.server(2).store().current(kX1), nullptr);
  EXPECT_EQ(to_string(cluster.server(2).store().current(kX1)->value), "survives reboot");

  // The store kept working throughout.
  const auto result = sync.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "survives reboot");
}

TEST(SecureStore, PeriodicSnapshotToDisk) {
  // A server configured with a snapshot path persists periodically; a new
  // server booted from that path has the data.
  const std::string path = "/tmp/securestore_server_snap_test.bin";
  std::remove(path.c_str());

  sim::Scheduler scheduler;
  net::SimTransport transport(scheduler, sim::NetworkModel(Rng(1), sim::lan_profile()));
  core::StoreConfig config;
  config.n = 1;
  config.b = 0;
  config.servers = {NodeId{0}};
  Rng rng(2);
  const crypto::KeyPair client_pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = client_pair.public_key;
  const crypto::KeyPair server_pair = crypto::KeyPair::generate(rng);
  config.server_keys[NodeId{0}] = server_pair.public_key;

  core::SecureStoreServer::Options server_options;
  server_options.start_gossip = false;
  server_options.snapshot_path = path;
  server_options.snapshot_period = seconds(1);

  {
    core::SecureStoreServer server(transport, NodeId{0}, config, server_pair,
                                   server_options, rng.fork());
    server.set_group_policy(mrc_policy());

    core::SecureStoreClient::Options client_opts;
    client_opts.policy = mrc_policy();
    core::SecureStoreClient client(transport, NodeId{1000}, ClientId{1}, client_pair,
                                   config, client_opts, rng.fork());
    core::SyncClient sync(client, scheduler);
    ASSERT_TRUE(sync.write(kX1, to_bytes("periodically persisted")).ok());
    scheduler.run_until(scheduler.now() + seconds(3));  // >= one snapshot tick
  }

  {
    core::SecureStoreServer rebooted(transport, NodeId{0}, config, server_pair,
                                     server_options, rng.fork());
    ASSERT_NE(rebooted.store().current(kX1), nullptr);
    EXPECT_EQ(to_string(rebooted.store().current(kX1)->value), "periodically persisted");
  }
  std::remove(path.c_str());
}

TEST(SecureStore, ServerRestartFromSnapshot) {
  // Long-term safe keeping (§1): a server's state survives restart via a
  // checksummed snapshot. Two clusters built from the same seed share the
  // key directory, so cluster B models "the same deployment, after reboot".
  ClusterOptions options;
  options.seed = 77;
  options.start_gossip = false;

  Bytes snapshot;
  {
    Cluster cluster(options);
    cluster.set_group_policy(mrc_policy());
    auto client = cluster.make_client(ClientId{1}, client_options(mrc_policy()));
    client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
    SyncClient sync(*client, cluster.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    ASSERT_TRUE(sync.write(kX1, to_bytes("durable value")).ok());
    ASSERT_TRUE(sync.disconnect().ok());
    snapshot = cluster.server(0).snapshot();
  }

  {
    Cluster rebooted(options);
    rebooted.set_group_policy(mrc_policy());
    rebooted.server(0).restore(snapshot);

    const auto* record = rebooted.server(0).store().current(kX1);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(to_string(record->value), "durable value");

    // A client session reads the restored data (and acquires the restored
    // context) through the normal protocols.
    auto client = rebooted.make_client(ClientId{1}, client_options(mrc_policy()));
    client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}});
    SyncClient sync(*client, rebooted.scheduler());
    ASSERT_TRUE(sync.connect(kGroup).ok());
    EXPECT_FALSE(client->context().get(kX1).is_zero());  // context restored too
    const auto result = sync.read_value(kX1);
    ASSERT_TRUE(result.ok()) << error_name(result.error());
    EXPECT_EQ(to_string(*result), "durable value");
  }
}

TEST(SecureStore, AuthorizationEnforced) {
  ClusterOptions options;
  options.require_auth = true;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  // Without a token, writes are rejected (no ok acks -> timeout after
  // escalation) — use a tight timeout to keep the test quick.
  auto no_token_options = client_options(mrc_policy());
  no_token_options.round_timeout = milliseconds(50);
  no_token_options.max_read_rounds = 2;
  auto intruder = cluster.make_client(ClientId{2}, no_token_options);
  SyncClient intruder_sync(*intruder, cluster.scheduler());
  ASSERT_TRUE(intruder_sync.connect(kGroup).ok());
  EXPECT_FALSE(intruder_sync.write(kX1, to_bytes("sneak")).ok());

  // With a token, everything works.
  auto authorized_options = client_options(mrc_policy());
  authorized_options.token = cluster.issue_token(ClientId{1}, kGroup);
  auto member = cluster.make_client(ClientId{1}, authorized_options);
  SyncClient member_sync(*member, cluster.scheduler());
  ASSERT_TRUE(member_sync.connect(kGroup).ok());
  ASSERT_TRUE(member_sync.write(kX1, to_bytes("legit")).ok());
  const auto result = member_sync.read_value(kX1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "legit");

  // A read-only token cannot write.
  auto reader_options = client_options(mrc_policy());
  reader_options.token = cluster.issue_token(ClientId{3}, kGroup, core::Rights::kRead);
  reader_options.round_timeout = milliseconds(50);
  reader_options.max_read_rounds = 2;
  auto reader = cluster.make_client(ClientId{3}, reader_options);
  SyncClient reader_sync(*reader, cluster.scheduler());
  ASSERT_TRUE(reader_sync.connect(kGroup).ok());
  EXPECT_FALSE(reader_sync.write(kX1, to_bytes("overreach")).ok());
  EXPECT_TRUE(reader_sync.read_value(kX1).ok());
}

}  // namespace
}  // namespace securestore
