// Property-based tests: randomized workloads checked against an
// independent oracle.
//
// Rather than scripting specific interleavings, these tests generate random
// operation sequences (writers, readers, fault assignments, gossip timing,
// server preferences) from a seed and verify the invariants the paper
// promises:
//
//  I1 (authenticity): every successful read returns a (value, timestamp)
//     pair some authorized writer actually produced — regardless of faults.
//  I2 (MRC): per client and item, observed timestamps never regress.
//  I3 (CC): a read of item j returning write w forbids later reads of any
//     item i from returning anything older than w's writer-context entry
//     for i (checked against an oracle context maintained OUTSIDE the
//     client).
//  I4 (convergence): once gossip quiesces, every server holds the newest
//     write of every item.
//
// Each suite sweeps many seeds via TEST_P; a failure reproduces exactly
// from its seed. Seeds flow through `testkit::SeedBanner` so they print on
// start and on failure, and `SECURESTORE_SEED=<n>` pins a replay.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/group_key.h"
#include "core/scatter.h"
#include "core/sync.h"
#include "storage/item_store.h"
#include "storage/snapshot.h"
#include "testkit/cluster.h"
#include "testkit/seed.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::ReadOutput;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using core::Timestamp;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};

/// The oracle's record of every write the honest workload performed.
struct WriteOracle {
  // (item, ts) -> value written (ts totally ordered per paper rules).
  std::map<std::pair<std::uint64_t, std::string>, Bytes> writes;

  static std::string ts_key(const Timestamp& ts) {
    // A lexicographically order-preserving key for (time, writer).
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%020llu-%010u",
                  static_cast<unsigned long long>(ts.time), ts.writer.value);
    return buffer;
  }

  void record(ItemId item, const Timestamp& ts, BytesView value) {
    writes[{item.value, ts_key(ts)}] = Bytes(value.begin(), value.end());
  }

  /// I1: the read output must match a recorded write exactly.
  bool authentic(ItemId item, const ReadOutput& output) const {
    const auto it = writes.find({item.value, ts_key(output.ts)});
    return it != writes.end() && it->second == output.value;
  }
};

/// Per-client oracle context for I2/I3, maintained independently of the
/// client's own context.
struct ClientOracle {
  std::map<std::uint64_t, Timestamp> floor;  // item -> minimum acceptable ts

  void check_and_absorb(ItemId item, const ReadOutput& output,
                        const core::Context& writer_context, bool causal) {
    const auto it = floor.find(item.value);
    if (it != floor.end()) {
      EXPECT_FALSE(output.ts < it->second)
          << "consistency regression on item " << item.value;
    }
    auto raise = [&](ItemId raised_item, const Timestamp& ts) {
      auto [entry, inserted] = floor.try_emplace(raised_item.value, ts);
      if (!inserted && entry->second < ts) entry->second = ts;
    };
    raise(item, output.ts);
    if (causal) {
      for (const auto& [dep_item, dep_ts] : writer_context.entries()) {
        raise(ItemId{dep_item.value}, dep_ts);
      }
    }
  }
};

struct Scenario {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t b;
  ConsistencyModel model;
  bool with_faults;
};

class RandomWorkload : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomWorkload, InvariantsHold) {
  Scenario scenario = GetParam();
  const testkit::SeedBanner banner("property.random_workload", scenario.seed,
                                   [] { return ::testing::Test::HasFailure(); });
  scenario.seed = banner.seed();
  Rng rng(scenario.seed);

  ClusterOptions options;
  options.n = scenario.n;
  options.b = scenario.b;
  options.seed = scenario.seed * 7919;
  options.gossip.period = milliseconds(50 + rng.next_below(500));
  options.gossip.fanout = 1 + static_cast<unsigned>(rng.next_below(2));
  if (scenario.with_faults) {
    // Up to b faulty servers with random behaviors.
    const std::size_t faulty = 1 + rng.next_below(scenario.b);
    const faults::ServerFault kMenu[] = {
        faults::ServerFault::kCrash,         faults::ServerFault::kMuteData,
        faults::ServerFault::kStaleContext,  faults::ServerFault::kStaleData,
        faults::ServerFault::kCorruptValues, faults::ServerFault::kDropWrites,
    };
    for (std::size_t i = 0; i < faulty; ++i) {
      options.server_faults.push_back(
          {static_cast<std::uint32_t>(i), {kMenu[rng.next_below(std::size(kMenu))]}});
    }
  }
  Cluster cluster(options);

  const GroupPolicy policy{kGroup, scenario.model, SharingMode::kSingleWriter,
                           core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_options;
  client_options.policy = policy;
  client_options.round_timeout = milliseconds(300);
  client_options.inline_reads = rng.next_bool(0.5);

  // One writer (single-writer data), three readers.
  auto writer = cluster.make_client(ClientId{1}, client_options);
  SyncClient writer_sync(*writer, cluster.scheduler());
  ASSERT_TRUE(writer_sync.connect(kGroup).ok());

  std::vector<std::unique_ptr<SecureStoreClient>> readers;
  std::vector<std::unique_ptr<SyncClient>> reader_syncs;
  std::vector<ClientOracle> reader_oracles(3);
  for (std::uint32_t r = 0; r < 3; ++r) {
    readers.push_back(cluster.make_client(ClientId{2 + r}, client_options));
    reader_syncs.push_back(std::make_unique<SyncClient>(*readers.back(), cluster.scheduler()));
    ASSERT_TRUE(reader_syncs.back()->connect(kGroup).ok());
  }

  WriteOracle write_oracle;
  std::map<std::uint64_t, core::Context> writer_context_of_ts;  // ts.time -> ctx

  auto random_preference = [&](SecureStoreClient& client) {
    std::vector<NodeId> order;
    for (std::uint32_t i = 0; i < scenario.n; ++i) order.push_back(NodeId{i});
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    client.set_server_preference(std::move(order));
  };

  constexpr int kSteps = 40;
  const ItemId items[] = {ItemId{10}, ItemId{11}, ItemId{12}};

  int successful_reads = 0;
  for (int step = 0; step < kSteps; ++step) {
    const std::uint64_t action = rng.next_below(10);
    if (action < 4) {
      // Write a random item.
      const ItemId item = items[rng.next_below(std::size(items))];
      const Bytes value = to_bytes("s" + std::to_string(step) + "-" +
                                   std::to_string(rng.next_below(1000)));
      random_preference(*writer);
      const VoidResult result = writer_sync.write(item, value);
      if (result.ok()) {
        const Timestamp ts = writer->context().get(item);
        write_oracle.record(item, ts, value);
        writer_context_of_ts[ts.time] = writer->context();
      }
    } else if (action < 9) {
      // A random reader reads a random item with a random preference.
      const std::size_t reader = rng.next_below(readers.size());
      const ItemId item = items[rng.next_below(std::size(items))];
      random_preference(*readers[reader]);
      const Result<ReadOutput> result = reader_syncs[reader]->read(item);
      if (result.ok()) {
        ++successful_reads;
        EXPECT_TRUE(write_oracle.authentic(item, *result))
            << "seed " << scenario.seed << " step " << step
            << ": read returned a value never written";
        // Reconstruct the writer context for I3 (the read output does not
        // expose it; recover via the oracle's snapshot at that write).
        const auto snapshot = writer_context_of_ts.find(result->ts.time);
        const core::Context writer_context = snapshot != writer_context_of_ts.end()
                                                 ? snapshot->second
                                                 : core::Context(kGroup);
        reader_oracles[reader].check_and_absorb(
            item, *result, writer_context, scenario.model == ConsistencyModel::kCC);
      } else {
        // Reads may fail (stale/timeout with faults) but must fail clean.
        EXPECT_NE(result.error(), Error::kNone);
      }
    } else {
      // Let gossip run.
      cluster.run_for(milliseconds(rng.next_below(2000)));
    }
  }
  EXPECT_GT(successful_reads, 0) << "workload degenerated: no read ever succeeded";

  // I4: convergence of honest servers after quiescence.
  cluster.run_for(seconds(60));
  for (const ItemId item : items) {
    const core::WriteRecord* reference = nullptr;
    for (std::size_t s = 0; s < cluster.server_count(); ++s) {
      const bool is_faulty =
          std::any_of(options.server_faults.begin(), options.server_faults.end(),
                      [&](const auto& f) { return f.first == s; });
      if (is_faulty) continue;
      const core::WriteRecord* current = cluster.server(s).store().current(item);
      if (reference == nullptr) {
        reference = current;
      } else if (current != nullptr) {
        EXPECT_EQ(current->ts, reference->ts)
            << "seed " << scenario.seed << ": honest servers diverge on item "
            << item.value;
      }
    }
  }
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scenarios.push_back({seed, 4, 1, ConsistencyModel::kMRC, false});
    scenarios.push_back({seed + 100, 4, 1, ConsistencyModel::kCC, false});
    scenarios.push_back({seed + 200, 7, 2, ConsistencyModel::kMRC, true});
    scenarios.push_back({seed + 300, 7, 2, ConsistencyModel::kCC, true});
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload, ::testing::ValuesIn(make_scenarios()),
                         [](const auto& info) {
                           const Scenario& s = info.param;
                           return std::string(s.model == ConsistencyModel::kCC ? "CC" : "MRC") +
                                  (s.with_faults ? "_faulty_" : "_clean_") +
                                  std::to_string(s.seed);
                         });

// ---------------------------------------------------------------------------
// Multi-writer randomized convergence (honest writers, §5.3 timestamps).
// ---------------------------------------------------------------------------

struct MwScenario {
  std::uint64_t seed;
  core::ClientTrust trust;
};

class MultiWriterWorkload : public ::testing::TestWithParam<MwScenario> {};

TEST_P(MultiWriterWorkload, WritersConvergeAndReadsStayMonotonic) {
  const core::ClientTrust trust = GetParam().trust;
  const testkit::SeedBanner banner("property.multi_writer", GetParam().seed,
                                   [] { return ::testing::Test::HasFailure(); });
  const std::uint64_t seed = banner.seed();
  Rng rng(seed);

  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  options.seed = seed * 31;
  options.gossip.period = milliseconds(100);
  Cluster cluster(options);

  const GroupPolicy policy{kGroup, ConsistencyModel::kCC, SharingMode::kMultiWriter, trust};
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_options;
  client_options.policy = policy;
  client_options.round_timeout = milliseconds(300);

  std::vector<std::unique_ptr<SecureStoreClient>> clients;
  std::vector<std::unique_ptr<SyncClient>> syncs;
  for (std::uint32_t c = 1; c <= 3; ++c) {
    clients.push_back(cluster.make_client(ClientId{c}, client_options));
    syncs.push_back(std::make_unique<SyncClient>(*clients.back(), cluster.scheduler()));
    ASSERT_TRUE(syncs.back()->connect(kGroup).ok());
  }

  const ItemId item{50};
  WriteOracle oracle;
  std::vector<Timestamp> last_seen(clients.size());

  for (int step = 0; step < 30; ++step) {
    const std::size_t who = rng.next_below(clients.size());
    if (rng.next_bool(0.5)) {
      const Bytes value = to_bytes("w" + std::to_string(who) + "-s" + std::to_string(step));
      if (syncs[who]->write(item, value).ok()) {
        oracle.record(item, clients[who]->context().get(item), value);
      }
    } else {
      const auto result = syncs[who]->read(item);
      if (result.ok()) {
        EXPECT_TRUE(oracle.authentic(item, *result)) << "seed " << seed;
        EXPECT_FALSE(result->ts < last_seen[who]) << "seed " << seed << ": regression";
        last_seen[who] = result->ts;
      }
    }
    if (rng.next_bool(0.3)) cluster.run_for(milliseconds(rng.next_below(500)));
  }

  // After quiescence all clients agree on the newest value.
  cluster.run_for(seconds(30));
  std::optional<Timestamp> agreed;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const auto result = syncs[c]->read(item);
    if (!result.ok()) continue;
    if (!agreed.has_value()) {
      agreed = result->ts;
    } else {
      EXPECT_EQ(result->ts, *agreed) << "seed " << seed << ": clients diverge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MultiWriterWorkload,
    ::testing::Values(MwScenario{1, core::ClientTrust::kHonest},
                      MwScenario{2, core::ClientTrust::kHonest},
                      MwScenario{3, core::ClientTrust::kHonest},
                      MwScenario{11, core::ClientTrust::kByzantine},
                      MwScenario{12, core::ClientTrust::kByzantine},
                      MwScenario{13, core::ClientTrust::kByzantine}),
    [](const auto& info) {
      return std::string(info.param.trust == core::ClientTrust::kByzantine ? "byz" : "honest") +
             "_" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Snapshot equivalence: after any random workload, snapshot+restore yields
// a server whose visible state answers queries identically.
// ---------------------------------------------------------------------------

class SnapshotEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotEquivalence, RestoreMatchesOriginal) {
  const testkit::SeedBanner banner("property.snapshot_equivalence", GetParam(),
                                   [] { return ::testing::Test::HasFailure(); });
  const std::uint64_t seed = banner.seed();
  Rng rng(seed);

  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(options);
  const GroupPolicy policy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                           core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  SecureStoreClient::Options client_options;
  client_options.policy = policy;
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  for (int step = 0; step < 25; ++step) {
    const ItemId item{10 + rng.next_below(4)};
    (void)sync.write(item, rng.bytes(1 + rng.next_below(200)));
    if (rng.next_bool(0.3)) cluster.run_for(milliseconds(rng.next_below(1000)));
  }
  ASSERT_TRUE(sync.disconnect().ok());

  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    // The server snapshot wraps the store snapshot, the audit chain and
    // the WAL position it covers (0 here: durability off).
    const Bytes server_snapshot = cluster.server(s).snapshot();
    Reader wrapper(server_snapshot);
    const Bytes snapshot = wrapper.bytes();
    const storage::AuditLog audit = storage::AuditLog::deserialize(wrapper.bytes());
    EXPECT_EQ(wrapper.u64(), 0u);
    wrapper.expect_end();
    EXPECT_TRUE(audit.verify()) << "seed " << seed << " server " << s;

    storage::ItemStore restored_items(cluster.config().max_log_entries);
    storage::ContextStore restored_contexts;
    storage::restore_snapshot(snapshot, restored_items, restored_contexts);

    EXPECT_EQ(restored_items.item_count(), cluster.server(s).store().item_count());
    for (const storage::CurrentEntry& entry : cluster.server(s).store().current_index()) {
      const core::WriteRecord* current = cluster.server(s).store().current(entry.item);
      ASSERT_NE(current, nullptr) << "seed " << seed << " server " << s;
      const core::WriteRecord record = *current;  // current() dies at next engine call
      const core::WriteRecord* restored = restored_items.current(record.item);
      ASSERT_NE(restored, nullptr) << "seed " << seed << " server " << s;
      EXPECT_EQ(*restored, record) << "seed " << seed << " server " << s;
    }
    // Snapshot of the restore equals the snapshot (fixpoint).
    EXPECT_EQ(storage::make_snapshot(restored_items, restored_contexts), snapshot);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotEquivalence, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Scattered-store randomized roundtrips across sizes and survivor sets.
// ---------------------------------------------------------------------------

class ScatterRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScatterRoundtrip, RandomSizesAndSurvivors) {
  const testkit::SeedBanner banner("property.scatter_roundtrip", GetParam(),
                                   [] { return ::testing::Test::HasFailure(); });
  const std::uint64_t seed = banner.seed();
  Rng rng(seed);

  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.seed = seed;
  Cluster cluster(options);
  const GroupPolicy policy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                           core::ClientTrust::kHonest};
  cluster.set_group_policy(policy);

  core::ScatteredStore::Options store_options;
  store_options.policy = policy;
  core::ScatteredStore store(cluster.transport(), NodeId{1500}, ClientId{1},
                             cluster.client_keys(ClientId{1}), cluster.config(),
                             store_options, rng.fork());

  auto drive_write = [&](ItemId item, const Bytes& value) {
    std::optional<VoidResult> slot;
    store.write(item, value, [&](VoidResult r) { slot = std::move(r); });
    while (!slot && cluster.scheduler().step()) {
    }
    return slot.has_value() && slot->ok();
  };
  auto drive_read = [&](ItemId item) {
    std::optional<Result<Bytes>> slot;
    store.read(item, [&](Result<Bytes> r) { slot = std::move(r); });
    while (!slot && cluster.scheduler().step()) {
    }
    return slot.value_or(Result<Bytes>(Error::kTimeout));
  };

  for (int round = 0; round < 5; ++round) {
    const ItemId item{50 + static_cast<std::uint64_t>(round)};
    const Bytes value = rng.bytes(rng.next_below(5000));
    ASSERT_TRUE(drive_write(item, value)) << "seed " << seed << " round " << round;

    // Partition a random set of up to n-(b+1) servers.
    const std::size_t kill = rng.next_below(options.n - (options.b + 1) + 1);
    std::vector<std::uint32_t> order(options.n);
    for (std::uint32_t i = 0; i < options.n; ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t i = 0; i < kill; ++i) {
      cluster.transport().network().set_partitioned(NodeId{order[i]}, true);
    }

    const Result<Bytes> result = drive_read(item);
    ASSERT_TRUE(result.ok()) << "seed " << seed << " round " << round << " kill " << kill;
    EXPECT_EQ(*result, value);

    for (std::size_t i = 0; i < kill; ++i) {
      cluster.transport().network().set_partitioned(NodeId{order[i]}, false);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScatterRoundtrip, ::testing::Values(10, 11, 12, 13));

// ---------------------------------------------------------------------------
// Group-key membership churn: after any random add/remove/rotate sequence,
// exactly the current members can unwrap the current bundle, and a removed
// member can never unwrap any epoch after its removal.
// ---------------------------------------------------------------------------

class GroupKeyChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupKeyChurn, AccessMatchesMembershipHistory) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  core::GroupKeyOwner owner(kGroup, crypto::DhKeyPair::generate(rng), rng.fork());

  constexpr std::uint32_t kPeople = 5;
  std::vector<crypto::DhKeyPair> identities;
  for (std::uint32_t person = 0; person < kPeople; ++person) {
    identities.push_back(crypto::DhKeyPair::generate(rng));
  }
  std::set<std::uint32_t> members;
  // removed_at[p] = first epoch p must NOT be able to unwrap (its last
  // removal re-key), or 0 if never removed / re-added since.
  std::map<std::uint32_t, std::uint32_t> locked_out_from;

  for (int step = 0; step < 40; ++step) {
    const std::uint32_t person = static_cast<std::uint32_t>(rng.next_below(kPeople));
    const ClientId who{100 + person};
    switch (rng.next_below(3)) {
      case 0:  // add (or re-add)
        owner.add_member(who, identities[person].public_key);
        members.insert(person);
        locked_out_from.erase(person);
        break;
      case 1:  // remove
        if (owner.remove_member(who)) {
          members.erase(person);
          locked_out_from[person] = owner.epoch();
        }
        break;
      case 2:  // paranoid rotate
        owner.rotate();
        break;
    }

    const core::KeyBundle bundle = owner.make_bundle();
    EXPECT_EQ(bundle.members.size(), members.size()) << "seed " << seed;
    for (std::uint32_t p = 0; p < kPeople; ++p) {
      const auto key = core::unwrap_bundle(bundle, ClientId{100 + p},
                                           identities[p].private_scalar);
      if (members.contains(p)) {
        ASSERT_TRUE(key.has_value()) << "seed " << seed << " step " << step;
        EXPECT_EQ(key->second, owner.current_key());
      } else {
        EXPECT_FALSE(key.has_value()) << "seed " << seed << " step " << step;
        if (const auto it = locked_out_from.find(p); it != locked_out_from.end()) {
          EXPECT_GE(it->second, 1u);  // bookkeeping sanity
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupKeyChurn, ::testing::Values(31, 32, 33, 34, 35));

// ---------------------------------------------------------------------------
// Decoder robustness: random bytes must never crash, only throw DecodeError
// (or parse, for lucky inputs).
// ---------------------------------------------------------------------------

TEST(DecoderRobustness, RandomBytesNeverCrashMessageParsers) {
  Rng rng(99);
  for (int trial = 0; trial < 3000; ++trial) {
    const Bytes junk = rng.bytes(rng.next_below(120));
    auto survives = [&](auto parse) {
      try {
        parse(junk);
      } catch (const DecodeError&) {
      } catch (const std::length_error&) {
      }
    };
    survives([](BytesView d) { (void)core::ContextReadReq::deserialize(d); });
    survives([](BytesView d) { (void)core::ContextReadResp::deserialize(d); });
    survives([](BytesView d) { (void)core::ContextWriteReq::deserialize(d); });
    survives([](BytesView d) { (void)core::MetaReq::deserialize(d); });
    survives([](BytesView d) { (void)core::MetaResp::deserialize(d); });
    survives([](BytesView d) { (void)core::ReadReq::deserialize(d); });
    survives([](BytesView d) { (void)core::ReadResp::deserialize(d); });
    survives([](BytesView d) { (void)core::WriteReq::deserialize(d); });
    survives([](BytesView d) { (void)core::WriteResp::deserialize(d); });
    survives([](BytesView d) { (void)core::LogReadReq::deserialize(d); });
    survives([](BytesView d) { (void)core::LogReadResp::deserialize(d); });
    survives([](BytesView d) { (void)core::ReconstructResp::deserialize(d); });
    survives([](BytesView d) { (void)core::StabilityMsg::deserialize(d); });
  }
}

TEST(DecoderRobustness, ServersSurviveRandomDatagrams) {
  ClusterOptions options;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(GroupPolicy{kGroup, ConsistencyModel::kMRC,
                                       SharingMode::kSingleWriter,
                                       core::ClientTrust::kHonest});

  Rng rng(123);
  net::RpcNode chaos(cluster.transport(), NodeId{9000});
  for (int i = 0; i < 500; ++i) {
    const NodeId target{static_cast<std::uint32_t>(rng.next_below(options.n))};
    // Raw junk datagrams straight to the transport...
    cluster.transport().send(NodeId{9000}, target, rng.bytes(rng.next_below(100)));
    // ...and junk bodies inside valid rpc envelopes.
    chaos.send_request(target, static_cast<net::MsgType>(rng.next_below(120)),
                       rng.bytes(rng.next_below(100)), [](NodeId, net::MsgType, BytesView) {});
  }
  cluster.run_for(seconds(2));

  // The store still works.
  SecureStoreClient::Options client_options;
  client_options.policy = GroupPolicy{kGroup, ConsistencyModel::kMRC,
                                      SharingMode::kSingleWriter, core::ClientTrust::kHonest};
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("still alive")).ok());
  EXPECT_TRUE(sync.read_value(ItemId{1}).ok());
}

}  // namespace
}  // namespace securestore
