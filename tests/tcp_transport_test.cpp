// Tests for the TCP transport: real sockets on loopback, two transports
// (two "processes") hosting servers and client respectively, and the full
// secure-store protocol across them.
#include <gtest/gtest.h>

#include <future>

#include "core/client.h"
#include "core/server.h"
#include "net/tcp_transport.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::GroupPolicy;
using core::SecureStoreClient;
using core::SecureStoreServer;
using core::SharingMode;

constexpr GroupId kGroup{1};
constexpr ItemId kX{10};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

TEST(TcpTransport, RawDatagramAcrossSockets) {
  net::TcpTransport a(0, {});
  net::TcpTransport b(0, {});
  // Tell A where node 2 (hosted by B) lives.
  a.set_endpoint(NodeId{2}, net::TcpEndpoint{"127.0.0.1", b.port()});

  std::promise<Bytes> received;
  b.register_node(NodeId{2}, [&](NodeId from, BytesView payload) {
    EXPECT_EQ(from, NodeId{1});
    received.set_value(Bytes(payload.begin(), payload.end()));
  });

  a.send(NodeId{1}, NodeId{2}, to_bytes("over real tcp"));
  auto future = received.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(to_string(future.get()), "over real tcp");

  // The new transport counters see the traffic: the sender's queue reached
  // depth >= 1 and the receiver counted the payload bytes.
  EXPECT_GE(a.stats().send_queue_highwater, 1u);
  EXPECT_EQ(b.stats().bytes_received, to_bytes("over real tcp").size());

  a.stop();
  b.stop();
}

TEST(TcpTransport, LocalNodesShortCircuit) {
  net::TcpTransport transport(0, {});
  std::promise<Bytes> received;
  transport.register_node(NodeId{2}, [&](NodeId, BytesView payload) {
    received.set_value(Bytes(payload.begin(), payload.end()));
  });
  transport.send(NodeId{1}, NodeId{2}, to_bytes("in-process"));
  auto future = received.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(to_string(future.get()), "in-process");
  transport.stop();
}

TEST(TcpTransport, UnknownDestinationDropsCleanly) {
  net::TcpTransport transport(0, {});
  transport.send(NodeId{1}, NodeId{99}, to_bytes("void"));
  // Give the counter a moment (send is synchronous for the drop path).
  EXPECT_GE(transport.stats().messages_dropped, 1u);
  transport.stop();
}

TEST(TcpTransport, LocalBurstsCoalesceIntoBatches) {
  net::TcpTransport transport(0, {});
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> calls{0};
  transport.register_node_batched(NodeId{2}, [&](std::vector<net::Delivery>& batch) {
    EXPECT_LE(batch.size(), net::Transport::kMaxDeliveryBatch);
    calls.fetch_add(1);
    total.fetch_add(batch.size());
  });
  constexpr std::size_t kCount = 300;
  for (std::size_t i = 0; i < kCount; ++i) {
    transport.send(NodeId{1}, NodeId{2}, to_bytes("burst"));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (total.load() < kCount && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(total.load(), kCount);
  EXPECT_LE(calls.load(), kCount);
  transport.stop();
  EXPECT_EQ(transport.stats().messages_delivered, kCount);
  EXPECT_EQ(transport.stats().messages_dropped, 0u);
}

TEST(TcpTransport, SendsRacingStopAreDeliveredOrCountedDropped) {
  // Satellite regression (run under TSan via the `tsan` label): local sends
  // racing stop() used to be silently swallowed by the dispatcher's
  // stopping_ gate without touching messages_dropped. Now every send either
  // reaches the handler or lands in the drop counter — exactly one of the
  // two, never neither.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  auto transport = std::make_unique<net::TcpTransport>(0, std::map<NodeId, net::TcpEndpoint>{});
  std::atomic<std::uint64_t> handled{0};
  transport->register_node_batched(NodeId{2}, [&](std::vector<net::Delivery>& batch) {
    handled.fetch_add(batch.size());
  });

  std::atomic<bool> go{false};
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        transport->send(NodeId{1}, NodeId{2}, to_bytes("racing"));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Stop mid-burst: some sends land before, some during, some after.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  transport->stop();
  for (auto& thread : senders) thread.join();

  const auto& stats = transport->stats();
  EXPECT_EQ(stats.messages_sent, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.messages_sent, stats.messages_delivered + stats.messages_dropped);
  EXPECT_EQ(stats.messages_delivered, handled.load());
}

TEST(TcpTransport, FullProtocolAcrossTwoProcesses) {
  // "Process" A hosts the 4 servers; "process" B hosts the client. All
  // client/server traffic crosses real loopback TCP.
  constexpr std::uint32_t kN = 4, kB = 1;

  net::TcpTransport server_side(0, {});
  net::TcpTransport client_side(0, {});
  for (std::uint32_t i = 0; i < kN; ++i) {
    client_side.set_endpoint(NodeId{i}, net::TcpEndpoint{"127.0.0.1", server_side.port()});
  }
  server_side.set_endpoint(NodeId{1000}, net::TcpEndpoint{"127.0.0.1", client_side.port()});

  core::StoreConfig config;
  config.n = kN;
  config.b = kB;
  Rng rng(5);
  const crypto::KeyPair client_pair = crypto::KeyPair::generate(rng);
  config.client_keys[1] = client_pair.public_key;
  std::vector<crypto::KeyPair> server_pairs;
  for (std::uint32_t i = 0; i < kN; ++i) {
    config.servers.push_back(NodeId{i});
    server_pairs.push_back(crypto::KeyPair::generate(rng));
    config.server_keys[NodeId{i}] = server_pairs.back().public_key;
  }

  std::vector<std::unique_ptr<SecureStoreServer>> servers;
  for (std::uint32_t i = 0; i < kN; ++i) {
    SecureStoreServer::Options options;
    options.gossip.period = milliseconds(50);
    servers.push_back(std::make_unique<SecureStoreServer>(server_side, NodeId{i}, config,
                                                          server_pairs[i], options,
                                                          rng.fork()));
    servers.back()->set_group_policy(mrc_policy());
  }

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = seconds(2);
  SecureStoreClient client(client_side, NodeId{1000}, ClientId{1}, client_pair, config,
                           client_options, rng.fork());

  auto wait_void = [&](auto op) {
    auto promise = std::make_shared<std::promise<VoidResult>>();
    auto future = promise->get_future();
    client_side.schedule(0, [op, promise] {
      op([promise](VoidResult r) { promise->set_value(std::move(r)); });
    });
    if (future.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
      return VoidResult(Error::kTimeout, "safety timeout");
    }
    return future.get();
  };

  ASSERT_TRUE(wait_void([&](auto cb) { client.connect(kGroup, cb); }).ok());
  ASSERT_TRUE(
      wait_void([&](auto cb) { client.write(kX, to_bytes("tcp roundtrip"), cb); }).ok());

  auto read_promise = std::make_shared<std::promise<Result<core::ReadOutput>>>();
  auto read_future = read_promise->get_future();
  client_side.schedule(0, [&client, read_promise] {
    client.read(kX, [read_promise](Result<core::ReadOutput> r) {
      read_promise->set_value(std::move(r));
    });
  });
  ASSERT_EQ(read_future.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  const auto result = read_future.get();
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(result->value), "tcp roundtrip");

  ASSERT_TRUE(wait_void([&](auto cb) { client.disconnect(cb); }).ok());

  // Gossip between the co-hosted servers spreads the write to all 4. The
  // stores are only touched on the dispatch thread, so inspect them there.
  auto count_replicas = [&] {
    auto promise = std::make_shared<std::promise<std::size_t>>();
    auto future = promise->get_future();
    server_side.schedule(0, [&servers, promise] {
      std::size_t have = 0;
      for (const auto& server : servers) {
        if (server->store().current(kX) != nullptr) ++have;
      }
      promise->set_value(have);
    });
    return future.get();
  };
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t have = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    have = count_replicas();
    if (have == servers.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(have, servers.size());

  client_side.stop();
  server_side.stop();
}

TEST(TcpTransport, SurvivesPeerShutdownMidStream) {
  net::TcpTransport a(0, {});
  auto b = std::make_unique<net::TcpTransport>(0, std::map<NodeId, net::TcpEndpoint>{});
  a.set_endpoint(NodeId{2}, net::TcpEndpoint{"127.0.0.1", b->port()});

  std::atomic<int> received{0};
  b->register_node(NodeId{2}, [&](NodeId, BytesView) { ++received; });
  a.send(NodeId{1}, NodeId{2}, to_bytes("one"));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(), 1);

  // Kill the peer; sends drop but nothing crashes or hangs.
  b->stop();
  b.reset();
  for (int i = 0; i < 5; ++i) a.send(NodeId{1}, NodeId{2}, to_bytes("into the void"));
  a.stop();
}

TEST(TcpTransport, ReconnectsAfterPeerRestart) {
  net::TcpTransport a(0, {});
  auto b = std::make_unique<net::TcpTransport>(0, std::map<NodeId, net::TcpEndpoint>{});
  const std::uint16_t port = b->port();
  a.set_endpoint(NodeId{2}, net::TcpEndpoint{"127.0.0.1", port});

  std::atomic<int> received_before{0};
  b->register_node(NodeId{2}, [&](NodeId, BytesView) { ++received_before; });
  a.send(NodeId{1}, NodeId{2}, to_bytes("before restart"));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received_before.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(received_before.load(), 1);
  EXPECT_EQ(a.stats().reconnects, 0u);

  // Kill the peer. Sends during the outage are dropped (datagram
  // semantics) while the writer backs off between failed reconnects.
  b->stop();
  b.reset();
  for (int i = 0; i < 3; ++i) {
    a.send(NodeId{1}, NodeId{2}, to_bytes("into the outage"));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Restart the peer on the same port (the listener may sit in TIME_WAIT
  // briefly; SO_REUSEADDR normally lets the rebind through immediately).
  std::unique_ptr<net::TcpTransport> b2;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!b2 && std::chrono::steady_clock::now() < deadline) {
    try {
      b2 = std::make_unique<net::TcpTransport>(port, std::map<NodeId, net::TcpEndpoint>{});
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_NE(b2, nullptr) << "could not rebind restart port";

  std::atomic<int> received_after{0};
  b2->register_node(NodeId{2}, [&](NodeId, BytesView) { ++received_after; });

  // Traffic resumes: the connection writer re-establishes the link and the
  // reconnect is visible in the stats.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received_after.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    a.send(NodeId{1}, NodeId{2}, to_bytes("after restart"));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(received_after.load(), 0);
  EXPECT_GE(a.stats().reconnects, 1u);
  EXPECT_GE(a.stats().connect_failures + a.stats().messages_dropped, 1u);

  b2->stop();
  a.stop();
}

}  // namespace
}  // namespace securestore
