// Validates the from-scratch crypto substrate against published test
// vectors (FIPS 180-4 / RFC 4231 / RFC 8439 / RFC 8032) and with
// property-style roundtrip sweeps.
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/ed25519_batch.h"
#include "crypto/fe25519.h"
#include "crypto/gf256.h"
#include "crypto/hmac.h"
#include "crypto/ida.h"
#include "crypto/keys.h"
#include "crypto/multisig.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"
#include "crypto/shamir.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace securestore::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-2
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finish();
  EXPECT_EQ(to_hex(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(7);
  for (std::size_t total : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    const Bytes data = rng.bytes(total);
    Sha256 h;
    std::size_t offset = 0;
    std::size_t step = 1;
    while (offset < data.size()) {
      const std::size_t take = std::min(step, data.size() - offset);
      h.update(BytesView(data.data() + offset, take));
      offset += take;
      step = step * 2 + 1;
    }
    const auto digest = h.finish();
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), sha256(data)) << "size=" << total;
  }
}

TEST(Sha512, EmptyMessage) {
  EXPECT_EQ(to_hex(sha512(to_bytes(""))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(sha512(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha512(to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

// ---------------------------------------------------------------------------
// HMAC / HKDF (RFC 4231, RFC 5869)
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  EXPECT_EQ(to_hex(hkdf_sha256(ikm, salt, info, 42)),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ZeroSaltCase3) {
  const Bytes ikm(22, 0x0b);
  EXPECT_EQ(to_hex(hkdf_sha256(ikm, {}, {}, 42)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// ---------------------------------------------------------------------------
// ChaCha20 / Poly1305 / AEAD (RFC 8439)
// ---------------------------------------------------------------------------

TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  const Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
  // XOR is an involution.
  EXPECT_EQ(chacha20_xor(key, nonce, 1, ciphertext), plaintext);
}

TEST(Poly1305, Rfc8439Tag) {
  const Bytes key = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto tag = poly1305(key, to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, Rfc8439SealVector) {
  const Bytes key = from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = from_hex("070000004041424344454647");
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kPolyTagSize);
  EXPECT_EQ(to_hex(BytesView(sealed.data() + plaintext.size(), kPolyTagSize)),
            "1ae10b594f09e26a7e902ecbd0600691");

  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  Rng rng(11);
  const Bytes key = rng.bytes(kChaChaKeySize);
  const Bytes nonce = rng.bytes(kChaChaNonceSize);
  const Bytes plaintext = rng.bytes(100);
  Bytes sealed = aead_seal(key, nonce, {}, plaintext);
  sealed[5] ^= 0x01;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  Rng rng(12);
  const Bytes key = rng.bytes(kChaChaKeySize);
  const Bytes nonce = rng.bytes(kChaChaNonceSize);
  const Bytes sealed = aead_seal(key, nonce, to_bytes("context-a"), to_bytes("secret"));
  EXPECT_FALSE(aead_open(key, nonce, to_bytes("context-b"), sealed).has_value());
  EXPECT_TRUE(aead_open(key, nonce, to_bytes("context-a"), sealed).has_value());
}

// ---------------------------------------------------------------------------
// Ed25519 (RFC 8032 §7.1)
// ---------------------------------------------------------------------------

struct Ed25519Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

const Ed25519Vector kRfc8032Vectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

class Ed25519Rfc : public ::testing::TestWithParam<Ed25519Vector> {};

TEST_P(Ed25519Rfc, PublicKeyDerivation) {
  const auto& v = GetParam();
  EXPECT_EQ(to_hex(ed25519_public_key(from_hex(v.seed))), v.public_key);
}

TEST_P(Ed25519Rfc, Signature) {
  const auto& v = GetParam();
  EXPECT_EQ(to_hex(ed25519_sign(from_hex(v.seed), from_hex(v.message))), v.signature);
}

TEST_P(Ed25519Rfc, Verifies) {
  const auto& v = GetParam();
  EXPECT_TRUE(ed25519_verify(from_hex(v.public_key), from_hex(v.message),
                             from_hex(v.signature)));
}

INSTANTIATE_TEST_SUITE_P(Rfc8032, Ed25519Rfc, ::testing::ValuesIn(kRfc8032Vectors));

TEST(Ed25519, SignVerifyRoundtripRandomKeys) {
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    const KeyPair pair = KeyPair::generate(rng);
    const Bytes message = rng.bytes(rng.next_below(200));
    const Bytes signature = ed25519_sign(pair.seed, message);
    EXPECT_TRUE(ed25519_verify(pair.public_key, message, signature));
  }
}

TEST(Ed25519, FlippedMessageBitRejected) {
  Rng rng(43);
  const KeyPair pair = KeyPair::generate(rng);
  Bytes message = to_bytes("the medical record of resident 7");
  const Bytes signature = ed25519_sign(pair.seed, message);
  message[3] ^= 0x20;
  EXPECT_FALSE(ed25519_verify(pair.public_key, message, signature));
}

TEST(Ed25519, FlippedSignatureBitRejected) {
  Rng rng(44);
  const KeyPair pair = KeyPair::generate(rng);
  const Bytes message = to_bytes("hello");
  Bytes signature = ed25519_sign(pair.seed, message);
  for (std::size_t position : {0u, 31u, 32u, 63u}) {
    Bytes tampered = signature;
    tampered[position] ^= 0x01;
    EXPECT_FALSE(ed25519_verify(pair.public_key, message, tampered))
        << "flipped byte " << position;
  }
}

TEST(Ed25519, WrongKeyRejected) {
  Rng rng(45);
  const KeyPair alice = KeyPair::generate(rng);
  const KeyPair bob = KeyPair::generate(rng);
  const Bytes message = to_bytes("signed by alice");
  const Bytes signature = ed25519_sign(alice.seed, message);
  EXPECT_FALSE(ed25519_verify(bob.public_key, message, signature));
}

TEST(Ed25519, MalformedInputsRejected) {
  Rng rng(46);
  const KeyPair pair = KeyPair::generate(rng);
  const Bytes message = to_bytes("m");
  const Bytes signature = ed25519_sign(pair.seed, message);
  EXPECT_FALSE(ed25519_verify(pair.public_key, message, Bytes(63, 0)));
  EXPECT_FALSE(ed25519_verify(Bytes(31, 0), message, signature));
  // All-0xff "public key" is not a canonical curve point.
  EXPECT_FALSE(ed25519_verify(Bytes(32, 0xff), message, signature));
  // Non-canonical S scalar (>= L) must be rejected even if otherwise valid.
  Bytes high_s = signature;
  for (std::size_t i = 32; i < 64; ++i) high_s[i] = 0xff;
  EXPECT_FALSE(ed25519_verify(pair.public_key, message, high_s));
}

// ---------------------------------------------------------------------------
// Ed25519 batch verification
// ---------------------------------------------------------------------------

struct SignedBatch {
  std::vector<KeyPair> pairs;
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;

  std::vector<BatchVerifyItem> items() const {
    std::vector<BatchVerifyItem> out;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      out.push_back({pairs[i].public_key, messages[i], signatures[i]});
    }
    return out;
  }
};

SignedBatch make_signed_batch(Rng& rng, std::size_t count) {
  SignedBatch batch;
  for (std::size_t i = 0; i < count; ++i) {
    batch.pairs.push_back(KeyPair::generate(rng));
    batch.messages.push_back(rng.bytes(1 + rng.next_below(120)));
    batch.signatures.push_back(ed25519_sign(batch.pairs.back().seed, batch.messages.back()));
  }
  return batch;
}

TEST(Ed25519Batch, AllValidBatchAccepts) {
  Rng rng(500);
  for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{16}}) {
    const SignedBatch batch = make_signed_batch(rng, count);
    const BatchVerifyResult result = ed25519_batch_verify(batch.items());
    EXPECT_TRUE(result.all_valid);
    EXPECT_FALSE(result.used_fallback);
    for (const bool ok : result.valid) EXPECT_TRUE(ok);
  }
}

TEST(Ed25519Batch, EmptyBatchTriviallyValid) {
  const BatchVerifyResult result = ed25519_batch_verify({});
  EXPECT_TRUE(result.all_valid);
  EXPECT_TRUE(result.valid.empty());
}

TEST(Ed25519Batch, SingleBadSignatureIsolated) {
  Rng rng(501);
  SignedBatch batch = make_signed_batch(rng, 8);
  batch.signatures[3][10] ^= 0x40;  // corrupt R of one signature
  const BatchVerifyResult result = ed25519_batch_verify(batch.items());
  EXPECT_FALSE(result.all_valid);
  EXPECT_TRUE(result.used_fallback);
  for (std::size_t i = 0; i < result.valid.size(); ++i) {
    EXPECT_EQ(result.valid[i], i != 3) << "item " << i;
  }
}

TEST(Ed25519Batch, WrongMessageIsolated) {
  Rng rng(502);
  SignedBatch batch = make_signed_batch(rng, 6);
  batch.messages[0][0] ^= 1;
  batch.messages[5][0] ^= 1;
  const BatchVerifyResult result = ed25519_batch_verify(batch.items());
  EXPECT_FALSE(result.all_valid);
  for (std::size_t i = 0; i < result.valid.size(); ++i) {
    EXPECT_EQ(result.valid[i], i != 0 && i != 5) << "item " << i;
  }
}

TEST(Ed25519Batch, MalformedItemsRejectedWithoutPoisoningBatch) {
  Rng rng(503);
  SignedBatch batch = make_signed_batch(rng, 4);
  // Structurally bad items: truncated signature, non-point public key,
  // non-canonical S. None of them may affect the healthy items' verdicts.
  batch.signatures[0] = Bytes(63, 0);
  batch.pairs[1].public_key = Bytes(32, 0xff);
  for (std::size_t i = 32; i < 64; ++i) batch.signatures[2][i] = 0xff;
  const BatchVerifyResult result = ed25519_batch_verify(batch.items());
  EXPECT_FALSE(result.all_valid);
  EXPECT_FALSE(result.valid[0]);
  EXPECT_FALSE(result.valid[1]);
  EXPECT_FALSE(result.valid[2]);
  EXPECT_TRUE(result.valid[3]);
  // Structural rejects never enter the combined equation, so a clean
  // remainder needs no per-message fallback pass.
  EXPECT_FALSE(result.used_fallback);
}

TEST(Ed25519Batch, AgreesWithSingleVerifyOnRandomTampering) {
  Rng rng(504);
  for (int trial = 0; trial < 6; ++trial) {
    SignedBatch batch = make_signed_batch(rng, 5);
    // Tamper a random subset in random ways.
    std::vector<bool> expected(5);
    for (std::size_t i = 0; i < 5; ++i) {
      if (rng.next_below(2) == 0) {
        const std::size_t which = rng.next_below(3);
        if (which == 0) batch.messages[i].push_back(0x01);
        if (which == 1) batch.signatures[i][rng.next_below(64)] ^= 0x80;
        if (which == 2) batch.pairs[i].public_key[5] ^= 0x02;
      }
      expected[i] =
          ed25519_verify(batch.pairs[i].public_key, batch.messages[i], batch.signatures[i]);
    }
    const BatchVerifyResult result = ed25519_batch_verify(batch.items());
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(result.valid[i], expected[i]) << "trial " << trial << " item " << i;
    }
  }
}

TEST(Ed25519Batch, DeterministicAcrossCalls) {
  Rng rng(505);
  SignedBatch batch = make_signed_batch(rng, 7);
  batch.signatures[2][40] ^= 0x10;
  const BatchVerifyResult first = ed25519_batch_verify(batch.items());
  const BatchVerifyResult second = ed25519_batch_verify(batch.items());
  EXPECT_EQ(first.valid, second.valid);
  EXPECT_EQ(first.used_fallback, second.used_fallback);
}

TEST(Ed25519Batch, MetersOneVerifyPerItem) {
  Rng rng(506);
  const SignedBatch batch = make_signed_batch(rng, 9);
  auto& meter = CryptoMeter::instance();
  const std::uint64_t before = meter.verifies;
  ed25519_batch_verify(batch.items());
  EXPECT_EQ(meter.verifies - before, 9u);
}

// ---------------------------------------------------------------------------
// curve25519 field arithmetic (shared by Ed25519 and X25519)
// ---------------------------------------------------------------------------

namespace fe = fe25519;

fe::Fe random_fe(Rng& rng) {
  std::uint8_t bytes[32];
  Bytes random = rng.bytes(32);
  std::copy(random.begin(), random.end(), bytes);
  bytes[31] &= 0x7f;
  return fe::from_bytes(bytes);
}

TEST(Fe25519, FieldAxiomsSampled) {
  Rng rng(600);
  for (int trial = 0; trial < 100; ++trial) {
    const fe::Fe a = random_fe(rng);
    const fe::Fe b = random_fe(rng);
    const fe::Fe c = random_fe(rng);

    EXPECT_TRUE(fe::equal(fe::add(a, b), fe::add(b, a)));
    EXPECT_TRUE(fe::equal(fe::mul(a, b), fe::mul(b, a)));
    EXPECT_TRUE(fe::equal(fe::mul(fe::mul(a, b), c), fe::mul(a, fe::mul(b, c))));
    // Distributivity.
    EXPECT_TRUE(fe::equal(fe::mul(a, fe::add(b, c)),
                          fe::add(fe::mul(a, b), fe::mul(a, c))));
    // Identities.
    EXPECT_TRUE(fe::equal(fe::add(a, fe::kZero), a));
    EXPECT_TRUE(fe::equal(fe::mul(a, fe::kOne), a));
    EXPECT_TRUE(fe::equal(fe::add(a, fe::neg(a)), fe::kZero));
    EXPECT_TRUE(fe::equal(fe::sub(a, b), fe::add(a, fe::neg(b))));
    // Squaring is self-multiplication; small-scalar multiply agrees.
    EXPECT_TRUE(fe::equal(fe::sq(a), fe::mul(a, a)));
    fe::Fe three = fe::add(fe::add(fe::kOne, fe::kOne), fe::kOne);
    EXPECT_TRUE(fe::equal(fe::mul_small(a, 3), fe::mul(a, three)));
  }
}

TEST(Fe25519, InverseAndSqrtExponent) {
  Rng rng(601);
  for (int trial = 0; trial < 25; ++trial) {
    const fe::Fe a = random_fe(rng);
    if (fe::is_zero(a)) continue;
    EXPECT_TRUE(fe::equal(fe::mul(a, fe::invert(a)), fe::kOne));
    // pow22523 obeys a^((p-5)/8 * 8 + 5) = a^(p) = a (Fermat).
    const fe::Fe e = fe::pow22523(a);                 // a^((p-5)/8)
    const fe::Fe e8 = fe::sqn(e, 3);                  // a^(p-5)
    const fe::Fe a5 = fe::mul(fe::mul(fe::sq(fe::sq(a)), a), fe::kOne);  // a^5
    EXPECT_TRUE(fe::equal(fe::mul(e8, a5), a));       // a^(p-5) * a^5 = a^p = a
  }
}

TEST(Fe25519, BytesRoundtripCanonical) {
  Rng rng(602);
  for (int trial = 0; trial < 50; ++trial) {
    const fe::Fe a = random_fe(rng);
    std::uint8_t first[32], second[32];
    fe::to_bytes(first, a);
    fe::to_bytes(second, fe::from_bytes(first));
    EXPECT_EQ(Bytes(first, first + 32), Bytes(second, second + 32));
  }
  // Non-canonical input (p <= x < 2^255) reduces: p encodes as zero.
  std::uint8_t p_bytes[32];
  for (int i = 0; i < 32; ++i) p_bytes[i] = 0xff;
  p_bytes[0] = 0xed;
  p_bytes[31] = 0x7f;
  EXPECT_TRUE(fe::is_zero(fe::from_bytes(p_bytes)));
}

// ---------------------------------------------------------------------------
// X25519 (RFC 7748 §5.2, §6.1)
// ---------------------------------------------------------------------------

TEST(X25519, Rfc7748Vector1) {
  const Bytes scalar =
      from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u = from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  const Bytes scalar =
      from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const Bytes u = from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const Bytes alice_private =
      from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes bob_private =
      from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const Bytes alice_public = x25519_public_key(alice_private);
  const Bytes bob_public = x25519_public_key(bob_private);
  EXPECT_EQ(to_hex(alice_public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(bob_public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const Bytes alice_shared = x25519_shared_secret(alice_private, bob_public);
  const Bytes bob_shared = x25519_shared_secret(bob_private, alice_public);
  EXPECT_EQ(alice_shared, bob_shared);
  EXPECT_EQ(to_hex(alice_shared),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, RandomPairsAgree) {
  Rng rng(70);
  for (int i = 0; i < 5; ++i) {
    const DhKeyPair a = DhKeyPair::generate(rng);
    const DhKeyPair b = DhKeyPair::generate(rng);
    EXPECT_EQ(x25519_shared_secret(a.private_scalar, b.public_key),
              x25519_shared_secret(b.private_scalar, a.public_key));
  }
}

TEST(X25519, LowOrderPointRejected) {
  Rng rng(71);
  const DhKeyPair pair = DhKeyPair::generate(rng);
  const Bytes zero_point(32, 0);  // order-1 point u=0
  EXPECT_THROW(x25519_shared_secret(pair.private_scalar, zero_point),
               std::invalid_argument);
  EXPECT_THROW(x25519(Bytes(31, 0), zero_point), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GF(256)
// ---------------------------------------------------------------------------

TEST(Gf256, MulMatchesKnownValues) {
  // 0x53 * 0xca = 0x01 in AES's field (classic example).
  EXPECT_EQ(gf256::mul(0x53, 0xca), 0x01);
  EXPECT_EQ(gf256::mul(0x02, 0x80), 0x1b);
  EXPECT_EQ(gf256::mul(0x00, 0x7f), 0x00);
  EXPECT_EQ(gf256::mul(0x01, 0x7f), 0x7f);
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto element = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(element, gf256::inv(element)), 1) << "a=" << a;
  }
}

TEST(Gf256, MulIsCommutativeAndAssociativeSample) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
    // Distributivity over XOR.
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, InterpolateRecoversPolynomial) {
  // p(x) = 3x^2 + 5x + 7 over GF(256).
  const std::uint8_t coefficients[] = {7, 5, 3};
  std::uint8_t xs[] = {1, 2, 3};
  std::uint8_t ys[3];
  for (int i = 0; i < 3; ++i) ys[i] = gf256::poly_eval(coefficients, xs[i]);
  EXPECT_EQ(gf256::interpolate(xs, ys, 0), 7);
  EXPECT_EQ(gf256::interpolate(xs, ys, 5), gf256::poly_eval(coefficients, 5));
}

// ---------------------------------------------------------------------------
// Shamir
// ---------------------------------------------------------------------------

struct ThresholdParams {
  unsigned k;
  unsigned n;
};

class ShamirSweep : public ::testing::TestWithParam<ThresholdParams> {};

TEST_P(ShamirSweep, AnyKSharesReconstruct) {
  const auto [k, n] = GetParam();
  Rng rng(1000 + k * 31 + n);
  const Bytes secret = rng.bytes(48);
  const auto shares = shamir_split(secret, k, n, rng);
  ASSERT_EQ(shares.size(), n);

  // First k shares.
  EXPECT_EQ(shamir_combine(std::span(shares).first(k), k), secret);
  // Last k shares.
  EXPECT_EQ(shamir_combine(std::span(shares).last(k), k), secret);
  // A random subset of k shares.
  std::vector<ShamirShare> subset(shares.begin(), shares.end());
  for (std::size_t i = subset.size(); i > 1; --i) {
    std::swap(subset[i - 1], subset[rng.next_below(i)]);
  }
  subset.resize(k);
  EXPECT_EQ(shamir_combine(subset, k), secret);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ShamirSweep,
                         ::testing::Values(ThresholdParams{1, 1}, ThresholdParams{1, 4},
                                           ThresholdParams{2, 3}, ThresholdParams{3, 5},
                                           ThresholdParams{4, 7}, ThresholdParams{5, 9},
                                           ThresholdParams{7, 10}));

TEST(Shamir, FewerThanKSharesRevealNothingStructural) {
  // With k-1 shares the remaining degree of freedom makes every secret byte
  // equally consistent: interpolating the k-1 shares plus a guessed share
  // yields different "secrets" for different guesses.
  Rng rng(77);
  const Bytes secret = rng.bytes(16);
  const auto shares = shamir_split(secret, 3, 5, rng);

  std::vector<ShamirShare> partial(shares.begin(), shares.begin() + 2);
  ShamirShare forged;
  forged.index = shares[2].index;
  forged.data = rng.bytes(16);
  partial.push_back(forged);
  const Bytes candidate = shamir_combine(partial, 3);
  EXPECT_NE(candidate, secret);  // astronomically unlikely to match
}

TEST(Shamir, ProactiveRefreshPreservesSecret) {
  Rng rng(80);
  const Bytes secret = rng.bytes(32);
  const auto original = shamir_split(secret, 3, 5, rng);

  const auto refreshed = shamir_refresh(original, 3, rng);
  ASSERT_EQ(refreshed.size(), original.size());

  // Same secret from any k refreshed shares...
  EXPECT_EQ(shamir_combine(std::span(refreshed).first(3), 3), secret);
  EXPECT_EQ(shamir_combine(std::span(refreshed).last(3), 3), secret);

  // ...but every individual share changed...
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NE(refreshed[i].data, original[i].data) << "share " << i;
  }

  // ...and shares from different epochs do not mix.
  std::vector<ShamirShare> mixed = {original[0], original[1], refreshed[2]};
  EXPECT_NE(shamir_combine(mixed, 3), secret);
}

TEST(Shamir, RepeatedRefreshStaysCorrect) {
  Rng rng(81);
  const Bytes secret = rng.bytes(16);
  auto shares = shamir_split(secret, 4, 7, rng);
  for (int epoch = 0; epoch < 10; ++epoch) {
    shares = shamir_refresh(shares, 4, rng);
    EXPECT_EQ(shamir_combine(std::span(shares).subspan(2, 4), 4), secret)
        << "epoch " << epoch;
  }
}

TEST(Shamir, RefreshRejectsMalformedInput) {
  Rng rng(82);
  const auto shares = shamir_split(to_bytes("s"), 2, 3, rng);
  EXPECT_THROW(shamir_refresh({}, 2, rng), std::invalid_argument);
  EXPECT_THROW(shamir_refresh(shares, 4, rng), std::invalid_argument);
  auto inconsistent = shares;
  inconsistent[1].data.push_back(0);
  EXPECT_THROW(shamir_refresh(inconsistent, 2, rng), std::invalid_argument);
}

TEST(Shamir, RejectsMalformedShares) {
  Rng rng(78);
  const auto shares = shamir_split(to_bytes("s"), 2, 3, rng);
  std::vector<ShamirShare> duplicate = {shares[0], shares[0]};
  EXPECT_THROW(shamir_combine(duplicate, 2), std::invalid_argument);
  EXPECT_THROW(shamir_combine(std::span(shares).first(1), 2), std::invalid_argument);
  EXPECT_THROW(shamir_split(to_bytes("s"), 4, 3, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// IDA
// ---------------------------------------------------------------------------

class IdaSweep : public ::testing::TestWithParam<ThresholdParams> {};

TEST_P(IdaSweep, AnyMFragmentsReconstruct) {
  const auto [m, n] = GetParam();
  Rng rng(2000 + m * 17 + n);
  for (const std::size_t size : {0u, 1u, 10u, 100u, 1000u}) {
    const Bytes data = rng.bytes(size);
    const auto fragments = ida_disperse(data, m, n);
    ASSERT_EQ(fragments.size(), n);

    EXPECT_EQ(ida_reconstruct(std::span(fragments).first(m), m), data) << "size=" << size;
    EXPECT_EQ(ida_reconstruct(std::span(fragments).last(m), m), data) << "size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, IdaSweep,
                         ::testing::Values(ThresholdParams{1, 3}, ThresholdParams{2, 4},
                                           ThresholdParams{3, 5}, ThresholdParams{4, 7},
                                           ThresholdParams{5, 9}, ThresholdParams{8, 12}));

TEST(Ida, FragmentsAreSpaceEfficient) {
  Rng rng(90);
  const Bytes data = rng.bytes(1200);
  const auto fragments = ida_disperse(data, 4, 7);
  // Each fragment is |data|/m (up to padding), not |data| — the whole point
  // of dispersal vs replication.
  EXPECT_EQ(fragments[0].data.size(), 300u);
}

TEST(Ida, RejectsMalformedFragments) {
  Rng rng(91);
  const Bytes data = rng.bytes(64);
  auto fragments = ida_disperse(data, 3, 5);
  EXPECT_THROW(ida_reconstruct(std::span(fragments).first(2), 3), std::invalid_argument);
  std::vector<IdaFragment> duplicated = {fragments[0], fragments[0], fragments[1]};
  EXPECT_THROW(ida_reconstruct(duplicated, 3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Multisig certificates
// ---------------------------------------------------------------------------

TEST(Multisig, ThresholdSatisfaction) {
  Rng rng(55);
  std::unordered_map<NodeId, Bytes> keys;
  std::vector<KeyPair> pairs;
  for (std::uint32_t i = 0; i < 5; ++i) {
    pairs.push_back(KeyPair::generate(rng));
    keys[NodeId{i}] = pairs.back().public_key;
  }

  MultisigCertificate cert(to_bytes("value v at timestamp 7 is stable"));
  EXPECT_FALSE(cert.satisfies(1, keys));

  cert.add_share(NodeId{0}, ed25519_sign(pairs[0].seed, cert.statement()));
  cert.add_share(NodeId{1}, ed25519_sign(pairs[1].seed, cert.statement()));
  EXPECT_TRUE(cert.satisfies(2, keys));
  EXPECT_FALSE(cert.satisfies(3, keys));

  // A forged share from a compromised server adds nothing.
  cert.add_share(NodeId{2}, Bytes(64, 0xab));
  EXPECT_FALSE(cert.satisfies(3, keys));

  // Duplicate signer is not double counted.
  cert.add_share(NodeId{0}, ed25519_sign(pairs[0].seed, cert.statement()));
  EXPECT_EQ(cert.count_valid(keys), 2u);

  cert.add_share(NodeId{3}, ed25519_sign(pairs[3].seed, cert.statement()));
  EXPECT_TRUE(cert.satisfies(3, keys));
}

TEST(Multisig, SerializationRoundtrip) {
  Rng rng(56);
  const KeyPair pair = KeyPair::generate(rng);
  MultisigCertificate cert(to_bytes("statement"));
  cert.add_share(NodeId{9}, ed25519_sign(pair.seed, cert.statement()));

  const MultisigCertificate parsed = MultisigCertificate::deserialize(cert.serialize());
  EXPECT_EQ(parsed.statement(), cert.statement());
  ASSERT_EQ(parsed.shares().size(), 1u);
  EXPECT_EQ(parsed.shares()[0].signer, NodeId{9});

  std::unordered_map<NodeId, Bytes> keys{{NodeId{9}, pair.public_key}};
  EXPECT_TRUE(parsed.satisfies(1, keys));
}

// ---------------------------------------------------------------------------
// CryptoMeter
// ---------------------------------------------------------------------------

TEST(CryptoMeter, CountsOperations) {
  Rng rng(60);
  const KeyPair pair = KeyPair::generate(rng);
  auto& meter = CryptoMeter::instance();
  meter.reset();

  const Bytes message = to_bytes("metered");
  const Bytes signature = meter_sign(pair.seed, message);
  EXPECT_TRUE(meter_verify(pair.public_key, message, signature));
  (void)meter_digest(message);
  (void)meter_mac(to_bytes("key"), message);

  EXPECT_EQ(meter.signs, 1u);
  EXPECT_EQ(meter.verifies, 1u);
  EXPECT_EQ(meter.digests, 1u);
  EXPECT_EQ(meter.macs, 1u);

  meter.reset();
  EXPECT_EQ(meter.signs, 0u);
}

}  // namespace
}  // namespace securestore::crypto
