// Tests for the extension features: dynamic Byzantine quorums (§3,
// [Alvisi et al. DSN'00]) and the fragmentation-scattering storage mode
// (§3, [Fray et al.] / [Rabin]).
#include <gtest/gtest.h>

#include "core/fault_estimator.h"
#include "core/group_key.h"
#include "core/rotate.h"
#include "core/scatter.h"
#include "core/sync.h"
#include "testkit/cluster.h"

namespace securestore {
namespace {

using core::ConsistencyModel;
using core::FaultEstimator;
using core::GroupPolicy;
using core::ScatteredStore;
using core::SecureStoreClient;
using core::SharingMode;
using core::SyncClient;
using testkit::Cluster;
using testkit::ClusterOptions;

constexpr GroupId kGroup{1};
constexpr ItemId kX{40};

GroupPolicy mrc_policy() {
  return GroupPolicy{kGroup, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                     core::ClientTrust::kHonest};
}

// ---------------------------------------------------------------------------
// FaultEstimator unit tests
// ---------------------------------------------------------------------------

TEST(FaultEstimator, HardEvidenceIsImmediateAndPermanent) {
  FaultEstimator estimator({.b_min = 0, .b_max = 3, .soft_strikes = 3});
  EXPECT_EQ(estimator.estimated_b(), 0u);

  estimator.report_hard_evidence(NodeId{2});
  EXPECT_TRUE(estimator.is_distrusted(NodeId{2}));
  EXPECT_EQ(estimator.estimated_b(), 1u);

  // Good interactions never rehabilitate hard evidence.
  for (int i = 0; i < 100; ++i) estimator.report_good_interaction(NodeId{2});
  EXPECT_TRUE(estimator.is_distrusted(NodeId{2}));
}

TEST(FaultEstimator, SoftEvidenceNeedsStrikesAndDecays) {
  FaultEstimator estimator({.b_min = 0, .b_max = 3, .soft_strikes = 3});
  estimator.report_soft_evidence(NodeId{1});
  estimator.report_soft_evidence(NodeId{1});
  EXPECT_FALSE(estimator.is_distrusted(NodeId{1}));
  estimator.report_soft_evidence(NodeId{1});
  EXPECT_TRUE(estimator.is_distrusted(NodeId{1}));
  EXPECT_EQ(estimator.estimated_b(), 1u);

  // A recovered server earns trust back.
  estimator.report_good_interaction(NodeId{1});
  EXPECT_FALSE(estimator.is_distrusted(NodeId{1}));
  EXPECT_EQ(estimator.estimated_b(), 0u);
}

TEST(FaultEstimator, EstimateClampedToBounds) {
  FaultEstimator estimator({.b_min = 1, .b_max = 2, .soft_strikes = 1});
  EXPECT_EQ(estimator.estimated_b(), 1u);  // never below the floor
  estimator.report_hard_evidence(NodeId{0});
  estimator.report_hard_evidence(NodeId{1});
  estimator.report_hard_evidence(NodeId{2});
  EXPECT_EQ(estimator.believed_faulty(), 3u);
  EXPECT_EQ(estimator.estimated_b(), 2u);  // never above the deployment bound
}

// ---------------------------------------------------------------------------
// Dynamic quorums end to end
// ---------------------------------------------------------------------------

TEST(DynamicQuorums, FairWeatherUsesMinimalSets) {
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.start_gossip = false;
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.dynamic_quorums = FaultEstimator::Config{.b_min = 0, .b_max = 2,
                                                          .soft_strikes = 2};
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  // With no fault evidence, a write touches a single server (b̂+1 = 1).
  cluster.transport().reset_stats();
  ASSERT_TRUE(sync.write(kX, to_bytes("optimistic")).ok());
  EXPECT_EQ(cluster.transport().stats().messages_sent, 2u);  // 1 write + 1 ack

  const auto result = sync.read_value(kX);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "optimistic");
}

TEST(DynamicQuorums, EvidenceGrowsQuorumsBackToB) {
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.start_gossip = false;
  // The two most-preferred servers are crashed: the estimator must learn.
  options.server_faults = {{0, {faults::ServerFault::kCrash}},
                           {1, {faults::ServerFault::kCrash}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = milliseconds(100);
  client_options.max_read_rounds = 5;
  client_options.dynamic_quorums = FaultEstimator::Config{.b_min = 0, .b_max = 2,
                                                          .soft_strikes = 2};
  auto client = cluster.make_client(ClientId{1}, client_options);
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                 NodeId{5}, NodeId{6}});
  SyncClient sync(*client, cluster.scheduler());

  // Operations still succeed (escalation routes around the dead servers)...
  ASSERT_TRUE(sync.write(kX, to_bytes("learns")).ok());
  ASSERT_TRUE(sync.read_value(kX).ok());
  ASSERT_TRUE(sync.write(kX, to_bytes("learns more")).ok());
  ASSERT_TRUE(sync.read_value(kX).ok());

  // ...and the estimator has accumulated distrust of the silent servers.
  ASSERT_NE(client->fault_estimator(), nullptr);
  EXPECT_TRUE(client->fault_estimator()->is_distrusted(NodeId{0}));
  EXPECT_TRUE(client->fault_estimator()->is_distrusted(NodeId{1}));
  EXPECT_EQ(client->fault_estimator()->estimated_b(), 2u);

  // Distrusted servers are now avoided: a fresh write goes to live servers
  // only and needs no escalation rounds.
  cluster.transport().reset_stats();
  ASSERT_TRUE(sync.write(kX, to_bytes("routed around")).ok());
  // b̂+1 = 3 requests + 3 acks, no retries against the dead servers.
  EXPECT_EQ(cluster.transport().stats().messages_sent, 6u);
}

TEST(DynamicQuorums, HardenedMultiWriterQuorumsStayStatic) {
  // Safety: the §5.3 quorums (2b+1 sets, b+1 agreement) are load-bearing
  // for masking and must NOT shrink with optimistic fault estimates.
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.start_gossip = false;
  Cluster cluster(options);
  const GroupPolicy hardened{kGroup, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                             core::ClientTrust::kByzantine};
  cluster.set_group_policy(hardened);

  SecureStoreClient::Options client_options;
  client_options.policy = hardened;
  client_options.stability_gc = false;
  client_options.dynamic_quorums = FaultEstimator::Config{.b_min = 0, .b_max = 2,
                                                          .soft_strikes = 2};
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());

  cluster.transport().reset_stats();
  ASSERT_TRUE(sync.write(kX, to_bytes("hardened")).ok());
  // 2b+1 = 5 writes + 5 acks, NOT the optimistic 1+1.
  EXPECT_EQ(cluster.transport().stats().messages_sent, 10u);
}

TEST(DynamicQuorums, ForgingServerGetsHardEvidence) {
  ClusterOptions options;
  options.n = 7;
  options.b = 2;
  options.start_gossip = false;
  options.server_faults = {{0, {faults::ServerFault::kCorruptValues}}};
  Cluster cluster(options);
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.round_timeout = milliseconds(200);
  client_options.dynamic_quorums = FaultEstimator::Config{.b_min = 1, .b_max = 2,
                                                          .soft_strikes = 3};
  auto client = cluster.make_client(ClientId{1}, client_options);
  client->set_server_preference({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4},
                                 NodeId{5}, NodeId{6}});
  SyncClient sync(*client, cluster.scheduler());

  ASSERT_TRUE(sync.write(kX, to_bytes("bait")).ok());
  const auto result = sync.read_value(kX);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "bait");

  // The corrupting server served an unverifiable record: hard evidence.
  ASSERT_NE(client->fault_estimator(), nullptr);
  EXPECT_TRUE(client->fault_estimator()->is_distrusted(NodeId{0}));
}

// ---------------------------------------------------------------------------
// ScatteredStore (fragmentation-scattering)
// ---------------------------------------------------------------------------

struct ScatterHarness {
  Cluster cluster;
  std::unique_ptr<ScatteredStore> store;

  explicit ScatterHarness(ClusterOptions options = make_default_options())
      : cluster(std::move(options)) {
    cluster.set_group_policy(mrc_policy());
    ScatteredStore::Options store_options;
    store_options.policy = mrc_policy();
    store_options.round_timeout = milliseconds(400);
    store = std::make_unique<ScatteredStore>(cluster.transport(), NodeId{1500}, ClientId{1},
                                             cluster.client_keys(ClientId{1}),
                                             cluster.config(), store_options, Rng(321));
  }

  static ClusterOptions make_default_options() {
    ClusterOptions options;
    options.n = 7;
    options.b = 2;
    return options;
  }

  VoidResult write(ItemId item, const Bytes& value) {
    std::optional<VoidResult> slot;
    store->write(item, value, [&](VoidResult r) { slot = std::move(r); });
    while (!slot && cluster.scheduler().step()) {
    }
    return slot.value_or(VoidResult(Error::kTimeout));
  }

  Result<Bytes> read(ItemId item) {
    std::optional<Result<Bytes>> slot;
    store->read(item, [&](Result<Bytes> r) { slot = std::move(r); });
    while (!slot && cluster.scheduler().step()) {
    }
    if (!slot) return Result<Bytes>(Error::kTimeout);
    return std::move(*slot);
  }
};

TEST(ScatteredStore, WriteReadRoundtrip) {
  ScatterHarness harness;
  Rng rng(55);
  const Bytes document = rng.bytes(5000);
  ASSERT_TRUE(harness.write(kX, document).ok());
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(*result, document);
}

TEST(ScatteredStore, FragmentsAreSmallAndOpaque) {
  ScatterHarness harness;
  const Bytes document = to_bytes(std::string(3000, 'S') + "SECRET-MARKER");
  ASSERT_TRUE(harness.write(kX, document).ok());

  // Each server stores ~|v|/(b+1) bytes, none of it plaintext.
  for (std::size_t s = 0; s < harness.cluster.server_count(); ++s) {
    const core::WriteRecord* record = harness.cluster.server(s).store().current(
        core::fragment_item(kX, static_cast<std::uint8_t>(s)));
    ASSERT_NE(record, nullptr) << "server " << s;
    EXPECT_TRUE(record->flags & core::kScattered);
    EXPECT_LT(record->value.size(), document.size() / 2) << "server " << s;
    EXPECT_EQ(to_string(record->value).find("SECRET-MARKER"), std::string::npos);
  }
}

TEST(ScatteredStore, SurvivesUpToNMinusB1Failures) {
  ScatterHarness harness;
  const Bytes document = to_bytes("survives partitions");
  ASSERT_TRUE(harness.write(kX, document).ok());

  // Kill all but b+1 = 3 servers: reconstruction still works.
  for (std::uint32_t s = 3; s < 7; ++s) {
    harness.cluster.transport().network().set_partitioned(NodeId{s}, true);
  }
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(*result, document);

  // One more failure (only b = 2 fragments reachable): unavailable...
  harness.cluster.transport().network().set_partitioned(NodeId{2}, true);
  EXPECT_FALSE(harness.read(kX).ok());
}

TEST(ScatteredStore, BServersLearnNothingStructural) {
  // Confidentiality threshold: b = 2 servers together hold 2 < k = 3 key
  // shares and 2 IDA fragments — decrypting is impossible without the key,
  // and the key is information-theoretically hidden. Structurally: the
  // stored bytes at any 2 servers are independent of the plaintext prefix.
  ScatterHarness harness;
  ASSERT_TRUE(harness.write(kX, to_bytes("attack at dawn")).ok());
  ASSERT_TRUE(harness.write(ItemId{41}, to_bytes("attack at dusk")).ok());

  // (Sanity stand-in for the information-theoretic argument: fragments of
  // the two near-identical plaintexts share no common prefix because each
  // write uses a fresh key and nonce.)
  const auto* frag_a = harness.cluster.server(0).store().current(core::fragment_item(kX, 0));
  const auto* frag_b =
      harness.cluster.server(0).store().current(core::fragment_item(ItemId{41}, 0));
  ASSERT_NE(frag_a, nullptr);
  ASSERT_NE(frag_b, nullptr);
  EXPECT_NE(frag_a->value, frag_b->value);
}

TEST(ScatteredStore, VersionsAdvance) {
  ScatterHarness harness;
  ASSERT_TRUE(harness.write(kX, to_bytes("v1")).ok());
  ASSERT_TRUE(harness.write(kX, to_bytes("v2")).ok());
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "v2");
}

TEST(ScatteredStore, CorruptFragmentsAreDroppedBeforeReconstruction) {
  ClusterOptions options = ScatterHarness::make_default_options();
  options.server_faults = {{0, {faults::ServerFault::kCorruptValues}},
                           {1, {faults::ServerFault::kCorruptValues}}};
  ScatterHarness harness(options);

  const Bytes document = to_bytes("integrity survives b corrupt fragment servers");
  ASSERT_TRUE(harness.write(kX, document).ok());
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(*result, document);
}

TEST(ScatteredStore, FragmentsDoNotGossip) {
  ScatterHarness harness;
  ASSERT_TRUE(harness.write(kX, to_bytes("stays scattered")).ok());
  harness.cluster.run_for(seconds(20));  // plenty of gossip rounds

  // Every server still holds exactly its own fragment, nobody else's.
  for (std::size_t s = 0; s < harness.cluster.server_count(); ++s) {
    for (std::size_t other = 0; other < harness.cluster.server_count(); ++other) {
      const auto* record = harness.cluster.server(s).store().current(
          core::fragment_item(kX, static_cast<std::uint8_t>(other)));
      if (s == other) {
        EXPECT_NE(record, nullptr) << "server " << s << " lost its fragment";
      } else {
        EXPECT_EQ(record, nullptr)
            << "fragment " << other << " leaked to server " << s << " via gossip";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Group key distribution (§5.2's deferred "secure multicast" key scheme)
// ---------------------------------------------------------------------------

TEST(GroupKeys, BundleWrapUnwrap) {
  Rng rng(400);
  core::GroupKeyOwner owner(kGroup, crypto::DhKeyPair::generate(rng), rng.fork());

  const crypto::DhKeyPair alice = crypto::DhKeyPair::generate(rng);
  const crypto::DhKeyPair bob = crypto::DhKeyPair::generate(rng);
  owner.add_member(ClientId{2}, alice.public_key);
  owner.add_member(ClientId{3}, bob.public_key);

  const core::KeyBundle bundle =
      core::KeyBundle::deserialize(owner.make_bundle().serialize());  // wire roundtrip

  const auto alice_key = core::unwrap_bundle(bundle, ClientId{2}, alice.private_scalar);
  const auto bob_key = core::unwrap_bundle(bundle, ClientId{3}, bob.private_scalar);
  ASSERT_TRUE(alice_key.has_value());
  ASSERT_TRUE(bob_key.has_value());
  EXPECT_EQ(alice_key->second, owner.current_key());
  EXPECT_EQ(bob_key->second, owner.current_key());
  EXPECT_EQ(alice_key->first, owner.epoch());

  // A non-member (or a member using the wrong private key) gets nothing.
  const crypto::DhKeyPair eve = crypto::DhKeyPair::generate(rng);
  EXPECT_FALSE(core::unwrap_bundle(bundle, ClientId{4}, eve.private_scalar).has_value());
  EXPECT_FALSE(core::unwrap_bundle(bundle, ClientId{2}, eve.private_scalar).has_value());
}

TEST(GroupKeys, RemovalRevokesFutureEpochs) {
  Rng rng(401);
  core::GroupKeyOwner owner(kGroup, crypto::DhKeyPair::generate(rng), rng.fork());
  const crypto::DhKeyPair alice = crypto::DhKeyPair::generate(rng);
  const crypto::DhKeyPair bob = crypto::DhKeyPair::generate(rng);
  owner.add_member(ClientId{2}, alice.public_key);
  owner.add_member(ClientId{3}, bob.public_key);

  const core::KeyBundle epoch1 = owner.make_bundle();
  ASSERT_TRUE(owner.remove_member(ClientId{3}));
  const core::KeyBundle epoch2 = owner.make_bundle();
  EXPECT_EQ(epoch2.epoch, epoch1.epoch + 1);

  // Alice follows into the new epoch; Bob is out of the new bundle and his
  // old key no longer matches the current one.
  ASSERT_TRUE(core::unwrap_bundle(epoch2, ClientId{2}, alice.private_scalar).has_value());
  EXPECT_FALSE(core::unwrap_bundle(epoch2, ClientId{3}, bob.private_scalar).has_value());
  const auto bob_old = core::unwrap_bundle(epoch1, ClientId{3}, bob.private_scalar);
  ASSERT_TRUE(bob_old.has_value());
  EXPECT_NE(bob_old->second, owner.current_key());

  EXPECT_FALSE(owner.remove_member(ClientId{99}));  // unknown member
}

TEST(GroupKeys, EndToEndMembershipLifecycleOverTheStore) {
  // The full workflow: the owner publishes bundles THROUGH the secure store
  // and encrypts shared data under epoch keys; a revoked reader keeps
  // historical access (the paper's acknowledged limit) but is locked out of
  // everything written after the re-key.
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());
  Rng rng(402);

  core::GroupKeyOwner owner(kGroup, crypto::DhKeyPair::generate(rng), rng.fork());
  const crypto::DhKeyPair alice_dh = crypto::DhKeyPair::generate(rng);
  const crypto::DhKeyPair bob_dh = crypto::DhKeyPair::generate(rng);
  owner.add_member(ClientId{2}, alice_dh.public_key);
  owner.add_member(ClientId{3}, bob_dh.public_key);

  // Owner session: publish the bundle (plain item — it protects itself)
  // and write a secret under the epoch codec.
  SecureStoreClient::Options owner_options;
  owner_options.policy = mrc_policy();
  auto owner_client = cluster.make_client(ClientId{1}, owner_options);
  SyncClient owner_sync(*owner_client, cluster.scheduler());
  ASSERT_TRUE(owner_sync.connect(kGroup).ok());
  ASSERT_TRUE(
      owner_sync.write(core::key_bundle_item(kGroup), owner.make_bundle().serialize()).ok());
  owner_client->set_codec(owner.make_codec());
  ASSERT_TRUE(owner_sync.write(kX, to_bytes("epoch-1 secret")).ok());
  cluster.run_for(seconds(5));

  // A reader joins: fetch bundle (plain), unwrap, read data (epoch codec).
  auto read_as = [&](ClientId who, const crypto::DhKeyPair& dh, std::uint32_t net_offset) {
    SecureStoreClient::Options reader_options;
    reader_options.policy = mrc_policy();
    auto reader = cluster.make_client(who, reader_options, NodeId{1200 + net_offset});
    SyncClient reader_sync(*reader, cluster.scheduler());
    EXPECT_TRUE(reader_sync.connect(kGroup).ok());
    Result<Bytes> bundle_bytes = reader_sync.read_value(core::key_bundle_item(kGroup));
    if (!bundle_bytes.ok()) return Result<Bytes>(bundle_bytes.error());
    const core::KeyBundle bundle = core::KeyBundle::deserialize(*bundle_bytes);
    const auto key = core::unwrap_bundle(bundle, who, dh.private_scalar);
    if (!key.has_value()) return Result<Bytes>(Error::kUnauthorized, "not in bundle");
    auto codec = std::make_shared<core::EpochCodec>(kGroup, Rng(who.value * 1000));
    codec->add_epoch(key->first, key->second);
    reader->set_codec(std::move(codec));
    return reader_sync.read_value(kX);
  };

  const auto alice_view = read_as(ClientId{2}, alice_dh, 1);
  ASSERT_TRUE(alice_view.ok()) << error_name(alice_view.error());
  EXPECT_EQ(securestore::to_string(*alice_view), "epoch-1 secret");
  const auto bob_view = read_as(ClientId{3}, bob_dh, 2);
  ASSERT_TRUE(bob_view.ok());

  // Revoke Bob: new epoch, new bundle, new secret. (The bundle item itself
  // is always written under the plain codec — it is self-protecting.)
  ASSERT_TRUE(owner.remove_member(ClientId{3}));
  owner_client->set_codec(nullptr);
  ASSERT_TRUE(
      owner_sync.write(core::key_bundle_item(kGroup), owner.make_bundle().serialize()).ok());
  owner_client->set_codec(owner.make_codec());
  ASSERT_TRUE(owner_sync.write(kX, to_bytes("epoch-2 secret, bob must not see")).ok());
  cluster.run_for(seconds(5));

  const auto alice_after = read_as(ClientId{2}, alice_dh, 3);
  ASSERT_TRUE(alice_after.ok()) << error_name(alice_after.error());
  EXPECT_EQ(securestore::to_string(*alice_after), "epoch-2 secret, bob must not see");

  const auto bob_after = read_as(ClientId{3}, bob_dh, 4);
  ASSERT_FALSE(bob_after.ok());
  EXPECT_EQ(bob_after.error(), Error::kUnauthorized);
}

TEST(GroupKeys, EpochCodecCrossEpochDecoding) {
  Rng rng(403);
  core::EpochCodec codec(kGroup, rng.fork());
  codec.add_epoch(1, rng.bytes(32));
  const Bytes old_ct = codec.encode(kX, to_bytes("old"));
  codec.add_epoch(2, rng.bytes(32));
  const Bytes new_ct = codec.encode(kX, to_bytes("new"));

  EXPECT_EQ(codec.current_epoch(), 2u);
  ASSERT_TRUE(codec.decode(kX, old_ct).has_value());  // history still readable
  ASSERT_TRUE(codec.decode(kX, new_ct).has_value());

  // A codec that only ever learned epoch 1 cannot read epoch 2.
  core::EpochCodec revoked(kGroup, rng.fork());
  revoked.add_epoch(1, Bytes(32, 1));
  EXPECT_FALSE(revoked.decode(kX, new_ct).has_value());

  // Garbage input fails cleanly.
  EXPECT_FALSE(codec.decode(kX, to_bytes("xx")).has_value());
}

// ---------------------------------------------------------------------------
// Key rotation (§5.2)
// ---------------------------------------------------------------------------

TEST(KeyRotation, ReencryptsEveryItemUnderTheNewKey) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  auto old_codec = std::make_shared<core::AeadValueCodec>(to_bytes("old key"), Rng(1));
  auto new_codec = std::make_shared<core::AeadValueCodec>(to_bytes("new key"), Rng(2));

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.codec = old_codec;
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());

  const ItemId items[] = {ItemId{1}, ItemId{2}, ItemId{3}};
  for (const ItemId item : items) {
    ASSERT_TRUE(sync.write(item, to_bytes("secret " + std::to_string(item.value))).ok());
  }
  cluster.run_for(seconds(5));

  ASSERT_TRUE(core::rotate_keys(sync, items, new_codec).ok());

  // The rotating client continues to read under the new key...
  for (const ItemId item : items) {
    const auto value = sync.read_value(item);
    ASSERT_TRUE(value.ok()) << item.value;
    EXPECT_EQ(securestore::to_string(*value), "secret " + std::to_string(item.value));
  }

  // ...a reader still holding the OLD key cannot authenticate the new
  // ciphertexts...
  cluster.run_for(seconds(5));
  SecureStoreClient::Options stale_options;
  stale_options.policy = mrc_policy();
  stale_options.codec = std::make_shared<core::AeadValueCodec>(to_bytes("old key"), Rng(3));
  auto stale_reader = cluster.make_client(ClientId{2}, stale_options);
  SyncClient stale_sync(*stale_reader, cluster.scheduler());
  ASSERT_TRUE(stale_sync.connect(kGroup).ok());
  EXPECT_FALSE(stale_sync.read_value(items[0]).ok());

  // ...and one holding the new key can.
  SecureStoreClient::Options fresh_options;
  fresh_options.policy = mrc_policy();
  fresh_options.codec = std::make_shared<core::AeadValueCodec>(to_bytes("new key"), Rng(4));
  auto fresh_reader = cluster.make_client(ClientId{3}, fresh_options);
  SyncClient fresh_sync(*fresh_reader, cluster.scheduler());
  ASSERT_TRUE(fresh_sync.connect(kGroup).ok());
  const auto fresh_value = fresh_sync.read_value(items[0]);
  ASSERT_TRUE(fresh_value.ok());
  EXPECT_EQ(securestore::to_string(*fresh_value), "secret 1");
}

TEST(KeyRotation, MissingItemsAreSkipped) {
  Cluster cluster(ClusterOptions{});
  cluster.set_group_policy(mrc_policy());

  SecureStoreClient::Options client_options;
  client_options.policy = mrc_policy();
  client_options.codec = std::make_shared<core::AeadValueCodec>(to_bytes("k1"), Rng(5));
  auto client = cluster.make_client(ClientId{1}, client_options);
  SyncClient sync(*client, cluster.scheduler());
  ASSERT_TRUE(sync.connect(kGroup).ok());
  ASSERT_TRUE(sync.write(ItemId{1}, to_bytes("exists")).ok());

  const ItemId items[] = {ItemId{1}, ItemId{999}};  // 999 never written
  auto new_codec = std::make_shared<core::AeadValueCodec>(to_bytes("k2"), Rng(6));
  ASSERT_TRUE(core::rotate_keys(sync, items, new_codec).ok());

  const auto value = sync.read_value(ItemId{1});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(securestore::to_string(*value), "exists");
}

TEST(ScatteredStore, RejectsInvalidConfigurations) {
  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  Cluster cluster(options);

  ScatteredStore::Options store_options;
  store_options.policy = GroupPolicy{kGroup, ConsistencyModel::kMRC,
                                     SharingMode::kMultiWriter, core::ClientTrust::kHonest};
  EXPECT_THROW(ScatteredStore(cluster.transport(), NodeId{1500}, ClientId{1},
                              cluster.client_keys(ClientId{1}), cluster.config(),
                              store_options, Rng(1)),
               std::invalid_argument);

  EXPECT_THROW(core::fragment_item(ItemId{1ull << 60}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace securestore
