// Tests for the comparison baselines: masking-quorum store (B1) and
// PBFT-lite SMR (B2). Both run over the same simulator and crypto as the
// secure store, so the §6 cost comparisons are apples-to-apples.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/grid_quorum.h"
#include "baselines/masking_quorum.h"
#include "baselines/pbft.h"
#include "net/sim_transport.h"
#include "sim/scheduler.h"

namespace securestore::baselines {
namespace {

constexpr ItemId kX{42};

// --------------------------- masking quorum --------------------------------

struct MqHarness {
  sim::Scheduler scheduler;
  net::SimTransport transport;
  core::StoreConfig config;
  std::vector<std::unique_ptr<MqServer>> servers;
  std::unique_ptr<MqClient> client;

  explicit MqHarness(std::uint32_t n, std::uint32_t b, std::uint64_t seed = 7)
      : transport(scheduler, sim::NetworkModel(Rng(seed), sim::lan_profile())) {
    config.n = n;
    config.b = b;
    Rng rng(seed + 1);
    const crypto::KeyPair client_pair = crypto::KeyPair::generate(rng);
    config.client_keys[1] = client_pair.public_key;
    for (std::uint32_t i = 0; i < n; ++i) config.servers.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<MqServer>(transport, NodeId{i}, config));
    }
    client = std::make_unique<MqClient>(transport, NodeId{1000}, ClientId{1}, client_pair,
                                        config, MqClient::Options{}, rng.fork());
  }

  VoidResult write(ItemId item, const Bytes& value) {
    std::optional<VoidResult> slot;
    client->write(item, value, [&](VoidResult r) { slot = std::move(r); });
    while (!slot && scheduler.step()) {
    }
    return slot.value_or(VoidResult(Error::kTimeout));
  }

  Result<Bytes> read(ItemId item) {
    std::optional<Result<Bytes>> slot;
    client->read(item, [&](Result<Bytes> r) { slot = std::move(r); });
    while (!slot && scheduler.step()) {
    }
    if (!slot) return Result<Bytes>(Error::kTimeout);
    return std::move(*slot);
  }
};

TEST(MaskingQuorum, QuorumArithmetic) {
  core::StoreConfig config;
  config.n = 4;
  config.b = 1;
  EXPECT_EQ(config.masking_quorum(), 4u);   // ceil((4+2+1+1)/2)
  config.n = 7;
  EXPECT_EQ(config.masking_quorum(), 5u);
  config.n = 10;
  config.b = 2;
  EXPECT_EQ(config.masking_quorum(), 8u);
  // The secure store's context quorum is strictly smaller whenever b > 0.
  EXPECT_LT(config.context_quorum(), config.masking_quorum());
}

TEST(MaskingQuorum, WriteReadRoundtrip) {
  MqHarness harness(4, 1);
  ASSERT_TRUE(harness.write(kX, to_bytes("strongly consistent")).ok());
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "strongly consistent");
}

TEST(MaskingQuorum, ReadsSeeLatestWrite) {
  MqHarness harness(7, 2);
  for (int version = 1; version <= 4; ++version) {
    ASSERT_TRUE(harness.write(kX, to_bytes("v" + std::to_string(version))).ok());
    const auto result = harness.read(kX);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(to_string(*result), "v" + std::to_string(version));
  }
}

TEST(MaskingQuorum, UnknownItemNotFound) {
  MqHarness harness(4, 1);
  const auto result = harness.read(ItemId{777});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kNotFound);
}

TEST(MaskingQuorum, ForgedWriteRejected) {
  MqHarness harness(4, 1);
  // Direct injection with a bad signature: servers refuse it.
  MqEntry entry;
  entry.ts = 99;
  entry.writer = ClientId{1};
  entry.value = to_bytes("forged");
  entry.signature = Bytes(64, 0xcc);

  Writer w;
  w.u64(kX.value);
  w.u64(entry.ts);
  w.u32(entry.writer.value);
  w.bytes(entry.value);
  w.bytes(entry.signature);

  net::RpcNode evil(harness.transport, NodeId{5000});
  for (std::uint32_t i = 0; i < 4; ++i) {
    evil.send_request(NodeId{i}, net::MsgType::kMqWrite, w.data(),
                      [](NodeId, net::MsgType, BytesView) {});
  }
  harness.scheduler.run_until(harness.scheduler.now() + seconds(1));
  for (const auto& server : harness.servers) {
    EXPECT_EQ(server->current(kX), nullptr);
  }
}

// ------------------------------- PBFT-lite ---------------------------------

struct PbftHarness {
  sim::Scheduler scheduler;
  net::SimTransport transport;
  PbftConfig config;
  std::vector<std::unique_ptr<PbftReplica>> replicas;
  std::unique_ptr<PbftClient> client;

  explicit PbftHarness(std::uint32_t f, std::uint64_t seed = 9)
      : transport(scheduler, sim::NetworkModel(Rng(seed), sim::lan_profile())) {
    config.f = f;
    for (std::uint32_t i = 0; i < 3 * f + 1; ++i) config.replicas.push_back(NodeId{i});
    config.session_master = to_bytes("pbft test session master");
    for (const NodeId id : config.replicas) {
      replicas.push_back(std::make_unique<PbftReplica>(transport, id, config));
    }
    client = std::make_unique<PbftClient>(transport, NodeId{1000}, config);
  }

  Result<Bytes> execute(const PbftOp& op) {
    std::optional<Result<Bytes>> slot;
    client->execute(op, [&](Result<Bytes> r) { slot = std::move(r); });
    while (!slot && scheduler.step()) {
    }
    if (!slot) return Result<Bytes>(Error::kTimeout);
    return std::move(*slot);
  }
};

TEST(Pbft, PutGetRoundtrip) {
  PbftHarness harness(1);
  PbftOp put{PbftOp::Kind::kPut, kX, to_bytes("replicated value")};
  ASSERT_TRUE(harness.execute(put).ok());

  PbftOp get{PbftOp::Kind::kGet, kX, {}};
  const auto result = harness.execute(get);
  ASSERT_TRUE(result.ok()) << error_name(result.error());
  EXPECT_EQ(to_string(*result), "replicated value");
}

TEST(Pbft, AllReplicasExecuteInOrder) {
  PbftHarness harness(1);
  for (int i = 1; i <= 5; ++i) {
    PbftOp put{PbftOp::Kind::kPut, ItemId{static_cast<std::uint64_t>(i)},
               to_bytes("v" + std::to_string(i))};
    ASSERT_TRUE(harness.execute(put).ok());
  }
  harness.scheduler.run_until(harness.scheduler.now() + seconds(1));

  for (const auto& replica : harness.replicas) {
    EXPECT_EQ(replica->executed_count(), 5u);
    EXPECT_EQ(replica->state().size(), 5u);
    EXPECT_EQ(to_string(replica->state().at(ItemId{3})), "v3");
  }
}

TEST(Pbft, LargerClusterStillCommits) {
  PbftHarness harness(2);  // n = 7
  PbftOp put{PbftOp::Kind::kPut, kX, to_bytes("seven replicas")};
  ASSERT_TRUE(harness.execute(put).ok());
  PbftOp get{PbftOp::Kind::kGet, kX, {}};
  const auto result = harness.execute(get);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "seven replicas");
}

TEST(Pbft, MessageComplexityIsQuadratic) {
  // The §6 claim against SMR: O(n^2) messages per operation.
  auto messages_per_op = [](std::uint32_t f) {
    PbftHarness harness(f);
    PbftOp put{PbftOp::Kind::kPut, kX, to_bytes("count me")};
    harness.transport.reset_stats();
    EXPECT_TRUE(harness.execute(put).ok());
    harness.scheduler.run_until(harness.scheduler.now() + seconds(1));
    return harness.transport.stats().messages_sent;
  };

  const std::uint64_t n4 = messages_per_op(1);   // n=4
  const std::uint64_t n7 = messages_per_op(2);   // n=7
  const std::uint64_t n10 = messages_per_op(3);  // n=10

  // Quadratic growth: going 4 -> 10 servers must much-more-than-double
  // the messages (a linear protocol would only 2.5x).
  EXPECT_GT(n7, n4 * 2);
  EXPECT_GT(n10, n4 * 4);
}

TEST(Pbft, ToleratesFNonPrimaryCrashes) {
  PbftHarness harness(1);  // n = 4, f = 1
  // Crash one non-primary replica (the fixed-primary simplification means
  // primary crashes need view changes, which are out of scope).
  harness.transport.network().set_partitioned(NodeId{3}, true);

  PbftOp put{PbftOp::Kind::kPut, kX, to_bytes("still commits")};
  ASSERT_TRUE(harness.execute(put).ok());
  PbftOp get{PbftOp::Kind::kGet, kX, {}};
  const auto result = harness.execute(get);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "still commits");
}

TEST(Pbft, FPlusOneCrashesBlockCommit) {
  PbftHarness harness(1);
  harness.transport.network().set_partitioned(NodeId{2}, true);
  harness.transport.network().set_partitioned(NodeId{3}, true);
  harness.client = std::make_unique<PbftClient>(harness.transport, NodeId{1001},
                                                [&] {
                                                  auto c = harness.config;
                                                  c.client_timeout = milliseconds(300);
                                                  return c;
                                                }());
  PbftOp put{PbftOp::Kind::kPut, kX, to_bytes("cannot commit")};
  const auto result = harness.execute(put);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Error::kTimeout);
}

TEST(Pbft, ForgedMacsIgnored) {
  PbftHarness harness(1);
  // An outsider (wrong pair keys) floods protocol messages; replicas must
  // ignore them and the state machine must stay empty.
  net::RpcNode outsider(harness.transport, NodeId{500});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Writer w;
    w.bytes(rng.bytes(40));
    w.bytes(rng.bytes(32));
    outsider.send_oneway(NodeId{0}, net::MsgType::kPbftRequest, w.data());
    outsider.send_oneway(NodeId{1}, net::MsgType::kPbftPrePrepare, w.data());
    outsider.send_oneway(NodeId{2}, net::MsgType::kPbftPrepare, w.data());
  }
  harness.scheduler.run_until(harness.scheduler.now() + seconds(1));
  for (const auto& replica : harness.replicas) {
    EXPECT_EQ(replica->executed_count(), 0u);
  }
}

TEST(MaskingQuorum, LivenessNeeds4bPlus1) {
  // The quorum-size comparison has a liveness corollary the secure store
  // exploits: masking quorums of size ceil((n+2b+1)/2) only tolerate b
  // CRASHES when n >= 4b+1, while the secure store is live at n = 3b+1.
  {
    // n = 4, b = 1: q = 4 — a single crash halts reads AND writes.
    MqHarness harness(4, 1);
    harness.transport.network().set_partitioned(NodeId{0}, true);
    EXPECT_FALSE(harness.write(kX, to_bytes("blocked")).ok());
  }
  {
    // n = 5, b = 1: q = 4 — one crash is tolerated (given a quorum of live
    // servers; the baseline has no escalation, so pick them explicitly).
    MqHarness harness(5, 1);
    harness.transport.network().set_partitioned(NodeId{0}, true);
    harness.client->set_server_preference(
        {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{0}});
    ASSERT_TRUE(harness.write(kX, to_bytes("survives")).ok());
    const auto result = harness.read(kX);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(to_string(*result), "survives");
  }
}

TEST(MaskingQuorum, StaleServerOutvotedByMasking) {
  MqHarness harness(5, 1);
  ASSERT_TRUE(harness.write(kX, to_bytes("v1")).ok());
  ASSERT_TRUE(harness.write(kX, to_bytes("v2")).ok());
  // Masking semantics: v2 was written to a quorum; any read quorum overlaps
  // it in >= 2b+1 = 3 servers, so b+1 = 2 agree on v2 and it wins.
  const auto result = harness.read(kX);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result), "v2");
}

// ------------------------------ grid quorums -------------------------------

TEST(MGrid, ParameterValidation) {
  EXPECT_TRUE(MGrid::valid_parameters(16, 1));
  EXPECT_TRUE(MGrid::valid_parameters(25, 2));
  EXPECT_FALSE(MGrid::valid_parameters(15, 1));  // not a square
  EXPECT_FALSE(MGrid::valid_parameters(4, 2));   // r = sqrt(5) > 2
  EXPECT_FALSE(MGrid::valid_parameters(0, 0));
  EXPECT_THROW(MGrid(15, 1), std::invalid_argument);
}

TEST(MGrid, QuorumSizeBeatsMajorityMaskingAtScale) {
  // §6: "improved quorum design can reduce their sizes ... a minimum quorum
  // size of sqrt(n) is necessary" — the grid quorum is O(sqrt(b n)) versus
  // the majority masking quorum's O(n).
  for (const auto& [n, b] : {std::pair{64u, 1u}, {144u, 2u}, {400u, 3u}}) {
    const MGrid grid(n, b);
    core::StoreConfig config;
    config.n = n;
    config.b = b;
    EXPECT_LT(grid.quorum_size(), config.masking_quorum())
        << "n=" << n << " b=" << b;
    EXPECT_GE(grid.quorum_size(), static_cast<std::size_t>(std::sqrt(n)));
  }
}

struct GridParams {
  std::uint32_t n;
  std::uint32_t b;
};

class MGridIntersection : public ::testing::TestWithParam<GridParams> {};

TEST_P(MGridIntersection, AnyTwoQuorumsIntersectIn2bPlus1) {
  const auto [n, b] = GetParam();
  const MGrid grid(n, b);
  Rng rng(n * 31 + b);

  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<NodeId> q1 = grid.random_quorum(rng);
    const std::vector<NodeId> q2 = grid.random_quorum(rng);
    EXPECT_EQ(q1.size(), grid.quorum_size());

    std::size_t common = 0;
    for (const NodeId member : q1) {
      if (std::find(q2.begin(), q2.end(), member) != q2.end()) ++common;
    }
    EXPECT_GE(common, 2 * b + 1) << "n=" << n << " b=" << b << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MGridIntersection,
                         ::testing::Values(GridParams{9, 1}, GridParams{16, 1},
                                           GridParams{25, 2}, GridParams{36, 3},
                                           GridParams{49, 5}, GridParams{100, 8}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_b" +
                                  std::to_string(info.param.b);
                         });

TEST(MGrid, WorstCaseDisjointRowColChoices) {
  // Adversarially disjoint row/column picks still intersect in >= 2b+1:
  // rows of one quorum always cross columns of the other.
  const MGrid grid(25, 2);  // side 5, r = ceil(sqrt(5)) = 3
  const auto q1 = grid.quorum_from({0, 1, 2}, {0, 1, 2});
  const auto q2 = grid.quorum_from({3, 4, 0}, {3, 4, 0});  // mostly disjoint
  std::size_t common = 0;
  for (const NodeId member : q1) {
    if (std::find(q2.begin(), q2.end(), member) != q2.end()) ++common;
  }
  EXPECT_GE(common, 5u);
}

TEST(Pbft, ConfigValidation) {
  PbftConfig config;
  config.f = 1;
  config.session_master = to_bytes("m");
  config.replicas = {NodeId{0}, NodeId{1}};  // wrong count
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace securestore::baselines
