// Live health plane tests (DESIGN.md §8, PROTOCOL.md §13, experiment E19).
//
// Four layers under test:
//   * `obs::HealthMonitor` — SLO rule evaluation, hysteresis (the
//     flapping regression test lives here), restart-hold, per-group
//     verdict/quorum-margin arithmetic;
//   * the `kIntrospect` endpoint — wire codec round-trips, a live server
//     answering all four formats, and the unauthenticated endpoint's
//     token-bucket rate limit (silence, not an amplifiable error);
//   * `net::IntrospectScraper` + `HttpIntrospectServer` — the sim-side
//     scrape loop marking a crashed server and clearing it after restart,
//     and the TCP exposition listener serving real HTTP;
//   * the chaos ground truth — `HealthScorer` unit semantics, then the
//     headline multi-seed soak: every required injected fault window must
//     be detected, zero unhealthy marks and zero critical verdicts outside
//     fault windows, detection/recovery latency histograms populated.
//
// The `EventLog::recent` concurrency test carries this binary's `health`
// label into the tsan preset: concurrent writers against a bounded ring
// with an exact dropped-event count.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/introspect.h"
#include "net/rpc.h"
#include "obs/events.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "testkit/chaos.h"
#include "testkit/cluster.h"
#include "testkit/health_scorer.h"
#include "testkit/seed.h"
#include "testkit/sharded_chaos.h"
#include "testkit/sharded_cluster.h"

namespace securestore {
namespace {

using obs::HealthMonitor;
using obs::ServerSample;
using obs::SloRules;
using obs::Verdict;
using testkit::ChaosEvent;
using testkit::ChaosReport;
using testkit::ChaosRunner;
using testkit::ChaosRunnerOptions;
using testkit::ChaosSchedule;
using testkit::Cluster;
using testkit::ClusterOptions;
using testkit::FaultWindow;
using testkit::HealthScorer;
using testkit::ShardedChaosOptions;
using testkit::ShardedChaosReport;
using testkit::ShardedChaosRunner;
using testkit::ShardedCluster;
using testkit::ShardedClusterOptions;

bool gtest_failed() { return ::testing::Test::HasFailure(); }

// A sample no SLO rule fires on. `uptime` defaults to a value that keeps
// growing with `now` so no restart is inferred.
ServerSample good_sample(std::uint32_t node, std::uint64_t now,
                         std::uint64_t uptime = 0) {
  ServerSample s;
  s.node = node;
  s.now_us = now;
  s.uptime_us = uptime == 0 ? now + seconds(1) : uptime;
  s.gossip_ticks = now / milliseconds(50);
  s.gossip_idle_us = milliseconds(10);
  s.wal_append_ewma_us = 50;
  s.wal_append_p99_us = 200;
  s.requests = now / 100;
  return s;
}

// ---------------------------------------------------------------------------
// HealthMonitor: rules, hysteresis, verdicts.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, MarksUnhealthyOnlyAfterConsecutiveBadRounds) {
  obs::Registry registry;
  HealthMonitor::Options options;  // unhealthy_after = healthy_after = 2
  HealthMonitor monitor(registry, nullptr, {{0, 0}}, options);

  std::uint64_t now = seconds(1);
  auto round = [&](std::optional<ServerSample> sample) {
    monitor.begin_round(now);
    monitor.observe(0, std::move(sample));
    monitor.end_round();
    now += milliseconds(50);
  };

  round(good_sample(0, now));
  EXPECT_TRUE(monitor.server(0).healthy);
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);

  round(std::nullopt);  // one bad round: not enough
  EXPECT_TRUE(monitor.server(0).healthy);
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);

  round(std::nullopt);  // second consecutive: mark
  EXPECT_FALSE(monitor.server(0).healthy);
  ASSERT_FALSE(monitor.server(0).causes.empty());
  EXPECT_EQ(monitor.server(0).causes.front(), "unreachable");
  EXPECT_EQ(monitor.verdict(), Verdict::kDegraded);
  EXPECT_EQ(monitor.quorum_margin(), 0);  // b=1, one unhealthy

  round(good_sample(0, now));  // one good round: still marked
  EXPECT_FALSE(monitor.server(0).healthy);

  round(good_sample(0, now));  // second consecutive good: clear
  EXPECT_TRUE(monitor.server(0).healthy);
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  EXPECT_EQ(monitor.quorum_margin(), 1);
}

TEST(HealthMonitor, FlappingInputNeverFlapsState) {
  // The flapping regression test: input alternating good/bad every round
  // can never reach `unhealthy_after` consecutive bad rounds, so the state
  // machine must not change state even once.
  obs::Registry registry;
  HealthMonitor monitor(registry, nullptr, {{0, 0}}, {});

  std::uint64_t now = seconds(1);
  for (int i = 0; i < 40; ++i) {
    monitor.begin_round(now);
    if (i % 2 == 0) {
      monitor.observe(0, std::nullopt);
    } else {
      monitor.observe(0, good_sample(0, now));
    }
    monitor.end_round();
    EXPECT_TRUE(monitor.server(0).healthy) << "flapped at round " << i;
    EXPECT_EQ(monitor.verdict(), Verdict::kGreen) << "flapped at round " << i;
    now += milliseconds(50);
  }
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("health.state_changes"), 0u);
}

TEST(HealthMonitor, RestartHoldPinsSuspicionPastOneCleanSample) {
  obs::Registry registry;
  HealthMonitor monitor(registry, nullptr, {{0, 0}}, {});
  const std::uint64_t hold = SloRules{}.restart_hold_us;

  std::uint64_t now = seconds(10);
  auto round = [&](ServerSample sample) {
    monitor.begin_round(now);
    monitor.observe(0, sample);
    monitor.end_round();
    now += milliseconds(50);
  };

  round(good_sample(0, now, /*uptime=*/seconds(9)));
  EXPECT_TRUE(monitor.server(0).healthy);

  // Uptime regression: the server restarted between scrapes.
  const std::uint64_t restart_seen = now;
  round(good_sample(0, now, /*uptime=*/milliseconds(10)));
  round(good_sample(0, now, /*uptime=*/milliseconds(60)));
  EXPECT_FALSE(monitor.server(0).healthy);
  ASSERT_FALSE(monitor.server(0).causes.empty());
  EXPECT_EQ(monitor.server(0).causes.front(), "restarted");

  // Clean post-restart samples cannot clear the mark while the hold lasts.
  while (now < restart_seen + hold) {
    round(good_sample(0, now, milliseconds(10) + (now - restart_seen)));
    EXPECT_FALSE(monitor.server(0).healthy) << "cleared mid-hold at " << now;
  }
  // After the hold: two consecutive good rounds clear it.
  round(good_sample(0, now, milliseconds(10) + (now - restart_seen)));
  round(good_sample(0, now, milliseconds(10) + (now - restart_seen)));
  EXPECT_TRUE(monitor.server(0).healthy);
}

TEST(HealthMonitor, SloRuleCausesAreAttributed) {
  obs::Registry registry;
  HealthMonitor monitor(registry, nullptr, {{0, 0}}, {});
  const SloRules rules;

  std::uint64_t now = seconds(1);
  ServerSample bad = good_sample(0, now);
  bad.gossip_idle_us = rules.gossip_stale_us + 1;
  bad.wal_append_p99_us = rules.wal_p99_us + 1;
  bad.compaction_lag = rules.compaction_lag + 1;
  bad.net_backlog = rules.net_backlog + 1;
  bad.overloaded = true;

  for (int i = 0; i < 2; ++i) {
    monitor.begin_round(now);
    monitor.observe(0, bad);
    monitor.end_round();
    now += milliseconds(50);
  }
  EXPECT_FALSE(monitor.server(0).healthy);
  const auto& causes = monitor.server(0).causes;
  auto has = [&](const char* cause) {
    return std::find(causes.begin(), causes.end(), cause) != causes.end();
  };
  EXPECT_TRUE(has("gossip-stale"));
  EXPECT_TRUE(has("wal-slow"));
  EXPECT_TRUE(has("compaction-lag"));
  EXPECT_TRUE(has("backlog"));
  EXPECT_TRUE(has("overloaded"));
}

TEST(HealthMonitor, ShedFractionIsDeltaBasedAndResetProof) {
  obs::Registry registry;
  HealthMonitor monitor(registry, nullptr, {{0, 0}}, {});

  std::uint64_t now = seconds(1);
  auto round = [&](std::uint64_t requests, std::uint64_t shed) {
    ServerSample s = good_sample(0, now);
    s.requests = requests;
    s.shed = shed;
    monitor.begin_round(now);
    monitor.observe(0, s);
    monitor.end_round();
    now += milliseconds(50);
  };

  round(1000, 900);  // first sample: no previous, huge since-boot shed is fine
  EXPECT_TRUE(monitor.server(0).healthy);
  round(1100, 901);  // delta 1/100: under the 5% SLO
  round(1200, 902);
  EXPECT_TRUE(monitor.server(0).healthy);
  round(1300, 952);  // delta 50/100: shedding
  round(1400, 1002);
  EXPECT_FALSE(monitor.server(0).healthy);
  ASSERT_FALSE(monitor.server(0).causes.empty());
  EXPECT_EQ(monitor.server(0).causes.front(), "shedding");
  // A counter reset (restart without uptime signal) must not divide by a
  // negative delta: the rule just skips that round.
  round(5, 0);
  round(10, 0);
  round(15, 0);
  EXPECT_TRUE(monitor.server(0).healthy);
}

TEST(HealthMonitor, PerGroupBudgetsDriveVerdictAndMargin) {
  // Two groups of three, b=1 each: one unhealthy server is degraded
  // (margin 0), two unhealthy in the SAME group is critical (margin -1),
  // two unhealthy in DIFFERENT groups is still degraded.
  obs::Registry registry;
  std::vector<HealthMonitor::ServerInfo> servers = {
      {100, 0}, {101, 0}, {102, 0}, {200, 1}, {201, 1}, {202, 1}};
  HealthMonitor::Options options;
  options.b = 1;
  HealthMonitor monitor(registry, nullptr, servers, options);

  std::uint64_t now = seconds(1);
  std::vector<Verdict> verdicts;
  monitor.set_on_verdict([&](Verdict v, std::uint64_t) { verdicts.push_back(v); });
  auto round = [&](std::vector<std::size_t> dead) {
    monitor.begin_round(now);
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const bool is_dead = std::find(dead.begin(), dead.end(), i) != dead.end();
      if (is_dead) {
        monitor.observe(i, std::nullopt);
      } else {
        monitor.observe(i, good_sample(servers[i].node, now));
      }
    }
    monitor.end_round();
    now += milliseconds(50);
  };

  round({});
  round({0});
  round({0});
  EXPECT_EQ(monitor.verdict(), Verdict::kDegraded);
  EXPECT_EQ(monitor.quorum_margin(), 0);
  EXPECT_EQ(monitor.unhealthy_in_group(0), 1u);
  EXPECT_EQ(monitor.unhealthy_in_group(1), 0u);

  round({0, 3});
  round({0, 3});
  EXPECT_EQ(monitor.verdict(), Verdict::kDegraded) << "one per group tolerates b=1";
  EXPECT_EQ(monitor.quorum_margin(), 0);

  round({0, 1, 3});
  round({0, 1, 3});
  EXPECT_EQ(monitor.verdict(), Verdict::kCritical) << "two in group 0 exceeds b=1";
  EXPECT_EQ(monitor.quorum_margin(), -1);
  EXPECT_EQ(monitor.unhealthy_in_group(0), 2u);

  round({});
  round({});
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  EXPECT_EQ(monitor.quorum_margin(), 1);

  ASSERT_GE(verdicts.size(), 3u);
  EXPECT_EQ(verdicts.front(), Verdict::kDegraded);
  EXPECT_EQ(verdicts.back(), Verdict::kGreen);
}

// ---------------------------------------------------------------------------
// HealthScorer: ground-truth semantics.
// ---------------------------------------------------------------------------

TEST(HealthScorer, DetectionAndRecoveryLatenciesAreMeasured) {
  obs::Registry registry;
  HealthScorer scorer;
  scorer.add_window({/*server=*/1, /*start=*/seconds(2), /*end=*/seconds(3),
                     /*required=*/true, "crash"});
  scorer.note_mark(1, false, seconds(2) + milliseconds(150));
  scorer.note_mark(1, true, seconds(3) + milliseconds(500));

  const auto report = scorer.score(/*heal_at=*/seconds(10), registry);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.windows_required, 1u);
  EXPECT_EQ(report.windows_detected, 1u);
  ASSERT_EQ(report.detection_latencies_us.size(), 1u);
  EXPECT_EQ(report.detection_latencies_us[0], milliseconds(150));
  ASSERT_EQ(report.recovery_latencies_us.size(), 1u);
  EXPECT_EQ(report.recovery_latencies_us[0], milliseconds(500));

  // Latencies land in the registry histograms the bench sidecar exports.
  const auto snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.histograms.contains("health.detection_latency_us"));
  EXPECT_EQ(snapshot.histograms.at("health.detection_latency_us").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("health.recovery_latency_us").count, 1u);
}

TEST(HealthScorer, MissedRequiredWindowIsAViolation) {
  obs::Registry registry;
  HealthScorer scorer;
  scorer.add_window({0, seconds(2), seconds(4), true, "isolate"});
  const auto report = scorer.score(seconds(10), registry);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.missed.size(), 1u);
  EXPECT_NE(report.missed[0].find("isolate"), std::string::npos);
  EXPECT_TRUE(report.false_positives.empty());
}

TEST(HealthScorer, MarkOutsideEveryWindowIsAFalsePositive) {
  obs::Registry registry;
  HealthScorer scorer;
  scorer.add_window({0, seconds(2), seconds(3), true, "crash"});
  scorer.note_mark(0, false, seconds(2) + milliseconds(100));  // detection
  scorer.note_mark(0, true, seconds(3) + milliseconds(300));
  scorer.note_mark(1, false, seconds(6));  // no window on server 1: FP
  const auto report = scorer.score(seconds(10), registry);
  EXPECT_EQ(report.windows_detected, 1u);
  ASSERT_EQ(report.false_positives.size(), 1u);
  EXPECT_NE(report.false_positives[0].find("server 1"), std::string::npos);
}

TEST(HealthScorer, HealRestartsAndLateDetectionAreExcused) {
  obs::Registry registry;
  HealthScorer scorer;
  scorer.add_window({0, seconds(2), seconds(3), true, "byzantine"});
  scorer.note_mark(0, false, seconds(2) + milliseconds(120));
  // The kRecover restart re-marks the server just after the window; the
  // post-window grace excuses it.
  scorer.note_mark(0, true, seconds(3) + milliseconds(400));
  scorer.note_mark(0, false, seconds(3) + milliseconds(600));
  scorer.note_mark(0, true, seconds(4) + milliseconds(200));
  // The global heal restarts a server with no window of its own.
  scorer.note_mark(2, false, seconds(10) + milliseconds(150));
  scorer.note_mark(2, true, seconds(10) + milliseconds(800));
  const auto report = scorer.score(/*heal_at=*/seconds(10), registry);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(HealthScorer, CriticalVerdictOutsideWindowsIsAViolation) {
  obs::Registry registry;
  HealthScorer scorer;
  scorer.add_window({0, seconds(2), seconds(3), true, "crash"});
  scorer.note_mark(0, false, seconds(2) + milliseconds(100));
  scorer.note_verdict(Verdict::kCritical, seconds(2) + milliseconds(200));  // in-window
  scorer.note_verdict(Verdict::kCritical, seconds(7));                      // outside
  const auto report = scorer.score(seconds(10), registry);
  ASSERT_EQ(report.false_positives.size(), 1u);
  EXPECT_NE(report.false_positives[0].find("critical verdict"), std::string::npos);
}

TEST(HealthScorer, BuildsWindowsFromScheduleWithRequirednessRules) {
  ChaosSchedule schedule;
  auto event = [](SimTime at, ChaosEvent::Kind kind, std::uint32_t server) {
    ChaosEvent e;
    e.at = at;
    e.kind = kind;
    e.server = server;
    return e;
  };
  // Long crash: required. Short crash (200ms < min_scored): opportunistic.
  schedule.events.push_back(event(seconds(1), ChaosEvent::Kind::kCrash, 0));
  schedule.events.push_back(event(seconds(2), ChaosEvent::Kind::kRestart, 0));
  schedule.events.push_back(event(seconds(3), ChaosEvent::Kind::kCrash, 1));
  schedule.events.push_back(event(seconds(3) + milliseconds(200),
                                  ChaosEvent::Kind::kRestart, 1));
  // Link degradation: never required.
  schedule.events.push_back(event(seconds(4), ChaosEvent::Kind::kDegradeLinks, 2));
  schedule.events.push_back(event(seconds(5), ChaosEvent::Kind::kRestoreLinks, 2));
  // Saturating storm (rate x service = 2.0): required. Mild storm (0.5): not.
  ChaosEvent storm = event(seconds(6), ChaosEvent::Kind::kOverloadStorm, 3);
  storm.storm_rate = 4000;
  storm.storm_service = microseconds(500);
  schedule.events.push_back(storm);
  schedule.events.push_back(event(seconds(7), ChaosEvent::Kind::kEndOverloadStorm, 3));
  ChaosEvent mild = event(seconds(8), ChaosEvent::Kind::kOverloadStorm, 0);
  mild.storm_rate = 1000;
  mild.storm_service = microseconds(500);
  schedule.events.push_back(mild);
  // ...whose close event fell past the horizon: closes at start + horizon.

  HealthScorer scorer;
  const SimTime start = seconds(100);
  scorer.add_schedule(schedule, start, /*horizon=*/seconds(10),
                      [](std::uint32_t s) { return std::optional<std::uint32_t>(s); });

  ASSERT_EQ(scorer.windows().size(), 5u);
  const auto& w = scorer.windows();  // sorted by start
  EXPECT_EQ(w[0].start, start + seconds(1));
  EXPECT_EQ(w[0].end, start + seconds(2));
  EXPECT_TRUE(w[0].required);
  EXPECT_FALSE(w[1].required) << "200ms crash is shorter than min_scored";
  EXPECT_FALSE(w[2].required) << "degraded links are never required";
  EXPECT_TRUE(w[3].required) << "saturating storm must be detected";
  EXPECT_FALSE(w[4].required) << "mild storm stays under every SLO";
  EXPECT_EQ(w[4].end, start + seconds(10)) << "unclosed window ends at the heal";
}

// ---------------------------------------------------------------------------
// kIntrospect wire codec.
// ---------------------------------------------------------------------------

TEST(IntrospectWire, SampleRoundTripsEveryField) {
  ServerSample s;
  s.node = 7;
  s.shard = 3;
  s.now_us = 123456789;
  s.uptime_us = 987654;
  s.ring_version = 42;
  s.gossip_ticks = 1000;
  s.gossip_idle_us = 2500;
  s.wal_append_ewma_us = 123.5;
  s.wal_append_p99_us = 4567.25;
  s.compaction_lag = 9;
  s.memtable_bytes = 1 << 20;
  s.requests = 55555;
  s.shed = 321;
  s.net_backlog = 17;
  s.hold_depth = 2;
  s.overloaded = true;

  Writer w;
  net::encode_sample(w, s);
  Reader r(w.data());
  const ServerSample back = net::decode_sample(r);
  r.expect_end();
  EXPECT_EQ(back.node, s.node);
  EXPECT_EQ(back.shard, s.shard);
  EXPECT_EQ(back.now_us, s.now_us);
  EXPECT_EQ(back.uptime_us, s.uptime_us);
  EXPECT_EQ(back.ring_version, s.ring_version);
  EXPECT_EQ(back.gossip_ticks, s.gossip_ticks);
  EXPECT_EQ(back.gossip_idle_us, s.gossip_idle_us);
  EXPECT_EQ(back.wal_append_ewma_us, s.wal_append_ewma_us);
  EXPECT_EQ(back.wal_append_p99_us, s.wal_append_p99_us);
  EXPECT_EQ(back.compaction_lag, s.compaction_lag);
  EXPECT_EQ(back.memtable_bytes, s.memtable_bytes);
  EXPECT_EQ(back.requests, s.requests);
  EXPECT_EQ(back.shed, s.shed);
  EXPECT_EQ(back.net_backlog, s.net_backlog);
  EXPECT_EQ(back.hold_depth, s.hold_depth);
  EXPECT_EQ(back.overloaded, s.overloaded);
}

TEST(IntrospectWire, RequestAndResponseRoundTripAndRejectGarbage) {
  {
    Writer w;
    net::IntrospectRequest{net::IntrospectFormat::kEvents, 77}.encode(w);
    Reader r(w.data());
    const auto req = net::IntrospectRequest::decode(r);
    EXPECT_EQ(req.format, net::IntrospectFormat::kEvents);
    EXPECT_EQ(req.max_events, 77u);
  }
  {
    net::IntrospectResponse resp;
    resp.format = net::IntrospectFormat::kPrometheus;
    resp.text = "# TYPE x counter\nx 1\n";
    Writer w;
    resp.encode(w);
    Reader r(w.data());
    const auto back = net::IntrospectResponse::decode(r);
    EXPECT_EQ(back.format, net::IntrospectFormat::kPrometheus);
    EXPECT_EQ(back.text, resp.text);
  }
  {
    Writer w;
    w.u8(99);  // unknown version
    w.u8(0);
    w.u32(0);
    Reader r(w.data());
    EXPECT_THROW(net::IntrospectRequest::decode(r), DecodeError);
  }
  {
    Writer w;
    w.u8(1);
    w.u8(250);  // unknown format
    w.u32(0);
    Reader r(w.data());
    EXPECT_THROW(net::IntrospectRequest::decode(r), DecodeError);
  }
}

// ---------------------------------------------------------------------------
// A live server answering kIntrospect.
// ---------------------------------------------------------------------------

struct IntrospectProbe {
  explicit IntrospectProbe(Cluster& cluster)
      : node(cluster.endpoint_transport(), NodeId{4998}) {}

  void ask(NodeId server, net::IntrospectFormat format,
           std::function<void(std::optional<net::IntrospectResponse>)> done) {
    Writer w;
    net::IntrospectRequest{format, 64}.encode(w);
    node.send_request(server, net::MsgType::kIntrospect, w.take(),
                      [done = std::move(done)](NodeId, net::MsgType type, BytesView body) {
                        if (type != net::MsgType::kAck) {
                          done(std::nullopt);
                          return;
                        }
                        try {
                          Reader r(body);
                          done(net::IntrospectResponse::decode(r));
                        } catch (const DecodeError&) {
                          done(std::nullopt);
                        }
                      });
  }

  net::RpcNode node;
};

TEST(IntrospectEndpoint, ServesAllFourFormats) {
  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  Cluster cluster(options);
  cluster.run_for(milliseconds(500));  // let gossip tick so idle is small
  IntrospectProbe probe(cluster);

  std::optional<ServerSample> sample;
  probe.ask(NodeId{0}, net::IntrospectFormat::kStatus, [&](auto resp) {
    ASSERT_TRUE(resp.has_value());
    sample = resp->sample;
  });
  std::string prometheus, json, events;
  probe.ask(NodeId{0}, net::IntrospectFormat::kPrometheus, [&](auto resp) {
    ASSERT_TRUE(resp.has_value());
    prometheus = resp->text;
  });
  probe.ask(NodeId{0}, net::IntrospectFormat::kJson, [&](auto resp) {
    ASSERT_TRUE(resp.has_value());
    json = resp->text;
  });
  probe.ask(NodeId{0}, net::IntrospectFormat::kEvents, [&](auto resp) {
    ASSERT_TRUE(resp.has_value());
    events = resp->text;
  });
  cluster.run_for(milliseconds(100));

  ASSERT_TRUE(sample.has_value()) << "status introspect went unanswered";
  EXPECT_EQ(sample->node, 0u);
  EXPECT_GT(sample->uptime_us, 0u);
  EXPECT_GT(sample->gossip_ticks, 0u);
  EXPECT_LT(sample->gossip_idle_us, seconds(1));
  EXPECT_GT(sample->requests, 0u) << "the introspect itself is dispatched";

  EXPECT_NE(prometheus.find("# TYPE"), std::string::npos);
  EXPECT_NE(prometheus.find("server_req_introspect"), std::string::npos)
      << "dotted metric names must be escaped for Prometheus:\n"
      << prometheus.substr(0, 400);
  EXPECT_FALSE(json.empty());
  EXPECT_NE(json.find("introspect"), std::string::npos);
  EXPECT_FALSE(events.empty());
}

TEST(IntrospectEndpoint, RateLimitSilencesTheFloodWithoutAmplifying) {
  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  Cluster cluster(options);
  IntrospectProbe probe(cluster);

  // Server-side defaults: burst 50, refill 100/s. A burst of 70 must see
  // at most ~burst answers; the rest get silence (no error to amplify).
  int answered = 0;
  int silent = 0;
  for (int i = 0; i < 70; ++i) {
    probe.ask(NodeId{0}, net::IntrospectFormat::kStatus, [&](auto resp) {
      resp.has_value() ? ++answered : ++silent;
    });
  }
  cluster.run_for(milliseconds(500));  // unanswered rpcs die at the rpc timeout

  EXPECT_GE(answered, 45) << "healthy scrapers must still be served";
  EXPECT_LE(answered, 56) << "the token bucket must cap a flood";

  std::uint64_t limited = 0;
  const auto snapshot = cluster.registry().snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("server.introspect_limited", 0) == 0) limited += value;
  }
  EXPECT_GE(limited, 10u);
}

// ---------------------------------------------------------------------------
// IntrospectScraper + HealthMonitor against a live cluster.
// ---------------------------------------------------------------------------

TEST(IntrospectScraper, MarksCrashedServerThenClearsAfterRestart) {
  ClusterOptions options;
  options.n = 4;
  options.b = 1;
  options.gossip.period = milliseconds(50);
  Cluster cluster(options);

  std::vector<HealthMonitor::ServerInfo> servers;
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < options.n; ++i) {
    servers.push_back({cluster.server_node(i).value, 0});
    nodes.push_back(cluster.server_node(i));
  }
  HealthMonitor::Options monitor_options;
  monitor_options.b = options.b;
  HealthMonitor monitor(cluster.registry(), &cluster.events(), servers, monitor_options);
  net::RpcNode scrape_node(cluster.endpoint_transport(), NodeId{4998});
  net::IntrospectScraper scraper(scrape_node, nodes, monitor);

  scraper.start();
  cluster.run_for(milliseconds(400));
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  EXPECT_GT(monitor.rounds(), 4u);
  for (std::uint32_t i = 0; i < options.n; ++i) {
    EXPECT_TRUE(monitor.server(i).healthy) << "server " << i;
    EXPECT_GT(monitor.server(i).scrapes, 0u);
  }

  cluster.stop_server(1);
  cluster.run_for(milliseconds(400));
  EXPECT_FALSE(monitor.server(1).healthy);
  ASSERT_FALSE(monitor.server(1).causes.empty());
  EXPECT_EQ(monitor.server(1).causes.front(), "unreachable");
  EXPECT_EQ(monitor.verdict(), Verdict::kDegraded);
  EXPECT_EQ(monitor.quorum_margin(), 0);

  cluster.start_server(1);
  // Recovery takes the restart hold (400ms) plus two clean rounds.
  cluster.run_for(milliseconds(1500));
  EXPECT_TRUE(monitor.server(1).healthy);
  EXPECT_EQ(monitor.verdict(), Verdict::kGreen);
  scraper.stop();

  const auto snapshot = cluster.registry().snapshot();
  EXPECT_GT(snapshot.counters.at("health.scrapes"), 0u);
  EXPECT_GT(snapshot.counters.at("health.scrape_failures"), 0u);
  EXPECT_GE(snapshot.counters.at("health.state_changes"), 2u);
}

// ---------------------------------------------------------------------------
// HttpIntrospectServer: the TCP exposition listener.
// ---------------------------------------------------------------------------

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[1024];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpIntrospectServer, ServesRoutesRejectsJunkAndRateLimits) {
  net::HttpIntrospectServer::Options options;
  options.port = 0;  // ephemeral
  options.rate_per_sec = 0;
  options.burst = 3;
  net::HttpIntrospectServer::Routes routes;
  routes.metrics = [] { return std::string("# TYPE up gauge\nup 1\n"); };
  routes.healthz = [] { return std::string("green margin=1\n"); };
  net::HttpIntrospectServer server(options, std::move(routes));
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string metrics =
      http_exchange(server.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE up gauge"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const std::string healthz =
      http_exchange(server.port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(healthz.find("green margin=1"), std::string::npos);

  const std::string missing =
      http_exchange(server.port(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post =
      http_exchange(server.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  // Tokens are spent after the method check but before routing, so the
  // three GETs above (including the 404) drained the burst of 3 while the
  // POST spent nothing. With zero refill the next GET is limited.
  const std::string limited =
      http_exchange(server.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(limited.find("429"), std::string::npos);
  EXPECT_GE(server.requests_limited(), 1u);
  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
}

// ---------------------------------------------------------------------------
// EventLog::recent under concurrent writers (the tsan target).
// ---------------------------------------------------------------------------

TEST(EventLogConcurrency, RecentDumpUnderWritersWithExactDropAccounting) {
  constexpr std::size_t kCapacity = 128;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  obs::EventLog log(kCapacity);
  log.set_enabled(true);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_errors{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto recent = log.recent(64);
      if (recent.size() > 64) reader_errors.fetch_add(1);
      for (const obs::Event& e : recent) {
        if (e.name.empty()) reader_errors.fetch_add(1);  // torn event
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        obs::Event event;
        event.kind = obs::EventKind::kInstant;
        event.node = static_cast<std::uint32_t>(t);
        event.ts_us = static_cast<std::uint64_t>(i);
        event.name = "w" + std::to_string(t);
        event.category = "health";
        log.record(std::move(event));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(reader_errors.load(), 0u);
  // Exact accounting: every record beyond capacity overwrote (dropped) one.
  EXPECT_EQ(log.dropped(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter - kCapacity);
  EXPECT_EQ(log.size(), kCapacity);
  EXPECT_EQ(log.recent(10'000).size(), kCapacity);
  // recent(k) is exactly the tail of snapshot().
  const auto all = log.snapshot();
  const auto tail = log.recent(32);
  ASSERT_EQ(tail.size(), 32u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].node, all[all.size() - 32 + i].node);
    EXPECT_EQ(tail[i].ts_us, all[all.size() - 32 + i].ts_us);
  }
}

// ---------------------------------------------------------------------------
// The headline soak: chaos storms scored against the watchdog's verdicts.
// ---------------------------------------------------------------------------

struct SoakCase {
  std::uint64_t seed;
};

ChaosReport run_monitored_soak(std::uint64_t seed) {
  ClusterOptions options;
  options.n = 5;
  options.b = 1;
  options.seed = seed * 6151;
  options.chaos_seed = seed * 40503;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  Cluster cluster(options);

  Rng schedule_rng(seed);
  ChaosSchedule schedule =
      ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(10));
  ChaosRunnerOptions runner_options;
  runner_options.horizon = seconds(10);
  runner_options.quiesce = seconds(3);
  ChaosRunner runner(cluster, std::move(schedule), runner_options,
                     /*workload_seed=*/seed * 31 + 7);
  runner.attach_health_monitor();
  return runner.run();
}

class HealthSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(HealthSoak, EveryInjectedFaultDetectedZeroFalsePositives) {
  testkit::SeedBanner banner("health_soak", GetParam().seed, gtest_failed);
  const std::uint64_t seed = banner.seed();

  const ChaosReport report = run_monitored_soak(seed);
  // The health plane must not break the store: the oracle still holds.
  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  EXPECT_GT(report.writes_acked, 0u);

  ASSERT_TRUE(report.health.has_value());
  const testkit::HealthScoreReport& health = *report.health;
  EXPECT_TRUE(health.clean()) << health.summary();
  EXPECT_EQ(health.windows_detected, health.windows_required) << health.summary();
  if (health.windows_required > 0) {
    EXPECT_FALSE(health.detection_latencies_us.empty()) << health.summary();
  }
  EXPECT_GT(health.marks_healthy + health.marks_unhealthy, 0u)
      << "monitor never changed state across a whole storm — vacuous wiring?";
}

std::vector<SoakCase> soak_seeds() {
  // Quick mode: 8 fixed seeds (offset from chaos_test's so the two suites
  // cover disjoint storms). `SECURESTORE_CHAOS_SEEDS=<count>` widens it.
  std::size_t count = 8;
  if (const char* env = std::getenv("SECURESTORE_CHAOS_SEEDS")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) count = parsed;
  }
  std::vector<SoakCase> cases;
  for (std::size_t i = 0; i < count; ++i) cases.push_back(SoakCase{2000 + i * 13});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealthSoak, ::testing::ValuesIn(soak_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param.seed);
                         });

TEST(ShardedHealthSoak, PerGroupBudgetsScoredAcrossShards) {
  testkit::SeedBanner banner("sharded_health_soak", 77, gtest_failed);
  const std::uint64_t seed = banner.seed();

  ShardedClusterOptions options;
  options.groups = 2;
  options.n = 4;
  options.b = 1;
  options.seed = seed * 6151;
  options.chaos_seed = seed * 40503;
  options.gossip.period = milliseconds(50);
  options.op_timeout = seconds(2);
  ShardedCluster cluster(options);

  Rng schedule_rng(seed);
  std::vector<ChaosSchedule> schedules;
  for (std::uint32_t g = 0; g < options.groups; ++g) {
    schedules.push_back(
        ChaosSchedule::random(schedule_rng, options.n, options.b, seconds(10)));
  }
  ShardedChaosOptions runner_options;
  runner_options.horizon = seconds(10);
  runner_options.quiesce = seconds(3);
  ShardedChaosRunner runner(cluster, std::move(schedules), runner_options,
                            /*workload_seed=*/seed * 31 + 7);
  runner.attach_health_monitor();
  const ShardedChaosReport report = runner.run();

  EXPECT_TRUE(report.violations.empty()) << report.violation_report;
  ASSERT_TRUE(report.health.has_value());
  EXPECT_TRUE(report.health->clean()) << report.health->summary();
  EXPECT_EQ(report.health->windows_detected, report.health->windows_required)
      << report.health->summary();
}

}  // namespace
}  // namespace securestore
