#include "testkit/health_scorer.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "testkit/chaos.h"

namespace securestore::testkit {
namespace {

std::string fmt_s(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(us) / 1e6);
  return buf;
}

}  // namespace

std::string HealthScoreReport::summary() const {
  std::string out;
  out += "health: " + std::to_string(windows_required) + " required window(s), " +
         std::to_string(windows_detected) + " detected, " +
         std::to_string(missed.size()) + " missed, " +
         std::to_string(false_positives.size()) + " false positive(s); marks " +
         std::to_string(marks_unhealthy) + " down / " + std::to_string(marks_healthy) +
         " up\n";
  if (!detection_latencies_us.empty()) {
    const auto [lo, hi] = std::minmax_element(detection_latencies_us.begin(),
                                              detection_latencies_us.end());
    out += "  detection latency " + fmt_s(*lo) + " .. " + fmt_s(*hi) + " over " +
           std::to_string(detection_latencies_us.size()) + " sample(s)\n";
  }
  if (!recovery_latencies_us.empty()) {
    const auto [lo, hi] = std::minmax_element(recovery_latencies_us.begin(),
                                              recovery_latencies_us.end());
    out += "  recovery latency " + fmt_s(*lo) + " .. " + fmt_s(*hi) + " over " +
           std::to_string(recovery_latencies_us.size()) + " sample(s)\n";
  }
  for (const std::string& m : missed) out += "  MISSED " + m + "\n";
  for (const std::string& f : false_positives) out += "  FALSE-POSITIVE " + f + "\n";
  return out;
}

void HealthScorer::add_schedule(
    const ChaosSchedule& schedule, SimTime start, SimTime horizon,
    const std::function<std::optional<std::uint32_t>(std::uint32_t)>& index_of) {
  struct Pending {
    FaultWindow window;
    ChaosEvent::Kind open_kind{};
    double utilization = 0;  // overload storms: injected rate / capacity
  };
  // The schedule generator never overlaps two windows on one server, so
  // one pending slot per schedule-server id suffices.
  std::map<std::uint32_t, Pending> open;

  const auto closes = [](ChaosEvent::Kind open_kind, ChaosEvent::Kind kind) {
    switch (open_kind) {
      case ChaosEvent::Kind::kCrash: return kind == ChaosEvent::Kind::kRestart;
      case ChaosEvent::Kind::kIsolate: return kind == ChaosEvent::Kind::kHealIsolation;
      case ChaosEvent::Kind::kByzantine: return kind == ChaosEvent::Kind::kRecover;
      case ChaosEvent::Kind::kDegradeLinks:
        return kind == ChaosEvent::Kind::kRestoreLinks;
      case ChaosEvent::Kind::kOverloadStorm:
        return kind == ChaosEvent::Kind::kEndOverloadStorm;
      default: return false;
    }
  };

  const auto finish = [this](Pending& p, SimTime end) {
    p.window.end = end;
    const SimDuration length = end > p.window.start ? end - p.window.start : 0;
    bool required = false;
    if (length >= options_.min_scored) {
      switch (p.open_kind) {
        case ChaosEvent::Kind::kCrash:
        case ChaosEvent::Kind::kIsolate:
        case ChaosEvent::Kind::kByzantine:
          required = true;
          break;
        case ChaosEvent::Kind::kOverloadStorm:
          required = p.utilization >= options_.storm_min_utilization;
          break;
        default:
          break;  // degraded links slow a server but break no SLO per se
      }
    }
    p.window.required = required;
    windows_.push_back(p.window);
  };

  for (const ChaosEvent& event : schedule.events) {
    const std::optional<std::uint32_t> index = index_of(event.server);
    if (!index.has_value()) continue;
    const SimTime at = start + event.at;
    switch (event.kind) {
      case ChaosEvent::Kind::kCrash:
      case ChaosEvent::Kind::kIsolate:
      case ChaosEvent::Kind::kByzantine:
      case ChaosEvent::Kind::kDegradeLinks:
      case ChaosEvent::Kind::kOverloadStorm: {
        Pending p;
        p.window.server = *index;
        p.window.start = at;
        p.window.kind = chaos_event_name(event.kind);
        p.open_kind = event.kind;
        if (event.kind == ChaosEvent::Kind::kOverloadStorm) {
          p.utilization = event.storm_rate * to_seconds(event.storm_service);
        }
        open[event.server] = std::move(p);
        break;
      }
      default: {
        const auto it = open.find(event.server);
        if (it != open.end() && closes(it->second.open_kind, event.kind)) {
          finish(it->second, at);
          open.erase(it);
        }
        break;
      }
    }
  }
  // A window whose closing event fell off the schedule ends at the heal.
  for (auto& [server, pending] : open) finish(pending, start + horizon);
  std::sort(windows_.begin(), windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.start < b.start; });
}

void HealthScorer::note_mark(std::uint32_t server_index, bool healthy,
                             std::uint64_t at_us) {
  marks_.push_back(Mark{server_index, healthy, at_us});
}

void HealthScorer::note_verdict(obs::Verdict verdict, std::uint64_t at_us) {
  verdicts_.emplace_back(verdict, at_us);
}

HealthScoreReport HealthScorer::score(SimTime heal_at, obs::Registry& registry) const {
  HealthScoreReport report;
  report.windows_total = windows_.size();
  for (const Mark& m : marks_) {
    if (m.healthy) ++report.marks_healthy;
    else ++report.marks_unhealthy;
  }

  // Per-server marks, already time-ordered (end_round observes in order).
  std::map<std::uint32_t, std::vector<Mark>> by_server;
  for (const Mark& m : marks_) by_server[m.server].push_back(m);

  for (const FaultWindow& w : windows_) {
    if (w.required) ++report.windows_required;
    const auto it = by_server.find(w.server);
    const std::vector<Mark>* marks = it != by_server.end() ? &it->second : nullptr;

    // Detection: either the server entered the window already marked (the
    // previous window's mark never cleared — latency 0, no fresh sample),
    // or the first unhealthy mark lands in [start, end + slack].
    bool already_down = false;
    std::optional<std::uint64_t> fresh_at;
    if (marks != nullptr) {
      for (const Mark& m : *marks) {
        if (m.at < w.start) {
          already_down = !m.healthy;
          continue;
        }
        if (m.at > w.end + options_.detect_slack) break;
        if (!m.healthy) {
          fresh_at = m.at;
          break;
        }
        already_down = false;  // cleared inside the window before any mark
      }
    }
    const bool detected = already_down || fresh_at.has_value();
    if (fresh_at.has_value() && !already_down) {
      report.detection_latencies_us.push_back(*fresh_at - w.start);
    }
    if (w.required) {
      if (detected) {
        ++report.windows_detected;
      } else {
        report.missed.push_back("server " + std::to_string(w.server) + " " + w.kind +
                                " window " + fmt_s(w.start) + ".." + fmt_s(w.end) +
                                " never marked unhealthy");
      }
    }

    // Recovery: the first healthy mark at or after the window's end that
    // actually clears an unhealthy state (fault-heal restarts re-mark the
    // server briefly, so the clearing mark may follow a post-end mark).
    if (detected && marks != nullptr) {
      bool down = already_down;
      for (const Mark& m : *marks) {
        if (m.at < w.start) continue;  // pre-window state is already_down
        if (!m.healthy) {
          down = true;
          continue;
        }
        if (down && m.at >= w.end) {
          report.recovery_latencies_us.push_back(m.at - w.end);
          break;
        }
        down = false;
      }
    }
  }

  // False positives: unhealthy marks covered by no window of that server
  // (with grace) and not explained by the global heal's restarts.
  const auto excused_global = [&](std::uint64_t at) {
    return at >= heal_at && at <= heal_at + options_.fp_grace;
  };
  for (const Mark& m : marks_) {
    if (m.healthy) continue;
    bool excused = excused_global(m.at);
    for (const FaultWindow& w : windows_) {
      if (excused) break;
      excused = w.server == m.server && m.at >= w.start &&
                m.at <= w.end + options_.fp_grace;
    }
    if (!excused) {
      report.false_positives.push_back("server " + std::to_string(m.server) +
                                       " marked unhealthy at " + fmt_s(m.at) +
                                       " outside every fault window");
    }
  }

  // A critical verdict is only legitimate while some fault window (or the
  // heal's restart wave) could explain the unhealthy count.
  for (const auto& [verdict, at] : verdicts_) {
    if (verdict != obs::Verdict::kCritical) continue;
    bool excused = excused_global(at);
    for (const FaultWindow& w : windows_) {
      if (excused) break;
      excused = at >= w.start && at <= w.end + options_.fp_grace;
    }
    if (!excused) {
      report.false_positives.push_back(
          "critical verdict at " + fmt_s(at) + " outside every fault window");
    }
  }

  auto& detection = registry.histogram("health.detection_latency_us");
  auto& recovery = registry.histogram("health.recovery_latency_us");
  for (const std::uint64_t v : report.detection_latencies_us) {
    detection.observe(static_cast<double>(v));
  }
  for (const std::uint64_t v : report.recovery_latencies_us) {
    recovery.observe(static_cast<double>(v));
  }
  return report;
}

}  // namespace securestore::testkit
