// Seed discipline for randomized tests and benches (DESIGN.md §9).
//
// Every stochastic harness funnels its seed through this helper so that (a)
// the seed is printed when the run starts, (b) it is printed again — loudly
// — when the run fails, and (c) `SECURESTORE_SEED=<n>` in the environment
// overrides it for a replay. One helper, one format, so any chaos or
// property failure is reproducible by copy-pasting the seed from the log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace securestore::testkit {

/// The seed to use: `SECURESTORE_SEED` from the environment when set (and
/// parseable as an unsigned decimal), otherwise `default_seed`.
std::uint64_t resolve_seed(std::uint64_t default_seed);

/// Prints "[seed] <context> seed=<n>" to stdout and returns the resolved
/// seed (env override applied). Call at the start of every randomized run.
std::uint64_t announce_seed(std::string_view context, std::uint64_t default_seed);

/// RAII banner: announces the seed on construction and, if `failed` returns
/// true at destruction (e.g. `[]{ return ::testing::Test::HasFailure(); }`),
/// prints a FAILED line carrying the seed so the reproducer is the last
/// thing in the log. Keeping the probe a callback keeps gtest out of this
/// library.
class SeedBanner {
 public:
  SeedBanner(std::string_view context, std::uint64_t default_seed,
             std::function<bool()> failed = nullptr);
  ~SeedBanner();

  SeedBanner(const SeedBanner&) = delete;
  SeedBanner& operator=(const SeedBanner&) = delete;

  std::uint64_t seed() const { return seed_; }
  void set_failed() { forced_failure_ = true; }

 private:
  std::string context_;
  std::uint64_t seed_;
  std::function<bool()> failed_;
  bool forced_failure_ = false;
};

}  // namespace securestore::testkit
