#include "testkit/sharded_cluster.h"

#include <stdexcept>

namespace securestore::testkit {

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.groups == 0) throw std::invalid_argument("ShardedCluster: groups == 0");
  transport_ = std::make_unique<net::SimTransport>(
      scheduler_, sim::NetworkModel(rng_.fork(), options_.link), options_.registry,
      options_.events);
  if (options_.tracing) {
    transport_->events().set_sample_every(options_.trace_sample_every);
    transport_->events().set_enabled(true);
  }
  if (options_.chaos_seed.has_value()) {
    chaos_ = std::make_unique<net::FaultInjectingTransport>(*transport_, *options_.chaos_seed);
  }

  ring_authority_ = crypto::KeyPair::generate(rng_);
  for (std::uint32_t c = 1; c <= options_.max_clients; ++c) {
    client_keypairs_.push_back(crypto::KeyPair::generate(rng_));
  }

  for (std::uint32_t g = 0; g < options_.groups; ++g) {
    groups_.push_back(build_group(g));
  }
  // Groups boot unsharded (the ring needs their server keys, which only
  // exist once they are built); nothing runs before this install, so no
  // request is ever served without ownership enforcement.
  install_ring(next_ring());
}

ShardedCluster::~ShardedCluster() = default;

std::unique_ptr<Cluster> ShardedCluster::build_group(std::uint32_t shard_id) {
  ClusterOptions cluster_options;
  cluster_options.n = options_.n;
  cluster_options.b = options_.b;
  // Distinct per-group seeds: server keys and gossip jitter must differ
  // across groups, deterministically in the deployment seed.
  cluster_options.seed = options_.seed + 7919 * (shard_id + 1);
  cluster_options.max_clients = options_.max_clients;
  cluster_options.gossip = options_.gossip;
  cluster_options.start_gossip = options_.start_gossip;
  cluster_options.op_timeout = options_.op_timeout;
  if (options_.durability_dir.has_value()) {
    cluster_options.durability_dir =
        *options_.durability_dir + "/group-" + std::to_string(shard_id);
    cluster_options.fsync = options_.fsync;
  }
  cluster_options.engine = options_.engine;
  ClusterOptions::SharedInfra shared;
  shared.scheduler = &scheduler_;
  shared.transport = transport_.get();
  shared.chaos = chaos_.get();
  shared.shard_id = shard_id;
  shared.server_node_base = shard_id * 100;  // servers g*100 .. g*100+n-1
  shared.ring_authority_key = ring_authority_.public_key;
  shared.client_keypairs = &client_keypairs_;
  cluster_options.shared = std::move(shared);

  auto cluster = std::make_unique<Cluster>(std::move(cluster_options));
  for (const core::GroupPolicy& policy : policies_) cluster->set_group_policy(policy);
  return cluster;
}

std::uint32_t ShardedCluster::shard_for(GroupId group) const {
  return hash_ring_->shard_for(group);
}

void ShardedCluster::set_group_policy(const core::GroupPolicy& policy) {
  policies_.push_back(policy);
  for (auto& group : groups_) group->set_group_policy(policy);
}

std::unique_ptr<shard::ShardedClient> ShardedCluster::make_client(
    ClientId id, core::SecureStoreClient::Options options, unsigned max_reroutes) {
  shard::ShardedClient::Options sharded_options;
  sharded_options.client = std::move(options);
  sharded_options.network_base = NodeId{10000 + id.value * 100};
  sharded_options.max_reroutes = max_reroutes;
  // Policies registered so far ride along, so each routed group runs its
  // own sharing/consistency mode (register policies before make_client).
  for (const core::GroupPolicy& policy : policies_) {
    sharded_options.group_policies.emplace(policy.group, policy);
  }
  return std::make_unique<shard::ShardedClient>(endpoint_transport(), id, client_keys(id),
                                                ring_, template_config(),
                                                std::move(sharded_options), rng_.fork());
}

const crypto::KeyPair& ShardedCluster::client_keys(ClientId id) const {
  if (id.value == 0 || id.value > client_keypairs_.size()) {
    throw std::out_of_range("ShardedCluster: unregistered client id");
  }
  return client_keypairs_[id.value - 1];
}

std::uint32_t ShardedCluster::begin_add_group() {
  const auto shard_id = static_cast<std::uint32_t>(groups_.size());
  groups_.push_back(build_group(shard_id));
  // The newcomer runs under the CURRENT ring with its new shard id: the
  // ring maps nothing to it, so it rejects every client request until the
  // switch — no split-brain window where two groups serve one key.
  groups_.back()->set_ring(ring_);
  return shard_id;
}

shard::SignedRingState ShardedCluster::next_ring() const {
  shard::RingState ring;
  ring.version = next_version_;
  ring.vnodes_per_shard = options_.vnodes_per_shard;
  ring.placement_seed = options_.seed;
  for (const auto& group : groups_) {
    shard::ShardMembers members;
    members.shard_id = group->shard_id();
    const core::StoreConfig& config = group->config();
    members.servers = config.servers;
    for (const NodeId server : config.servers) {
      members.server_keys.push_back(config.server_keys.at(server));
    }
    ring.shards.push_back(std::move(members));
  }
  return shard::SignedRingState::sign(std::move(ring), ring_authority_.seed);
}

std::uint64_t ShardedCluster::copy_moved_data(const shard::SignedRingState& target) {
  const shard::HashRing target_ring(target.ring);
  std::uint64_t copied = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    Cluster& source = *groups_[g];
    const std::uint32_t source_shard = source.shard_id();
    for (std::size_t s = 0; s < source.server_count(); ++s) {
      // Crashed holders contribute nothing; with at most b faulty per group
      // every quorum-acked record still has a running honest holder, and
      // imports are idempotent across holders.
      if (!source.server_running(s)) continue;
      core::SecureStoreServer& holder = source.server(s);
      // Walk the metadata index, materializing (and copying — the engine's
      // current() pointer dies at its next call) only records that move.
      for (const storage::CurrentEntry& entry : holder.store().current_index()) {
        if (entry.flags & core::kScattered) continue;  // pinned fragments
        const core::WriteRecord* current = holder.store().current(entry.item);
        if (current == nullptr) continue;
        const core::WriteRecord record = *current;
        const std::uint32_t owner = target_ring.shard_for(record.group);
        if (owner == source_shard || owner >= groups_.size()) continue;
        Cluster& dest = *groups_[owner];
        for (std::size_t d = 0; d < dest.server_count(); ++d) {
          if (dest.server_running(d) && dest.server(d).import_record(record)) ++copied;
        }
      }
      for (const core::StoredContext* stored : holder.contexts().all()) {
        const std::uint32_t owner = target_ring.shard_for(stored->context.group());
        if (owner == source_shard || owner >= groups_.size()) continue;
        Cluster& dest = *groups_[owner];
        for (std::size_t d = 0; d < dest.server_count(); ++d) {
          if (dest.server_running(d)) dest.server(d).import_context(*stored);
        }
      }
    }
  }
  return copied;
}

void ShardedCluster::install_ring(const shard::SignedRingState& ring) {
  ring_ = ring;
  hash_ring_.emplace(ring_.ring);
  next_version_ = ring_.ring.version + 1;
  for (auto& group : groups_) group->set_ring(ring_);
}

std::uint32_t ShardedCluster::add_group() {
  const std::uint32_t shard_id = begin_add_group();
  const shard::SignedRingState target = next_ring();
  // Bulk copy, switch, reconcile: old owners never delete moved data, so a
  // write acked between the bulk pass and the switch is caught by the
  // second pass. (The chaos harness interleaves virtual time and faults
  // between these phases; called back-to-back they are atomic in sim time.)
  copy_moved_data(target);
  install_ring(target);
  copy_moved_data(target);
  return shard_id;
}

void ShardedCluster::run_for(SimDuration duration) {
  scheduler_.run_until(scheduler_.now() + duration);
}

}  // namespace securestore::testkit
