// Cluster harness: one call stands up a full simulated deployment.
//
// Used by integration tests, examples and every bench: n servers (optionally
// some faulty), a seeded network model, key directories, group policies and
// client factories. Everything is deterministic in the seed.
#pragma once

#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/sync.h"
#include "faults/faulty_server.h"
#include "net/fault_transport.h"
#include "net/sim_transport.h"
#include "shard/hash_ring.h"
#include "sim/scheduler.h"

namespace securestore::testkit {

struct ClusterOptions {
  std::uint32_t n = 4;
  std::uint32_t b = 1;
  std::uint64_t seed = 1;
  /// How many client identities to pre-register keys for (ClientId 1..k).
  std::uint32_t max_clients = 8;
  sim::LinkProfile link = sim::lan_profile();
  gossip::GossipEngine::Config gossip;
  bool start_gossip = true;
  /// Enable the §4 authorization service: servers then require tokens.
  bool require_auth = false;
  /// Faults to inject, by server index.
  std::vector<std::pair<std::uint32_t, std::set<faults::ServerFault>>> server_faults;

  /// When set, every server and client endpoint is registered on a
  /// `net::FaultInjectingTransport` wrapping the sim transport, seeded with
  /// this value. Fault rules start empty — configure them via `chaos()`.
  std::optional<std::uint64_t> chaos_seed;

  /// Whole-operation deadline handed to clients (StoreConfig::op_timeout).
  /// Chaos tests shorten this so doomed operations fail fast.
  SimDuration op_timeout = seconds(5);

  /// Durable servers: each server i persists a snapshot plus a write-ahead
  /// log under `<durability_dir>/server-<i>/`. restart_server() then models
  /// a crash: the replacement recovers from disk (snapshot + WAL tail)
  /// instead of an in-memory snapshot.
  std::optional<std::string> durability_dir;
  storage::FsyncPolicy fsync = storage::FsyncPolicy::kAlways;
  SimDuration wal_flush_interval = milliseconds(5);
  std::size_t wal_segment_bytes = 1u << 20;
  SimDuration snapshot_period = seconds(30);

  /// Storage engine every server runs (StoreConfig::engine, DESIGN.md §12).
  /// kLsm requires `durability_dir`: each server then keeps SSTables under
  /// `<dir>/server-<i>/lsm` next to its WAL.
  core::EngineConfig engine;

  /// Admission control applied to every server (DESIGN.md §13). Defaults
  /// never trip under healthy test load; overload tests force the
  /// watermarks down to make shedding deterministic.
  core::AdmissionController::Options admission;

  /// Metrics registry shared with the transport (and through it every
  /// client/server/gossip engine of the deployment). Null = the transport
  /// owns a fresh one. Benches pass one registry into a sweep's clusters so
  /// histograms accumulate across cells.
  std::shared_ptr<obs::Registry> registry;

  /// Distributed tracing (DESIGN.md §8): when true, the deployment's event
  /// log is enabled with 1-in-`trace_sample_every` root-span sampling
  /// before any endpoint registers. Off by default — the hot path then pays
  /// one relaxed atomic load per operation.
  bool tracing = false;
  std::uint32_t trace_sample_every = 1;
  /// Event log shared with the transport, like `registry`. Null = the
  /// transport owns a fresh one.
  std::shared_ptr<obs::EventLog> events;

  /// Sharded deployments (DESIGN.md §11): build this cluster as ONE shard
  /// of a larger deployment, on an externally owned transport stack (a
  /// ShardedCluster outlives all its groups). When set, `registry`,
  /// `events`, `link`, `chaos_seed` and `tracing` above are ignored — the
  /// shared transport already carries them — and every server metric gets
  /// a `{shard=<id>}` suffix so per-group series stay distinguishable in
  /// the one shared registry.
  struct SharedInfra {
    sim::Scheduler* scheduler = nullptr;
    net::SimTransport* transport = nullptr;
    net::FaultInjectingTransport* chaos = nullptr;  // null: no chaos wrapper
    std::uint32_t shard_id = 0;
    /// Server network ids base .. base+n-1 (groups must not collide).
    std::uint32_t server_node_base = 0;
    /// Ring authority public key (StoreConfig::ring_authority_key).
    Bytes ring_authority_key;
    /// Client principals shared across every shard, so one ShardedClient
    /// key verifies at all groups: ClientId c uses (*client_keypairs)[c-1].
    /// Null: the cluster generates its own (unshared) directory.
    const std::vector<crypto::KeyPair>* client_keypairs = nullptr;
  };
  std::optional<SharedInfra> shared;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Scheduler& scheduler() { return *scheduler_; }
  net::SimTransport& transport() { return *transport_; }
  /// The chaos decorator (null unless `chaos_seed` or a shared one was set).
  net::FaultInjectingTransport* chaos() { return chaos_; }
  /// The transport endpoints actually talk through: the chaos wrapper when
  /// one exists, the raw sim transport otherwise.
  net::Transport& endpoint_transport() {
    return chaos_ != nullptr ? static_cast<net::Transport&>(*chaos_) : *transport_;
  }
  /// Transport counters for the deployment (convenience for benches and
  /// tests asserting on message costs/drops).
  const sim::TransportStats& transport_stats() const;
  /// The deployment's metrics registry (the transport's).
  obs::Registry& registry() { return transport_->registry(); }
  /// The deployment's trace event log (the transport's). Disabled unless
  /// ClusterOptions::tracing was set (or a caller enables it directly).
  obs::EventLog& events() { return transport_->events(); }
  /// Snapshots the event log and writes `TRACE_<name>.json` in the working
  /// directory (Perfetto/chrome://tracing-loadable). Returns false if the
  /// sidecar could not be written.
  bool write_trace_sidecar(std::string_view name) const;
  /// Periodically snapshots the registry into `on_snapshot` every `period`
  /// of virtual time, until the cluster dies. For long sims that want a
  /// metrics timeline rather than one final dump.
  void start_metrics_snapshots(SimDuration period,
                               std::function<void(const obs::MetricsSnapshot&)> on_snapshot);
  const core::StoreConfig& config() const { return config_; }
  const ClusterOptions& options() const { return options_; }

  /// Applies a policy to every server.
  void set_group_policy(const core::GroupPolicy& policy);

  /// Sharded deployments: installs `ring` on every running server and
  /// remembers it as the boot ring for servers built/restarted later.
  void set_ring(const shard::SignedRingState& ring);
  /// This cluster's shard id (0 when not part of a sharded deployment).
  std::uint32_t shard_id() const {
    return options_.shared.has_value() ? options_.shared->shard_id : 0;
  }
  /// The network id of server `index`.
  NodeId server_node(std::size_t index) const {
    const std::uint32_t base =
        options_.shared.has_value() ? options_.shared->server_node_base : 0;
    return NodeId{base + static_cast<std::uint32_t>(index)};
  }

  core::SecureStoreServer& server(std::size_t index) { return *servers_[index]; }
  std::size_t server_count() const { return servers_.size(); }

  /// False while the server is down between stop_server/start_server.
  bool server_running(std::size_t index) const { return servers_[index] != nullptr; }

  /// Crashes a server mid-simulation: in-flight messages to it drop, as on
  /// a real crash. In-memory (non-durable) clusters capture a snapshot at
  /// crash time so a later start_server(restore_state=true) can model a
  /// reboot that kept its state.
  void stop_server(std::size_t index);

  /// Brings a stopped server back. `restore_state=true` reboots with state
  /// (in-memory snapshot, or on-disk snapshot + WAL for durable clusters);
  /// `restore_state=false` models a disk-wiped replacement: the durability
  /// directory is removed first, so the newcomer cannot recover stale
  /// state. Group policies and the configured fault set are re-applied.
  void start_server(std::size_t index, bool restore_state = true);

  /// stop_server + start_server in one call: simulates a server reboot.
  void restart_server(std::size_t index, bool restore_state = true);

  /// Replaces the fault set a server is built with. Takes effect at the
  /// next start_server/restart_server of that index — ChaosRunner flips a
  /// live server Byzantine via set_server_faults + restart(restore=true).
  void set_server_faults(std::size_t index, std::set<faults::ServerFault> faults);

  /// The per-server durability directory (only with `durability_dir` set).
  std::string server_disk_dir(std::size_t index) const;

  /// The pre-generated key pair of a registered client id (1-based).
  const crypto::KeyPair& client_keys(ClientId id) const;

  /// Authority key pair (only meaningful when require_auth).
  const crypto::KeyPair& authority() const { return authority_; }

  /// Creates a client. Policy/token/codec come from `options`; the network
  /// id defaults to one derived from the client id — pass `network_id`
  /// explicitly to run several client endpoints under one principal (e.g.
  /// one per item group, since a client object manages one group's
  /// context/session at a time).
  std::unique_ptr<core::SecureStoreClient> make_client(
      ClientId id, core::SecureStoreClient::Options options,
      std::optional<NodeId> network_id = std::nullopt);

  /// Issues a read/write token for `client` on `group` (for require_auth
  /// deployments).
  core::AuthToken issue_token(ClientId client, GroupId group,
                              core::Rights rights = core::Rights::kReadWrite) const;

  /// Runs the simulation for `duration` of virtual time (lets gossip ticks
  /// propagate between synchronous client operations).
  void run_for(SimDuration duration);

 private:
  ClusterOptions options_;
  // Infrastructure is owned when standalone, borrowed when SharedInfra is
  // set; the raw pointers below are what the rest of the class uses either
  // way. Owned members are declared before servers_ so servers unregister
  // from a still-live transport on destruction.
  std::unique_ptr<sim::Scheduler> owned_scheduler_;
  std::unique_ptr<net::SimTransport> owned_transport_;
  std::unique_ptr<net::FaultInjectingTransport> owned_chaos_;
  sim::Scheduler* scheduler_ = nullptr;
  net::SimTransport* transport_ = nullptr;
  net::FaultInjectingTransport* chaos_ = nullptr;
  core::StoreConfig config_;
  /// `{shard=<id>}` when part of a sharded deployment, else empty.
  std::string metric_suffix_;
  /// Installed on every server at build time (sharded deployments).
  std::optional<shard::SignedRingState> boot_ring_;
  std::unique_ptr<core::SecureStoreServer> build_server(std::uint32_t index);

  crypto::KeyPair authority_;
  std::vector<crypto::KeyPair> client_keypairs_;  // index = ClientId.value - 1
  std::vector<crypto::KeyPair> server_keypairs_;
  std::vector<std::unique_ptr<core::SecureStoreServer>> servers_;
  /// Crash-time snapshots for non-durable stop/start (index-aligned).
  std::vector<Bytes> stopped_snapshots_;
  std::vector<core::GroupPolicy> policies_;
  Rng rng_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);  // guards timers
};

}  // namespace securestore::testkit
