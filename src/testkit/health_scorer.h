// Ground-truth scoring for the health watchdog (DESIGN.md §8).
//
// The chaos harness knows exactly when each server was made faulty and
// when it was healed; the `HealthMonitor` only sees scraped samples. The
// scorer subscribes to the monitor's mark transitions and, after the run,
// compares them against the injected fault windows:
//
//   * a *required* window (crash/isolate/Byzantine long enough to span
//     the scrape cadence, or an overload storm that actually saturates
//     the victim) the monitor never marked is a **missed detection**;
//   * an unhealthy mark outside every fault window of that server (plus a
//     grace after each window and after the global heal, covering
//     restart-hold and catch-up) is a **false positive** — so is a
//     critical verdict at such a time;
//   * detection latency = first unhealthy mark − window start, and
//     recovery latency = first healthy mark − window end, both recorded
//     into the registry as `health.detection_latency_us` /
//     `health.recovery_latency_us` histograms.
//
// Either violation kind fails the chaos soak the same way an oracle
// violation does: the watchdog's marks are treated as protocol output,
// not best-effort advice.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace securestore::testkit {

struct ChaosSchedule;  // testkit/chaos.h (which includes this header)

/// One injected fault interval for one monitored server, in absolute sim
/// time (schedule offsets are relative to the runner's start).
struct FaultWindow {
  std::uint32_t server = 0;  // HealthMonitor index, not NodeId
  SimTime start = 0;
  SimTime end = 0;
  bool required = false;  // the monitor MUST mark this window
  const char* kind = "";  // chaos_event_name of the opening event
};

struct HealthScoreReport {
  std::uint64_t windows_total = 0;
  std::uint64_t windows_required = 0;
  std::uint64_t windows_detected = 0;  // required windows that were marked
  std::uint64_t marks_unhealthy = 0;
  std::uint64_t marks_healthy = 0;
  std::vector<std::uint64_t> detection_latencies_us;
  std::vector<std::uint64_t> recovery_latencies_us;
  /// Violations, one human-readable line each (empty when clean).
  std::vector<std::string> missed;
  std::vector<std::string> false_positives;

  bool clean() const { return missed.empty() && false_positives.empty(); }
  /// Multi-line digest: counts, latency extremes, then every violation.
  std::string summary() const;
};

class HealthScorer {
 public:
  struct Options {
    /// How long after a window closes a first detection still counts (the
    /// monitor needs `unhealthy_after` scrape rounds to commit a mark, so
    /// a fault near the window's tail detects slightly "late").
    SimDuration detect_slack = milliseconds(600);
    /// Unhealthy marks within this long after a window (or after the
    /// global heal) are excused: fault-injection restarts trip the
    /// monitor's restart-hold, and that is correct behavior, not noise.
    SimDuration fp_grace = seconds(2);
    /// Windows shorter than this are scored opportunistically (a mark is
    /// fine, silence is fine): they can end before two scrape rounds.
    SimDuration min_scored = milliseconds(350);
    /// An overload storm must inject at least this × capacity to be a
    /// required detection (rate × service_time ≥ this); milder storms
    /// barely queue and legitimately stay under every SLO threshold.
    double storm_min_utilization = 1.25;
  };

  explicit HealthScorer(Options options) : options_(options) {}
  HealthScorer() : HealthScorer(Options{}) {}

  /// Translates a chaos schedule into fault windows. `start` is the sim
  /// time the runner began (schedule times are relative); `horizon` closes
  /// any window whose closing event is missing. `index_of` maps the
  /// schedule's server number to the HealthMonitor index (identity for a
  /// single cluster; sharded runners flatten group-local ids) and may
  /// return nullopt for servers the monitor does not watch.
  void add_schedule(
      const ChaosSchedule& schedule, SimTime start, SimTime horizon,
      const std::function<std::optional<std::uint32_t>(std::uint32_t)>& index_of);
  /// Adds one window directly (tests, hand-built timelines).
  void add_window(FaultWindow window) { windows_.push_back(window); }
  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// Wire these into the monitor:
  ///   monitor.set_on_mark([&](auto i, bool h, auto at, auto&) { scorer.note_mark(i, h, at); });
  ///   monitor.set_on_verdict([&](auto v, auto at) { scorer.note_verdict(v, at); });
  void note_mark(std::uint32_t server_index, bool healthy, std::uint64_t at_us);
  void note_verdict(obs::Verdict verdict, std::uint64_t at_us);

  /// Scores all marks against all windows. `heal_at` is when the runner
  /// healed everything (marks shortly after are excused — heal restarts
  /// servers). Latencies are also recorded into `registry` histograms
  /// `health.detection_latency_us` / `health.recovery_latency_us`.
  HealthScoreReport score(SimTime heal_at, obs::Registry& registry) const;

 private:
  struct Mark {
    std::uint32_t server;
    bool healthy;
    std::uint64_t at;
  };

  const Options options_;
  std::vector<FaultWindow> windows_;
  std::vector<Mark> marks_;
  std::vector<std::pair<obs::Verdict, std::uint64_t>> verdicts_;
};

}  // namespace securestore::testkit
