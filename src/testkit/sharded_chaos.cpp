#include "testkit/sharded_chaos.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "shard/hash_ring.h"

namespace securestore::testkit {

/// One ShardedClient's asynchronous op loop. Unlike the single-cluster
/// runner, a workload here spans SEVERAL group keys — the point is that its
/// one client object routes each to the owning shard (and re-routes when
/// the ring moves under it). All clients are CORRECT; the adversary is the
/// schedule plus the rebalance.
struct ShardedChaosRunner::Workload {
  struct Role {
    GroupId group{};
    std::size_t oracle = 0;  // index into oracles_
    bool writer = false;
  };

  std::unique_ptr<shard::ShardedClient> client;
  ClientId id{};
  std::vector<Role> roles;
  bool reader = true;
  std::vector<std::vector<ItemId>> items;  // index-aligned with roles
  Rng rng{1};
  std::uint64_t seq = 0;
};

ShardedChaosRunner::ShardedChaosRunner(ShardedCluster& cluster,
                                       std::vector<ChaosSchedule> schedules,
                                       ShardedChaosOptions options,
                                       std::uint64_t workload_seed)
    : cluster_(cluster), schedules_(std::move(schedules)), options_(options),
      rng_(workload_seed) {
  if (cluster_.chaos() == nullptr) {
    throw std::logic_error("ShardedChaosRunner: cluster must be built with chaos_seed set");
  }
  if (schedules_.size() != cluster_.group_count()) {
    throw std::logic_error("ShardedChaosRunner: one schedule per initial group required");
  }
  if (cluster_.options().max_clients < 7) {
    throw std::logic_error("ShardedChaosRunner: cluster needs max_clients >= 7");
  }

  // Two group keys per protocol family. Six keys over a handful of shards
  // gives every shard a mixed workload. With a rebalance scheduled the keys
  // are CHOSEN so the handoff provably moves some of them: placement is a
  // pure function of (placement_seed, shard ids, vnodes), so the post-add
  // owners are computable before the storm starts, and a hash-lucky seed
  // where no workload key re-rings would leave the no-lost-acked-write
  // handoff claim untested.
  std::vector<std::uint32_t> group_ids = {1, 2, 3, 4, 5, 6};
  if (options_.rebalance) {
    shard::RingState future = cluster_.ring().ring;
    shard::ShardMembers newcomer;
    newcomer.shard_id = static_cast<std::uint32_t>(cluster_.group_count());
    future.shards.push_back(std::move(newcomer));
    const shard::HashRing future_ring(future);
    std::vector<std::uint32_t> movers;
    std::vector<std::uint32_t> stayers;
    for (std::uint32_t id = 1; movers.size() < 2 || stayers.size() < 4; ++id) {
      if (future_ring.shard_for(GroupId{id}) == newcomer.shard_id) {
        if (movers.size() < 2) movers.push_back(id);
      } else if (stayers.size() < 4) {
        stayers.push_back(id);
      }
    }
    // Movers land on a single-writer slot and a causal multi-writer slot,
    // so the handoff is exercised for both timestamp disciplines.
    group_ids = {movers[0], stayers[0], stayers[1], stayers[2], movers[1], stayers[3]};
  }

  using core::ClientTrust;
  using core::ConsistencyModel;
  using core::SharingMode;
  for (std::size_t i = 0; i < group_ids.size(); i += 3) {
    group_policies_.push_back(core::GroupPolicy{GroupId{group_ids[i]},
                                                ConsistencyModel::kMRC,
                                                SharingMode::kSingleWriter,
                                                ClientTrust::kHonest});
    group_policies_.push_back(core::GroupPolicy{GroupId{group_ids[i + 1]},
                                                ConsistencyModel::kCC,
                                                SharingMode::kMultiWriter,
                                                ClientTrust::kHonest});
    group_policies_.push_back(core::GroupPolicy{GroupId{group_ids[i + 2]},
                                                ConsistencyModel::kMRC,
                                                SharingMode::kMultiWriter,
                                                ClientTrust::kByzantine});
  }
  for (const core::GroupPolicy& policy : group_policies_) {
    oracles_.push_back(std::make_unique<ConsistencyOracle>(
        policy.model == ConsistencyModel::kCC));
    // Registered BEFORE the clients are built: make_client snapshots the
    // cluster's policy list into each ShardedClient's per-group directory.
    cluster_.set_group_policy(policy);
  }

  // Client layout: each client covers one policy-family's TWO group keys
  // through a single ShardedClient, so one principal holds sessions on
  // several shards at once. Policy indices: 0/3 single-writer, 1/4 causal
  // multi-writer, 2/5 Byzantine-mode multi-writer.
  struct Spec {
    std::uint32_t client;
    std::vector<std::pair<std::size_t, bool>> roles;  // (policy index, writer)
    bool reader;
  };
  const Spec specs[] = {
      {1, {{0, true}, {3, true}}, true},    // the single writer of both SW keys
      {2, {{0, false}, {3, false}}, true},  // ...and their pure reader
      {3, {{1, true}, {4, true}}, true},    // honest multi-writer pair
      {4, {{1, true}, {4, true}}, true},
      {5, {{2, true}, {5, true}}, true},    // Byzantine-mode pair
      {6, {{2, true}, {5, true}}, true},
  };
  for (const Spec& spec : specs) {
    auto w = std::make_shared<Workload>();
    w->id = ClientId{spec.client};
    w->reader = spec.reader;
    w->rng = rng_.fork();
    for (const auto& [policy_idx, writer] : spec.roles) {
      const core::GroupPolicy& policy = group_policies_[policy_idx];
      w->roles.push_back(Workload::Role{policy.group, policy_idx, writer});
      std::vector<ItemId> items;
      for (std::uint32_t k = 0; k < options_.items_per_group; ++k) {
        items.push_back(ItemId{policy.group.value * 100 + k});
      }
      w->items.push_back(std::move(items));
    }
    core::SecureStoreClient::Options client_options;
    client_options.round_timeout = options_.round_timeout;
    w->client = cluster_.make_client(w->id, std::move(client_options));
    workloads_.push_back(std::move(w));
  }
}

ShardedChaosRunner::~ShardedChaosRunner() { *alive_ = false; }

std::vector<NodeId> ShardedChaosRunner::all_node_ids() const {
  std::vector<NodeId> ids;
  for (std::size_t g = 0; g < cluster_.group_count(); ++g) {
    Cluster& group = cluster_.group(g);
    for (std::size_t s = 0; s < group.server_count(); ++s) {
      ids.push_back(group.server_node(s));
    }
  }
  // ShardedClient endpoints: one per (client, visited shard), allocated
  // upward from 10000 + id*100. Enumerate the whole window per client.
  for (std::uint32_t c = 1; c <= cluster_.options().max_clients; ++c) {
    for (std::uint32_t k = 0; k < 16; ++k) ids.push_back(NodeId{10000 + c * 100 + k});
  }
  // The watchdog's scraper is a peer like any other: isolating a server
  // must cut its scrapes too, or partitions would be undetectable.
  if (scrape_node_ != nullptr) ids.push_back(scrape_node_->id());
  return ids;
}

void ShardedChaosRunner::attach_health_monitor(ChaosHealthOptions options) {
  if (ran_ || monitor_ != nullptr) {
    throw std::logic_error("attach_health_monitor: call once, before run()");
  }
  std::vector<obs::HealthMonitor::ServerInfo> servers;
  std::vector<NodeId> nodes;
  for (std::size_t g = 0; g < cluster_.group_count(); ++g) {
    monitor_base_.push_back(static_cast<std::uint32_t>(servers.size()));
    Cluster& group = cluster_.group(g);
    for (std::size_t s = 0; s < group.server_count(); ++s) {
      const NodeId node = group.server_node(s);
      servers.push_back({node.value, static_cast<std::uint32_t>(g)});
      nodes.push_back(node);
    }
  }
  // The sharded harness models overload as a capacity squeeze with no
  // request flood behind it: the victim keeps comfortable headroom, so no
  // SLO legitimately fires. Never REQUIRE detecting such a window (marks
  // inside one are still excused).
  options.scoring.storm_min_utilization = std::numeric_limits<double>::infinity();
  obs::HealthMonitor::Options monitor_options;
  monitor_options.rules = options.rules;
  monitor_options.b = cluster_.options().b;
  monitor_ = std::make_unique<obs::HealthMonitor>(
      cluster_.registry(), &cluster_.events(), std::move(servers), monitor_options);
  scorer_ = std::make_unique<HealthScorer>(options.scoring);
  monitor_->set_on_mark([this](std::uint32_t index, bool healthy, std::uint64_t at,
                               const std::vector<std::string>&) {
    scorer_->note_mark(index, healthy, at);
  });
  monitor_->set_on_verdict([this](obs::Verdict verdict, std::uint64_t at) {
    scorer_->note_verdict(verdict, at);
  });
  scrape_node_ = std::make_unique<net::RpcNode>(cluster_.endpoint_transport(), NodeId{4998});
  net::IntrospectScraper::Options scraper_options;
  scraper_options.interval = options.scrape_interval;
  scraper_options.timeout = options.scrape_timeout;
  scraper_ = std::make_unique<net::IntrospectScraper>(*scrape_node_, std::move(nodes),
                                                      *monitor_, scraper_options);
}

void ShardedChaosRunner::isolate_server(std::size_t group_idx, std::uint32_t server,
                                        bool heal) {
  const NodeId target = cluster_.group(group_idx).server_node(server);
  std::vector<NodeId> others;
  for (const NodeId id : all_node_ids()) {
    if (id.value != target.value) others.push_back(id);
  }
  sim::NetworkModel& network = cluster_.transport().network();
  if (heal) {
    network.heal_groups({target}, others);
  } else {
    network.partition_groups({target}, others);
  }
}

void ShardedChaosRunner::degrade_server(std::size_t group_idx, std::uint32_t server,
                                        const net::FaultRule& rule, bool restore) {
  const NodeId target = cluster_.group(group_idx).server_node(server);
  net::FaultInjectingTransport& chaos = *cluster_.chaos();
  for (const NodeId id : all_node_ids()) {
    if (id.value == target.value) continue;
    if (restore) {
      chaos.clear_link_rule(target, id);
      chaos.clear_link_rule(id, target);
    } else {
      chaos.set_link_rule(target, id, rule);
      chaos.set_link_rule(id, target, rule);
    }
  }
}

void ShardedChaosRunner::apply_event(std::size_t group_idx, const ChaosEvent& event) {
  ++report_.events_applied;
  Cluster& group = cluster_.group(group_idx);
  const std::uint32_t s = event.server;
  const auto key = std::make_pair(group_idx, s);
  switch (event.kind) {
    case ChaosEvent::Kind::kCrash:
      group.stop_server(s);
      faulty_now_.insert(key);
      break;
    case ChaosEvent::Kind::kRestart:
      if (!group.server_running(s)) group.start_server(s, event.restore_state);
      faulty_now_.erase(key);
      break;
    case ChaosEvent::Kind::kIsolate:
      isolate_server(group_idx, s, /*heal=*/false);
      faulty_now_.insert(key);
      break;
    case ChaosEvent::Kind::kHealIsolation:
      isolate_server(group_idx, s, /*heal=*/true);
      faulty_now_.erase(key);
      break;
    case ChaosEvent::Kind::kByzantine:
      group.set_server_faults(s, event.faults);
      if (group.server_running(s)) group.restart_server(s, /*restore_state=*/true);
      faulty_now_.insert(key);
      byzantine_now_.insert(key);
      break;
    case ChaosEvent::Kind::kRecover:
      group.set_server_faults(s, {});
      if (group.server_running(s)) group.restart_server(s, /*restore_state=*/true);
      faulty_now_.erase(key);
      byzantine_now_.erase(key);
      break;
    case ChaosEvent::Kind::kDegradeLinks:
      degrade_server(group_idx, s, event.rule, /*restore=*/false);
      break;
    case ChaosEvent::Kind::kRestoreLinks:
      degrade_server(group_idx, s, event.rule, /*restore=*/true);
      break;
    case ChaosEvent::Kind::kOverloadStorm: {
      // Capacity squeeze only: the workloads' own traffic now exceeds the
      // node's service rate, so its ring backlog (and admission pressure)
      // grows without an extra flood generator.
      const NodeId target = group.server_node(s);
      cluster_.transport().set_service_time(target, event.storm_service);
      squeezed_now_.insert(target.value);
      break;
    }
    case ChaosEvent::Kind::kEndOverloadStorm: {
      const NodeId target = group.server_node(s);
      cluster_.transport().set_service_time(target, 0);
      squeezed_now_.erase(target.value);
      break;
    }
  }
}

void ShardedChaosRunner::heal_everything() {
  for (const std::uint32_t node : squeezed_now_) {
    cluster_.transport().set_service_time(NodeId{node}, 0);
  }
  squeezed_now_.clear();
  cluster_.transport().network().heal_all_links();
  cluster_.chaos()->heal_all_partitions();
  cluster_.chaos()->clear_link_rules();
  for (const auto& [g, s] : byzantine_now_) cluster_.group(g).set_server_faults(s, {});
  for (std::size_t g = 0; g < cluster_.group_count(); ++g) {
    Cluster& group = cluster_.group(g);
    for (std::uint32_t s = 0; s < group.server_count(); ++s) {
      if (!group.server_running(s)) {
        group.start_server(s, /*restore_state=*/true);
      } else if (byzantine_now_.contains({g, s})) {
        group.restart_server(s, /*restore_state=*/true);
      }
    }
  }
  byzantine_now_.clear();
  faulty_now_.clear();
}

void ShardedChaosRunner::start_workload(const std::shared_ptr<Workload>& w,
                                        std::size_t role_idx) {
  if (role_idx == w->roles.size()) {
    schedule_next_op(w);
    return;
  }
  // P1 session per group key, acquired in turn and retried until it lands
  // or the storm ends — the client may be connecting to several shards.
  w->client->connect(w->roles[role_idx].group,
                     [this, alive = alive_, w, role_idx](VoidResult result) {
    if (!*alive) return;
    if (result.ok()) {
      start_workload(w, role_idx + 1);
      return;
    }
    ++report_.ops_failed;
    if (cluster_.transport().now() + options_.connect_retry_gap < stop_time_) {
      cluster_.endpoint_transport().schedule(options_.connect_retry_gap,
                                             [this, alive, w, role_idx]() {
                                               if (!*alive) return;
                                               start_workload(w, role_idx);
                                             });
    }
  });
}

void ShardedChaosRunner::schedule_next_op(const std::shared_ptr<Workload>& w) {
  if (cluster_.transport().now() + options_.op_gap >= stop_time_) return;
  cluster_.endpoint_transport().schedule(options_.op_gap, [this, alive = alive_, w]() {
    if (!*alive) return;
    run_op(w);
  });
}

void ShardedChaosRunner::run_op(const std::shared_ptr<Workload>& w) {
  if (cluster_.transport().now() >= stop_time_) return;
  const std::size_t role_idx = w->rng.next_below(w->roles.size());
  const Workload::Role& role = w->roles[role_idx];
  ConsistencyOracle& oracle = *oracles_[role.oracle];
  const std::vector<ItemId>& items = w->items[role_idx];
  const ItemId item = items[w->rng.next_below(items.size())];
  const bool do_write = role.writer && (!w->reader || w->rng.next_bool(0.5));

  if (do_write) {
    ++report_.writes_attempted;
    const std::string text = "g" + std::to_string(role.group.value) + "-c" +
                             std::to_string(w->id.value) + "-s" + std::to_string(w->seq++);
    const Bytes value(text.begin(), text.end());
    // Registered BEFORE the outcome is known: a timed-out write may still
    // land at servers and be legitimately read later.
    oracle.note_write_attempt(w->id, item, value);
    w->client->write(role.group, item, value,
                     [this, alive = alive_, w, role, item, value](VoidResult result) {
      if (!*alive) return;
      if (result.ok()) {
        ++report_.writes_acked;
        const core::SecureStoreClient* gc = w->client->group_client(role.group);
        oracles_[role.oracle]->note_write_ok(w->id, item, value, gc->context().get(item),
                                             gc->context(), cluster_.transport().now());
      } else if (result.error() == Error::kOverloaded) {
        oracles_[role.oracle]->note_write_shed(w->id, item, value,
                                               cluster_.transport().now());
        ++report_.ops_failed;
      } else {
        ++report_.ops_failed;
      }
      schedule_next_op(w);
    });
    return;
  }

  w->client->read(role.group, item,
                  [this, alive = alive_, w, role, item](Result<core::ReadOutput> result) {
    if (!*alive) return;
    if (result.ok()) {
      ++report_.reads_ok;
      oracles_[role.oracle]->note_read_ok(w->id, item, result.value(),
                                          cluster_.transport().now());
    } else {
      ++report_.ops_failed;
    }
    schedule_next_op(w);
  });
}

void ShardedChaosRunner::final_verification() {
  // One fresh ShardedClient sweeps EVERY group key: booted on the settled
  // ring, it reconstructs each group's context (P2) and reads every item,
  // whichever shard the rebalance left the key on.
  core::SecureStoreClient::Options client_options;
  // Generous per-round budget: the storm is over, this is a correctness
  // sweep, not an availability measurement.
  client_options.round_timeout = seconds(1);
  auto client = cluster_.make_client(ClientId{7}, std::move(client_options));
  shard::SyncShardedClient sync(*client, cluster_.scheduler());
  for (std::size_t g = 0; g < group_policies_.size(); ++g) {
    const GroupId group = group_policies_[g].group;
    (void)sync.reconstruct_context(group);
    for (std::uint32_t k = 0; k < options_.items_per_group; ++k) {
      const ItemId item{group.value * 100 + k};
      auto result = sync.read(group, item);
      oracles_[g]->note_final_read(
          item,
          result.ok() ? std::optional<core::ReadOutput>(result.value()) : std::nullopt,
          cluster_.transport().now());
    }
  }
}

ShardedChaosReport ShardedChaosRunner::run() {
  if (ran_) throw std::logic_error("ShardedChaosRunner::run() may only be called once");
  ran_ = true;

  const SimTime start = cluster_.transport().now();
  stop_time_ = start + options_.horizon;

  // Stagger the workload starts a little so connects do not all collide.
  SimDuration stagger = milliseconds(1);
  for (const auto& w : workloads_) {
    cluster_.endpoint_transport().schedule(stagger, [this, alive = alive_, w]() {
      if (!*alive) return;
      start_workload(w, 0);
    });
    stagger += milliseconds(3);
  }

  for (std::size_t g = 0; g < schedules_.size(); ++g) {
    for (const ChaosEvent& event : schedules_[g].events) {
      cluster_.endpoint_transport().schedule(event.at, [this, alive = alive_, g, event]() {
        if (!*alive) return;
        apply_event(g, event);
      });
    }
  }

  // The watchdog scrapes through the storm, the rebalance AND the quiesce,
  // so recovery marks after the heal land before scoring.
  if (scraper_ != nullptr) scraper_->start();

  if (options_.rebalance) {
    // The §11 protocol, stepwise, with the storm raging between phases —
    // crashes, partitions and Byzantine flips interleave with the copy and
    // the switch. Writes acked in the gaps are what the reconciliation
    // passes (one here, one post-heal) must not lose.
    cluster_.run_for(options_.horizon / 4);
    cluster_.begin_add_group();
    const shard::SignedRingState target = cluster_.next_ring();
    cluster_.run_for(options_.horizon * 15 / 100);
    report_.records_copied += cluster_.copy_moved_data(target);
    cluster_.run_for(options_.horizon * 15 / 100);
    cluster_.install_ring(target);
    cluster_.run_for(options_.horizon * 15 / 100);
    report_.records_copied += cluster_.copy_moved_data(target);
    cluster_.run_for(options_.horizon * 30 / 100);
  } else {
    cluster_.run_for(options_.horizon);
  }

  heal_everything();
  if (options_.rebalance) {
    // Post-heal reconciliation: a destination that was crashed or isolated
    // during both in-storm passes imports its moved ranges now, from
    // holders that are all reachable again.
    report_.records_copied += cluster_.copy_moved_data(cluster_.ring());
  }
  cluster_.run_for(options_.quiesce);

  if (scraper_ != nullptr) {
    scraper_->stop();
    for (std::size_t g = 0; g < schedules_.size() && g < monitor_base_.size(); ++g) {
      const std::uint32_t base = monitor_base_[g];
      const auto server_count =
          static_cast<std::uint32_t>(cluster_.group(g).server_count());
      scorer_->add_schedule(schedules_[g], start, options_.horizon,
                            [base, server_count](std::uint32_t s) {
                              return s < server_count
                                         ? std::optional<std::uint32_t>(base + s)
                                         : std::nullopt;
                            });
    }
    report_.health = scorer_->score(start + options_.horizon, cluster_.registry());
  }

  final_verification();

  report_.final_ring_version = cluster_.ring().ring.version;
  report_.groups_after = static_cast<std::uint32_t>(cluster_.group_count());
  for (std::size_t g = 0; g < group_policies_.size(); ++g) {
    const GroupId group = group_policies_[g].group;
    ShardedChaosReport::GroupReport entry;
    entry.group = group;
    entry.shard = cluster_.shard_for(group);
    entry.checks = oracles_[g]->checks();
    entry.violations = oracles_[g]->violations();
    report_.oracle_checks += entry.checks;
    for (const auto& violation : entry.violations) {
      report_.violations.push_back(violation);
    }
    report_.violation_report += oracles_[g]->report();
    report_.groups.push_back(std::move(entry));
  }
  return report_;
}

}  // namespace securestore::testkit
