#include "testkit/cluster.h"

#include <filesystem>
#include <stdexcept>

#include "obs/export.h"

namespace securestore::testkit {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)), rng_(options_.seed) {
  if (options_.shared.has_value()) {
    // One shard of a larger deployment: the ShardedCluster owns the
    // transport stack; this cluster only registers its servers on it.
    scheduler_ = options_.shared->scheduler;
    transport_ = options_.shared->transport;
    chaos_ = options_.shared->chaos;
    metric_suffix_ = "{shard=" + std::to_string(options_.shared->shard_id) + "}";
  } else {
    owned_scheduler_ = std::make_unique<sim::Scheduler>();
    scheduler_ = owned_scheduler_.get();
    owned_transport_ = std::make_unique<net::SimTransport>(
        *scheduler_, sim::NetworkModel(rng_.fork(), options_.link), options_.registry,
        options_.events);
    transport_ = owned_transport_.get();
    if (options_.tracing) {
      transport_->events().set_sample_every(options_.trace_sample_every);
      transport_->events().set_enabled(true);
    }
    if (options_.chaos_seed.has_value()) {
      owned_chaos_ =
          std::make_unique<net::FaultInjectingTransport>(*transport_, *options_.chaos_seed);
      chaos_ = owned_chaos_.get();
    }
  }

  // Key directories first: servers copy the config at construction.
  config_.n = options_.n;
  config_.b = options_.b;
  config_.op_timeout = options_.op_timeout;
  config_.engine = options_.engine;
  if (config_.engine.kind == core::StorageEngineKind::kLsm &&
      !options_.durability_dir.has_value()) {
    throw std::invalid_argument("Cluster: engine kLsm requires durability_dir");
  }
  for (std::uint32_t i = 0; i < options_.n; ++i) config_.servers.push_back(server_node(i));
  if (options_.shared.has_value()) {
    config_.ring_authority_key = options_.shared->ring_authority_key;
  }

  authority_ = crypto::KeyPair::generate(rng_);
  if (options_.shared.has_value() && options_.shared->client_keypairs != nullptr) {
    // Shared principals: the same client key must verify at every shard.
    const std::vector<crypto::KeyPair>& shared_keys = *options_.shared->client_keypairs;
    if (shared_keys.size() < options_.max_clients) {
      throw std::invalid_argument("Cluster: shared client_keypairs smaller than max_clients");
    }
    for (std::uint32_t c = 1; c <= options_.max_clients; ++c) {
      client_keypairs_.push_back(shared_keys[c - 1]);
      config_.client_keys[c] = client_keypairs_.back().public_key;
    }
  } else {
    for (std::uint32_t c = 1; c <= options_.max_clients; ++c) {
      client_keypairs_.push_back(crypto::KeyPair::generate(rng_));
      config_.client_keys[c] = client_keypairs_.back().public_key;
    }
  }

  for (std::uint32_t i = 0; i < options_.n; ++i) {
    server_keypairs_.push_back(crypto::KeyPair::generate(rng_));
    config_.server_keys[server_node(i)] = server_keypairs_.back().public_key;
  }

  stopped_snapshots_.resize(options_.n);
  for (std::uint32_t i = 0; i < options_.n; ++i) {
    servers_.push_back(build_server(i));
  }
}

bool Cluster::write_trace_sidecar(std::string_view name) const {
  return obs::write_trace_sidecar(transport_->events().snapshot(), name);
}

std::string Cluster::server_disk_dir(std::size_t index) const {
  if (!options_.durability_dir.has_value()) {
    throw std::logic_error("Cluster: durability_dir not configured");
  }
  return *options_.durability_dir + "/server-" + std::to_string(index);
}

std::unique_ptr<core::SecureStoreServer> Cluster::build_server(std::uint32_t index) {
  core::SecureStoreServer::Options server_options;
  server_options.gossip = options_.gossip;
  server_options.gossip.metric_suffix = metric_suffix_;
  server_options.metric_suffix = metric_suffix_;
  server_options.start_gossip = options_.start_gossip;
  server_options.admission = options_.admission;
  if (options_.shared.has_value()) server_options.shard_id = options_.shared->shard_id;
  server_options.ring = boot_ring_;
  if (options_.require_auth) server_options.authority_key = authority_.public_key;
  if (options_.durability_dir.has_value()) {
    const std::string base = server_disk_dir(index);
    std::filesystem::create_directories(base);
    server_options.snapshot_path = base + "/snapshot.bin";
    server_options.snapshot_period = options_.snapshot_period;
    core::SecureStoreServer::DurabilityOptions durability;
    durability.wal_dir = base + "/wal";
    durability.data_dir = base + "/lsm";
    durability.fsync = options_.fsync;
    durability.flush_interval = options_.wal_flush_interval;
    durability.wal_segment_bytes = options_.wal_segment_bytes;
    server_options.durability = std::move(durability);
    // Recovery replays the WAL inside the constructor; it must already
    // know the policies the logged records were accepted under.
    server_options.group_policies = policies_;
  }

  std::set<faults::ServerFault> faults;
  for (const auto& [fault_index, fault_set] : options_.server_faults) {
    if (fault_index == index) faults = fault_set;
  }

  std::unique_ptr<core::SecureStoreServer> server;
  if (faults.empty()) {
    server = std::make_unique<core::SecureStoreServer>(endpoint_transport(), server_node(index),
                                                       config_, server_keypairs_[index],
                                                       server_options, rng_.fork());
  } else {
    server = std::make_unique<faults::FaultyServer>(endpoint_transport(), server_node(index),
                                                    config_, server_keypairs_[index],
                                                    server_options, rng_.fork(),
                                                    std::move(faults));
  }
  for (const core::GroupPolicy& policy : policies_) server->set_group_policy(policy);
  return server;
}

void Cluster::stop_server(std::size_t index) {
  if (servers_[index] == nullptr) return;
  // Crash semantics: the dying server saves nothing durable beyond what
  // already reached disk. Non-durable clusters keep a crash-time snapshot
  // so start_server(restore_state=true) can model a stateful reboot.
  if (!options_.durability_dir.has_value()) {
    stopped_snapshots_[index] = servers_[index]->snapshot();
  }
  servers_[index].reset();  // down: requests to it drop
}

void Cluster::start_server(std::size_t index, bool restore_state) {
  if (servers_[index] != nullptr) return;
  if (options_.durability_dir.has_value()) {
    // A disk-wiped replacement must not recover stale state: remove the
    // snapshot + WAL directory before the newcomer boots.
    if (!restore_state) std::filesystem::remove_all(server_disk_dir(index));
    servers_[index] = build_server(static_cast<std::uint32_t>(index));
    return;
  }
  servers_[index] = build_server(static_cast<std::uint32_t>(index));
  if (restore_state) servers_[index]->restore(stopped_snapshots_[index]);
  stopped_snapshots_[index].clear();
}

void Cluster::restart_server(std::size_t index, bool restore_state) {
  stop_server(index);
  start_server(index, restore_state);
}

void Cluster::set_server_faults(std::size_t index, std::set<faults::ServerFault> faults) {
  std::erase_if(options_.server_faults,
                [index](const auto& entry) { return entry.first == index; });
  if (!faults.empty()) {
    options_.server_faults.emplace_back(static_cast<std::uint32_t>(index), std::move(faults));
  }
}

Cluster::~Cluster() { *alive_ = false; }

const sim::TransportStats& Cluster::transport_stats() const { return transport_->stats(); }

void Cluster::start_metrics_snapshots(
    SimDuration period, std::function<void(const obs::MetricsSnapshot&)> on_snapshot) {
  const auto schedule = [this, period,
                         on_snapshot = std::move(on_snapshot)](auto&& self) -> void {
    transport_->schedule(period, [this, alive = alive_, on_snapshot, self]() {
      if (!*alive) return;
      on_snapshot(transport_->registry().snapshot());
      self(self);
    });
  };
  schedule(schedule);
}

void Cluster::set_group_policy(const core::GroupPolicy& policy) {
  policies_.push_back(policy);
  for (auto& server : servers_) {
    if (server != nullptr) server->set_group_policy(policy);
  }
}

void Cluster::set_ring(const shard::SignedRingState& ring) {
  boot_ring_ = ring;
  for (auto& server : servers_) {
    if (server != nullptr) server->install_ring(ring);
  }
}

const crypto::KeyPair& Cluster::client_keys(ClientId id) const {
  if (id.value == 0 || id.value > client_keypairs_.size()) {
    throw std::out_of_range("Cluster: unregistered client id");
  }
  return client_keypairs_[id.value - 1];
}

std::unique_ptr<core::SecureStoreClient> Cluster::make_client(
    ClientId id, core::SecureStoreClient::Options options,
    std::optional<NodeId> network_id) {
  const NodeId node = network_id.value_or(NodeId{1000 + id.value});
  return std::make_unique<core::SecureStoreClient>(endpoint_transport(), node, id,
                                                   client_keys(id), config_, std::move(options),
                                                   rng_.fork());
}

core::AuthToken Cluster::issue_token(ClientId client, GroupId group,
                                     core::Rights rights) const {
  const core::Authorizer authorizer(authority_.seed);
  return authorizer.issue(client, group, rights);
}

void Cluster::run_for(SimDuration duration) {
  scheduler_->run_until(scheduler_->now() + duration);
}

}  // namespace securestore::testkit
