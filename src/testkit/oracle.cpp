#include "testkit/oracle.h"

#include <cstdio>

namespace securestore::testkit {
namespace {

/// A lexicographically order-preserving key for (time, writer) — digest
/// deliberately excluded, matching Timestamp's ordering.
std::string ts_map_key(const core::Timestamp& ts) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%020llu-%010u",
                static_cast<unsigned long long>(ts.time), ts.writer.value);
  return buffer;
}

}  // namespace

void ConsistencyOracle::violate(std::string check, std::string detail, SimTime at) {
  violations_.push_back(Violation{std::move(check), std::move(detail), at});
}

void ConsistencyOracle::raise_floor(ClientId client, ItemId item, const core::Timestamp& ts) {
  auto [entry, inserted] = floors_.try_emplace({client.value, item.value}, ts);
  if (!inserted && entry->second < ts) entry->second = ts;
}

void ConsistencyOracle::note_write_attempt(ClientId writer, ItemId item, BytesView value) {
  authentic_[{item.value, Bytes(value.begin(), value.end())}] = writer;
}

void ConsistencyOracle::note_write_ok(ClientId writer, ItemId item, BytesView value,
                                      const core::Timestamp& ts,
                                      const core::Context& writer_context, SimTime at) {
  // Read-your-writes half of MRC: the writer may never observe anything
  // older than its own acked write.
  raise_floor(writer, item, ts);
  auto [entry, inserted] = acked_.try_emplace(item.value, ts);
  if (!inserted && entry->second < ts) entry->second = ts;
  if (causal_) write_deps_[{item.value, ts_map_key(ts)}] = writer_context;

  // Shed-exclusivity, ack side: this exact operation must not have been
  // refused under overload earlier.
  ++checks_;
  std::pair<std::uint64_t, Bytes> op_key{item.value, Bytes(value.begin(), value.end())};
  if (shed_values_.contains(op_key)) {
    violate("shed",
            "write of item " + std::to_string(item.value) + " by client " +
                std::to_string(writer.value) +
                " was acknowledged after being refused as overloaded",
            at);
  }
  acked_values_.insert(std::move(op_key));
}

void ConsistencyOracle::note_write_shed(ClientId writer, ItemId item, BytesView value,
                                        SimTime at) {
  ++writes_shed_;
  // Shed-exclusivity, refusal side: the client was told to back off, so the
  // same operation must never (have) come back as acknowledged.
  ++checks_;
  std::pair<std::uint64_t, Bytes> op_key{item.value, Bytes(value.begin(), value.end())};
  if (acked_values_.contains(op_key)) {
    violate("shed",
            "write of item " + std::to_string(item.value) + " by client " +
                std::to_string(writer.value) +
                " was refused as overloaded after being acknowledged",
            at);
  }
  shed_values_.insert(std::move(op_key));
}

void ConsistencyOracle::note_read_ok(ClientId reader, ItemId item,
                                     const core::ReadOutput& output, SimTime at) {
  ++reads_checked_;

  // Authenticity: the value must have been produced by a correct workload
  // client, and attributed to that client.
  ++checks_;
  const auto writer_it = authentic_.find({item.value, output.value});
  if (writer_it == authentic_.end()) {
    violate("authenticity",
            "read of item " + std::to_string(item.value) + " at ts " + to_string(output.ts) +
                " returned a value no workload client ever wrote",
            at);
  } else if (writer_it->second != output.writer && output.writer.value != 0) {
    // Single-writer deployments report ClientId{0} in the timestamp; only
    // flag a mismatch when the protocol actually attributes a writer.
    violate("authenticity",
            "read of item " + std::to_string(item.value) + " attributed to client " +
                std::to_string(output.writer.value) + " but written by client " +
                std::to_string(writer_it->second.value),
            at);
  }

  // MRC: never older than this reader's floor for the item.
  ++checks_;
  const auto floor_it = floors_.find({reader.value, item.value});
  if (floor_it != floors_.end() && output.ts < floor_it->second) {
    violate("mrc",
            "client " + std::to_string(reader.value) + " read item " +
                std::to_string(item.value) + " at ts " + to_string(output.ts) +
                " below its floor " + to_string(floor_it->second),
            at);
  }
  raise_floor(reader, item, output.ts);

  // CC: absorbing w also floors everything w causally depends on. The
  // dependency snapshot exists only for acked writes; an unacked write that
  // landed anyway contributes no extra floors (conservative).
  if (causal_) {
    const auto deps_it = write_deps_.find({item.value, ts_map_key(output.ts)});
    if (deps_it != write_deps_.end()) {
      ++checks_;
      for (const auto& [dep_item, dep_ts] : deps_it->second.entries()) {
        raise_floor(reader, dep_item, dep_ts);
      }
    }
  }
}

void ConsistencyOracle::note_final_read(ItemId item,
                                        const std::optional<core::ReadOutput>& output,
                                        SimTime at) {
  const auto acked_it = acked_.find(item.value);
  if (acked_it == acked_.end()) return;  // nothing acked, nothing owed
  ++checks_;
  if (!output.has_value()) {
    violate("durability",
            "final read of item " + std::to_string(item.value) +
                " failed despite an acked write at ts " + to_string(acked_it->second),
            at);
    return;
  }
  if (output->ts < acked_it->second) {
    violate("durability",
            "final read of item " + std::to_string(item.value) + " returned ts " +
                to_string(output->ts) + " older than the newest acked write " +
                to_string(acked_it->second),
            at);
  }
  // The final read is a read like any other: authenticity must hold too.
  ++checks_;
  if (authentic_.find({item.value, output->value}) == authentic_.end()) {
    violate("durability",
            "final read of item " + std::to_string(item.value) +
                " returned a value no workload client ever wrote",
            at);
  }
}

std::vector<ItemId> ConsistencyOracle::acked_items() const {
  std::vector<ItemId> items;
  items.reserve(acked_.size());
  for (const auto& [item, ts] : acked_) items.push_back(ItemId{item});
  return items;
}

std::string ConsistencyOracle::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "[" + v.check + " @" + std::to_string(v.at) + "us] " + v.detail + "\n";
  }
  return out;
}

}  // namespace securestore::testkit
