// Deterministic chaos harness (DESIGN.md §9).
//
// `ChaosSchedule` is a timeline of cluster-level fault events — crash and
// restart a server (with or without its state), isolate it behind a
// directed partition, flip it to a Byzantine `ServerFault` behavior,
// degrade its links with loss/latency/duplication, or drown it in an
// open-loop overload storm (Poisson request flood + finite per-message
// service capacity, DESIGN.md §13) — generated from a seed so the same
// seed always yields the same storm. `ChaosRunner` executes a
// schedule against a `Cluster` while concurrent client workloads run on
// every protocol family (P3/P4 single-writer, P5 honest multi-writer, P6
// Byzantine multi-writer), reporting each operation to a per-group
// `ConsistencyOracle`. The generator never exceeds the deployment's fault
// bound `b` in simultaneously-faulty servers, so every oracle violation is
// a real protocol bug, not an over-budget storm.
//
// After the chaos horizon the runner heals everything, restarts the dead,
// reverts the Byzantine, lets gossip quiesce, and drives a final
// fresh-client verification sweep (the oracle's durability check: no
// acknowledged write may be lost).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "faults/faulty_server.h"
#include "net/fault_transport.h"
#include "net/introspect.h"
#include "net/rpc.h"
#include "obs/health.h"
#include "sim/open_loop.h"
#include "testkit/cluster.h"
#include "testkit/health_scorer.h"
#include "testkit/oracle.h"
#include "util/rng.h"

namespace securestore::testkit {

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kCrash,           // stop_server(server)
    kRestart,         // start_server(server, restore_state)
    kIsolate,         // directed partition: server <-> everyone, both ways
    kHealIsolation,   // heal that partition
    kByzantine,       // flip the server to `faults` (restarted with state)
    kRecover,         // flip back to honest (restarted with state)
    kDegradeLinks,    // apply `rule` to every link touching the server
    kRestoreLinks,    // clear those link rules
    kOverloadStorm,      // open-loop request flood + finite service capacity
    kEndOverloadStorm,   // stop the flood, restore infinite capacity
  };

  SimTime at = 0;  // relative to the runner's start
  Kind kind{};
  std::uint32_t server = 0;
  bool restore_state = true;                 // kRestart
  std::set<faults::ServerFault> faults;      // kByzantine
  net::FaultRule rule;                       // kDegradeLinks
  double storm_rate = 0;                     // kOverloadStorm: arrivals/sec
  SimDuration storm_service = 0;             // kOverloadStorm: per-message cost
};

const char* chaos_event_name(ChaosEvent::Kind kind);

struct ChaosSchedule {
  std::vector<ChaosEvent> events;  // sorted by `at`

  /// Generates a random schedule over [0, horizon): several disjoint fault
  /// windows per server, with crash/isolate/Byzantine windows (the ones
  /// that make a server faulty) never overlapping more than `b` deep —
  /// including a post-heal grace so a freshly-repaired server is not
  /// immediately counted healthy. Link degradation and overload storms ride
  /// on top without consuming fault budget (they slow the system but break
  /// no assumption: an overloaded server is still honest).
  static ChaosSchedule random(Rng& rng, std::uint32_t n, std::uint32_t b, SimTime horizon);
};

struct ChaosRunnerOptions {
  /// Length of the storm; workloads stop issuing new ops at this time.
  SimDuration horizon = seconds(20);
  /// Settle time between healing everything and the verification sweep.
  SimDuration quiesce = seconds(5);
  /// Think time between one client's consecutive operations.
  SimDuration op_gap = milliseconds(25);
  /// Wait before retrying a failed connect.
  SimDuration connect_retry_gap = milliseconds(200);
  /// Items written/read per group (ItemId = group*100 + k).
  std::uint32_t items_per_group = 3;
  /// Per-round quorum timeout handed to workload clients.
  SimDuration round_timeout = milliseconds(150);
};

/// Health-plane attachment for a chaos run (attach_health_monitor): the
/// watchdog's rules, the scraper cadence, and the ground-truth scoring
/// tolerances.
struct ChaosHealthOptions {
  obs::SloRules rules;
  SimDuration scrape_interval = milliseconds(50);
  SimDuration scrape_timeout = milliseconds(25);
  HealthScorer::Options scoring;
};

struct ChaosReport {
  std::uint64_t writes_attempted = 0;
  std::uint64_t writes_acked = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t ops_failed = 0;  // timed-out / stale / unreachable ops
  std::uint64_t ops_refused = 0;  // workload ops refused with kOverloaded
  std::uint64_t storm_arrivals = 0;  // open-loop storm requests generated
  std::uint64_t storm_refusals = 0;  // storm requests shed by admission
  std::uint64_t oracle_checks = 0;
  std::uint64_t events_applied = 0;
  std::uint32_t max_simultaneous_faulty = 0;
  /// The fault-injection timeline of the run's chaos transport; equal
  /// across runs with the same seeds (the replay assertion).
  std::vector<net::FaultEvent> fault_timeline;
  std::vector<ConsistencyOracle::Violation> violations;
  /// All violations pretty-printed, one per line (empty when clean).
  std::string violation_report;
  /// Present when attach_health_monitor was called: the watchdog's marks
  /// scored against the injected fault windows.
  std::optional<HealthScoreReport> health;
};

class ChaosRunner {
 public:
  /// `cluster` must have been built with `chaos_seed` set (the runner uses
  /// the chaos transport for link degradation and the fault timeline).
  /// `workload_seed` drives workload choices (items, op mix) independently
  /// of the schedule and the cluster.
  ChaosRunner(Cluster& cluster, ChaosSchedule schedule, ChaosRunnerOptions options,
              std::uint64_t workload_seed);
  ~ChaosRunner();

  ChaosRunner(const ChaosRunner&) = delete;
  ChaosRunner& operator=(const ChaosRunner&) = delete;

  /// Attaches the live health plane before run(): an `IntrospectScraper`
  /// (network id 4998, so isolation partitions cut it off like any other
  /// peer) feeding an `obs::HealthMonitor`, whose marks a `HealthScorer`
  /// checks against the schedule's ground truth. The report then carries a
  /// `health` section; a missed detection or false positive there fails
  /// the run like an oracle violation.
  void attach_health_monitor(ChaosHealthOptions options = {});
  const obs::HealthMonitor* health_monitor() const { return monitor_.get(); }

  /// Runs storm + workloads, heals, quiesces, verifies. Blocking (drives
  /// the cluster's scheduler); call once.
  ChaosReport run();

 private:
  struct Workload;  // one client's op loop

  void apply_event(const ChaosEvent& event);
  void heal_everything();
  void final_verification();
  std::vector<NodeId> all_node_ids() const;
  void isolate_server(std::uint32_t server, bool heal);
  void degrade_server(std::uint32_t server, const net::FaultRule& rule, bool restore);
  void start_storm(const ChaosEvent& event);
  void end_storm(std::uint32_t server);

  void start_workload(const std::shared_ptr<Workload>& w);
  void schedule_next_op(const std::shared_ptr<Workload>& w);
  void run_op(const std::shared_ptr<Workload>& w);

  Cluster& cluster_;
  ChaosSchedule schedule_;
  ChaosRunnerOptions options_;
  Rng rng_;
  SimTime start_ = 0;
  SimTime stop_time_ = 0;
  bool ran_ = false;

  std::vector<core::GroupPolicy> group_policies_;
  std::vector<std::unique_ptr<ConsistencyOracle>> oracles_;  // one per group
  std::vector<std::shared_ptr<Workload>> workloads_;

  std::set<std::uint32_t> faulty_now_;
  std::set<std::uint32_t> byzantine_now_;
  /// Overload storms in flight, keyed by victim server. Distinct victims
  /// may storm concurrently; the schedule never storms one server twice at
  /// once. The generator node (4999) is shared and created lazily.
  std::map<std::uint32_t, std::unique_ptr<sim::OpenLoopLoad>> storms_;
  std::unique_ptr<net::RpcNode> storm_node_;
  /// Health plane (attach_health_monitor); all null until attached.
  std::unique_ptr<obs::HealthMonitor> monitor_;
  std::unique_ptr<HealthScorer> scorer_;
  std::unique_ptr<net::RpcNode> scrape_node_;
  std::unique_ptr<net::IntrospectScraper> scraper_;
  ChaosReport report_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace securestore::testkit
