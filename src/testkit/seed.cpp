#include "testkit/seed.h"

#include <cstdio>
#include <cstdlib>

namespace securestore::testkit {

std::uint64_t resolve_seed(std::uint64_t default_seed) {
  const char* env = std::getenv("SECURESTORE_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return default_seed;
  return static_cast<std::uint64_t>(parsed);
}

std::uint64_t announce_seed(std::string_view context, std::uint64_t default_seed) {
  const std::uint64_t seed = resolve_seed(default_seed);
  std::printf("[seed] %.*s seed=%llu\n", static_cast<int>(context.size()), context.data(),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  return seed;
}

SeedBanner::SeedBanner(std::string_view context, std::uint64_t default_seed,
                       std::function<bool()> failed)
    : context_(context), seed_(announce_seed(context, default_seed)),
      failed_(std::move(failed)) {}

SeedBanner::~SeedBanner() {
  if (forced_failure_ || (failed_ && failed_())) {
    std::printf("[seed] %s FAILED — reproduce with SECURESTORE_SEED=%llu\n", context_.c_str(),
                static_cast<unsigned long long>(seed_));
    std::fflush(stdout);
  }
}

}  // namespace securestore::testkit
