// Chaos harness for sharded deployments (DESIGN.md §9, §11).
//
// Runs one ChaosSchedule per replica group — each generated under that
// group's own fault bound `b`, so no group ever exceeds its quorum
// assumptions — while ShardedClient workloads issue key-routed operations
// across many groups and report to a per-group ConsistencyOracle. Mid-storm
// the runner executes the §11 rebalance protocol STEPWISE, with virtual
// time (and therefore faults, crashes and partitions) elapsing between the
// phases: stand up a new group under the old ring, bulk-copy moved ranges,
// install ring v+1, reconciliation copy. Clients learn of the move only
// through kWrongShard rejections, exercising the stale-ring healing path
// under fire.
//
// After the horizon the runner heals every group, runs one more
// reconciliation copy (a crashed-at-copy-time destination may have missed
// imports), quiesces, and drives a fresh-client verification sweep per
// group — the durability check that no acknowledged write was lost in the
// storm or the move.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "testkit/chaos.h"
#include "testkit/sharded_cluster.h"

namespace securestore::testkit {

struct ShardedChaosOptions {
  /// Length of the storm; workloads stop issuing new ops at this time.
  SimDuration horizon = seconds(20);
  /// Settle time between healing everything and the verification sweep.
  SimDuration quiesce = seconds(5);
  /// Think time between one client's consecutive operations.
  SimDuration op_gap = milliseconds(25);
  /// Wait before retrying a failed connect.
  SimDuration connect_retry_gap = milliseconds(200);
  /// Items written/read per group (ItemId = group*100 + k).
  std::uint32_t items_per_group = 3;
  /// Per-round quorum timeout handed to workload clients.
  SimDuration round_timeout = milliseconds(150);
  /// Run the mid-storm rebalance (add one group, hand off moved ranges).
  /// Phases land at 25% / 40% / 55% / 70% of the horizon, with the storm
  /// raging in between.
  bool rebalance = true;
};

struct ShardedChaosReport {
  std::uint64_t writes_attempted = 0;
  std::uint64_t writes_acked = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t ops_failed = 0;  // timed-out / stale / unreachable ops
  std::uint64_t oracle_checks = 0;
  std::uint64_t events_applied = 0;
  /// Records imported by the rebalance copy passes (0 without rebalance).
  std::uint64_t records_copied = 0;
  /// Ring version and group count once the run settles.
  std::uint64_t final_ring_version = 0;
  std::uint32_t groups_after = 0;

  /// Per-group-key verdict, with the shard the key settled on.
  struct GroupReport {
    GroupId group{};
    std::uint32_t shard = 0;
    std::uint64_t checks = 0;
    std::vector<ConsistencyOracle::Violation> violations;
  };
  std::vector<GroupReport> groups;

  std::vector<ConsistencyOracle::Violation> violations;  // all groups pooled
  /// All violations pretty-printed, one per line (empty when clean).
  std::string violation_report;
  /// Present when attach_health_monitor was called: the watchdog's marks
  /// scored against every group's injected fault windows.
  std::optional<HealthScoreReport> health;
};

class ShardedChaosRunner {
 public:
  /// `cluster` must have been built with `chaos_seed` set. `schedules` has
  /// one entry per INITIAL group (a group added by the rebalance gets no
  /// scheduled faults of its own, though partitions and link rules around
  /// other servers still shape its traffic). `workload_seed` drives
  /// workload choices independently of the schedules and the cluster.
  ShardedChaosRunner(ShardedCluster& cluster, std::vector<ChaosSchedule> schedules,
                     ShardedChaosOptions options, std::uint64_t workload_seed);
  ~ShardedChaosRunner();

  ShardedChaosRunner(const ShardedChaosRunner&) = delete;
  ShardedChaosRunner& operator=(const ShardedChaosRunner&) = delete;

  /// Attaches the live health plane before run(): one scraper round-robins
  /// every server of every INITIAL group (a rebalance-added group joins
  /// mid-run and is not monitored), feeding one `obs::HealthMonitor` whose
  /// per-group fault budgets drive the cluster verdict. The report gains a
  /// `health` section scored against all group schedules.
  void attach_health_monitor(ChaosHealthOptions options = {});
  const obs::HealthMonitor* health_monitor() const { return monitor_.get(); }

  /// Storm + workloads + mid-storm rebalance, heal, reconcile, quiesce,
  /// verify. Blocking (drives the cluster's scheduler); call once.
  ShardedChaosReport run();

 private:
  struct Workload;  // one ShardedClient's op loop over several groups

  void apply_event(std::size_t group_idx, const ChaosEvent& event);
  void heal_everything();
  void final_verification();
  std::vector<NodeId> all_node_ids() const;
  void isolate_server(std::size_t group_idx, std::uint32_t server, bool heal);
  void degrade_server(std::size_t group_idx, std::uint32_t server,
                      const net::FaultRule& rule, bool restore);

  void start_workload(const std::shared_ptr<Workload>& w, std::size_t role_idx);
  void schedule_next_op(const std::shared_ptr<Workload>& w);
  void run_op(const std::shared_ptr<Workload>& w);

  ShardedCluster& cluster_;
  std::vector<ChaosSchedule> schedules_;
  ShardedChaosOptions options_;
  Rng rng_;
  SimTime stop_time_ = 0;
  bool ran_ = false;

  std::vector<core::GroupPolicy> group_policies_;
  std::vector<std::unique_ptr<ConsistencyOracle>> oracles_;  // one per group key
  std::vector<std::shared_ptr<Workload>> workloads_;

  std::set<std::pair<std::size_t, std::uint32_t>> faulty_now_;     // (group, server)
  std::set<std::pair<std::size_t, std::uint32_t>> byzantine_now_;
  /// Nodes whose per-message service capacity an overload window squeezed
  /// (the sharded harness models the storm as a capacity squeeze only; the
  /// open-loop flood generator lives in the single-group ChaosRunner).
  std::set<std::uint32_t> squeezed_now_;
  /// Health plane (attach_health_monitor); all null until attached.
  std::unique_ptr<obs::HealthMonitor> monitor_;
  std::unique_ptr<HealthScorer> scorer_;
  std::unique_ptr<net::RpcNode> scrape_node_;
  std::unique_ptr<net::IntrospectScraper> scraper_;
  std::vector<std::uint32_t> monitor_base_;  // group idx → first monitor index
  ShardedChaosReport report_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace securestore::testkit
