// Sharded deployment harness: many replica groups behind one router
// (DESIGN.md §11).
//
// One scheduler, one simulated network, one metrics registry and one event
// log carry `groups` independent (n, b) SecureStore clusters — each a
// plain testkit::Cluster in shared-infrastructure mode, so durability
// directories, fault injection and server restarts all work per group
// exactly as they do standalone. The ShardedCluster owns the ring
// authority: it signs the ring mapping group keys to shards, installs it
// on every server, and hands ShardedClients a verified starting ring.
//
// Rebalance (add_group) follows the §11 protocol: stand up the new group
// with the OLD ring (it owns nothing, so it rejects everything), bulk-copy
// the moved key ranges, install ring v+1 everywhere, then run a SECOND
// reconciliation copy — old owners never delete moved data, so any write
// acked during the bulk copy is caught by the second pass. Safe to run
// under crashes and partitions; the chaos soak drives exactly that.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "shard/sharded_client.h"
#include "testkit/cluster.h"

namespace securestore::testkit {

struct ShardedClusterOptions {
  /// Initial number of replica groups (shards).
  std::uint32_t groups = 2;
  // Per-group deployment shape (every group gets the same (n, b)).
  std::uint32_t n = 4;
  std::uint32_t b = 1;
  std::uint64_t seed = 1;
  std::uint32_t vnodes_per_shard = 64;
  /// Client identities pre-registered at every group (ClientId 1..k),
  /// sharing one keypair per id across shards.
  std::uint32_t max_clients = 8;
  sim::LinkProfile link = sim::lan_profile();
  gossip::GossipEngine::Config gossip;
  bool start_gossip = true;
  SimDuration op_timeout = seconds(5);
  /// Chaos decorator for the shared transport (see ClusterOptions).
  std::optional<std::uint64_t> chaos_seed;
  /// Durable groups: group g persists under `<durability_dir>/group-<g>/`.
  std::optional<std::string> durability_dir;
  storage::FsyncPolicy fsync = storage::FsyncPolicy::kAlways;
  /// Storage engine for every server of every group (DESIGN.md §12); kLsm
  /// requires `durability_dir`.
  core::EngineConfig engine;
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::EventLog> events;
  bool tracing = false;
  std::uint32_t trace_sample_every = 1;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions options);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  net::SimTransport& transport() { return *transport_; }
  net::FaultInjectingTransport* chaos() { return chaos_.get(); }
  net::Transport& endpoint_transport() {
    return chaos_ != nullptr ? static_cast<net::Transport&>(*chaos_) : *transport_;
  }
  obs::Registry& registry() { return transport_->registry(); }
  obs::EventLog& events() { return transport_->events(); }

  Cluster& group(std::size_t g) { return *groups_[g]; }
  std::size_t group_count() const { return groups_.size(); }
  /// The shard a group key routes to under the CURRENT ring.
  std::uint32_t shard_for(GroupId group) const;

  const shard::SignedRingState& ring() const { return ring_; }
  const crypto::KeyPair& ring_authority() const { return ring_authority_; }
  /// A shard-independent StoreConfig (quorums, client keys, authority key)
  /// for building ShardedClients; per-shard servers come from the ring.
  const core::StoreConfig& template_config() const { return groups_[0]->config(); }

  /// Applies a policy to every server of every group.
  void set_group_policy(const core::GroupPolicy& policy);

  /// A ShardedClient for a pre-registered identity. Endpoint ids start at
  /// 10000 + id*100, far from the per-group server ranges.
  std::unique_ptr<shard::ShardedClient> make_client(
      ClientId id, core::SecureStoreClient::Options options, unsigned max_reroutes = 3);
  const crypto::KeyPair& client_keys(ClientId id) const;

  // Rebalance. add_group() runs the full protocol; the stepwise pieces are
  // exposed so the chaos harness can interleave faults between phases.
  /// Stands up one more group, booted with the CURRENT ring and its new
  /// shard id (it owns nothing until the switch). Returns the shard id.
  std::uint32_t begin_add_group();
  /// The candidate next ring: version+1 over all current groups.
  shard::SignedRingState next_ring() const;
  /// Copies every record/context whose group `target` maps off its current
  /// holder onto the target owner's servers (validated imports; idempotent;
  /// skips crashed sources and destinations). Returns records copied.
  std::uint64_t copy_moved_data(const shard::SignedRingState& target);
  /// Installs `ring` on every server of every group and adopts it as the
  /// deployment ring for future clients and restarts.
  void install_ring(const shard::SignedRingState& ring);
  /// begin_add_group + copy + install + reconciliation copy, in order.
  std::uint32_t add_group();

  /// Runs the simulation for `duration` of virtual time.
  void run_for(SimDuration duration);

  const ShardedClusterOptions& options() const { return options_; }

 private:
  std::unique_ptr<Cluster> build_group(std::uint32_t shard_id);

  ShardedClusterOptions options_;
  Rng rng_;
  sim::Scheduler scheduler_;
  std::unique_ptr<net::SimTransport> transport_;
  std::unique_ptr<net::FaultInjectingTransport> chaos_;
  crypto::KeyPair ring_authority_;
  std::vector<crypto::KeyPair> client_keypairs_;  // index = ClientId.value - 1
  std::vector<std::unique_ptr<Cluster>> groups_;
  std::vector<core::GroupPolicy> policies_;
  shard::SignedRingState ring_;
  std::optional<shard::HashRing> hash_ring_;  // lookup view of ring_
  std::uint64_t next_version_ = 1;
};

}  // namespace securestore::testkit
