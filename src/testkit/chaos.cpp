#include "testkit/chaos.h"

#include <algorithm>
#include <stdexcept>

#include "core/messages.h"
#include "core/sync.h"
#include "net/quorum.h"

namespace securestore::testkit {

const char* chaos_event_name(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kCrash: return "crash";
    case ChaosEvent::Kind::kRestart: return "restart";
    case ChaosEvent::Kind::kIsolate: return "isolate";
    case ChaosEvent::Kind::kHealIsolation: return "heal_isolation";
    case ChaosEvent::Kind::kByzantine: return "byzantine";
    case ChaosEvent::Kind::kRecover: return "recover";
    case ChaosEvent::Kind::kDegradeLinks: return "degrade_links";
    case ChaosEvent::Kind::kRestoreLinks: return "restore_links";
    case ChaosEvent::Kind::kOverloadStorm: return "overload_storm";
    case ChaosEvent::Kind::kEndOverloadStorm: return "end_overload_storm";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::random(Rng& rng, std::uint32_t n, std::uint32_t b,
                                    SimTime horizon) {
  ChaosSchedule schedule;
  if (n == 0 || horizon < milliseconds(1500)) return schedule;

  // A window makes one server faulty for [start, end]; `grace` extends its
  // budget accounting past the heal so a just-repaired server (possibly
  // still catching up via gossip) is not immediately treated as healthy.
  struct Window {
    std::uint32_t server;
    SimTime start;
    SimTime end;
    bool counts;  // consumes fault budget (crash/isolate/Byzantine)
  };
  std::vector<Window> accepted;
  const SimDuration grace = seconds(1);
  const SimTime latest = horizon - milliseconds(100);
  const auto target = static_cast<std::uint32_t>(4 + rng.next_below(4));
  static constexpr faults::ServerFault kMenu[] = {
      faults::ServerFault::kMuteData,      faults::ServerFault::kStaleContext,
      faults::ServerFault::kStaleData,     faults::ServerFault::kCorruptValues,
      faults::ServerFault::kDropWrites,
  };

  std::uint32_t placed = 0;
  for (unsigned attempt = 0; attempt < 48 && placed < target; ++attempt) {
    const auto server = static_cast<std::uint32_t>(rng.next_below(n));
    const SimTime start = milliseconds(200) + rng.next_below(horizon * 3 / 4);
    SimTime end = start + milliseconds(400) + rng.next_below(horizon / 5);
    if (end > latest) end = latest;
    if (end <= start + milliseconds(100)) continue;
    const auto type = static_cast<unsigned>(rng.next_below(5));
    // Degrade (3) and overload (4) windows slow the server but keep it
    // honest, so they ride outside the fault budget.
    const bool counts = type < 3;

    bool conflict = false;
    std::uint32_t budget_overlap = 0;
    for (const Window& w : accepted) {
      const bool overlaps = start < w.end + grace && w.start < end + grace;
      if (!overlaps) continue;
      if (w.server == server) {
        conflict = true;  // one storm per server at a time, any kind
        break;
      }
      if (counts && w.counts) ++budget_overlap;
    }
    if (conflict || (counts && budget_overlap >= b)) continue;

    accepted.push_back(Window{server, start, end, counts});
    ++placed;

    ChaosEvent open;
    ChaosEvent close;
    open.at = start;
    close.at = end;
    open.server = close.server = server;
    switch (type) {
      case 0:
        open.kind = ChaosEvent::Kind::kCrash;
        close.kind = ChaosEvent::Kind::kRestart;
        // Mostly stateful reboots; one in four comes back as a disk-wiped
        // (or amnesiac) replacement.
        close.restore_state = rng.next_below(4) != 0;
        break;
      case 1:
        open.kind = ChaosEvent::Kind::kIsolate;
        close.kind = ChaosEvent::Kind::kHealIsolation;
        break;
      case 2:
        open.kind = ChaosEvent::Kind::kByzantine;
        close.kind = ChaosEvent::Kind::kRecover;
        open.faults.insert(kMenu[rng.next_below(std::size(kMenu))]);
        if (rng.next_bool(0.3)) open.faults.insert(kMenu[rng.next_below(std::size(kMenu))]);
        break;
      case 3: {
        open.kind = ChaosEvent::Kind::kDegradeLinks;
        close.kind = ChaosEvent::Kind::kRestoreLinks;
        net::FaultRule rule;
        rule.drop = 0.05 + 0.25 * rng.next_double();
        rule.delay_base = milliseconds(1 + rng.next_below(8));
        rule.delay_jitter = milliseconds(rng.next_below(5));
        rule.duplicate = 0.05;
        rule.reorder = 0.05;
        open.rule = rule;
        break;
      }
      default:
        open.kind = ChaosEvent::Kind::kOverloadStorm;
        close.kind = ChaosEvent::Kind::kEndOverloadStorm;
        // Offered load of thousands of independent clients per second,
        // against a per-message service cost that caps the victim at
        // ~1.2k–5k msg/s: arrivals routinely exceed capacity, so the
        // admission controller must shed or the ring grows without bound.
        open.storm_rate = 2000.0 + static_cast<double>(rng.next_below(6000));
        open.storm_service = microseconds(200 + rng.next_below(600));
        break;
    }
    schedule.events.push_back(std::move(open));
    schedule.events.push_back(std::move(close));
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return schedule;
}

// ---------------------------------------------------------------------------
// ChaosRunner
// ---------------------------------------------------------------------------

/// One workload client's asynchronous op loop. Ops chain through callbacks
/// with `op_gap` think time; the loop stops issuing once the storm horizon
/// passes. All clients here are CORRECT — the adversary is the schedule.
struct ChaosRunner::Workload {
  std::unique_ptr<core::SecureStoreClient> client;
  ClientId id{};
  GroupId group{};
  std::size_t oracle = 0;  // index into oracles_
  bool writer = false;
  bool reader = true;
  std::vector<ItemId> items;
  Rng rng{1};
  std::uint64_t seq = 0;
};

ChaosRunner::ChaosRunner(Cluster& cluster, ChaosSchedule schedule, ChaosRunnerOptions options,
                         std::uint64_t workload_seed)
    : cluster_(cluster), schedule_(std::move(schedule)), options_(options),
      rng_(workload_seed) {
  if (cluster_.chaos() == nullptr) {
    throw std::logic_error("ChaosRunner: cluster must be built with chaos_seed set");
  }
  if (cluster_.options().max_clients < 7) {
    throw std::logic_error("ChaosRunner: cluster needs max_clients >= 7");
  }

  // One group per protocol family, one oracle per group.
  using core::ClientTrust;
  using core::ConsistencyModel;
  using core::SharingMode;
  group_policies_ = {
      // P3/P4: single writer, MRC.
      core::GroupPolicy{GroupId{1}, ConsistencyModel::kMRC, SharingMode::kSingleWriter,
                        ClientTrust::kHonest},
      // P5: honest multi-writer, causal consistency.
      core::GroupPolicy{GroupId{2}, ConsistencyModel::kCC, SharingMode::kMultiWriter,
                        ClientTrust::kHonest},
      // P6: Byzantine-client hardened multi-writer.
      core::GroupPolicy{GroupId{3}, ConsistencyModel::kMRC, SharingMode::kMultiWriter,
                        ClientTrust::kByzantine},
  };
  for (const core::GroupPolicy& policy : group_policies_) {
    oracles_.push_back(std::make_unique<ConsistencyOracle>(
        policy.model == ConsistencyModel::kCC));
  }

  // Client layout: (group, client id, role).
  struct Spec {
    std::size_t group_idx;
    std::uint32_t client;
    bool writer;
    bool reader;
  };
  const Spec specs[] = {
      {0, 1, true, true},   // single-writer group: the one writer
      {0, 2, false, true},  // ...and a pure reader
      {1, 3, true, true},  {1, 4, true, true},  // honest multi-writer pair
      {2, 5, true, true},  {2, 6, true, true},  // Byzantine-mode pair
  };
  for (const Spec& spec : specs) {
    auto w = std::make_shared<Workload>();
    const core::GroupPolicy& policy = group_policies_[spec.group_idx];
    core::SecureStoreClient::Options client_options;
    client_options.policy = policy;
    client_options.round_timeout = options_.round_timeout;
    w->id = ClientId{spec.client};
    w->group = policy.group;
    w->oracle = spec.group_idx;
    w->writer = spec.writer;
    w->reader = spec.reader;
    w->rng = rng_.fork();
    for (std::uint32_t k = 0; k < options_.items_per_group; ++k) {
      w->items.push_back(ItemId{policy.group.value * 100 + k});
    }
    w->client = cluster_.make_client(w->id, std::move(client_options));
    workloads_.push_back(std::move(w));
  }
}

ChaosRunner::~ChaosRunner() { *alive_ = false; }

std::vector<NodeId> ChaosRunner::all_node_ids() const {
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < cluster_.options().n; ++i) ids.push_back(NodeId{i});
  for (std::uint32_t c = 1; c <= cluster_.options().max_clients; ++c) {
    ids.push_back(NodeId{1000 + c});
  }
  // The watchdog's scraper is a network peer like any other: isolating a
  // server must cut its scrapes too, or partitions would be undetectable.
  if (scrape_node_ != nullptr) ids.push_back(scrape_node_->id());
  return ids;
}

void ChaosRunner::attach_health_monitor(ChaosHealthOptions options) {
  if (ran_ || monitor_ != nullptr) {
    throw std::logic_error("attach_health_monitor: call once, before run()");
  }
  std::vector<obs::HealthMonitor::ServerInfo> servers;
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < cluster_.options().n; ++i) {
    const NodeId node = cluster_.server_node(i);
    servers.push_back({node.value, cluster_.shard_id()});
    nodes.push_back(node);
  }
  obs::HealthMonitor::Options monitor_options;
  monitor_options.rules = options.rules;
  monitor_options.b = cluster_.options().b;
  monitor_ = std::make_unique<obs::HealthMonitor>(
      cluster_.registry(), &cluster_.events(), std::move(servers), monitor_options);
  scorer_ = std::make_unique<HealthScorer>(options.scoring);
  monitor_->set_on_mark([this](std::uint32_t index, bool healthy, std::uint64_t at,
                               const std::vector<std::string>&) {
    scorer_->note_mark(index, healthy, at);
  });
  monitor_->set_on_verdict([this](obs::Verdict verdict, std::uint64_t at) {
    scorer_->note_verdict(verdict, at);
  });
  scrape_node_ = std::make_unique<net::RpcNode>(cluster_.endpoint_transport(), NodeId{4998});
  net::IntrospectScraper::Options scraper_options;
  scraper_options.interval = options.scrape_interval;
  scraper_options.timeout = options.scrape_timeout;
  scraper_ = std::make_unique<net::IntrospectScraper>(*scrape_node_, std::move(nodes),
                                                      *monitor_, scraper_options);
}

void ChaosRunner::isolate_server(std::uint32_t server, bool heal) {
  std::vector<NodeId> others;
  for (const NodeId id : all_node_ids()) {
    if (id.value != server) others.push_back(id);
  }
  sim::NetworkModel& network = cluster_.transport().network();
  if (heal) {
    network.heal_groups({NodeId{server}}, others);
  } else {
    network.partition_groups({NodeId{server}}, others);
  }
}

void ChaosRunner::degrade_server(std::uint32_t server, const net::FaultRule& rule,
                                 bool restore) {
  net::FaultInjectingTransport& chaos = *cluster_.chaos();
  for (const NodeId id : all_node_ids()) {
    if (id.value == server) continue;
    if (restore) {
      chaos.clear_link_rule(NodeId{server}, id);
      chaos.clear_link_rule(id, NodeId{server});
    } else {
      chaos.set_link_rule(NodeId{server}, id, rule);
      chaos.set_link_rule(id, NodeId{server}, rule);
    }
  }
}

void ChaosRunner::start_storm(const ChaosEvent& event) {
  const NodeId victim{event.server};
  // Finite capacity first: with per-message cost s the victim serves at
  // most 1/s msg/s, so the flood's excess shows up as ring backlog — the
  // exact signal the admission controller watches.
  cluster_.transport().set_service_time(victim, event.storm_service);
  if (storm_node_ == nullptr) {
    storm_node_ = std::make_unique<net::RpcNode>(cluster_.endpoint_transport(),
                                                 NodeId{4999});
  }

  // The storm issues real, well-formed single-server reads (phase-1 meta
  // requests for a group-1 item) so each one walks the server's admission
  // gate exactly like workload traffic — sheddable, and answerable when the
  // server has headroom.
  core::MetaReq req;
  req.item = ItemId{100};
  req.group = GroupId{1};
  req.requester = ClientId{999};
  const Bytes body = req.serialize();

  sim::OpenLoopLoad::Options load_options;
  load_options.arrivals_per_sec = event.storm_rate;
  load_options.max_in_flight = 512;
  load_options.seed = rng_.next_u64();
  auto load = std::make_unique<sim::OpenLoopLoad>(
      cluster_.scheduler(), load_options,
      [this, victim, body](sim::OpenLoopLoad::DoneFn done) {
        net::QuorumOptions options;
        options.timeout = milliseconds(50);
        auto refused = std::make_shared<bool>(false);
        net::QuorumCall::start(
            *storm_node_, {victim}, net::MsgType::kMetaRequest, body,
            [this, refused](NodeId, net::MsgType type, BytesView) {
              if (type == net::MsgType::kOverloaded) {
                *refused = true;
                ++report_.storm_refusals;
              }
              return true;
            },
            [done = std::move(done), refused](net::QuorumOutcome outcome, std::size_t) {
              done(outcome == net::QuorumOutcome::kSatisfied && !*refused);
            },
            options);
      });
  load->start(stop_time_);
  storms_[event.server] = std::move(load);
}

void ChaosRunner::end_storm(std::uint32_t server) {
  const auto it = storms_.find(server);
  if (it != storms_.end()) {
    report_.storm_arrivals += it->second->stats().arrivals;
    storms_.erase(it);  // destructor invalidates outstanding callbacks
  }
  cluster_.transport().set_service_time(NodeId{server}, 0);
}

void ChaosRunner::apply_event(const ChaosEvent& event) {
  ++report_.events_applied;
  const std::uint32_t s = event.server;
  switch (event.kind) {
    case ChaosEvent::Kind::kCrash:
      cluster_.stop_server(s);
      faulty_now_.insert(s);
      break;
    case ChaosEvent::Kind::kRestart:
      if (!cluster_.server_running(s)) cluster_.start_server(s, event.restore_state);
      faulty_now_.erase(s);
      break;
    case ChaosEvent::Kind::kIsolate:
      isolate_server(s, /*heal=*/false);
      faulty_now_.insert(s);
      break;
    case ChaosEvent::Kind::kHealIsolation:
      isolate_server(s, /*heal=*/true);
      faulty_now_.erase(s);
      break;
    case ChaosEvent::Kind::kByzantine:
      cluster_.set_server_faults(s, event.faults);
      if (cluster_.server_running(s)) cluster_.restart_server(s, /*restore_state=*/true);
      faulty_now_.insert(s);
      byzantine_now_.insert(s);
      break;
    case ChaosEvent::Kind::kRecover:
      cluster_.set_server_faults(s, {});
      if (cluster_.server_running(s)) cluster_.restart_server(s, /*restore_state=*/true);
      faulty_now_.erase(s);
      byzantine_now_.erase(s);
      break;
    case ChaosEvent::Kind::kDegradeLinks:
      degrade_server(s, event.rule, /*restore=*/false);
      break;
    case ChaosEvent::Kind::kRestoreLinks:
      degrade_server(s, event.rule, /*restore=*/true);
      break;
    case ChaosEvent::Kind::kOverloadStorm:
      start_storm(event);
      break;
    case ChaosEvent::Kind::kEndOverloadStorm:
      end_storm(s);
      break;
  }
  report_.max_simultaneous_faulty = std::max(
      report_.max_simultaneous_faulty, static_cast<std::uint32_t>(faulty_now_.size()));
}

void ChaosRunner::heal_everything() {
  for (const auto& [server, load] : storms_) {
    report_.storm_arrivals += load->stats().arrivals;
    cluster_.transport().set_service_time(NodeId{server}, 0);
  }
  storms_.clear();
  cluster_.transport().network().heal_all_links();
  cluster_.chaos()->heal_all_partitions();
  cluster_.chaos()->clear_link_rules();
  for (const std::uint32_t s : byzantine_now_) cluster_.set_server_faults(s, {});
  for (std::uint32_t s = 0; s < cluster_.options().n; ++s) {
    if (!cluster_.server_running(s)) {
      cluster_.start_server(s, /*restore_state=*/true);
    } else if (byzantine_now_.contains(s)) {
      cluster_.restart_server(s, /*restore_state=*/true);
    }
  }
  byzantine_now_.clear();
  faulty_now_.clear();
}

void ChaosRunner::start_workload(const std::shared_ptr<Workload>& w) {
  // P1 session acquisition, retried until it lands or the storm ends. Ops
  // only start on a live session so context save/restore is exercised too.
  w->client->connect(w->group, [this, alive = alive_, w](VoidResult result) {
    if (!*alive) return;
    if (result.ok()) {
      schedule_next_op(w);
      return;
    }
    ++report_.ops_failed;
    if (cluster_.transport().now() + options_.connect_retry_gap < stop_time_) {
      cluster_.endpoint_transport().schedule(options_.connect_retry_gap,
                                             [this, alive, w]() {
                                               if (!*alive) return;
                                               start_workload(w);
                                             });
    }
  });
}

void ChaosRunner::schedule_next_op(const std::shared_ptr<Workload>& w) {
  if (cluster_.transport().now() + options_.op_gap >= stop_time_) return;
  cluster_.endpoint_transport().schedule(options_.op_gap, [this, alive = alive_, w]() {
    if (!*alive) return;
    run_op(w);
  });
}

void ChaosRunner::run_op(const std::shared_ptr<Workload>& w) {
  if (cluster_.transport().now() >= stop_time_) return;
  ConsistencyOracle& oracle = *oracles_[w->oracle];
  const ItemId item = w->items[w->rng.next_below(w->items.size())];
  const bool do_write = w->writer && (!w->reader || w->rng.next_bool(0.5));

  if (do_write) {
    ++report_.writes_attempted;
    const std::string text = "g" + std::to_string(w->group.value) + "-c" +
                             std::to_string(w->id.value) + "-s" + std::to_string(w->seq++);
    const Bytes value(text.begin(), text.end());
    // Registered BEFORE the outcome is known: a timed-out write may still
    // land at servers and be legitimately read later.
    oracle.note_write_attempt(w->id, item, value);
    w->client->write(item, value, [this, alive = alive_, w, item, value](VoidResult result) {
      if (!*alive) return;
      if (result.ok()) {
        ++report_.writes_acked;
        // The client's context entry for the item IS this write's timestamp
        // (writes always outrun the context floor), and the whole context is
        // the write's causal history.
        oracles_[w->oracle]->note_write_ok(w->id, item, value,
                                           w->client->context().get(item),
                                           w->client->context(),
                                           cluster_.transport().now());
      } else if (result.error() == Error::kOverloaded) {
        ++report_.ops_refused;
        oracles_[w->oracle]->note_write_shed(w->id, item, value,
                                             cluster_.transport().now());
      } else {
        ++report_.ops_failed;
      }
      schedule_next_op(w);
    });
    return;
  }

  w->client->read(item, [this, alive = alive_, w, item](Result<core::ReadOutput> result) {
    if (!*alive) return;
    if (result.ok()) {
      ++report_.reads_ok;
      oracles_[w->oracle]->note_read_ok(w->id, item, result.value(),
                                        cluster_.transport().now());
    } else if (result.error() == Error::kOverloaded) {
      ++report_.ops_refused;
    } else {
      ++report_.ops_failed;
    }
    schedule_next_op(w);
  });
}

void ChaosRunner::final_verification() {
  for (std::size_t g = 0; g < group_policies_.size(); ++g) {
    const core::GroupPolicy& policy = group_policies_[g];
    core::SecureStoreClient::Options client_options;
    client_options.policy = policy;
    // Generous per-round budget: the storm is over, this is a correctness
    // sweep, not an availability measurement.
    client_options.round_timeout = seconds(1);
    auto client = cluster_.make_client(ClientId{7}, std::move(client_options),
                                       NodeId{3000 + static_cast<std::uint32_t>(g)});
    core::SyncClient sync(*client, cluster_.scheduler());
    // P2: a fresh client rebuilds the group's context from all servers —
    // the recovery path a post-disaster reader would take.
    (void)sync.reconstruct_context(policy.group);
    for (std::uint32_t k = 0; k < options_.items_per_group; ++k) {
      const ItemId item{policy.group.value * 100 + k};
      auto result = sync.read(item);
      oracles_[g]->note_final_read(
          item,
          result.ok() ? std::optional<core::ReadOutput>(result.value()) : std::nullopt,
          cluster_.transport().now());
    }
  }
}

ChaosReport ChaosRunner::run() {
  if (ran_) throw std::logic_error("ChaosRunner::run() may only be called once");
  ran_ = true;

  for (const core::GroupPolicy& policy : group_policies_) {
    cluster_.set_group_policy(policy);
  }

  start_ = cluster_.transport().now();
  stop_time_ = start_ + options_.horizon;

  // Stagger the workload starts a little so connects do not all collide.
  SimDuration stagger = milliseconds(1);
  for (const auto& w : workloads_) {
    cluster_.endpoint_transport().schedule(stagger, [this, alive = alive_, w]() {
      if (!*alive) return;
      start_workload(w);
    });
    stagger += milliseconds(3);
  }

  for (const ChaosEvent& event : schedule_.events) {
    cluster_.endpoint_transport().schedule(event.at, [this, alive = alive_, event]() {
      if (!*alive) return;
      apply_event(event);
    });
  }

  // The watchdog scrapes through the storm AND the quiesce, so recovery
  // marks after the heal land before scoring.
  if (scraper_ != nullptr) scraper_->start();

  cluster_.run_for(options_.horizon);
  heal_everything();
  cluster_.run_for(options_.quiesce);

  if (scraper_ != nullptr) {
    scraper_->stop();
    scorer_->add_schedule(schedule_, start_, options_.horizon, [](std::uint32_t s) {
      return std::optional<std::uint32_t>(s);
    });
    report_.health = scorer_->score(start_ + options_.horizon, cluster_.registry());
  }

  final_verification();

  report_.fault_timeline = cluster_.chaos()->injected();
  for (const auto& oracle : oracles_) {
    report_.oracle_checks += oracle->checks();
    for (const auto& violation : oracle->violations()) {
      report_.violations.push_back(violation);
    }
    report_.violation_report += oracle->report();
  }
  return report_;
}

}  // namespace securestore::testkit
