// ConsistencyOracle: the chaos harness's independent referee (DESIGN.md §9).
//
// Workloads report every operation they perform — write attempts, write
// acks, successful reads, and the post-chaos final reads — and the oracle
// checks the paper's client-centric guarantees online, independently of the
// client's own context bookkeeping:
//
//  * authenticity — a read only ever returns a value some correct workload
//    client actually wrote for that item, attributed to the right writer
//    (keyed by value content, so a write that timed out at the client but
//    still landed at servers stays legitimate);
//  * MRC — per (reader, item), observed timestamps never regress; a
//    client's own acked writes also become floors (read-your-writes);
//  * CC — accepting write w additionally floors every entry of w's writer
//    context, so later reads of other items cannot travel back in time
//    across the causality edge (Fig. 2's merge, re-derived outside the
//    client);
//  * durability — after faults heal and the system quiesces, a fresh
//    client's read of each item must return a timestamp at least as new as
//    the newest *acknowledged* write: no acked write is ever lost;
//  * shed-exclusivity — a write the system refused under overload
//    (`Error::kOverloaded`) was never ALSO acknowledged: shedding may cost
//    throughput but must never produce a double outcome, where the client
//    is told both "retry later" and "committed" for the same operation.
//
// Violations accumulate with timestamps and human-readable detail; tests
// assert `violations().empty()` and print `report()` on failure. `checks()`
// counts every individual assertion evaluated, so a soak can prove it was
// not vacuously green.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/context.h"
#include "core/timestamp.h"

namespace securestore::testkit {

class ConsistencyOracle {
 public:
  struct Violation {
    std::string check;   // "authenticity" | "mrc" | "cc" | "durability"
    std::string detail;  // human-readable evidence
    SimTime at = 0;      // virtual time the violating observation was made
  };

  /// `causal` switches on the CC check (writer-context floors); MRC and
  /// authenticity are always on.
  explicit ConsistencyOracle(bool causal) : causal_(causal) {}

  /// Call when a write is ISSUED, before its outcome is known: the value
  /// joins the authentic set immediately, because a write whose ack timed
  /// out at the client may still land at servers and be read later.
  void note_write_attempt(ClientId writer, ItemId item, BytesView value);

  /// Call when a write is ACKNOWLEDGED. `ts` is the timestamp the write
  /// landed under, `value` the bytes that were written (shed-exclusivity
  /// cross-check), and `writer_context` the writer's context right after the
  /// ack (its causal history including this write). Feeds the durability
  /// floor, the writer's own MRC floor, and the CC dependency map.
  void note_write_ok(ClientId writer, ItemId item, BytesView value, const core::Timestamp& ts,
                     const core::Context& writer_context, SimTime at);

  /// Call when a write failed with `Error::kOverloaded` — admission control
  /// refused it. Checks the same operation (identified by its unique value
  /// bytes) was not also acknowledged, now or earlier.
  void note_write_shed(ClientId writer, ItemId item, BytesView value, SimTime at);

  /// Call on every successful read. Runs the authenticity, MRC and (when
  /// causal) CC checks and advances the reader's floors.
  void note_read_ok(ClientId reader, ItemId item, const core::ReadOutput& output, SimTime at);

  /// Call with the post-chaos read of `item` by a fresh client (nullopt if
  /// that read failed). Checks the newest acked write was not lost.
  void note_final_read(ItemId item, const std::optional<core::ReadOutput>& output, SimTime at);

  /// Items that have at least one acknowledged write (the set note_final_read
  /// must cover).
  std::vector<ItemId> acked_items() const;

  std::uint64_t checks() const { return checks_; }
  std::uint64_t reads_checked() const { return reads_checked_; }
  std::uint64_t writes_shed() const { return writes_shed_; }
  const std::vector<Violation>& violations() const { return violations_; }
  /// All violations, one per line — empty string when clean.
  std::string report() const;

 private:
  void raise_floor(ClientId client, ItemId item, const core::Timestamp& ts);
  void violate(std::string check, std::string detail, SimTime at);

  bool causal_;
  std::uint64_t checks_ = 0;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writes_shed_ = 0;
  std::vector<Violation> violations_;

  // Authentic set: (item, value bytes) -> writer who produced it.
  std::map<std::pair<std::uint64_t, Bytes>, ClientId> authentic_;
  // Per-(client, item) MRC floors.
  std::map<std::pair<std::uint32_t, std::uint64_t>, core::Timestamp> floors_;
  // Per-item newest acknowledged timestamp (durability floor).
  std::map<std::uint64_t, core::Timestamp> acked_;
  // CC: (item, ts) -> the writer's context when that write was acked.
  std::map<std::pair<std::uint64_t, std::string>, core::Context> write_deps_;
  // Shed-exclusivity: per-op (item, value bytes) outcome sets. Values are
  // unique per operation (workloads embed a sequence number), so membership
  // in both sets means one op got two contradictory outcomes.
  std::set<std::pair<std::uint64_t, Bytes>> shed_values_;
  std::set<std::pair<std::uint64_t, Bytes>> acked_values_;
};

}  // namespace securestore::testkit
