// Strongly-typed identifiers used across the system.
//
// The paper's notation: S_i are servers, C_i are clients, uid(x_i) is the
// unique identifier of data item x_i. We give each its own type so that a
// server index can never be passed where an item uid is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace securestore {

/// Identifies a node (server or client) on the network/transport layer.
struct NodeId {
  std::uint32_t value = 0;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}
  auto operator<=>(const NodeId&) const = default;
};

/// Identifies a client principal (the paper's C_i / uid(C_i)). Client ids
/// appear inside multi-writer timestamps and are bound to signing keys.
struct ClientId {
  std::uint32_t value = 0;

  constexpr ClientId() = default;
  constexpr explicit ClientId(std::uint32_t v) : value(v) {}
  auto operator<=>(const ClientId&) const = default;
};

/// Unique identifier of a data item (the paper's uid(x_i)).
struct ItemId {
  std::uint64_t value = 0;

  constexpr ItemId() = default;
  constexpr explicit ItemId(std::uint64_t v) : value(v) {}
  auto operator<=>(const ItemId&) const = default;
};

/// Identifies a related group of data items (paper §4: consistency is only
/// required within a group). Contexts are maintained per group.
struct GroupId {
  std::uint64_t value = 0;

  constexpr GroupId() = default;
  constexpr explicit GroupId(std::uint64_t v) : value(v) {}
  auto operator<=>(const GroupId&) const = default;
};

std::string to_string(NodeId id);
std::string to_string(ClientId id);
std::string to_string(ItemId id);
std::string to_string(GroupId id);

}  // namespace securestore

template <>
struct std::hash<securestore::NodeId> {
  std::size_t operator()(const securestore::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
template <>
struct std::hash<securestore::ClientId> {
  std::size_t operator()(const securestore::ClientId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
template <>
struct std::hash<securestore::ItemId> {
  std::size_t operator()(const securestore::ItemId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
template <>
struct std::hash<securestore::GroupId> {
  std::size_t operator()(const securestore::GroupId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
