// Byte-buffer helpers shared by every module.
//
// The whole code base traffics in `Bytes` (a vector of octets): values stored
// in the secure store, serialized protocol messages, digests, signatures and
// keys. Helpers here convert to/from hex for logging and tests and provide
// constant-time comparison for secret material.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace securestore {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a byte buffer from a text string (no terminator included).
Bytes to_bytes(std::string_view text);

/// Interprets a byte buffer as text. Only sensible for buffers that were
/// produced from text in the first place.
std::string to_string(BytesView data);

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(BytesView data);

/// Parses lower- or upper-case hex. Throws std::invalid_argument on odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Concatenates any number of buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// Comparison that does not branch on the data; use for MACs/digests of
/// secret-bearing material. Returns true iff equal (length must match).
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace securestore
