#include "util/rng.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace securestore {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_in_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in_range: lo > hi");
  const std::uint64_t width = hi - lo;
  if (width == std::numeric_limits<std::uint64_t>::max()) return next_u64();
  return lo + next_below(width + 1);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::next_exponential: mean <= 0");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

void Rng::fill(Bytes& out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = next_u64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<std::uint8_t>(word >> (8 * k));
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t word = next_u64();
    for (int k = 0; i < out.size(); ++i, ++k) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * k));
    }
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

std::uint64_t system_entropy_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

}  // namespace securestore
