// Canonical binary serialization.
//
// All protocol messages, meta-data and signed payloads are serialized with
// these two classes. The encoding is deliberately simple and canonical
// (little-endian fixed-width integers, u32 length prefixes) because signed
// digests are computed over serialized bytes: two logically equal structures
// must serialize identically.
//
// `Writer` never fails. `Reader` throws `DecodeError` on malformed input —
// protocol code treats that as evidence of a corrupt or malicious message.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace securestore {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (use when length is fixed/known).
  void raw(BytesView data);
  /// u32 length prefix followed by the bytes.
  void bytes(BytesView data);
  /// u32 length prefix followed by UTF-8 bytes.
  void str(std::string_view s);

  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly n raw bytes.
  Bytes raw(std::size_t n);
  /// Reads a u32 length prefix then that many bytes.
  Bytes bytes();
  std::string str();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws DecodeError unless the entire input has been consumed. Call at
  /// the end of each message decoder to reject trailing garbage.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace securestore
