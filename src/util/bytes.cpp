#include "util/bytes.h"

#include <stdexcept>

namespace securestore {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(BytesView data) {
  return std::string(data.begin(), data.end());
}

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}

}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  Bytes out;
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace securestore
