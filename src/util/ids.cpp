#include "util/ids.h"

namespace securestore {

std::string to_string(NodeId id) { return "S" + std::to_string(id.value); }
std::string to_string(ClientId id) { return "C" + std::to_string(id.value); }
std::string to_string(ItemId id) { return "x" + std::to_string(id.value); }
std::string to_string(GroupId id) { return "G" + std::to_string(id.value); }

}  // namespace securestore
