#include "util/result.h"

namespace securestore {

const char* error_name(Error e) {
  switch (e) {
    case Error::kNone: return "ok";
    case Error::kTimeout: return "timeout";
    case Error::kInsufficientQuorum: return "insufficient-quorum";
    case Error::kStale: return "stale";
    case Error::kBadSignature: return "bad-signature";
    case Error::kNotFound: return "not-found";
    case Error::kUnauthorized: return "unauthorized";
    case Error::kFaultyWriter: return "faulty-writer";
    case Error::kNoAgreement: return "no-agreement";
    case Error::kInvalidArgument: return "invalid-argument";
    case Error::kWrongShard: return "wrong-shard";
    case Error::kOverloaded: return "overloaded";
  }
  return "unknown";
}

}  // namespace securestore
