#include "util/serial.h"

namespace securestore {

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::raw(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Writer::bytes(BytesView data) {
  if (data.size() > 0xffffffffULL) throw std::length_error("Writer::bytes: too large");
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

void Reader::expect_end() const {
  if (!at_end()) throw DecodeError("Reader: trailing bytes after message");
}

}  // namespace securestore
