// Simulated time.
//
// The discrete-event simulator advances a virtual clock measured in
// microseconds. All protocol timeouts and latency measurements use these
// types; nothing in the protocol stack reads the wall clock.
#pragma once

#include <cstdint>

namespace securestore {

/// Absolute simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time in microseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration microseconds(std::uint64_t us) { return us; }
constexpr SimDuration milliseconds(std::uint64_t ms) { return ms * 1000; }
constexpr SimDuration seconds(std::uint64_t s) { return s * 1000 * 1000; }

constexpr double to_milliseconds(SimDuration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace securestore
