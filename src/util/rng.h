// Deterministic random number generation.
//
// Every stochastic component (network latency sampling, gossip peer choice,
// fault injection, key generation in tests) draws from an explicitly seeded
// `Rng` so that simulations and tests are reproducible bit-for-bit. The
// engine is xoshiro256** seeded through splitmix64, which is the recommended
// seeding procedure from the xoshiro authors.
//
// This generator is NOT cryptographically secure. Production key generation
// would use an OS entropy source; the crypto layer accepts any `Rng`, and the
// `system_entropy_seed()` helper gives callers a non-deterministic seed when
// reproducibility is not wanted.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace securestore {

class Rng {
 public:
  /// Seeds the generator deterministically from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  std::uint64_t next_in_range(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// Fills `out` with random bytes.
  void fill(Bytes& out);

  /// Convenience: n fresh random bytes.
  Bytes bytes(std::size_t n);

  /// Forks an independent stream (e.g. one per simulated node) so that
  /// adding draws in one component does not perturb another.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// A seed derived from the OS entropy source, for callers that explicitly do
/// not want reproducibility (e.g. the example programs' key generation).
std::uint64_t system_entropy_seed();

}  // namespace securestore
