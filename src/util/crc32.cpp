#include "util/crc32.h"

#include <array>

namespace securestore {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? kPolynomial ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = build_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace securestore
