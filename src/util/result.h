// Expected-failure model for protocol operations.
//
// Protocol operations fail for reasons that are normal in a Byzantine,
// partially-available system: not enough servers responded, every returned
// value was stale relative to the client's context, a signature did not
// verify, the operation timed out. Those are *outcomes*, not bugs, so they
// are carried in a `Result<T>` rather than exceptions. Exceptions remain for
// programming errors and malformed input (`DecodeError`).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace securestore {

enum class Error {
  kNone = 0,
  kTimeout,             // not enough replies arrived before the deadline
  kInsufficientQuorum,  // fewer than quorum-many servers are even reachable
  kStale,               // every acceptable reply was older than the context
  kBadSignature,        // a required signature failed to verify
  kNotFound,            // no server knows the item / context
  kUnauthorized,        // authorization token rejected
  kFaultyWriter,        // multi-writer equivocation detected (same ts, two values)
  kNoAgreement,         // multi-writer read: no value matched in >= b+1 replies
  kInvalidArgument,     // caller error detected at the protocol boundary
  kWrongShard,          // server does not own the key's shard (stale ring)
  kOverloaded,          // server shed the request; retry after the hinted delay
};

/// Human-readable name for diagnostics.
const char* error_name(Error e);

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), error_(Error::kNone) {}  // NOLINT: implicit by design
  Result(Error error) : error_(error) { assert(error != Error::kNone); }  // NOLINT
  Result(Error error, std::string detail)
      : error_(error), detail_(std::move(detail)) {
    assert(error != Error::kNone);
  }

  bool ok() const { return error_ == Error::kNone; }
  explicit operator bool() const { return ok(); }

  Error error() const { return error_; }
  const std::string& detail() const { return detail_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value or a fallback, for tests and examples.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Error error_;
  std::string detail_;
};

/// Result for operations with no payload.
class [[nodiscard]] VoidResult {
 public:
  VoidResult() : error_(Error::kNone) {}
  VoidResult(Error error) : error_(error) {}  // NOLINT: implicit by design
  VoidResult(Error error, std::string detail)
      : error_(error), detail_(std::move(detail)) {}

  bool ok() const { return error_ == Error::kNone; }
  explicit operator bool() const { return ok(); }
  Error error() const { return error_; }
  const std::string& detail() const { return detail_; }

 private:
  Error error_;
  std::string detail_;
};

}  // namespace securestore
