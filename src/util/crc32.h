// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Frame checksums for the write-ahead log. This is not a cryptographic
// digest: WAL frames are guarded against *accidental* damage (torn writes,
// bit rot) by CRC, while tampering with durable state is caught by the
// snapshot SHA-256 and by the per-record signatures the server re-verifies
// when records are used.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace securestore {

/// CRC-32 of `data`. `seed` chains incremental computation the zlib way:
/// crc32(b, crc32(a)) == crc32(a·b). The empty input with seed 0 is 0.
std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

}  // namespace securestore
