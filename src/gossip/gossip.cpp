#include "gossip/gossip.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/serial.h"

namespace securestore::gossip {

GossipEngine::GossipEngine(net::RpcNode& node, const storage::StorageEngine& store,
                           std::vector<NodeId> peers, Config config, Rng rng, ApplyFn apply)
    : node_(node),
      store_(store),
      peers_(std::move(peers)),
      config_(config),
      rng_(std::move(rng)),
      apply_(std::move(apply)),
      rounds_(node.transport().registry().counter("gossip.rounds" + config.metric_suffix)),
      records_sent_(
          node.transport().registry().counter("gossip.records_sent" + config.metric_suffix)),
      records_received_(
          node.transport().registry().counter("gossip.records_received" + config.metric_suffix)),
      records_rejected_(
          node.transport().registry().counter("gossip.records_rejected" + config.metric_suffix)),
      malformed_dropped_(
          node.transport().registry().counter("gossip.malformed_dropped" + config.metric_suffix)),
      non_gossip_dropped_(node.transport().registry().counter("gossip.non_gossip_dropped" +
                                                              config.metric_suffix)),
      digest_entries_(
          node.transport().registry().histogram("gossip.digest_entries" + config.metric_suffix)),
      round_us_(node.transport().registry().histogram("gossip.round_us" + config.metric_suffix)),
      write_to_visible_us_(node.transport().registry().histogram("gossip.write_to_visible_us" +
                                                                 config.metric_suffix)),
      events_(node.transport().events()) {
  // A node never gossips with itself.
  std::erase(peers_, node_.id());
}

void GossipEngine::note_origin(const core::WriteRecord& record, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;
  auto [it, inserted] = origins_.try_emplace(record.item, Origin{record.ts, ctx});
  if (!inserted && it->second.ts < record.ts) it->second = Origin{record.ts, ctx};
}

obs::TraceContext GossipEngine::origin_of(const core::WriteRecord& record) const {
  const auto it = origins_.find(record.item);
  if (it == origins_.end() || !(it->second.ts == record.ts)) return {};
  return it->second.ctx;
}

GossipEngine::~GossipEngine() { *alive_ = false; }

void GossipEngine::start() {
  if (running_) return;
  running_ = true;
  const std::uint64_t generation = ++generation_;
  node_.transport().schedule(config_.period, [this, alive = alive_, generation] {
    if (*alive && running_ && generation == generation_) tick();
  });
}

void GossipEngine::stop() {
  running_ = false;
  ++generation_;
}

std::vector<NodeId> GossipEngine::pick_peers() {
  std::vector<NodeId> shuffled = peers_;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng_.next_below(i)]);
  }
  if (shuffled.size() > config_.fanout) shuffled.resize(config_.fanout);
  return shuffled;
}

void GossipEngine::tick() {
  ++ticks_;
  last_tick_at_ = node_.transport().now();
  rounds_.inc();
  // Wall time: building/serializing digests is real CPU work even when the
  // deployment runs on virtual time.
  const std::uint64_t start = obs::wall_now_us();
  const std::vector<NodeId> peers = pick_peers();
  for (const NodeId peer : peers) send_digest(peer);
  // Ring dissemination rides the anti-entropy cadence (DESIGN.md §11): the
  // signed ring is small and idempotent to install, so each tick re-offers
  // it to the same peers the digest went to.
  if (ring_supplier_) {
    const Bytes ring = ring_supplier_();
    if (!ring.empty()) {
      for (const NodeId peer : peers) {
        node_.send_oneway(peer, net::MsgType::kGossipRing, ring);
      }
    }
  }
  round_us_.observe(static_cast<double>(obs::wall_now_us() - start));

  const std::uint64_t generation = generation_;
  node_.transport().schedule(config_.period, [this, alive = alive_, generation] {
    if (*alive && running_ && generation == generation_) tick();
  });
}

void GossipEngine::send_digest(NodeId peer) {
  std::vector<DigestEntry> entries;
  // The digest never materializes a value: the engine's current-version
  // index is (item, ts, flags) metadata, resident even for the disk-backed
  // engine. The digest stays honest against storage rot because the engine
  // drops a version from that index once its frame fails to materialize —
  // otherwise we would advertise a timestamp we cannot serve and peers,
  // comparing equal, would never re-send the record.
  for (const storage::CurrentEntry& entry : store_.current_index()) {
    // Scattered fragments are pinned to their server (see RecordFlags).
    if (entry.flags & core::kScattered) continue;
    entries.push_back(DigestEntry{entry.item, entry.ts});
  }
  digest_entries_.observe(static_cast<double>(entries.size()));
  node_.send_oneway(peer, net::MsgType::kGossipDigest, encode_digest(entries));
}

void GossipEngine::push_record(const core::WriteRecord& record) {
  const Bytes updates = encode_updates({record});
  // A single-record push carries its origin context in the envelope too, so
  // the receiving server's verify/apply spans parent to the client write
  // that caused the push.
  const obs::TraceContext trace = origin_of(record);
  for (const NodeId peer : pick_peers()) {
    records_sent_.inc();
    node_.send_oneway(peer, net::MsgType::kGossipUpdates, updates, trace);
  }
}

void GossipEngine::handle(NodeId from, net::MsgType type, BytesView body) {
  try {
    switch (type) {
      case net::MsgType::kGossipDigest: {
        const std::vector<DigestEntry> remote = decode_digest(body);

        // Push: records where we are ahead of (or unknown to) the digest.
        std::vector<core::WriteRecord> to_send;
        std::vector<ItemId> remote_items;
        remote_items.reserve(remote.size());
        for (const DigestEntry& entry : remote) remote_items.push_back(entry.item);

        // Decide from the metadata index which items the peer is behind on;
        // only those get materialized (and copied before the next engine
        // call — see the StorageEngine::current pointer contract).
        for (const storage::CurrentEntry& entry : store_.current_index()) {
          if (entry.flags & core::kScattered) continue;
          const auto it = std::find(remote_items.begin(), remote_items.end(), entry.item);
          if (it != remote_items.end()) {
            const auto& remote_ts = remote[static_cast<std::size_t>(it - remote_items.begin())].ts;
            if (!(remote_ts < entry.ts)) continue;
          }
          if (const core::WriteRecord* record = store_.current(entry.item)) {
            to_send.push_back(*record);
          }
        }
        if (!to_send.empty()) {
          records_sent_.inc(to_send.size());
          node_.send_oneway(from, net::MsgType::kGossipUpdates, encode_updates(to_send));
        }

        // Pull: items where the digest is ahead of us.
        std::vector<ItemId> wanted;
        for (const DigestEntry& entry : remote) {
          const core::WriteRecord* mine = store_.current(entry.item);
          if (mine == nullptr || mine->ts < entry.ts) wanted.push_back(entry.item);
        }
        if (!wanted.empty()) {
          node_.send_oneway(from, net::MsgType::kGossipRequest, encode_request(wanted));
        }
        return;
      }
      case net::MsgType::kGossipRequest: {
        std::vector<core::WriteRecord> to_send;
        for (const ItemId item : decode_request(body)) {
          const core::WriteRecord* record = store_.current(item);
          if (record != nullptr && !(record->flags & core::kScattered)) {
            to_send.push_back(*record);
          }
        }
        if (!to_send.empty()) {
          records_sent_.inc(to_send.size());
          node_.send_oneway(from, net::MsgType::kGossipUpdates, encode_updates(to_send));
        }
        return;
      }
      case net::MsgType::kGossipUpdates: {
        const auto updates = decode_updates(body);
        // Multi-record messages go through the batch apply path when one is
        // installed, so the owner verifies all writer signatures as one
        // Ed25519 batch. The accounting below is identical either way.
        std::vector<bool> accepted;
        if (apply_batch_ && updates.size() > 1) {
          accepted = apply_batch_(updates, from);
          // A short result vector rejects the tail — never accept a record
          // the owner did not explicitly vouch for.
          accepted.resize(updates.size(), false);
        } else {
          accepted.reserve(updates.size());
          for (const auto& [record, ctx] : updates) accepted.push_back(apply_(record, from));
        }
        for (std::size_t i = 0; i < updates.size(); ++i) {
          const auto& [record, ctx] = updates[i];
          records_received_.inc();
          if (!accepted[i]) {
            records_rejected_.inc();
            continue;
          }
          // Carry the origin context onward for this record's future
          // hand-offs, and account the hand-off on the trace timeline.
          note_origin(record, ctx);
          if (events_.want(ctx)) {
            const auto now = static_cast<std::uint64_t>(node_.transport().now());
            events_.span(node_.id().value, ctx, "gossip.apply", "gossip", now, 0);
            if (now >= ctx.origin_us) {
              write_to_visible_us_.observe(static_cast<double>(now - ctx.origin_us));
            }
          }
        }
        return;
      }
      case net::MsgType::kGossipRing: {
        // Opaque to the engine; the owner's handler verifies the authority
        // signature before installing anything.
        if (on_ring_) on_ring_(from, body);
        return;
      }
      default:
        // Not a gossip message. Silently eating these would hide a peer
        // spraying the gossip port with protocol traffic, so count it.
        non_gossip_dropped_.inc();
        return;
    }
  } catch (const DecodeError&) {
    // Malformed gossip from a (possibly malicious) peer: drop, visibly.
    malformed_dropped_.inc();
  }
}

Bytes GossipEngine::encode_digest(const std::vector<DigestEntry>& entries) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const DigestEntry& entry : entries) {
    w.u64(entry.item.value);
    entry.ts.encode(w);
  }
  return w.take();
}

std::vector<GossipEngine::DigestEntry> GossipEngine::decode_digest(BytesView body) {
  Reader r(body);
  const std::uint32_t count = r.u32();
  std::vector<DigestEntry> entries;
  // No reserve: count is attacker-controlled (see decode_records).
  for (std::uint32_t i = 0; i < count; ++i) {
    DigestEntry entry;
    entry.item = ItemId{r.u64()};
    entry.ts = core::Timestamp::decode(r);
    entries.push_back(std::move(entry));
  }
  r.expect_end();
  return entries;
}

Bytes GossipEngine::encode_updates(const std::vector<core::WriteRecord>& records) const {
  // PROTOCOL.md §4: u32 count, then per record: the record itself followed
  // by `u8 has_ctx` and, when 1, the origin trace context.
  Writer w;
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const core::WriteRecord& record : records) {
    record.encode(w);
    const obs::TraceContext ctx = origin_of(record);
    if (ctx.valid()) {
      w.u8(1);
      ctx.encode(w);
    } else {
      w.u8(0);
    }
  }
  return w.take();
}

std::vector<std::pair<core::WriteRecord, obs::TraceContext>> GossipEngine::decode_updates(
    BytesView body) {
  Reader r(body);
  const std::uint32_t count = r.u32();
  std::vector<std::pair<core::WriteRecord, obs::TraceContext>> records;
  for (std::uint32_t i = 0; i < count; ++i) {
    core::WriteRecord record = core::WriteRecord::decode(r);
    obs::TraceContext ctx;
    const std::uint8_t has_ctx = r.u8();
    if (has_ctx > 1) throw DecodeError("gossip updates: bad ctx marker");
    if (has_ctx == 1) {
      ctx = obs::TraceContext::decode(r);
      // Same sanitation as the rpc envelope: the context is advisory and
      // the peer may be Byzantine — only the sampled bit survives, and a
      // zero trace id means "no context".
      ctx.flags &= obs::TraceContext::kSampledFlag;
    }
    records.emplace_back(std::move(record), ctx);
  }
  r.expect_end();
  return records;
}

Bytes GossipEngine::encode_request(const std::vector<ItemId>& items) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const ItemId item : items) w.u64(item.value);
  return w.take();
}

std::vector<ItemId> GossipEngine::decode_request(BytesView body) {
  Reader r(body);
  const std::uint32_t count = r.u32();
  std::vector<ItemId> items;
  for (std::uint32_t i = 0; i < count; ++i) items.push_back(ItemId{r.u64()});
  r.expect_end();
  return items;
}

}  // namespace securestore::gossip
