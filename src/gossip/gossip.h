// Epidemic dissemination between servers (§4, §5.2).
//
// "We assume that servers keep themselves informed about updates in which
// they do not directly participate via a gossip or dissemination protocol
// [Demers et al.]. A non-faulty server transmits all the updates it has
// seen to at least one other non-faulty server."
//
// This engine implements periodic anti-entropy: every `period`, a server
// picks `fanout` random peers and sends each a digest of its current
// (item, timestamp) pairs. The peer pushes back records the digest is
// missing or behind on, and pulls records the digest is ahead on. All
// received records pass through the owner's apply callback, which verifies
// the writer's signature — "a faulty server cannot propagate a non-existent
// or forged write to other servers since all writes that are propagated
// have to be accompanied by the signature of the client" (§4).
//
// The tick period is the knob experiment E5 sweeps: it trades server
// bandwidth for read freshness, "a frequency that can be tuned according to
// the needs of the clients or the resources available to the servers"
// (§5.2).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/record.h"
#include "net/rpc.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "storage/engine.h"
#include "util/rng.h"

namespace securestore::gossip {

class GossipEngine {
 public:
  struct Config {
    SimDuration period = milliseconds(500);
    unsigned fanout = 1;
    /// Also push each locally-applied client write immediately to `fanout`
    /// peers (rumor mongering), instead of waiting for the next tick.
    bool push_on_write = false;
    /// Appended verbatim to every metric name (e.g. "{shard=2}") so several
    /// replica groups sharing one registry stay distinguishable.
    std::string metric_suffix;
  };

  /// Applies an incoming record to the owner's store: verify writer
  /// signature, run causal-hold logic, etc. Returns true if the record was
  /// accepted (valid signature), false if rejected.
  using ApplyFn = std::function<bool(const core::WriteRecord& record, NodeId from)>;

  /// Batch variant: applies every record of one kGossipUpdates message in a
  /// single call so the owner can verify the writer signatures as one
  /// Ed25519 batch. Returns one accepted/rejected flag per record,
  /// index-aligned with the input.
  using ApplyBatchFn = std::function<std::vector<bool>(
      const std::vector<std::pair<core::WriteRecord, obs::TraceContext>>& records, NodeId from)>;

  GossipEngine(net::RpcNode& node, const storage::StorageEngine& store,
               std::vector<NodeId> peers, Config config, Rng rng, ApplyFn apply);
  ~GossipEngine();

  GossipEngine(const GossipEngine&) = delete;
  GossipEngine& operator=(const GossipEngine&) = delete;

  /// Begins periodic ticking. Idempotent.
  void start();
  /// Stops future ticks (in-flight messages still deliver).
  void stop();
  bool running() const { return running_; }

  /// Optional: installs the batch apply path. Multi-record kGossipUpdates
  /// messages then go through `apply_batch` instead of per-record
  /// `apply_`; single-record messages keep using `apply_` (a batch of one
  /// amortizes nothing).
  void set_apply_batch(ApplyBatchFn apply_batch) { apply_batch_ = std::move(apply_batch); }

  /// Sharded deployments (DESIGN.md §11): when set, every tick also offers
  /// the supplier's serialized signed ring state to the tick's peers as a
  /// kGossipRing one-way (empty bytes = nothing to offer), and incoming
  /// kGossipRing messages are handed to `on_ring`. The engine treats the
  /// bytes as opaque; verification belongs to the owner's install path.
  using RingSupplier = std::function<Bytes()>;
  using RingHandler = std::function<void(NodeId from, BytesView body)>;
  void set_ring_hooks(RingSupplier supplier, RingHandler on_ring) {
    ring_supplier_ = std::move(supplier);
    on_ring_ = std::move(on_ring);
  }

  /// Handles gossip one-way messages; the owning server routes
  /// kGossipDigest/kGossipUpdates/kGossipRequest/kGossipRing here.
  void handle(NodeId from, net::MsgType type, BytesView body);

  /// Rumor-mongering hook: owner calls this right after applying a fresh
  /// client write when push_on_write is on.
  void push_record(const core::WriteRecord& record);

  /// Remembers the trace context under which `record` became visible here,
  /// so gossip hand-offs of that record carry the originating operation's
  /// context onward (and receivers can measure write-to-visible lag).
  /// No-op for invalid contexts; newest timestamp per item wins.
  void note_origin(const core::WriteRecord& record, const obs::TraceContext& ctx);

  const Config& config() const { return config_; }
  std::uint64_t ticks() const { return ticks_; }
  /// Transport-clock time of the most recent anti-entropy tick (0 before
  /// the first). The introspection endpoint derives gossip staleness from
  /// it (PROTOCOL.md §13).
  SimTime last_tick_at() const { return last_tick_at_; }

 private:
  struct DigestEntry {
    ItemId item{};
    core::Timestamp ts;
  };

  void tick();
  void send_digest(NodeId peer);
  std::vector<NodeId> pick_peers();

  static Bytes encode_digest(const std::vector<DigestEntry>& entries);
  static std::vector<DigestEntry> decode_digest(BytesView body);
  /// Member (not static): each record is suffixed with its origin trace
  /// context from `origins_`, when one is known.
  Bytes encode_updates(const std::vector<core::WriteRecord>& records) const;
  static std::vector<std::pair<core::WriteRecord, obs::TraceContext>> decode_updates(
      BytesView body);
  static Bytes encode_request(const std::vector<ItemId>& items);
  static std::vector<ItemId> decode_request(BytesView body);

  /// The context to attach to `record` on the wire; invalid when unknown.
  obs::TraceContext origin_of(const core::WriteRecord& record) const;

  net::RpcNode& node_;
  const storage::StorageEngine& store_;
  std::vector<NodeId> peers_;
  Config config_;
  Rng rng_;
  ApplyFn apply_;
  ApplyBatchFn apply_batch_;
  RingSupplier ring_supplier_;
  RingHandler on_ring_;
  // Anti-entropy accounting (handles into the transport's registry).
  obs::Counter& rounds_;
  obs::Counter& records_sent_;
  obs::Counter& records_received_;
  obs::Counter& records_rejected_;
  obs::Counter& malformed_dropped_;
  obs::Counter& non_gossip_dropped_;
  obs::Histogram& digest_entries_;
  obs::Histogram& round_us_;  // wall time per anti-entropy round
  /// Transport-clock lag from a write's root-span origin to the moment it
  /// became visible HERE via gossip. Only meaningful where the nodes share
  /// a transport clock (sim/thread; TCP processes have distinct epochs).
  obs::Histogram& write_to_visible_us_;
  obs::EventLog& events_;
  /// Per item: the trace context of the newest write seen, carried onward
  /// with gossip hand-offs. Bounded by the number of distinct items.
  struct Origin {
    core::Timestamp ts;
    obs::TraceContext ctx;
  };
  std::unordered_map<ItemId, Origin> origins_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  SimTime last_tick_at_ = 0;
  std::uint64_t generation_ = 0;  // invalidates scheduled ticks after stop()
  // Scheduled tick callbacks outlive arbitrary engine lifetimes (server
  // restarts); they hold this flag and bail out once the engine is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace securestore::gossip
