// X25519 Diffie–Hellman (RFC 7748), implemented from scratch on the shared
// curve25519 field arithmetic.
//
// Used by the group-key distribution module (core/group_key.h): the writer
// derives a pairwise secret with each authorized reader and wraps the
// group's data key under it — the "key distribution and management schemes
// similar to those discussed in secure multicast communication [16]" the
// paper defers to. Validated against the RFC 7748 test vectors.
#pragma once

#include "util/bytes.h"
#include "util/rng.h"

namespace securestore::crypto {

constexpr std::size_t kX25519KeySize = 32;

/// The raw X25519 function: scalar * u-coordinate (Montgomery ladder).
Bytes x25519(BytesView scalar, BytesView u_coordinate);

/// Public key for a 32-byte private scalar: X25519(scalar, 9).
Bytes x25519_public_key(BytesView private_scalar);

/// A fresh DH key pair.
struct DhKeyPair {
  Bytes private_scalar;
  Bytes public_key;

  static DhKeyPair generate(Rng& rng);
};

/// The shared secret between `own_private` and `peer_public`.
/// Throws std::invalid_argument if the result is all-zero (low-order peer
/// point — always a protocol violation in this system).
Bytes x25519_shared_secret(BytesView own_private, BytesView peer_public);

}  // namespace securestore::crypto
