// Field arithmetic mod p = 2^255 - 19 (internal).
//
// Shared by Ed25519 (signatures) and X25519 (Diffie–Hellman): five 51-bit
// limbs, unsigned __int128 accumulators, re-normalized after every
// operation so limb bounds stay trivially safe. Not constant-time (see the
// note in ed25519.h).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace securestore::crypto::fe25519 {

struct Fe {
  std::uint64_t v[5];
};

inline constexpr Fe kZero = {{0, 0, 0, 0, 0}};
inline constexpr Fe kOne = {{1, 0, 0, 0, 0}};

/// Normalizes limbs to < 2^51 (+ fold through the 19-multiple).
void carry(Fe& h);

/// Little-endian 32-byte load; bit 255 is ignored.
Fe from_bytes(const std::uint8_t s[32]);

/// Canonical little-endian 32-byte store (fully reduced mod p).
void to_bytes(std::uint8_t s[32], const Fe& f);

Fe add(const Fe& a, const Fe& b);
Fe sub(const Fe& a, const Fe& b);
Fe neg(const Fe& a);
Fe mul(const Fe& a, const Fe& b);
Fe sq(const Fe& a);
/// a^(2^n) by repeated squaring.
Fe sqn(Fe a, int n);
/// Multiplies by a small scalar (< 2^13, e.g. X25519's a24 = 121666).
Fe mul_small(const Fe& a, std::uint64_t small);
/// a^(p-2) = a^-1.
Fe invert(const Fe& a);
/// a^((p-5)/8), for square roots in point decompression.
Fe pow22523(const Fe& a);

bool is_zero(const Fe& a);
bool is_negative(const Fe& a);
bool equal(const Fe& a, const Fe& b);

}  // namespace securestore::crypto::fe25519
