#include "crypto/shamir.h"

#include <stdexcept>

#include "crypto/gf256.h"

namespace securestore::crypto {

std::vector<ShamirShare> shamir_split(BytesView secret, unsigned k, unsigned n, Rng& rng) {
  if (k < 1 || k > n || n > 255) {
    throw std::invalid_argument("shamir_split: need 1 <= k <= n <= 255");
  }

  std::vector<ShamirShare> shares(n);
  for (unsigned i = 0; i < n; ++i) {
    shares[i].index = static_cast<std::uint8_t>(i + 1);
    shares[i].data.resize(secret.size());
  }

  std::vector<std::uint8_t> coefficients(k);
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    coefficients[0] = secret[byte];
    for (unsigned j = 1; j < k; ++j) {
      coefficients[j] = static_cast<std::uint8_t>(rng.next_u64());
    }
    for (unsigned i = 0; i < n; ++i) {
      shares[i].data[byte] = gf256::poly_eval(coefficients, shares[i].index);
    }
  }
  return shares;
}

std::vector<ShamirShare> shamir_refresh(std::span<const ShamirShare> shares, unsigned k,
                                        Rng& rng) {
  if (shares.empty() || k == 0 || k > shares.size()) {
    throw std::invalid_argument("shamir_refresh: bad share set");
  }
  const std::size_t length = shares[0].data.size();
  for (const ShamirShare& share : shares) {
    if (share.data.size() != length) {
      throw std::invalid_argument("shamir_refresh: share length mismatch");
    }
  }

  // A fresh random degree-(k-1) polynomial with zero constant term,
  // evaluated at each share's x and added in: the joint polynomial still
  // passes through (0, secret) but every other point moves.
  std::vector<ShamirShare> refreshed(shares.begin(), shares.end());
  std::vector<std::uint8_t> zero_poly(k);
  for (std::size_t byte = 0; byte < length; ++byte) {
    zero_poly[0] = 0;
    for (unsigned j = 1; j < k; ++j) zero_poly[j] = static_cast<std::uint8_t>(rng.next_u64());
    for (ShamirShare& share : refreshed) {
      share.data[byte] = gf256::add(share.data[byte],
                                    gf256::poly_eval(zero_poly, share.index));
    }
  }
  return refreshed;
}

Bytes shamir_combine(std::span<const ShamirShare> shares, unsigned k) {
  if (shares.size() < k || k == 0) {
    throw std::invalid_argument("shamir_combine: not enough shares");
  }

  std::vector<std::uint8_t> xs(k);
  for (unsigned i = 0; i < k; ++i) {
    xs[i] = shares[i].index;
    if (xs[i] == 0) throw std::invalid_argument("shamir_combine: share index 0");
    for (unsigned j = 0; j < i; ++j) {
      if (xs[j] == xs[i]) throw std::invalid_argument("shamir_combine: duplicate share index");
    }
    if (shares[i].data.size() != shares[0].data.size()) {
      throw std::invalid_argument("shamir_combine: share length mismatch");
    }
  }

  const std::size_t length = shares[0].data.size();
  Bytes secret(length);
  std::vector<std::uint8_t> ys(k);
  for (std::size_t byte = 0; byte < length; ++byte) {
    for (unsigned i = 0; i < k; ++i) ys[i] = shares[i].data[byte];
    secret[byte] = gf256::interpolate(xs, ys, 0);
  }
  return secret;
}

}  // namespace securestore::crypto
