// Ed25519 signatures (RFC 8032), implemented from scratch.
//
// These are the paper's client signatures {data}_{K_i^{-1}}: every write
// record, context and dissemination message carries one, which is the
// mechanism that reduces quorum sizes to b+1 (a malicious server cannot
// forge, only omit or replay old-but-valid records).
//
// Implementation notes
//  * field arithmetic mod p = 2^255 - 19 with five 51-bit limbs and
//    unsigned __int128 accumulators; every operation re-normalizes so limb
//    bounds stay trivially safe (favoring obvious correctness over the last
//    20% of speed),
//  * group operations in extended twisted-Edwards coordinates
//    (Hisil-Wong-Carter-Dawson 2008 formulas, a = -1),
//  * scalar arithmetic mod the group order L via a fixed-width 512-bit
//    integer with shift-subtract reduction,
//  * validated against the RFC 8032 test vectors in tests/ed25519_test.cpp.
//
// This implementation does not attempt to be constant-time: the repository
// reproduces a protocol evaluation, not a hardened TLS stack, and timing
// side channels are outside the paper's threat model (§4 assumes secure
// channels and sound cryptography).
#pragma once

#include "util/bytes.h"

namespace securestore::crypto {

constexpr std::size_t kEd25519SeedSize = 32;
constexpr std::size_t kEd25519PublicKeySize = 32;
constexpr std::size_t kEd25519SignatureSize = 64;

/// Derives the 32-byte public key from a 32-byte secret seed.
Bytes ed25519_public_key(BytesView seed);

/// Signs `message` with the key derived from `seed`; returns 64 bytes (R||S).
Bytes ed25519_sign(BytesView seed, BytesView message);

/// Verifies `signature` over `message` under `public_key`.
/// Returns false for malformed points/scalars as well as wrong signatures.
bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature);

}  // namespace securestore::crypto
