// Batched Ed25519 verification.
//
// The server hot path is CPU-bound on per-message signature checks: one
// ed25519_verify costs two full 256-bit scalar multiplications (512 point
// doublings + ~256 additions). Batch verification amortizes the doublings:
// draw one small random coefficient z_i per signature and check the single
// combined equation
//
//   [sum z_i * S_i] B  ==  sum [z_i] R_i  +  sum [z_i * k_i] A_i
//
// with ONE interleaved multi-scalar multiplication whose 256 doublings are
// shared by every term (Straus' trick). Per signature that leaves roughly
// one 128-bit and one 256-bit addition chain (~190 point additions), so a
// batch of 16+ verifies ~3-4x faster than one-at-a-time.
//
// Failure isolation: if the combined equation fails — one bad signature
// poisons the sum — every item is re-checked individually with
// ed25519_verify, so a Byzantine writer slipping a bad signature into a
// batch costs the server one wasted pass but never rejects (or accepts)
// an honest request. A batch that passes accepts every item.
//
// Coefficients are derived deterministically (Fiat-Shamir style) by hashing
// the whole batch, so verification is reproducible across runs and nodes —
// the deterministic simulator and the chaos replay assertion depend on
// that. Forging a batch that cancels requires choosing signatures whose
// defects are orthogonal to coefficients that depend on those very
// signatures, i.e. breaking the hash. Coefficients are forced odd so a
// single small-torsion defect (an already-malleable signature only its own
// author can produce) can never vanish mod the cofactor; see DESIGN.md for
// the residual batch-vs-single divergence rule.
#pragma once

#include <vector>

#include "util/bytes.h"

namespace securestore::crypto {

/// One signature to check. Views must stay valid for the duration of the
/// ed25519_batch_verify call; the caller owns the backing bytes.
struct BatchVerifyItem {
  BytesView public_key;  // 32 bytes
  BytesView message;
  BytesView signature;  // 64 bytes (R || S)
};

struct BatchVerifyResult {
  /// Per-item verdict, index-aligned with the input.
  std::vector<bool> valid;
  /// True iff every item verified.
  bool all_valid = false;
  /// True when the combined equation failed and items were re-checked
  /// one-by-one (at least one item is then invalid).
  bool used_fallback = false;
};

/// Verifies a batch of Ed25519 signatures. Agrees with ed25519_verify on
/// every item (malformed keys/points/scalars included); an empty batch is
/// trivially all-valid. Each checked signature is metered as one verify on
/// the CryptoMeter, same as the single-signature path.
BatchVerifyResult ed25519_batch_verify(const std::vector<BatchVerifyItem>& items);

}  // namespace securestore::crypto
