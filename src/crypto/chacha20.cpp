#include "crypto/chacha20.h"

#include <cstring>
#include <stdexcept>

namespace securestore::crypto {

namespace {

std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void store32_le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t rotl32(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store32_le(out + 4 * i, x[i] + state[i]);
}

void init_state(std::uint32_t state[16], BytesView key, BytesView nonce,
                std::uint32_t counter) {
  if (key.size() != kChaChaKeySize) throw std::invalid_argument("chacha20: key must be 32 bytes");
  if (nonce.size() != kChaChaNonceSize) throw std::invalid_argument("chacha20: nonce must be 12 bytes");
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32_le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32_le(nonce.data() + 4 * i);
}

}  // namespace

Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter, BytesView input) {
  std::uint32_t state[16];
  init_state(state, key, nonce, counter);

  Bytes out(input.size());
  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < input.size()) {
    chacha20_block(state, keystream);
    ++state[12];
    const std::size_t take = std::min<std::size_t>(64, input.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] = input[offset + i] ^ keystream[i];
    offset += take;
  }
  return out;
}

std::array<std::uint8_t, kPolyTagSize> poly1305(BytesView key, BytesView message) {
  if (key.size() != 32) throw std::invalid_argument("poly1305: key must be 32 bytes");

  // r is clamped per RFC 8439 §2.5.1; arithmetic is mod 2^130 - 5 using
  // five 26-bit limbs with 64-bit accumulators.
  std::uint32_t r0 = load32_le(key.data()) & 0x3ffffff;
  std::uint32_t r1 = (load32_le(key.data() + 3) >> 2) & 0x3ffff03;
  std::uint32_t r2 = (load32_le(key.data() + 6) >> 4) & 0x3ffc0ff;
  std::uint32_t r3 = (load32_le(key.data() + 9) >> 6) & 0x3f03fff;
  std::uint32_t r4 = (load32_le(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  while (offset < message.size()) {
    std::uint8_t block[17] = {0};
    const std::size_t take = std::min<std::size_t>(16, message.size() - offset);
    std::memcpy(block, message.data() + offset, take);
    block[take] = 1;  // the "append 0x01" step; implicit high bit for full blocks
    offset += take;

    h0 += load32_le(block) & 0x3ffffff;
    h1 += (load32_le(block + 3) >> 2) & 0x3ffffff;
    h2 += (load32_le(block + 6) >> 4) & 0x3ffffff;
    h3 += (load32_le(block + 9) >> 6) & 0x3ffffff;
    h4 += (load32_le(block + 12) >> 8) | (static_cast<std::uint32_t>(block[16]) << 24);

    const std::uint64_t d0 = static_cast<std::uint64_t>(h0) * r0 + static_cast<std::uint64_t>(h1) * s4 +
                             static_cast<std::uint64_t>(h2) * s3 + static_cast<std::uint64_t>(h3) * s2 +
                             static_cast<std::uint64_t>(h4) * s1;
    const std::uint64_t d1 = static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
                             static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
                             static_cast<std::uint64_t>(h4) * s2;
    const std::uint64_t d2 = static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
                             static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
                             static_cast<std::uint64_t>(h4) * s3;
    const std::uint64_t d3 = static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
                             static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
                             static_cast<std::uint64_t>(h4) * s4;
    const std::uint64_t d4 = static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
                             static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
                             static_cast<std::uint64_t>(h4) * r0;

    std::uint64_t carry;
    carry = d0 >> 26; h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    const std::uint64_t e1 = d1 + carry;
    carry = e1 >> 26; h1 = static_cast<std::uint32_t>(e1) & 0x3ffffff;
    const std::uint64_t e2 = d2 + carry;
    carry = e2 >> 26; h2 = static_cast<std::uint32_t>(e2) & 0x3ffffff;
    const std::uint64_t e3 = d3 + carry;
    carry = e3 >> 26; h3 = static_cast<std::uint32_t>(e3) & 0x3ffffff;
    const std::uint64_t e4 = d4 + carry;
    carry = e4 >> 26; h4 = static_cast<std::uint32_t>(e4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(carry) * 5;
    h1 += h0 >> 26; h0 &= 0x3ffffff;
  }

  // Full carry propagation, then reduce mod 2^130-5.
  std::uint32_t carry;
  carry = h1 >> 26; h1 &= 0x3ffffff; h2 += carry;
  carry = h2 >> 26; h2 &= 0x3ffffff; h3 += carry;
  carry = h3 >> 26; h3 &= 0x3ffffff; h4 += carry;
  carry = h4 >> 26; h4 &= 0x3ffffff; h0 += carry * 5;
  carry = h0 >> 26; h0 &= 0x3ffffff; h1 += carry;

  // Compute h + -p and select it if h >= p.
  std::uint32_t g0 = h0 + 5;
  carry = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + carry;
  carry = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + carry;
  carry = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + carry;
  carry = g3 >> 26; g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + carry - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Repack the 26-bit limbs into four 32-bit words (masking: the bits above
  // 32 in each packed word are exactly the bits the next word starts with),
  // then h = h + s (mod 2^128) where s is the second half of the key.
  const std::uint32_t w0 = h0 | (h1 << 26);
  const std::uint32_t w1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t w2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t w3 = (h3 >> 18) | (h4 << 8);
  std::uint64_t f0 = static_cast<std::uint64_t>(w0) + load32_le(key.data() + 16);
  std::uint64_t f1 = static_cast<std::uint64_t>(w1) + load32_le(key.data() + 20) + (f0 >> 32);
  std::uint64_t f2 = static_cast<std::uint64_t>(w2) + load32_le(key.data() + 24) + (f1 >> 32);
  std::uint64_t f3 = static_cast<std::uint64_t>(w3) + load32_le(key.data() + 28) + (f2 >> 32);

  std::array<std::uint8_t, kPolyTagSize> tag;
  store32_le(tag.data(), static_cast<std::uint32_t>(f0));
  store32_le(tag.data() + 4, static_cast<std::uint32_t>(f1));
  store32_le(tag.data() + 8, static_cast<std::uint32_t>(f2));
  store32_le(tag.data() + 12, static_cast<std::uint32_t>(f3));
  return tag;
}

namespace {

// Builds the Poly1305 input for AEAD per RFC 8439 §2.8: aad || pad || ct ||
// pad || len(aad) || len(ct).
Bytes aead_mac_data(BytesView aad, BytesView ciphertext) {
  Bytes mac_data(aad.begin(), aad.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  mac_data.insert(mac_data.end(), ciphertext.begin(), ciphertext.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  std::uint8_t lengths[16];
  store32_le(lengths, static_cast<std::uint32_t>(aad.size()));
  store32_le(lengths + 4, static_cast<std::uint32_t>(aad.size() >> 32));
  store32_le(lengths + 8, static_cast<std::uint32_t>(ciphertext.size()));
  store32_le(lengths + 12, static_cast<std::uint32_t>(ciphertext.size() >> 32));
  mac_data.insert(mac_data.end(), lengths, lengths + 16);
  return mac_data;
}

Bytes poly_key(BytesView key, BytesView nonce) {
  const Bytes zeros(32, 0);
  return chacha20_xor(key, nonce, 0, zeros);
}

}  // namespace

Bytes aead_seal(BytesView key, BytesView nonce, BytesView aad, BytesView plaintext) {
  Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  const Bytes otk = poly_key(key, nonce);
  const auto tag = poly1305(otk, aead_mac_data(aad, ciphertext));
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

std::optional<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                               BytesView ciphertext_and_tag) {
  if (ciphertext_and_tag.size() < kPolyTagSize) return std::nullopt;
  const BytesView ciphertext = ciphertext_and_tag.first(ciphertext_and_tag.size() - kPolyTagSize);
  const BytesView tag = ciphertext_and_tag.last(kPolyTagSize);
  const Bytes otk = poly_key(key, nonce);
  const auto expected = poly1305(otk, aead_mac_data(aad, ciphertext));
  if (!constant_time_equal(BytesView(expected.data(), expected.size()), tag)) return std::nullopt;
  return chacha20_xor(key, nonce, 1, ciphertext);
}

}  // namespace securestore::crypto
