#include "crypto/multisig.h"

#include <algorithm>

#include "crypto/keys.h"
#include "util/serial.h"

namespace securestore::crypto {

void MultisigCertificate::add_share(NodeId signer, Bytes signature) {
  const bool exists = std::any_of(shares_.begin(), shares_.end(),
                                  [&](const MultisigShare& s) { return s.signer == signer; });
  if (!exists) shares_.push_back(MultisigShare{signer, std::move(signature)});
}

std::size_t MultisigCertificate::count_valid(
    const std::unordered_map<NodeId, Bytes>& keys) const {
  std::size_t valid = 0;
  for (const MultisigShare& share : shares_) {
    const auto it = keys.find(share.signer);
    if (it == keys.end()) continue;
    if (meter_verify(it->second, statement_, share.signature)) ++valid;
  }
  return valid;
}

bool MultisigCertificate::satisfies(std::size_t threshold,
                                    const std::unordered_map<NodeId, Bytes>& keys) const {
  return count_valid(keys) >= threshold;
}

Bytes MultisigCertificate::serialize() const {
  Writer w;
  w.bytes(statement_);
  w.u32(static_cast<std::uint32_t>(shares_.size()));
  for (const MultisigShare& share : shares_) {
    w.u32(share.signer.value);
    w.bytes(share.signature);
  }
  return w.take();
}

MultisigCertificate MultisigCertificate::deserialize(BytesView data) {
  Reader r(data);
  MultisigCertificate cert(r.bytes());
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId signer{r.u32()};
    cert.add_share(signer, r.bytes());
  }
  r.expect_end();
  return cert;
}

}  // namespace securestore::crypto
