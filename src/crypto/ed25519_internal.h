// Ed25519 internals shared between single verify (ed25519.cpp) and batch
// verify (ed25519_batch.cpp).
//
// Everything here used to live in an anonymous namespace inside ed25519.cpp;
// it is hoisted into this header-only internal namespace so the batch
// verifier can reuse the exact same field/group/scalar arithmetic — batch
// and single verification must agree bit-for-bit on what a valid point or
// canonical scalar is, and the only way to guarantee that is to share the
// code. Not part of the public crypto API: include only from crypto/*.cpp
// and crypto tests.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/sha2.h"
#include "util/bytes.h"

namespace securestore::crypto::ed25519_internal {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---------------------------------------------------------------------------
// Field arithmetic: shared 51-bit-limb implementation in crypto/fe25519.h;
// thin aliases keep the group code readable.
// ---------------------------------------------------------------------------

using Fe = fe25519::Fe;

constexpr Fe kFeZero = fe25519::kZero;
constexpr Fe kFeOne = fe25519::kOne;

inline Fe fe_from_bytes(const std::uint8_t s[32]) { return fe25519::from_bytes(s); }
inline void fe_to_bytes(std::uint8_t s[32], const Fe& f) { fe25519::to_bytes(s, f); }
inline Fe fe_add(const Fe& a, const Fe& b) { return fe25519::add(a, b); }
inline Fe fe_sub(const Fe& a, const Fe& b) { return fe25519::sub(a, b); }
inline Fe fe_neg(const Fe& a) { return fe25519::neg(a); }
inline Fe fe_mul(const Fe& a, const Fe& b) { return fe25519::mul(a, b); }
inline Fe fe_sq(const Fe& a) { return fe25519::sq(a); }
inline bool fe_is_zero(const Fe& a) { return fe25519::is_zero(a); }
inline bool fe_equal(const Fe& a, const Fe& b) { return fe25519::equal(a, b); }
inline bool fe_is_negative(const Fe& a) { return fe25519::is_negative(a); }
inline Fe fe_invert(const Fe& a) { return fe25519::invert(a); }
inline Fe fe_pow22523(const Fe& a) { return fe25519::pow22523(a); }

// Curve constants as canonical little-endian bytes (RFC 8032):
// d = -121665/121666 mod p, and sqrt(-1) mod p.
constexpr std::uint8_t kDBytes[32] = {
    0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75, 0xab, 0xd8, 0x41,
    0x41, 0x4d, 0x0a, 0x70, 0x00, 0x98, 0xe8, 0x79, 0x77, 0x79, 0x40,
    0xc7, 0x8c, 0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52};
constexpr std::uint8_t kSqrtM1Bytes[32] = {
    0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f,
    0xad, 0x06, 0x18, 0x43, 0x2f, 0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00,
    0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b};

inline const Fe& fe_d() {
  static const Fe d = fe_from_bytes(kDBytes);
  return d;
}

inline const Fe& fe_2d() {
  static const Fe two_d = fe_add(fe_d(), fe_d());
  return two_d;
}

inline const Fe& fe_sqrtm1() {
  static const Fe s = fe_from_bytes(kSqrtM1Bytes);
  return s;
}

// ---------------------------------------------------------------------------
// Group operations: extended twisted-Edwards coordinates (X:Y:Z:T), a = -1.
// ---------------------------------------------------------------------------

struct Ge {
  Fe x, y, z, t;
};

inline Ge ge_identity() { return Ge{kFeZero, kFeOne, kFeOne, kFeZero}; }

/// Unified addition (add-2008-hwcd-3 structure, complete for Ed25519).
inline Ge ge_add(const Ge& p, const Ge& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, fe_2d()), q.t);
  const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

/// Doubling (dbl-2008-hwcd).
inline Ge ge_double(const Ge& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_add(fe_sq(p.z), fe_sq(p.z));
  const Fe d = fe_neg(a);  // a = -1 curve parameter
  const Fe e = fe_sub(fe_sub(fe_sq(fe_add(p.x, p.y)), a), b);
  const Fe g = fe_add(d, b);
  const Fe f = fe_sub(g, c);
  const Fe h = fe_sub(d, b);
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

inline Ge ge_neg(const Ge& p) { return Ge{fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

/// Scalar multiplication, plain MSB-first double-and-add. `scalar` is 32
/// little-endian bytes.
inline Ge ge_scalar_mul(const Ge& p, const std::uint8_t scalar[32]) {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_double(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

inline void ge_compress(std::uint8_t out[32], const Ge& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  fe_to_bytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

/// True iff p is the group identity (projective check, no inversion):
/// identity has X = 0 and Y = Z.
inline bool ge_is_identity(const Ge& p) {
  return fe_is_zero(p.x) && fe_equal(p.y, p.z);
}

/// Decompresses a point; returns false if the encoding is not on the curve.
inline bool ge_decompress(Ge& out, const std::uint8_t in[32]) {
  std::uint8_t y_bytes[32];
  std::memcpy(y_bytes, in, 32);
  const bool sign = (y_bytes[31] & 0x80) != 0;
  y_bytes[31] &= 0x7f;

  const Fe y = fe_from_bytes(y_bytes);
  // Reject non-canonical y (>= p). fe_from_bytes reduces silently, so
  // re-serialize and compare.
  std::uint8_t canonical[32];
  fe_to_bytes(canonical, y);
  if (std::memcmp(canonical, y_bytes, 32) != 0) return false;

  // x^2 = (y^2 - 1) / (d*y^2 + 1)
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, kFeOne);
  const Fe v = fe_add(fe_mul(fe_d(), y2), kFeOne);

  // x = u*v^3 * (u*v^7)^((p-5)/8)  (RFC 8032 §5.1.3)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (!fe_equal(vx2, fe_neg(u))) return false;
    x = fe_mul(x, fe_sqrtm1());
  }

  if (fe_is_zero(x) && sign) return false;  // -0 is not a valid encoding
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = kFeOne;
  out.t = fe_mul(x, y);
  return true;
}

inline const Ge& ge_base() {
  // Base point B: y = 4/5, x positive (RFC 8032).
  static const Ge base = [] {
    std::uint8_t y_bytes[32] = {0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                                0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                                0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                                0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
    Ge b;
    if (!ge_decompress(b, y_bytes)) throw std::logic_error("ed25519: bad base point");
    return b;
  }();
  return base;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// Fixed-width 512-bit integers with shift-subtract reduction: slow but
// obviously correct, and scalar ops are a tiny fraction of sign/verify time.
// ---------------------------------------------------------------------------

struct U512 {
  u64 w[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};

inline U512 u512_from_le(BytesView bytes) {
  if (bytes.size() > 64) throw std::invalid_argument("u512_from_le: too long");
  U512 x;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    x.w[i / 8] |= static_cast<u64>(bytes[i]) << (8 * (i % 8));
  }
  return x;
}

inline int u512_compare(const U512& a, const U512& b) {
  for (int i = 7; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i] ? -1 : 1;
  }
  return 0;
}

inline void u512_sub_inplace(U512& a, const U512& b) {
  u64 borrow = 0;
  for (int i = 0; i < 8; ++i) {
    const u64 bi = b.w[i];
    const u64 tmp = a.w[i] - bi;
    const u64 borrow1 = a.w[i] < bi ? 1 : 0;
    const u64 res = tmp - borrow;
    const u64 borrow2 = tmp < borrow ? 1 : 0;
    a.w[i] = res;
    borrow = borrow1 | borrow2;
  }
}

inline U512 u512_shift_left(const U512& a, int bits) {
  U512 r;
  const int word_shift = bits / 64;
  const int bit_shift = bits % 64;
  for (int i = 7; i >= 0; --i) {
    u64 v = 0;
    if (i - word_shift >= 0) v = a.w[i - word_shift] << bit_shift;
    if (bit_shift != 0 && i - word_shift - 1 >= 0) {
      v |= a.w[i - word_shift - 1] >> (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

inline U512 u512_add(const U512& a, const U512& b) {
  U512 r;
  u64 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u64 sum1 = a.w[i] + b.w[i];
    const u64 carry1 = sum1 < a.w[i] ? 1 : 0;
    const u64 sum2 = sum1 + carry;
    const u64 carry2 = sum2 < sum1 ? 1 : 0;
    r.w[i] = sum2;
    carry = carry1 | carry2;
  }
  return r;
}

/// 256x256 -> 512 bit multiply (low 4 words of each input).
inline U512 u512_mul_256(const U512& a, const U512& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + r.w[i + j] + carry;
      r.w[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r.w[i + 4] = carry;
  }
  return r;
}

inline const U512& order_l() {
  static const U512 L = [] {
    U512 l;
    // L little-endian bytes (RFC 8032).
    const std::uint8_t bytes[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                                    0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    l = u512_from_le(BytesView(bytes, 32));
    return l;
  }();
  return L;
}

/// x mod L by shift-subtract long division.
inline U512 u512_mod_l(U512 x) {
  const U512& L = order_l();
  // L is 253 bits, so L << (512-253) still fits in 512 bits exactly.
  for (int shift = 512 - 253; shift >= 0; --shift) {
    const U512 shifted = u512_shift_left(L, shift);
    if (u512_compare(x, shifted) >= 0) u512_sub_inplace(x, shifted);
  }
  return x;
}

inline void scalar_to_bytes(std::uint8_t out[32], const U512& x) {
  for (int i = 0; i < 32; ++i) out[i] = static_cast<std::uint8_t>(x.w[i / 8] >> (8 * (i % 8)));
}

/// Reduces a 64-byte hash to a scalar mod L (RFC 8032 "interpret as
/// little-endian integer, reduce").
inline void reduce_hash_to_scalar(std::uint8_t out[32], BytesView hash64) {
  const U512 x = u512_mod_l(u512_from_le(hash64));
  scalar_to_bytes(out, x);
}

/// out = (a * b) mod L, both inputs 32-byte little-endian scalars.
inline void scalar_mul(std::uint8_t out[32], const std::uint8_t a[32],
                       const std::uint8_t b[32]) {
  const U512 aa = u512_from_le(BytesView(a, 32));
  const U512 bb = u512_from_le(BytesView(b, 32));
  const U512 reduced = u512_mod_l(u512_mul_256(aa, bb));
  scalar_to_bytes(out, reduced);
}

/// out = (a + b) mod L, both inputs 32-byte little-endian scalars < L.
inline void scalar_add(std::uint8_t out[32], const std::uint8_t a[32],
                       const std::uint8_t b[32]) {
  const U512 aa = u512_from_le(BytesView(a, 32));
  const U512 bb = u512_from_le(BytesView(b, 32));
  const U512 reduced = u512_mod_l(u512_add(aa, bb));
  scalar_to_bytes(out, reduced);
}

/// s = (r + k*a) mod L, all inputs 32-byte little-endian scalars.
inline void scalar_muladd(std::uint8_t out[32], const std::uint8_t k[32],
                          const std::uint8_t a[32], const std::uint8_t r[32]) {
  const U512 kk = u512_from_le(BytesView(k, 32));
  const U512 aa = u512_from_le(BytesView(a, 32));
  const U512 rr = u512_from_le(BytesView(r, 32));
  const U512 sum = u512_add(u512_mul_256(kk, aa), rr);
  const U512 reduced = u512_mod_l(sum);
  scalar_to_bytes(out, reduced);
}

/// True iff the 32 little-endian bytes encode an integer < L.
inline bool scalar_is_canonical(const std::uint8_t s[32]) {
  const U512 x = u512_from_le(BytesView(s, 32));
  return u512_compare(x, order_l()) < 0;
}

inline void clamp(std::uint8_t a[32]) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

struct ExpandedKey {
  std::uint8_t scalar[32];
  std::uint8_t prefix[32];
};

inline ExpandedKey expand_seed(BytesView seed) {
  if (seed.size() != kEd25519SeedSize) {
    throw std::invalid_argument("ed25519: seed must be 32 bytes");
  }
  const Bytes h = sha512(seed);
  ExpandedKey key;
  std::memcpy(key.scalar, h.data(), 32);
  std::memcpy(key.prefix, h.data() + 32, 32);
  clamp(key.scalar);
  return key;
}

}  // namespace securestore::crypto::ed25519_internal
