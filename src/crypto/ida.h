// Rabin's Information Dispersal Algorithm (JACM 1989) over GF(256).
//
// Encodes a value into n fragments such that any m reconstruct it, with
// each fragment ~|value|/m bytes. Combined with Shamir-shared keys this
// realizes the fragmentation-scattering storage mode the paper cites as a
// complementary technique (§3, [14][18]): space-efficient availability for
// bulk data while confidentiality rides on the key shares.
//
// The encoding matrix is the n-by-m Vandermonde matrix V_{ij} = x_i^j with
// x_i = i+1, so every m-row submatrix is invertible.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace securestore::crypto {

struct IdaFragment {
  std::uint8_t index = 0;  // row of the dispersal matrix, 1..n
  std::uint32_t original_size = 0;
  Bytes data;
};

/// Splits `data` into n fragments, any m of which reconstruct it.
/// Requires 1 <= m <= n <= 255.
std::vector<IdaFragment> ida_disperse(BytesView data, unsigned m, unsigned n);

/// Reconstructs from at least m distinct fragments.
/// Throws std::invalid_argument on malformed/insufficient input.
Bytes ida_reconstruct(std::span<const IdaFragment> fragments, unsigned m);

}  // namespace securestore::crypto
