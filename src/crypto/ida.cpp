#include "crypto/ida.h"

#include <stdexcept>

#include "crypto/gf256.h"

namespace securestore::crypto {

std::vector<IdaFragment> ida_disperse(BytesView data, unsigned m, unsigned n) {
  if (m < 1 || m > n || n > 255) {
    throw std::invalid_argument("ida_disperse: need 1 <= m <= n <= 255");
  }

  // Pad to a multiple of m; original_size disambiguates the padding.
  Bytes padded(data.begin(), data.end());
  while (padded.size() % m != 0) padded.push_back(0);
  const std::size_t columns = padded.size() / m;

  std::vector<IdaFragment> fragments(n);
  for (unsigned i = 0; i < n; ++i) {
    fragments[i].index = static_cast<std::uint8_t>(i + 1);
    fragments[i].original_size = static_cast<std::uint32_t>(data.size());
    fragments[i].data.resize(columns);
  }

  // fragment_i[c] = sum_j x_i^j * padded[c*m + j]
  for (std::size_t c = 0; c < columns; ++c) {
    for (unsigned i = 0; i < n; ++i) {
      const std::uint8_t x = fragments[i].index;
      std::uint8_t acc = 0;
      // Horner over the m bytes of this column (highest coefficient last).
      for (unsigned j = m; j-- > 0;) {
        acc = static_cast<std::uint8_t>(gf256::mul(acc, x) ^ padded[c * m + j]);
      }
      fragments[i].data[c] = acc;
    }
  }
  return fragments;
}

Bytes ida_reconstruct(std::span<const IdaFragment> fragments, unsigned m) {
  if (fragments.size() < m || m == 0) {
    throw std::invalid_argument("ida_reconstruct: not enough fragments");
  }

  std::vector<std::uint8_t> xs(m);
  for (unsigned i = 0; i < m; ++i) {
    xs[i] = fragments[i].index;
    if (xs[i] == 0) throw std::invalid_argument("ida_reconstruct: fragment index 0");
    for (unsigned j = 0; j < i; ++j) {
      if (xs[j] == xs[i]) throw std::invalid_argument("ida_reconstruct: duplicate fragment");
    }
    if (fragments[i].data.size() != fragments[0].data.size() ||
        fragments[i].original_size != fragments[0].original_size) {
      throw std::invalid_argument("ida_reconstruct: inconsistent fragments");
    }
  }

  const std::size_t columns = fragments[0].data.size();
  const std::size_t original_size = fragments[0].original_size;
  if (original_size > columns * m) {
    throw std::invalid_argument("ida_reconstruct: original_size exceeds capacity");
  }

  Bytes out(columns * m);
  std::vector<std::uint8_t> ys(m);
  for (std::size_t c = 0; c < columns; ++c) {
    for (unsigned i = 0; i < m; ++i) ys[i] = fragments[i].data[c];
    const std::vector<std::uint8_t> column = gf256::solve_vandermonde(xs, ys);
    for (unsigned j = 0; j < m; ++j) out[c * m + j] = column[j];
  }
  out.resize(original_size);
  return out;
}

}  // namespace securestore::crypto
