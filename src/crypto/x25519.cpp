#include "crypto/x25519.h"

#include <cstring>
#include <stdexcept>

#include "crypto/fe25519.h"

namespace securestore::crypto {

namespace {

using fe25519::Fe;

void conditional_swap(bool swap, Fe& a, Fe& b) {
  if (swap) std::swap(a, b);
}

}  // namespace

Bytes x25519(BytesView scalar, BytesView u_coordinate) {
  if (scalar.size() != kX25519KeySize || u_coordinate.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }

  // Clamp the scalar (RFC 7748 §5).
  std::uint8_t k[32];
  std::memcpy(k, scalar.data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  // Load u with bit 255 masked (from_bytes already ignores it).
  const Fe x1 = fe25519::from_bytes(u_coordinate.data());

  // Montgomery ladder (RFC 7748 §5): a24 = (486662 - 2) / 4 = 121665.
  Fe x2 = fe25519::kOne;
  Fe z2 = fe25519::kZero;
  Fe x3 = x1;
  Fe z3 = fe25519::kOne;
  bool swap = false;

  for (int t = 254; t >= 0; --t) {
    const bool k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    conditional_swap(swap, x2, x3);
    conditional_swap(swap, z2, z3);
    swap = k_t;

    const Fe a = fe25519::add(x2, z2);
    const Fe aa = fe25519::sq(a);
    const Fe b = fe25519::sub(x2, z2);
    const Fe bb = fe25519::sq(b);
    const Fe e = fe25519::sub(aa, bb);
    const Fe c = fe25519::add(x3, z3);
    const Fe d = fe25519::sub(x3, z3);
    const Fe da = fe25519::mul(d, a);
    const Fe cb = fe25519::mul(c, b);
    x3 = fe25519::sq(fe25519::add(da, cb));
    z3 = fe25519::mul(x1, fe25519::sq(fe25519::sub(da, cb)));
    x2 = fe25519::mul(aa, bb);
    z2 = fe25519::mul(e, fe25519::add(aa, fe25519::mul_small(e, 121665)));
  }
  conditional_swap(swap, x2, x3);
  conditional_swap(swap, z2, z3);

  const Fe result = fe25519::mul(x2, fe25519::invert(z2));
  Bytes out(kX25519KeySize);
  fe25519::to_bytes(out.data(), result);
  return out;
}

Bytes x25519_public_key(BytesView private_scalar) {
  Bytes base(kX25519KeySize, 0);
  base[0] = 9;
  return x25519(private_scalar, base);
}

DhKeyPair DhKeyPair::generate(Rng& rng) {
  DhKeyPair pair;
  pair.private_scalar = rng.bytes(kX25519KeySize);
  pair.public_key = x25519_public_key(pair.private_scalar);
  return pair;
}

Bytes x25519_shared_secret(BytesView own_private, BytesView peer_public) {
  Bytes secret = x25519(own_private, peer_public);
  std::uint8_t acc = 0;
  for (const std::uint8_t byte : secret) acc |= byte;
  if (acc == 0) {
    throw std::invalid_argument("x25519: low-order peer point (all-zero shared secret)");
  }
  return secret;
}

}  // namespace securestore::crypto
