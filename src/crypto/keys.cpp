#include "crypto/keys.h"

#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha2.h"

namespace securestore::crypto {

KeyPair KeyPair::generate(Rng& rng) {
  KeyPair pair;
  pair.seed = rng.bytes(kEd25519SeedSize);
  pair.public_key = ed25519_public_key(pair.seed);
  return pair;
}

CryptoMeter& CryptoMeter::instance() {
  thread_local CryptoMeter meter;
  return meter;
}

void CryptoMeter::reset() { *this = CryptoMeter{}; }

Bytes meter_sign(BytesView seed, BytesView message) {
  ++CryptoMeter::instance().signs;
  return ed25519_sign(seed, message);
}

bool meter_verify(BytesView public_key, BytesView message, BytesView signature) {
  ++CryptoMeter::instance().verifies;
  return ed25519_verify(public_key, message, signature);
}

Bytes meter_digest(BytesView data) {
  ++CryptoMeter::instance().digests;
  return sha256(data);
}

Bytes meter_mac(BytesView key, BytesView data) {
  ++CryptoMeter::instance().macs;
  return hmac_sha256(key, data);
}

}  // namespace securestore::crypto
