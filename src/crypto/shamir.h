// Shamir (k, n) secret sharing over GF(256), byte-wise.
//
// Used by the fragmentation-scattering storage mode (paper §3, Fray et
// al. [18]): a data item's encryption key is split so that no coalition of
// fewer than k servers — i.e. any coalition of at most b = k-1 compromised
// servers — learns anything about it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace securestore::crypto {

struct ShamirShare {
  std::uint8_t index = 0;  // the share's x-coordinate, 1..n
  Bytes data;              // one byte per secret byte
};

/// Splits `secret` into n shares, any k of which reconstruct it.
/// Requires 1 <= k <= n <= 255.
std::vector<ShamirShare> shamir_split(BytesView secret, unsigned k, unsigned n, Rng& rng);

/// Reconstructs the secret from at least k distinct shares (extras ignored
/// beyond consistency of length). Throws std::invalid_argument on
/// malformed input (duplicate indices, length mismatch, empty).
Bytes shamir_combine(std::span<const ShamirShare> shares, unsigned k);

/// Proactive share refresh (Herzberg et al. style): re-randomizes all n
/// shares WITHOUT changing or reconstructing the secret, by adding fresh
/// shares of zero. After a refresh, pre-refresh and post-refresh shares do
/// not combine — an adversary who compromises servers gradually must
/// collect k shares within one refresh epoch. Requires the full share set
/// (indices 1..n as produced by shamir_split).
std::vector<ShamirShare> shamir_refresh(std::span<const ShamirShare> shares, unsigned k,
                                        Rng& rng);

}  // namespace securestore::crypto
