#include "crypto/fe25519.h"

#include <cstring>

namespace securestore::crypto::fe25519 {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

}  // namespace

void carry(Fe& h) {
  for (int round = 0; round < 2; ++round) {
    u64 c = 0;
    for (int i = 0; i < 5; ++i) {
      h.v[i] += c;
      c = h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += c * 19;
  }
}

Fe from_bytes(const std::uint8_t s[32]) {
  auto load64 = [&](int offset) {
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(s[offset + i]) << (8 * i);
    return v;
  };
  Fe h;
  h.v[0] = load64(0) & kMask51;
  h.v[1] = (load64(6) >> 3) & kMask51;
  h.v[2] = (load64(12) >> 6) & kMask51;
  h.v[3] = (load64(19) >> 1) & kMask51;
  h.v[4] = (load64(24) >> 12) & kMask51;
  return h;
}

void to_bytes(std::uint8_t s[32], const Fe& f) {
  Fe h = f;
  carry(h);
  u64 q = (h.v[0] + 19) >> 51;
  q = (h.v[1] + q) >> 51;
  q = (h.v[2] + q) >> 51;
  q = (h.v[3] + q) >> 51;
  q = (h.v[4] + q) >> 51;
  h.v[0] += 19 * q;
  u64 c = 0;
  for (int i = 0; i < 5; ++i) {
    h.v[i] += c;
    c = h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  std::memset(s, 0, 32);
  u64 packed[4];
  packed[0] = h.v[0] | (h.v[1] << 51);
  packed[1] = (h.v[1] >> 13) | (h.v[2] << 38);
  packed[2] = (h.v[2] >> 26) | (h.v[3] << 25);
  packed[3] = (h.v[3] >> 39) | (h.v[4] << 12);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) s[8 * w + i] = static_cast<std::uint8_t>(packed[w] >> (8 * i));
  }
}

Fe add(const Fe& a, const Fe& b) {
  Fe h;
  for (int i = 0; i < 5; ++i) h.v[i] = a.v[i] + b.v[i];
  carry(h);
  return h;
}

Fe sub(const Fe& a, const Fe& b) {
  static constexpr u64 k8P0 = 8 * ((u64{1} << 51) - 19);
  static constexpr u64 k8Pi = 8 * ((u64{1} << 51) - 1);
  Fe h;
  h.v[0] = a.v[0] + k8P0 - b.v[0];
  for (int i = 1; i < 5; ++i) h.v[i] = a.v[i] + k8Pi - b.v[i];
  carry(h);
  return h;
}

Fe neg(const Fe& a) { return sub(kZero, a); }

Fe mul(const Fe& a, const Fe& b) {
  const u128 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
  u128 t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
  u128 t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
  u128 t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
  u128 t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

  Fe h;
  u64 c;
  c = static_cast<u64>(t0 >> 51);
  h.v[0] = static_cast<u64>(t0) & kMask51;
  t1 += c;
  c = static_cast<u64>(t1 >> 51);
  h.v[1] = static_cast<u64>(t1) & kMask51;
  t2 += c;
  c = static_cast<u64>(t2 >> 51);
  h.v[2] = static_cast<u64>(t2) & kMask51;
  t3 += c;
  c = static_cast<u64>(t3 >> 51);
  h.v[3] = static_cast<u64>(t3) & kMask51;
  t4 += c;
  c = static_cast<u64>(t4 >> 51);
  h.v[4] = static_cast<u64>(t4) & kMask51;
  h.v[0] += c * 19;
  h.v[1] += h.v[0] >> 51;
  h.v[0] &= kMask51;
  return h;
}

Fe sq(const Fe& a) { return mul(a, a); }

Fe sqn(Fe a, int n) {
  for (int i = 0; i < n; ++i) a = sq(a);
  return a;
}

Fe mul_small(const Fe& a, std::uint64_t small) {
  Fe h;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 t = static_cast<u128>(a.v[i]) * small + c;
    h.v[i] = static_cast<u64>(t) & kMask51;
    c = t >> 51;
  }
  h.v[0] += static_cast<u64>(c) * 19;
  carry(h);
  return h;
}

bool is_zero(const Fe& a) {
  std::uint8_t s[32];
  to_bytes(s, a);
  std::uint8_t acc = 0;
  for (std::uint8_t byte : s) acc |= byte;
  return acc == 0;
}

bool equal(const Fe& a, const Fe& b) { return is_zero(sub(a, b)); }

bool is_negative(const Fe& a) {
  std::uint8_t s[32];
  to_bytes(s, a);
  return (s[0] & 1) != 0;
}

Fe invert(const Fe& a) {
  const Fe z2 = sq(a);
  const Fe z8 = sqn(z2, 2);
  const Fe z9 = mul(z8, a);
  const Fe z11 = mul(z9, z2);
  const Fe z22 = sq(z11);
  const Fe z_5_0 = mul(z22, z9);
  const Fe z_10_5 = sqn(z_5_0, 5);
  const Fe z_10_0 = mul(z_10_5, z_5_0);
  const Fe z_20_10 = sqn(z_10_0, 10);
  const Fe z_20_0 = mul(z_20_10, z_10_0);
  const Fe z_40_20 = sqn(z_20_0, 20);
  const Fe z_40_0 = mul(z_40_20, z_20_0);
  const Fe z_50_10 = sqn(z_40_0, 10);
  const Fe z_50_0 = mul(z_50_10, z_10_0);
  const Fe z_100_50 = sqn(z_50_0, 50);
  const Fe z_100_0 = mul(z_100_50, z_50_0);
  const Fe z_200_100 = sqn(z_100_0, 100);
  const Fe z_200_0 = mul(z_200_100, z_100_0);
  const Fe z_250_50 = sqn(z_200_0, 50);
  const Fe z_250_0 = mul(z_250_50, z_50_0);
  const Fe z_255_5 = sqn(z_250_0, 5);
  return mul(z_255_5, z11);
}

Fe pow22523(const Fe& a) {
  const Fe z2 = sq(a);
  const Fe z8 = sqn(z2, 2);
  const Fe z9 = mul(z8, a);
  const Fe z11 = mul(z9, z2);
  const Fe z22 = sq(z11);
  const Fe z_5_0 = mul(z22, z9);
  const Fe z_10_5 = sqn(z_5_0, 5);
  const Fe z_10_0 = mul(z_10_5, z_5_0);
  const Fe z_20_10 = sqn(z_10_0, 10);
  const Fe z_20_0 = mul(z_20_10, z_10_0);
  const Fe z_40_20 = sqn(z_20_0, 20);
  const Fe z_40_0 = mul(z_40_20, z_20_0);
  const Fe z_50_10 = sqn(z_40_0, 10);
  const Fe z_50_0 = mul(z_50_10, z_10_0);
  const Fe z_100_50 = sqn(z_50_0, 50);
  const Fe z_100_0 = mul(z_100_50, z_50_0);
  const Fe z_200_100 = sqn(z_100_0, 100);
  const Fe z_200_0 = mul(z_200_100, z_100_0);
  const Fe z_250_50 = sqn(z_200_0, 50);
  const Fe z_250_0 = mul(z_250_50, z_50_0);
  const Fe z_252_2 = sqn(z_250_0, 2);
  return mul(z_252_2, a);
}

}  // namespace securestore::crypto::fe25519
