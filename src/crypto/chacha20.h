// ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439).
//
// The confidentiality layer of the secure store (§5.2/§5.3 of the paper:
// "the owner or writing client can store all its data items in encrypted
// form", with a key the servers never learn) encrypts values with this AEAD
// before they are written. Validated against the RFC 8439 test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace securestore::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;
constexpr std::size_t kPolyTagSize = 16;

/// Raw ChaCha20 keystream XOR starting at the given block counter.
Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter, BytesView input);

/// Poly1305 one-time authenticator (key must be 32 bytes).
std::array<std::uint8_t, kPolyTagSize> poly1305(BytesView key, BytesView message);

/// AEAD seal: returns ciphertext || 16-byte tag.
Bytes aead_seal(BytesView key, BytesView nonce, BytesView aad, BytesView plaintext);

/// AEAD open: returns plaintext, or nullopt if the tag does not verify.
std::optional<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                               BytesView ciphertext_and_tag);

}  // namespace securestore::crypto
