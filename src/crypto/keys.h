// Key pairs and metered crypto entry points.
//
// The paper's cost model (§6) counts signatures, verifications and digests
// per operation. Protocol code therefore performs all crypto through the
// metered helpers below; `CryptoMeter` is read by the benchmark harness to
// reproduce those counts (experiment E3) and by tests to assert that a
// protocol performs exactly the crypto the paper says it does.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/rng.h"

namespace securestore::crypto {

/// An Ed25519 key pair. `seed` is the private key (paper: K_i^{-1}),
/// `public_key` the well-known verification key (paper: K_i).
struct KeyPair {
  Bytes seed;
  Bytes public_key;

  static KeyPair generate(Rng& rng);
};

/// Counters for cryptographic operations. One instance per thread: the
/// simulator is single-threaded, so a sim run reads a consistent snapshot.
class CryptoMeter {
 public:
  static CryptoMeter& instance();

  void reset();

  std::uint64_t signs = 0;
  std::uint64_t verifies = 0;
  std::uint64_t digests = 0;
  std::uint64_t macs = 0;
  std::uint64_t aead_ops = 0;
};

/// Ed25519 sign, counted.
Bytes meter_sign(BytesView seed, BytesView message);

/// Ed25519 verify, counted.
bool meter_verify(BytesView public_key, BytesView message, BytesView signature);

/// SHA-256 digest, counted.
Bytes meter_digest(BytesView data);

/// HMAC-SHA256, counted (used by the PBFT-lite baseline's authenticators).
Bytes meter_mac(BytesView key, BytesView data);

}  // namespace securestore::crypto
