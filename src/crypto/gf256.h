// Arithmetic in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
//
// Substrate for Shamir secret sharing and the Rabin information-dispersal
// code: both operate byte-wise over this field.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace securestore::crypto {

namespace gf256 {

std::uint8_t add(std::uint8_t a, std::uint8_t b);  // XOR
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);                  // a != 0
std::uint8_t div(std::uint8_t a, std::uint8_t b);  // b != 0
std::uint8_t pow(std::uint8_t a, unsigned e);

/// Evaluates the polynomial with the given coefficients (constant term
/// first) at x, via Horner's rule.
std::uint8_t poly_eval(std::span<const std::uint8_t> coefficients, std::uint8_t x);

/// Lagrange interpolation: given k distinct points (x_i, y_i), returns the
/// value of the unique degree-(k-1) polynomial through them at `at`.
std::uint8_t interpolate(std::span<const std::uint8_t> xs,
                         std::span<const std::uint8_t> ys, std::uint8_t at);

/// Solves the k-by-k linear system V*a = y where V_{ij} = x_i^j (Vandermonde)
/// by Gaussian elimination; returns the coefficient vector a. Throws
/// std::invalid_argument if the x_i are not distinct.
std::vector<std::uint8_t> solve_vandermonde(std::span<const std::uint8_t> xs,
                                            std::span<const std::uint8_t> ys);

}  // namespace gf256

}  // namespace securestore::crypto
