// HMAC-SHA256 (RFC 2104) and HKDF-SHA256 (RFC 5869).
//
// HMAC authenticators are what the PBFT-lite baseline uses in place of
// signatures (the MAC-vs-signature tradeoff §6 of the paper discusses).
// HKDF derives per-item encryption keys in the confidentiality layer.
#pragma once

#include "util/bytes.h"

namespace securestore::crypto {

/// HMAC-SHA256 over `data` with `key` (any length). Returns 32 bytes.
Bytes hmac_sha256(BytesView key, BytesView data);

/// HKDF-SHA256 extract+expand. `length` up to 255*32 bytes.
Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, std::size_t length);

}  // namespace securestore::crypto
