#include "crypto/gf256.h"

#include <stdexcept>

namespace securestore::crypto::gf256 {

namespace {

struct Tables {
  // exp table over a generator (0x03); log[exp[i]] == i.
  std::array<std::uint8_t, 512> exp;
  std::array<std::uint8_t, 256> log;

  Tables() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply x by generator 0x03 = x+1: x*3 = (x<<1) ^ x with reduction.
      const std::uint8_t hi = static_cast<std::uint8_t>(x & 0x80);
      std::uint8_t doubled = static_cast<std::uint8_t>(x << 1);
      if (hi) doubled ^= 0x1b;
      x = static_cast<std::uint8_t>(doubled ^ x);
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // undefined; guarded by callers
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("gf256::inv(0)");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::invalid_argument("gf256::div by 0");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(t.log[a] + 255 - t.log[b]) % 255];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * e) % 255];
}

std::uint8_t poly_eval(std::span<const std::uint8_t> coefficients, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = coefficients.size(); i-- > 0;) {
    acc = static_cast<std::uint8_t>(mul(acc, x) ^ coefficients[i]);
  }
  return acc;
}

std::uint8_t interpolate(std::span<const std::uint8_t> xs,
                         std::span<const std::uint8_t> ys, std::uint8_t at) {
  if (xs.size() != ys.size()) throw std::invalid_argument("gf256::interpolate: size mismatch");
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::uint8_t num = 1, den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (i == j) continue;
      num = mul(num, add(at, xs[j]));
      den = mul(den, add(xs[i], xs[j]));
    }
    if (den == 0) throw std::invalid_argument("gf256::interpolate: duplicate x");
    acc = add(acc, mul(ys[i], div(num, den)));
  }
  return acc;
}

std::vector<std::uint8_t> solve_vandermonde(std::span<const std::uint8_t> xs,
                                            std::span<const std::uint8_t> ys) {
  const std::size_t k = xs.size();
  if (ys.size() != k) throw std::invalid_argument("solve_vandermonde: size mismatch");

  // Build augmented matrix [V | y].
  std::vector<std::vector<std::uint8_t>> m(k, std::vector<std::uint8_t>(k + 1));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) m[i][j] = pow(xs[i], static_cast<unsigned>(j));
    m[i][k] = ys[i];
  }

  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    while (pivot < k && m[pivot][col] == 0) ++pivot;
    if (pivot == k) throw std::invalid_argument("solve_vandermonde: singular (duplicate x?)");
    std::swap(m[col], m[pivot]);

    const std::uint8_t inv_pivot = inv(m[col][col]);
    for (std::size_t j = col; j <= k; ++j) m[col][j] = mul(m[col][j], inv_pivot);

    for (std::size_t row = 0; row < k; ++row) {
      if (row == col || m[row][col] == 0) continue;
      const std::uint8_t factor = m[row][col];
      for (std::size_t j = col; j <= k; ++j) {
        m[row][j] = add(m[row][j], mul(factor, m[col][j]));
      }
    }
  }

  std::vector<std::uint8_t> solution(k);
  for (std::size_t i = 0; i < k; ++i) solution[i] = m[i][k];
  return solution;
}

}  // namespace securestore::crypto::gf256
