#include "crypto/ed25519_batch.h"

#include <cstring>
#include <array>

#include "crypto/ed25519.h"
#include "crypto/ed25519_internal.h"
#include "crypto/keys.h"
#include "crypto/sha2.h"

namespace securestore::crypto {

namespace {

using namespace ed25519_internal;

/// One structurally-sound signature admitted to the combined equation.
struct BatchTerm {
  std::size_t index = 0;        // position in the caller's item vector
  Ge a_neg;                     // -A_i (decompressed public key, negated)
  Ge r_neg;                     // -R_i
  std::uint8_t zs[32];          // z_i * S_i mod L (summed into the B scalar)
  std::uint8_t zk[32];          // z_i * k_i mod L (scalar for -A_i)
  std::uint8_t z[32];           // z_i itself (scalar for -R_i)
};

/// Derives the batch's deterministic coefficient stream: SHA512 over a
/// domain tag and every (A, M, R||S) triple seeds the stream; coefficient i
/// is SHA512(seed || i) truncated to 128 bits. Deterministic so batch
/// verification replays identically (simulator/chaos), Fiat-Shamir so an
/// adversary cannot pick signatures whose defects cancel against
/// coefficients that depend on those signatures.
std::array<std::uint8_t, 64> batch_coefficient_seed(const std::vector<BatchVerifyItem>& items) {
  Sha512 h;
  static constexpr char kTag[] = "securestore.ed25519.batch.v1";
  h.update(BytesView(reinterpret_cast<const std::uint8_t*>(kTag), sizeof kTag - 1));
  for (const BatchVerifyItem& item : items) {
    // Length-prefix the variable-size message so item boundaries are
    // unambiguous in the transcript.
    const std::uint64_t len = item.message.size();
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<std::uint8_t>(len >> (8 * i));
    h.update(item.public_key);
    h.update(BytesView(len_bytes, 8));
    h.update(item.message);
    h.update(item.signature);
  }
  return h.finish();
}

/// z_i: 128-bit, little-endian in a 32-byte scalar, forced odd so no
/// coefficient annihilates a small-torsion point mod the cofactor.
void derive_coefficient(std::uint8_t out[32], BytesView seed, std::uint64_t index) {
  Sha512 h;
  h.update(seed);
  std::uint8_t index_bytes[8];
  for (int i = 0; i < 8; ++i) index_bytes[i] = static_cast<std::uint8_t>(index >> (8 * i));
  h.update(BytesView(index_bytes, 8));
  const auto digest = h.finish();
  std::memset(out, 0, 32);
  std::memcpy(out, digest.data(), 16);
  out[0] |= 1;
}

}  // namespace

BatchVerifyResult ed25519_batch_verify(const std::vector<BatchVerifyItem>& items) {
  BatchVerifyResult result;
  result.valid.assign(items.size(), false);
  if (items.empty()) {
    result.all_valid = true;
    return result;
  }

  // Every item counts as one verification in the paper's cost model
  // regardless of how the batch amortizes the point arithmetic.
  CryptoMeter::instance().verifies += items.size();

  // Pass 1: structural checks (sizes, canonical S, decompressible A and R)
  // and per-item challenge k_i = SHA512(R || A || M) mod L. Structural
  // failures are definitively invalid and simply stay out of the sum; they
  // cannot poison the batch.
  std::vector<BatchTerm> terms;
  terms.reserve(items.size());
  const auto seed = batch_coefficient_seed(items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchVerifyItem& item = items[i];
    if (item.public_key.size() != kEd25519PublicKeySize) continue;
    if (item.signature.size() != kEd25519SignatureSize) continue;
    const std::uint8_t* r_bytes = item.signature.data();
    const std::uint8_t* s_bytes = item.signature.data() + 32;
    if (!scalar_is_canonical(s_bytes)) continue;

    BatchTerm term;
    term.index = i;
    Ge a_point;
    if (!ge_decompress(a_point, item.public_key.data())) continue;
    Ge r_point;
    if (!ge_decompress(r_point, r_bytes)) continue;
    term.a_neg = ge_neg(a_point);
    term.r_neg = ge_neg(r_point);

    Sha512 hk;
    hk.update(BytesView(r_bytes, 32));
    hk.update(item.public_key);
    hk.update(item.message);
    const auto k_hash = hk.finish();
    std::uint8_t k_scalar[32];
    reduce_hash_to_scalar(k_scalar, BytesView(k_hash.data(), k_hash.size()));

    derive_coefficient(term.z, BytesView(seed.data(), seed.size()), i);
    scalar_mul(term.zk, term.z, k_scalar);
    scalar_mul(term.zs, term.z, s_bytes);
    terms.push_back(term);
  }

  if (!terms.empty()) {
    // Combined equation, rearranged to a single identity check:
    //   [sum z_i S_i] B + sum [z_i k_i] (-A_i) + sum [z_i] (-R_i) == O.
    std::uint8_t b_scalar[32] = {0};
    for (const BatchTerm& term : terms) scalar_add(b_scalar, b_scalar, term.zs);

    // Interleaved (Straus) multi-scalar multiplication: one MSB-first walk
    // over 256 bits, doubling the accumulator once per bit and adding every
    // point whose scalar has that bit set — the doublings are what single
    // verification pays 2x512 of, and here the whole batch shares 256.
    Ge acc = ge_identity();
    for (int bit = 255; bit >= 0; --bit) {
      acc = ge_double(acc);
      const std::size_t byte = static_cast<std::size_t>(bit / 8);
      const int shift = bit % 8;
      if ((b_scalar[byte] >> shift) & 1) acc = ge_add(acc, ge_base());
      for (const BatchTerm& term : terms) {
        if ((term.zk[byte] >> shift) & 1) acc = ge_add(acc, term.a_neg);
        if ((term.z[byte] >> shift) & 1) acc = ge_add(acc, term.r_neg);
      }
    }

    if (ge_is_identity(acc)) {
      for (const BatchTerm& term : terms) result.valid[term.index] = true;
    } else {
      // One bad signature poisons the whole sum; isolate it by falling back
      // to per-message verification so honest requests in the same batch
      // still pass. The per-item verifies are already metered above.
      result.used_fallback = true;
      for (const BatchTerm& term : terms) {
        const BatchVerifyItem& item = items[term.index];
        result.valid[term.index] =
            ed25519_verify(item.public_key, item.message, item.signature);
      }
    }
  }

  result.all_valid = true;
  for (const bool ok : result.valid) result.all_valid = result.all_valid && ok;
  return result;
}

}  // namespace securestore::crypto
