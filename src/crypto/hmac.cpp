#include "crypto/hmac.h"

#include <stdexcept>

#include "crypto/sha2.h"

namespace securestore::crypto {

Bytes hmac_sha256(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  Bytes key_block(kBlock, 0);
  if (key.size() > kBlock) {
    Bytes hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  Bytes inner_pad(kBlock), outer_pad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    inner_pad[i] = key_block[i] ^ 0x36;
    outer_pad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(inner_pad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto digest = outer.finish();
  return Bytes(digest.begin(), digest.end());
}

Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) throw std::invalid_argument("hkdf_sha256: length too large");

  const Bytes default_salt(kHashLen, 0);
  const Bytes prk = hmac_sha256(salt.empty() ? BytesView(default_salt) : salt, ikm);

  Bytes okm;
  okm.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block_input = previous;
    block_input.insert(block_input.end(), info.begin(), info.end());
    block_input.push_back(counter++);
    previous = hmac_sha256(prk, block_input);
    const std::size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), previous.begin(), previous.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

}  // namespace securestore::crypto
