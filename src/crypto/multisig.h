// k-of-n multisignature certificates.
//
// A `MultisigCertificate` over a statement is valid when at least k distinct
// authorized signers have signed it. The secure store uses these as
// *stability certificates* (§5.3): a server may erase superseded entries
// from a multi-writer item's log once it holds a certificate, signed by
// 2b+1 servers, that the newer value is stored at those servers — so at
// least b+1 correct servers have it even if b signers lied.
//
// This is the "threshold attestation" flavor of threshold signing: the
// trust threshold is enforced by counting independent signatures rather
// than by a single aggregate key, which matches the paper's model where
// each server owns an individual well-known key.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"

namespace securestore::crypto {

struct MultisigShare {
  NodeId signer;
  Bytes signature;
};

class MultisigCertificate {
 public:
  MultisigCertificate() = default;
  explicit MultisigCertificate(Bytes statement) : statement_(std::move(statement)) {}

  const Bytes& statement() const { return statement_; }
  const std::vector<MultisigShare>& shares() const { return shares_; }

  /// Adds a share. Duplicate signers are ignored (first one wins).
  void add_share(NodeId signer, Bytes signature);

  /// Number of *distinct* signers whose share verifies under `keys`.
  /// Signers absent from `keys` contribute nothing.
  std::size_t count_valid(const std::unordered_map<NodeId, Bytes>& keys) const;

  /// True iff at least `threshold` distinct valid shares are present.
  bool satisfies(std::size_t threshold,
                 const std::unordered_map<NodeId, Bytes>& keys) const;

  Bytes serialize() const;
  static MultisigCertificate deserialize(BytesView data);

 private:
  Bytes statement_;
  std::vector<MultisigShare> shares_;
};

}  // namespace securestore::crypto
