#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/ed25519_internal.h"
#include "crypto/sha2.h"

namespace securestore::crypto {

using namespace ed25519_internal;

Bytes ed25519_public_key(BytesView seed) {
  const ExpandedKey key = expand_seed(seed);
  const Ge a_point = ge_scalar_mul(ge_base(), key.scalar);
  Bytes out(kEd25519PublicKeySize);
  ge_compress(out.data(), a_point);
  return out;
}

Bytes ed25519_sign(BytesView seed, BytesView message) {
  const ExpandedKey key = expand_seed(seed);

  Bytes public_key(kEd25519PublicKeySize);
  {
    const Ge a_point = ge_scalar_mul(ge_base(), key.scalar);
    ge_compress(public_key.data(), a_point);
  }

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(BytesView(key.prefix, 32));
  hr.update(message);
  const auto r_hash = hr.finish();
  std::uint8_t r_scalar[32];
  reduce_hash_to_scalar(r_scalar, BytesView(r_hash.data(), r_hash.size()));

  // R = r*B
  std::uint8_t r_bytes[32];
  ge_compress(r_bytes, ge_scalar_mul(ge_base(), r_scalar));

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(r_bytes, 32));
  hk.update(public_key);
  hk.update(message);
  const auto k_hash = hk.finish();
  std::uint8_t k_scalar[32];
  reduce_hash_to_scalar(k_scalar, BytesView(k_hash.data(), k_hash.size()));

  // S = (r + k*a) mod L
  std::uint8_t s_scalar[32];
  scalar_muladd(s_scalar, k_scalar, key.scalar, r_scalar);

  Bytes signature(kEd25519SignatureSize);
  std::memcpy(signature.data(), r_bytes, 32);
  std::memcpy(signature.data() + 32, s_scalar, 32);
  return signature;
}

bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature) {
  if (public_key.size() != kEd25519PublicKeySize) return false;
  if (signature.size() != kEd25519SignatureSize) return false;

  const std::uint8_t* r_bytes = signature.data();
  const std::uint8_t* s_bytes = signature.data() + 32;
  if (!scalar_is_canonical(s_bytes)) return false;

  Ge a_point;
  if (!ge_decompress(a_point, public_key.data())) return false;
  Ge r_point;
  if (!ge_decompress(r_point, r_bytes)) return false;

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(r_bytes, 32));
  hk.update(public_key);
  hk.update(message);
  const auto k_hash = hk.finish();
  std::uint8_t k_scalar[32];
  reduce_hash_to_scalar(k_scalar, BytesView(k_hash.data(), k_hash.size()));

  // Check [S]B == R + [k]A  <=>  [S]B + [k](-A) == R.
  const Ge sb = ge_scalar_mul(ge_base(), s_bytes);
  const Ge ka_neg = ge_scalar_mul(ge_neg(a_point), k_scalar);
  const Ge check = ge_add(sb, ka_neg);

  std::uint8_t check_bytes[32];
  ge_compress(check_bytes, check);
  return std::memcmp(check_bytes, r_bytes, 32) == 0;
}

}  // namespace securestore::crypto
