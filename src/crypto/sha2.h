// SHA-256 and SHA-512 (FIPS 180-4), implemented from scratch.
//
// SHA-256 is the "agreed-upon digest algorithm" d(v) of the paper: value
// digests inside multi-writer timestamps, signed digests of contexts and
// write records. SHA-512 exists because Ed25519 (RFC 8032) requires it.
// Both are validated against NIST/RFC test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace securestore::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();
  void update(BytesView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  std::array<std::uint8_t, kDigestSize> finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(BytesView data);
  std::array<std::uint8_t, kDigestSize> finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  // 128-bit message length counter, as required by FIPS 180-4 for SHA-512.
  std::uint64_t total_low_ = 0;
  std::uint64_t total_high_ = 0;
};

/// One-shot SHA-256.
Bytes sha256(BytesView data);

/// One-shot SHA-512.
Bytes sha512(BytesView data);

}  // namespace securestore::crypto
