// Key-routed client facade over many replica groups (DESIGN.md §11).
//
// A ShardedClient holds one core SecureStoreClient per group it has
// touched, each built against the owning shard's StoreConfig derived from
// the verified ring (ShardRouter). All P1–P6 operations take the group
// explicitly and route to that per-group session; within a shard the
// paper's protocols run unchanged — sharding never alters quorum
// arithmetic, only which (n, b) group a key talks to.
//
// Stale-ring healing: when a server rejects an operation with kWrongShard
// it attaches its signed ring. The client absorbs it through the router
// (authority signature + strictly-newer version), rebuilds the group's
// session against the new owner — re-opening the P1 session and merging
// the in-memory context pointwise so causality survives the move — and
// retries, up to Options::max_reroutes times.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/client.h"
#include "obs/metrics.h"
#include "shard/router.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace securestore::shard {

class ShardedClient {
 public:
  struct Options {
    /// Template for every per-group core client; `policy.group` is
    /// overwritten with the routed group.
    core::SecureStoreClient::Options client;
    /// Per-group policy overrides: a ShardedClient spans groups with
    /// DIFFERENT sharing/consistency modes, which one template policy
    /// cannot express. Groups absent here fall back to the template's
    /// policy (with the group id substituted).
    std::unordered_map<GroupId, core::GroupPolicy> group_policies;
    /// First transport endpoint id; each group's session claims the next
    /// free id upward (stable across session rebuilds).
    NodeId network_base{};
    /// kWrongShard retries per operation before the error surfaces.
    unsigned max_reroutes = 3;
  };

  /// `template_config` must carry the ring authority key plus everything
  /// shard-independent (quorum parameters, client key directory, timeouts);
  /// per-shard servers/keys come from the ring.
  ShardedClient(net::Transport& transport, ClientId id, crypto::KeyPair keys,
                SignedRingState ring, core::StoreConfig template_config, Options options,
                Rng rng);

  using VoidCb = core::SecureStoreClient::VoidCb;
  using ReadCb = core::SecureStoreClient::ReadCb;
  using ListCb = core::SecureStoreClient::ListCb;

  // P1–P6, routed by group (see core/client.h for the protocol contracts).
  void connect(GroupId group, VoidCb done);
  void disconnect(GroupId group, VoidCb done);
  void reconstruct_context(GroupId group, VoidCb done);
  void write(GroupId group, ItemId item, BytesView value, VoidCb done);
  void read(GroupId group, ItemId item, ReadCb done);
  void list_group(GroupId group, ListCb done);

  const ShardRouter& router() const { return router_; }
  std::uint32_t shard_for(GroupId group) const { return router_.shard_for(group); }
  ClientId client_id() const { return client_id_; }
  /// The group's core client — created on first use, replaced on reroute.
  /// Null before the first operation touching the group.
  core::SecureStoreClient* group_client(GroupId group);

 private:
  struct Session {
    std::uint32_t shard_id = 0;
    NodeId network_id{};
    std::unique_ptr<core::SecureStoreClient> client;
  };

  /// One protocol operation against a group's core client; the callback
  /// receives the operation's own result type.
  template <typename R>
  using OpFn = std::function<void(core::SecureStoreClient&, std::function<void(R)>)>;

  Session& session_for(GroupId group);
  std::unique_ptr<core::SecureStoreClient> make_group_client(GroupId group, std::uint32_t shard,
                                                             NodeId network_id);
  /// Installs the ring a kWrongShard rejection carried; true when the
  /// router accepted it (authority-signed and strictly newer).
  bool absorb_ring(Bytes ring_bytes);
  /// Moves a group's session to the router's current owner: new core
  /// client, and when the old session was connected, a P1 connect on the
  /// new shard followed by a pointwise context merge (the in-memory
  /// context may be newer than anything the new shard has stored).
  void rebuild_session(GroupId group, VoidCb done);

  /// Runs `op`, intercepting kWrongShard: absorb ring → rebuild session →
  /// retry, bounded by max_reroutes.
  template <typename R>
  void issue(GroupId group, OpFn<R> op, std::function<void(R)> done, unsigned attempt) {
    Session& session = session_for(group);
    op(*session.client, [this, group, op, done, attempt](R result) {
      if (result.ok() || result.error() != Error::kWrongShard ||
          attempt >= options_.max_reroutes) {
        done(std::move(result));
        return;
      }
      reroutes_.inc();
      absorb_ring(sessions_.at(group).client->take_wrong_shard_ring());
      rebuild_session(group, [this, group, op, done, attempt](VoidResult rebuilt) {
        if (!rebuilt.ok()) {
          done(R(rebuilt.error(), rebuilt.detail()));
          return;
        }
        issue<R>(group, op, done, attempt + 1);
      });
    });
  }

  net::Transport& transport_;
  ClientId client_id_;
  crypto::KeyPair keys_;
  Options options_;
  ShardRouter router_;
  Rng rng_;
  std::unordered_map<GroupId, Session> sessions_;
  std::uint32_t next_endpoint_ = 0;
  /// shard.* client counters (DESIGN.md §8): rings absorbed from
  /// kWrongShard rejections, and reroute retries taken.
  obs::Counter& ring_refresh_;
  obs::Counter& reroutes_;
};

/// Blocking facade, mirroring core::SyncClient: drives the scheduler until
/// each operation's callback fires. Deterministic in the seed.
class SyncShardedClient {
 public:
  SyncShardedClient(ShardedClient& client, sim::Scheduler& scheduler)
      : client_(client), scheduler_(scheduler) {}

  VoidResult connect(GroupId group);
  VoidResult disconnect(GroupId group);
  VoidResult reconstruct_context(GroupId group);
  VoidResult write(GroupId group, ItemId item, BytesView value);
  Result<core::ReadOutput> read(GroupId group, ItemId item);
  /// Convenience: the value only (errors pass through).
  Result<Bytes> read_value(GroupId group, ItemId item);
  Result<std::vector<core::GroupEntry>> list_group(GroupId group);

  ShardedClient& client() { return client_; }

 private:
  template <typename R>
  R wait(std::optional<R>& slot) {
    while (!slot.has_value() && scheduler_.step()) {
    }
    if (slot.has_value()) return std::move(*slot);
    return R(Error::kTimeout, "event queue drained before completion");
  }

  ShardedClient& client_;
  sim::Scheduler& scheduler_;
};

}  // namespace securestore::shard
