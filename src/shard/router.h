// Client-side shard routing table (DESIGN.md §11).
//
// A router owns the client's verified view of the ring plus a template
// StoreConfig (quorum parameters, client key directory, timeouts — shard
// independent). Per-shard StoreConfigs are derived on demand from the ring
// entry: server node ids and public keys come from the signed membership,
// everything else from the template. Ring updates (from kWrongShard
// responses or gossip) are accepted only when signed by the ring authority
// and strictly newer than the installed version.
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.h"
#include "shard/hash_ring.h"

namespace securestore::shard {

class ShardRouter {
 public:
  /// `template_config.ring_authority_key` must be set; servers/server_keys
  /// in the template are ignored (the ring is the membership authority).
  /// Throws std::invalid_argument when the initial ring does not verify.
  ShardRouter(SignedRingState ring, core::StoreConfig template_config);

  std::uint32_t shard_for(GroupId group) const { return ring_->shard_for(group); }
  std::uint64_t version() const { return signed_.ring.version; }
  std::size_t shard_count() const { return signed_.ring.shards.size(); }
  const SignedRingState& signed_ring() const { return signed_; }

  /// The replica-group config for a shard, derived from the ring entry.
  /// Throws std::out_of_range for a shard id the ring does not name.
  core::StoreConfig config_for(std::uint32_t shard_id) const;

  /// Installs a candidate ring (e.g. the one a kWrongShard response
  /// carried). Returns false — leaving the installed ring untouched — when
  /// the signature fails under the ring authority key or the version is
  /// not strictly newer.
  bool update(const SignedRingState& candidate);

 private:
  core::StoreConfig template_config_;
  SignedRingState signed_;
  std::optional<HashRing> ring_;  // rebuilt on every accepted update
};

}  // namespace securestore::shard
