// Consistent-hashing ring with virtual nodes (DESIGN.md §11).
//
// The paper's SecureStore replicates every item on all n servers, so
// capacity never grows with the cluster. This layer partitions the key
// space across independent (n, b) replica groups — shards — Dynamo-style:
// every shard owns `vnodes_per_shard` pseudo-random points on a 64-bit
// ring, and a group key is served by the shard whose vnode point is the
// key's clockwise successor. Placement is a pure function of
// (placement_seed, shard ids, vnode counts): every party that holds the
// same RingState computes the same owner for every key, with no
// coordination.
//
// The *group* (not the item) is the placement unit: a group is the paper's
// consistency and session boundary (§4 — "consistency is only required
// within a group"), so all items of a group land on one shard and P1–P6
// keep their single-group quorum arithmetic unchanged inside it.
//
// Ring states are versioned and signed by a deployment ring authority
// (Ed25519). Servers and client routers install a candidate ring only when
// the signature verifies and the version is strictly newer, so a Byzantine
// server can replay an old ring (harmless: version check) but never forge
// a new one.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/serial.h"

namespace securestore::shard {

/// One shard's membership: the replica-group id and its server nodes with
/// their well-known public keys (index-aligned with `servers`). Carrying
/// the keys in the signed ring lets a router build a full StoreConfig for
/// a shard it has never contacted — rebalance adds shards at runtime.
struct ShardMembers {
  std::uint32_t shard_id = 0;
  std::vector<NodeId> servers;
  std::vector<Bytes> server_keys;

  void encode(Writer& w) const;
  static ShardMembers decode(Reader& r);
};

/// The versioned placement function plus membership.
struct RingState {
  std::uint64_t version = 0;
  std::uint32_t vnodes_per_shard = 64;
  std::uint64_t placement_seed = 0;
  std::vector<ShardMembers> shards;

  void encode(Writer& w) const;
  static RingState decode(Reader& r);
  Bytes serialize() const;
  static RingState deserialize(BytesView data);
};

/// A ring state under the ring authority's signature. This is what travels
/// over gossip (kGossipRing) and inside kWrongShard responses.
struct SignedRingState {
  RingState ring;
  Bytes signature;  // Ed25519 over the domain-separated serialized ring

  static SignedRingState sign(RingState ring, BytesView authority_seed);
  bool verify(BytesView authority_public_key) const;

  Bytes serialize() const;
  static SignedRingState deserialize(BytesView data);
};

/// The lookup structure: vnode points precomputed and sorted once.
class HashRing {
 public:
  explicit HashRing(RingState state);

  /// The shard that owns `group`: the clockwise successor vnode's shard.
  std::uint32_t shard_for(GroupId group) const;

  const RingState& state() const { return state_; }
  std::uint64_t version() const { return state_.version; }
  std::size_t shard_count() const { return state_.shards.size(); }

  /// Placement primitives, exposed so tests can pin them: both are SHA-256
  /// based (first 8 digest bytes, little-endian) with distinct domain tags.
  static std::uint64_t key_point(GroupId group, std::uint64_t placement_seed);
  static std::uint64_t vnode_point(std::uint32_t shard_id, std::uint32_t vnode,
                                   std::uint64_t placement_seed);

 private:
  RingState state_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;  // sorted (point, shard)
};

}  // namespace securestore::shard
