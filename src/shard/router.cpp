#include "shard/router.h"

#include <stdexcept>

namespace securestore::shard {

ShardRouter::ShardRouter(SignedRingState ring, core::StoreConfig template_config)
    : template_config_(std::move(template_config)), signed_(std::move(ring)) {
  if (!signed_.verify(template_config_.ring_authority_key)) {
    throw std::invalid_argument("ShardRouter: initial ring signature invalid");
  }
  ring_.emplace(signed_.ring);
}

core::StoreConfig ShardRouter::config_for(std::uint32_t shard_id) const {
  for (const ShardMembers& shard : signed_.ring.shards) {
    if (shard.shard_id != shard_id) continue;
    if (shard.servers.size() != shard.server_keys.size()) {
      throw std::out_of_range("ShardRouter: ring entry keys misaligned");
    }
    core::StoreConfig config = template_config_;
    config.n = static_cast<std::uint32_t>(shard.servers.size());
    config.servers = shard.servers;
    config.server_keys.clear();
    for (std::size_t i = 0; i < shard.servers.size(); ++i) {
      config.server_keys[shard.servers[i]] = shard.server_keys[i];
    }
    config.validate();
    return config;
  }
  throw std::out_of_range("ShardRouter: unknown shard id");
}

bool ShardRouter::update(const SignedRingState& candidate) {
  if (candidate.ring.version <= signed_.ring.version) return false;
  if (!candidate.verify(template_config_.ring_authority_key)) return false;
  try {
    HashRing rebuilt(candidate.ring);
    ring_.emplace(std::move(rebuilt));
  } catch (const std::invalid_argument&) {
    return false;  // structurally unusable (no shards / zero vnodes)
  }
  signed_ = candidate;
  return true;
}

}  // namespace securestore::shard
