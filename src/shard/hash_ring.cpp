#include "shard/hash_ring.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/ed25519.h"
#include "crypto/sha2.h"

namespace securestore::shard {

namespace {

// Placement hashing uses raw (unmetered) SHA-256: it is a routing
// computation, not protocol cryptography, and must not perturb the crypto
// cost accounting the benches report.
std::uint64_t point_of(BytesView preimage) {
  crypto::Sha256 h;
  h.update(preimage);
  const auto digest = h.finish();
  std::uint64_t point = 0;
  for (int i = 7; i >= 0; --i) point = (point << 8) | digest[static_cast<std::size_t>(i)];
  return point;
}

Bytes ring_statement(const RingState& ring) {
  Writer w;
  w.str("securestore.ring.v1");
  ring.encode(w);
  return w.take();
}

}  // namespace

void ShardMembers::encode(Writer& w) const {
  w.u32(shard_id);
  w.u32(static_cast<std::uint32_t>(servers.size()));
  for (const NodeId server : servers) w.u32(server.value);
  w.u32(static_cast<std::uint32_t>(server_keys.size()));
  for (const Bytes& key : server_keys) w.bytes(key);
}

ShardMembers ShardMembers::decode(Reader& r) {
  ShardMembers m;
  m.shard_id = r.u32();
  const std::uint32_t server_count = r.u32();
  // No reserve: counts are attacker-controlled, decode throws on underrun.
  for (std::uint32_t i = 0; i < server_count; ++i) m.servers.push_back(NodeId{r.u32()});
  const std::uint32_t key_count = r.u32();
  for (std::uint32_t i = 0; i < key_count; ++i) m.server_keys.push_back(r.bytes());
  return m;
}

void RingState::encode(Writer& w) const {
  w.u64(version);
  w.u32(vnodes_per_shard);
  w.u64(placement_seed);
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardMembers& shard : shards) shard.encode(w);
}

RingState RingState::decode(Reader& r) {
  RingState ring;
  ring.version = r.u64();
  ring.vnodes_per_shard = r.u32();
  ring.placement_seed = r.u64();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) ring.shards.push_back(ShardMembers::decode(r));
  return ring;
}

Bytes RingState::serialize() const {
  Writer w;
  encode(w);
  return w.take();
}

RingState RingState::deserialize(BytesView data) {
  Reader r(data);
  RingState ring = decode(r);
  r.expect_end();
  return ring;
}

SignedRingState SignedRingState::sign(RingState ring, BytesView authority_seed) {
  SignedRingState signed_ring;
  signed_ring.signature = crypto::ed25519_sign(authority_seed, ring_statement(ring));
  signed_ring.ring = std::move(ring);
  return signed_ring;
}

bool SignedRingState::verify(BytesView authority_public_key) const {
  if (authority_public_key.empty()) return false;
  return crypto::ed25519_verify(authority_public_key, ring_statement(ring), signature);
}

Bytes SignedRingState::serialize() const {
  Writer w;
  ring.encode(w);
  w.bytes(signature);
  return w.take();
}

SignedRingState SignedRingState::deserialize(BytesView data) {
  Reader r(data);
  SignedRingState signed_ring;
  signed_ring.ring = RingState::decode(r);
  signed_ring.signature = r.bytes();
  r.expect_end();
  return signed_ring;
}

HashRing::HashRing(RingState state) : state_(std::move(state)) {
  if (state_.shards.empty()) throw std::invalid_argument("HashRing: no shards");
  if (state_.vnodes_per_shard == 0) {
    throw std::invalid_argument("HashRing: vnodes_per_shard == 0");
  }
  points_.reserve(static_cast<std::size_t>(state_.shards.size()) * state_.vnodes_per_shard);
  for (const ShardMembers& shard : state_.shards) {
    for (std::uint32_t v = 0; v < state_.vnodes_per_shard; ++v) {
      points_.emplace_back(vnode_point(shard.shard_id, v, state_.placement_seed),
                           shard.shard_id);
    }
  }
  // Sorting by (point, shard) makes collisions — astronomically unlikely at
  // 64 bits — resolve deterministically for every holder of this state.
  std::sort(points_.begin(), points_.end());
}

std::uint32_t HashRing::shard_for(GroupId group) const {
  const std::uint64_t point = key_point(group, state_.placement_seed);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t key) {
        return p.first < key;
      });
  return it == points_.end() ? points_.front().second : it->second;
}

std::uint64_t HashRing::key_point(GroupId group, std::uint64_t placement_seed) {
  Writer w;
  w.str("ring-key");
  w.u64(placement_seed);
  w.u64(group.value);
  return point_of(w.data());
}

std::uint64_t HashRing::vnode_point(std::uint32_t shard_id, std::uint32_t vnode,
                                    std::uint64_t placement_seed) {
  Writer w;
  w.str("ring-vnode");
  w.u64(placement_seed);
  w.u32(shard_id);
  w.u32(vnode);
  return point_of(w.data());
}

}  // namespace securestore::shard
