#include "shard/sharded_client.h"

namespace securestore::shard {

ShardedClient::ShardedClient(net::Transport& transport, ClientId id, crypto::KeyPair keys,
                             SignedRingState ring, core::StoreConfig template_config,
                             Options options, Rng rng)
    : transport_(transport),
      client_id_(id),
      keys_(std::move(keys)),
      options_(std::move(options)),
      router_(std::move(ring), std::move(template_config)),
      rng_(std::move(rng)),
      ring_refresh_(transport.registry().counter("shard.ring_refresh")),
      reroutes_(transport.registry().counter("shard.reroute")) {}

core::SecureStoreClient* ShardedClient::group_client(GroupId group) {
  const auto it = sessions_.find(group);
  return it != sessions_.end() ? it->second.client.get() : nullptr;
}

ShardedClient::Session& ShardedClient::session_for(GroupId group) {
  auto it = sessions_.find(group);
  if (it == sessions_.end()) {
    Session session;
    session.shard_id = router_.shard_for(group);
    session.network_id = NodeId{options_.network_base.value + next_endpoint_++};
    session.client = make_group_client(group, session.shard_id, session.network_id);
    it = sessions_.emplace(group, std::move(session)).first;
  }
  return it->second;
}

std::unique_ptr<core::SecureStoreClient> ShardedClient::make_group_client(
    GroupId group, std::uint32_t shard, NodeId network_id) {
  core::SecureStoreClient::Options client_options = options_.client;
  const auto policy = options_.group_policies.find(group);
  if (policy != options_.group_policies.end()) client_options.policy = policy->second;
  client_options.policy.group = group;
  return std::make_unique<core::SecureStoreClient>(transport_, network_id, client_id_, keys_,
                                                   router_.config_for(shard),
                                                   std::move(client_options), rng_.fork());
}

bool ShardedClient::absorb_ring(Bytes ring_bytes) {
  if (ring_bytes.empty()) return false;
  try {
    if (router_.update(SignedRingState::deserialize(ring_bytes))) {
      ring_refresh_.inc();
      return true;
    }
  } catch (const DecodeError&) {
    // Malformed attachment from a (possibly Byzantine) server: ignore; the
    // bounded retry loop surfaces the error if no honest ring arrives.
  }
  return false;
}

void ShardedClient::rebuild_session(GroupId group, VoidCb done) {
  Session& session = sessions_.at(group);
  const std::uint32_t target = router_.shard_for(group);
  const bool was_connected = session.client->connected();
  core::Context saved = session.client->context();
  // Destroy before rebuilding: the replacement reuses the endpoint id.
  session.client.reset();
  session.client = make_group_client(group, target, session.network_id);
  session.shard_id = target;
  if (!was_connected) {
    done(VoidResult());
    return;
  }
  // Re-open the P1 session on the new owner, then merge the in-memory
  // context over the fetched one: rebalance copies the last STORED context,
  // but this session may hold newer entries (acked writes since the last
  // disconnect). Pointwise max preserves causality (Fig. 2).
  core::SecureStoreClient* client = session.client.get();
  client->connect(group, [client, saved = std::move(saved), done](VoidResult result) {
    if (result.ok()) client->mutable_context().merge(saved);
    done(std::move(result));
  });
}

void ShardedClient::connect(GroupId group, VoidCb done) {
  issue<VoidResult>(
      group,
      [group](core::SecureStoreClient& client, VoidCb cb) { client.connect(group, std::move(cb)); },
      std::move(done), 0);
}

void ShardedClient::disconnect(GroupId group, VoidCb done) {
  issue<VoidResult>(
      group, [](core::SecureStoreClient& client, VoidCb cb) { client.disconnect(std::move(cb)); },
      std::move(done), 0);
}

void ShardedClient::reconstruct_context(GroupId group, VoidCb done) {
  issue<VoidResult>(
      group,
      [group](core::SecureStoreClient& client, VoidCb cb) {
        client.reconstruct_context(group, std::move(cb));
      },
      std::move(done), 0);
}

void ShardedClient::write(GroupId group, ItemId item, BytesView value, VoidCb done) {
  // The value is copied into the closure: a reroute retries after the
  // caller's buffer may be gone.
  issue<VoidResult>(
      group,
      [item, value = Bytes(value.begin(), value.end())](core::SecureStoreClient& client,
                                                        VoidCb cb) {
        client.write(item, value, std::move(cb));
      },
      std::move(done), 0);
}

void ShardedClient::read(GroupId group, ItemId item, ReadCb done) {
  issue<Result<core::ReadOutput>>(
      group,
      [item](core::SecureStoreClient& client, std::function<void(Result<core::ReadOutput>)> cb) {
        client.read(item, std::move(cb));
      },
      std::move(done), 0);
}

void ShardedClient::list_group(GroupId group, ListCb done) {
  issue<Result<std::vector<core::GroupEntry>>>(
      group,
      [group](core::SecureStoreClient& client,
              std::function<void(Result<std::vector<core::GroupEntry>>)> cb) {
        client.list_group(group, std::move(cb));
      },
      std::move(done), 0);
}

VoidResult SyncShardedClient::connect(GroupId group) {
  std::optional<VoidResult> slot;
  client_.connect(group, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncShardedClient::disconnect(GroupId group) {
  std::optional<VoidResult> slot;
  client_.disconnect(group, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncShardedClient::reconstruct_context(GroupId group) {
  std::optional<VoidResult> slot;
  client_.reconstruct_context(group, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncShardedClient::write(GroupId group, ItemId item, BytesView value) {
  std::optional<VoidResult> slot;
  client_.write(group, item, value, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

Result<core::ReadOutput> SyncShardedClient::read(GroupId group, ItemId item) {
  std::optional<Result<core::ReadOutput>> slot;
  client_.read(group, item, [&slot](Result<core::ReadOutput> r) { slot = std::move(r); });
  return wait(slot);
}

Result<Bytes> SyncShardedClient::read_value(GroupId group, ItemId item) {
  Result<core::ReadOutput> result = read(group, item);
  if (!result.ok()) return Result<Bytes>(result.error(), result.detail());
  return Result<Bytes>(std::move(result.value().value));
}

Result<std::vector<core::GroupEntry>> SyncShardedClient::list_group(GroupId group) {
  std::optional<Result<std::vector<core::GroupEntry>>> slot;
  client_.list_group(group,
                     [&slot](Result<std::vector<core::GroupEntry>> r) { slot = std::move(r); });
  return wait(slot);
}

}  // namespace securestore::shard
